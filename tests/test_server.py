"""The asyncio TCP front door: protocol, backpressure, metrics, prefork.

In-process tests drive a :class:`~repro.serve.server.ThreadedServer`
over real sockets with the blocking :class:`~repro.serve.ServeClient`:
wire answers must be byte-identical to direct index queries, error
paths must answer (not disconnect), admission control must shed with
the explicit overloaded response, and ``stats`` must carry the request
counters and latency percentiles.  The prefork worker model (processes,
SO_REUSEPORT, WAL-routed writes, SIGTERM drain) is exercised through
the real CLI in a subprocess.
"""

from __future__ import annotations

import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro import DynamicLCCSLSH, LCCSLSH
from repro.serve import ANNService, Overloaded, ServeClient, ServerError
from repro.serve.metrics import LatencyHistogram, ServerMetrics
from repro.serve.server import ServiceBackend, ThreadedServer

DIM = 16
N = 120


def _fitted_static(seed: int = 0) -> LCCSLSH:
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(N, DIM))
    return LCCSLSH(dim=DIM, m=8, w=4.0, seed=5).fit(data)


def _fitted_dynamic(seed: int = 0) -> DynamicLCCSLSH:
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(N, DIM))
    return DynamicLCCSLSH(dim=DIM, m=8, w=4.0, seed=5).fit(data)


@pytest.fixture()
def served_dynamic():
    """(ThreadedServer, ANNService, index) over a dynamic index."""
    index = _fitted_dynamic()
    service = ANNService(index, cache_size=64, batch_window_ms=0.5)
    server = ThreadedServer(
        ServiceBackend(service, default_k=5), max_inflight=8
    ).start()
    try:
        yield server, service, index
    finally:
        server.stop()
        service.close()


# ----------------------------------------------------------------------
# Wire fidelity
# ----------------------------------------------------------------------


def test_tcp_results_byte_identical_to_batch_query():
    """The pinned acceptance property: what a TCP client receives is

    byte-identical (ids and dists) to a direct ``batch_query`` on the
    same index — JSON round-trips float repr exactly, so not even the
    last ulp may differ.
    """
    index = _fitted_static()
    service = ANNService(index, cache_size=0, batch_window_ms=0.5)
    rng = np.random.default_rng(42)
    queries = rng.normal(size=(8, DIM))
    want_ids, want_dists = index.batch_query(queries, k=7)
    backend = ServiceBackend(service, default_k=7)
    try:
        with ThreadedServer(backend) as server:
            with ServeClient("127.0.0.1", server.port) as client:
                for i in range(len(queries)):
                    ids, dists = client.query(queries[i], k=7)
                    valid = want_ids[i] >= 0
                    assert ids.tolist() == want_ids[i][valid].tolist()
                    # byte-identical, not approximately equal
                    assert dists.tobytes() == want_dists[i][valid].tobytes()
    finally:
        service.close()


def test_pipelined_responses_come_back_in_request_order(served_dynamic):
    server, _, index = served_dynamic
    rng = np.random.default_rng(1)
    queries = rng.normal(size=(6, DIM))
    with ServeClient("127.0.0.1", server.port) as client:
        for q in queries:  # fill the wire before reading anything
            client.send({"query": q.tolist(), "k": 3})
        for q in queries:
            response = client.recv()
            want_ids, _ = index.query(q, k=3)
            assert response["ids"] == want_ids.tolist()


def test_write_barrier_within_one_connection(served_dynamic):
    """A pipelined insert answers only after the prior query: its

    response order (and the version it reports) must reflect the
    serial stdin semantics.
    """
    server, service, _ = served_dynamic
    rng = np.random.default_rng(2)
    with ServeClient("127.0.0.1", server.port) as client:
        client.send({"query": rng.normal(size=DIM).tolist(), "k": 2})
        client.send({"insert": rng.normal(size=DIM).tolist()})
        client.send({"query": rng.normal(size=DIM).tolist(), "k": 2})
        first = client.recv()
        second = client.recv()
        third = client.recv()
    assert "ids" in first and "ids" in third
    assert second["handle"] == N and second["version"] == 1
    assert service.version == 1


# ----------------------------------------------------------------------
# Error paths: every bad request answers, the connection survives
# ----------------------------------------------------------------------


def test_malformed_json_gets_error_line_and_connection_survives(
    served_dynamic,
):
    server, _, _ = served_dynamic
    with ServeClient("127.0.0.1", server.port) as client:
        client._file.write(b"{definitely not json\n")
        client._file.flush()
        response = client.recv()
        assert response["error"].startswith("bad request:")
        assert client.ping()  # same socket still serves


def test_wrong_dimensionality_is_an_error_response(served_dynamic):
    server, _, _ = served_dynamic
    with ServeClient("127.0.0.1", server.port) as client:
        with pytest.raises(ServerError, match=r"shape \(16,\)"):
            client.query(np.zeros(DIM + 3), k=2)
        assert client.ping()


def test_delete_unknown_handle_is_an_error_response(served_dynamic):
    server, _, _ = served_dynamic
    with ServeClient("127.0.0.1", server.port) as client:
        with pytest.raises(ServerError, match="unknown handle"):
            client.delete(10_000)
        assert client.ping()


def test_unknown_op_and_non_object_requests(served_dynamic):
    server, _, _ = served_dynamic
    with ServeClient("127.0.0.1", server.port) as client:
        assert "unknown request" in client.request({"frobnicate": 1})["error"]
        client._file.write(b"[1, 2, 3]\n")
        client._file.flush()
        assert "JSON object" in client.recv()["error"]


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------


def _gate_service_reads(service) -> threading.Event:
    """Stall the service's *batcher thread* (not the event loop) on an

    event: ``query_async`` keeps returning futures instantly, so the
    server keeps admitting until ``max_inflight`` — exactly the shape
    of a backend that cannot keep up.
    """
    gate = threading.Event()
    ci = service.index
    real_batch, real_single = ci.batch_query_versioned, ci.query_versioned

    def gated_batch(*args, **kwargs):
        gate.wait(timeout=30)
        return real_batch(*args, **kwargs)

    def gated_single(*args, **kwargs):
        gate.wait(timeout=30)
        return real_single(*args, **kwargs)

    ci.batch_query_versioned = gated_batch
    ci.query_versioned = gated_single
    return gate


def test_overload_sheds_with_explicit_response():
    """Pipelining more queries than ``max_inflight`` while the backend

    is stalled must shed the excess with ``{"error": "overloaded",
    "shed": true}`` — in order, without dropping the connection — and
    count them in the metrics.
    """
    index = _fitted_dynamic()
    service = ANNService(index, cache_size=0, batch_window_ms=0.5)
    gate = _gate_service_reads(service)
    backend = ServiceBackend(service, default_k=3)
    try:
        with ThreadedServer(backend, max_inflight=2) as server:
            with ServeClient("127.0.0.1", server.port) as client:
                q = np.zeros(DIM).tolist()
                for _ in range(6):
                    client.send({"query": q, "k": 3})
                # The two admitted queries are parked on the gate, so
                # the four excess requests were shed at read time.
                responses = []
                gate.set()
                for _ in range(6):
                    responses.append(client.recv())
                shed = [r for r in responses if r.get("shed")]
                served = [r for r in responses if "ids" in r]
                assert len(shed) == 4
                assert all(r["error"] == "overloaded" for r in shed)
                assert len(served) == 2
                stats = client.stats()
                assert stats["server"]["shed_total"] == 4
                assert stats["server"]["ops"]["query"]["shed"] == 4
    finally:
        service.close()


def test_client_overloaded_exception_carries_shed_flag(served_dynamic):
    server, service, _ = served_dynamic
    gate = _gate_service_reads(service)
    try:
        with ServeClient("127.0.0.1", server.port) as pipeliner:
            q = np.zeros(DIM).tolist()
            for _ in range(8):  # fill max_inflight=8 across the server
                pipeliner.send({"query": q, "k": 2})
            # admission is global to the worker: a *different* socket
            # sees the overload too, and the client surfaces it typed.
            # Poll with stats (also subject to admission) until the 8
            # pipelined queries are all admitted — from then on every
            # request sheds deterministically.
            with ServeClient("127.0.0.1", server.port) as client:
                deadline = time.time() + 10
                while True:
                    try:
                        client.stats()
                    except Overloaded:
                        break  # the inflight bound is reached
                    assert time.time() < deadline, "bound never reached"
                    time.sleep(0.01)
                with pytest.raises(Overloaded):
                    client.query(np.zeros(DIM), k=2)
            gate.set()
            for _ in range(8):
                assert "ids" in pipeliner.recv()
    finally:
        gate.set()


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------


def test_stats_reports_latency_percentiles_and_counters(served_dynamic):
    server, _, _ = served_dynamic
    rng = np.random.default_rng(3)
    with ServeClient("127.0.0.1", server.port) as client:
        for _ in range(10):
            client.query(rng.normal(size=DIM), k=3)
        client.insert(rng.normal(size=DIM))
        stats = client.stats()
    srv = stats["server"]
    assert srv["connections"] == 1
    assert srv["requests_total"] == 11
    assert srv["errors_total"] == 0
    query_stats = srv["ops"]["query"]
    assert query_stats["requests"] == 10
    assert query_stats["count"] == 10
    for name in ("mean_ms", "p50_ms", "p95_ms", "p99_ms"):
        assert query_stats[name] > 0.0
    assert query_stats["min_ms"] <= query_stats["p50_ms"]
    assert query_stats["p50_ms"] <= query_stats["p99_ms"]
    assert query_stats["p99_ms"] <= query_stats["max_ms"]
    assert srv["ops"]["insert"]["requests"] == 1


def test_latency_histogram_percentiles_bounded_by_bucket_error():
    hist = LatencyHistogram()
    rng = np.random.default_rng(0)
    samples = rng.uniform(1e-4, 1e-1, size=2000)
    for s in samples:
        hist.record(s)
    for p in (50, 90, 99):
        got = hist.percentile(p)
        want = float(np.percentile(samples, p))
        # log-bucketed estimate: within one 25 % bucket of the truth
        assert want / 1.3 <= got <= want * 1.3
    assert hist.percentile(0) == samples.min()
    assert hist.percentile(100) == samples.max()


def test_latency_histogram_merge_and_empty():
    empty = LatencyHistogram()
    assert empty.percentile(50) is None
    assert empty.snapshot() == {"count": 0}
    a, b = LatencyHistogram(), LatencyHistogram()
    for s in (0.001, 0.002, 0.003):
        a.record(s)
    for s in (0.5, 1.0):
        b.record(s)
    a.merge(b)
    snap = a.snapshot()
    assert snap["count"] == 5
    assert snap["min_ms"] == 1.0 and snap["max_ms"] == 1000.0


def test_server_metrics_shed_not_in_latency():
    metrics = ServerMetrics()
    metrics.observe("query", 0.01)
    metrics.count_shed("query")
    snap = metrics.snapshot()
    assert snap["ops"]["query"]["requests"] == 2
    assert snap["ops"]["query"]["shed"] == 1
    assert snap["ops"]["query"]["count"] == 1  # only the served one


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------


def test_drain_refuses_new_connections_but_finishes_existing():
    index = _fitted_dynamic()
    service = ANNService(index, cache_size=0, batch_window_ms=0.5)
    backend = ServiceBackend(service, default_k=3)
    server = ThreadedServer(backend, drain_timeout=10.0).start()
    try:
        client = ServeClient("127.0.0.1", server.port)
        assert client.ping()  # connection fully established server-side
        server.drain()
        time.sleep(0.2)  # listener closes asynchronously
        with pytest.raises((ConnectionError, OSError)):
            probe = socket.create_connection(
                ("127.0.0.1", server.port), timeout=0.5
            )
            # if the kernel still accepted (backlog race), the server
            # must not answer: recv sees EOF
            probe.settimeout(2.0)
            probe.sendall(b'{"ping": true}\n')
            if probe.recv(100) == b"":
                probe.close()
                raise ConnectionError("refused after accept")
            probe.close()
        # the pre-drain connection still gets full service
        ids, _ = client.query(np.zeros(DIM), k=2)
        assert len(ids) == 2
        client.close()
        server.stop()
    finally:
        service.close()


# ----------------------------------------------------------------------
# Prefork workers through the real CLI
# ----------------------------------------------------------------------


@pytest.mark.slow
def test_prefork_workers_share_port_route_writes_and_drain(tmp_path):
    """Two forked mmap workers behind one SO_REUSEPORT port: reads on

    either worker, writes routed to the primary's WAL, ``min_version``
    read-your-writes across processes, graceful SIGTERM drain.
    """
    if not hasattr(socket, "SO_REUSEPORT"):
        pytest.skip("no SO_REUSEPORT on this platform")
    bundle = tmp_path / "dyn.bundle"
    env = dict(os.environ)
    src = str((os.path.dirname(__file__) or ".") + "/../src")
    env["PYTHONPATH"] = os.path.abspath(src)
    build = subprocess.run(
        [sys.executable, "-m", "repro.cli", "build", "--dataset", "sift",
         "--n", "200", "--method", "dynamic", "--out", str(bundle),
         "--seed", "7"],
        env=env, capture_output=True, text=True, timeout=120,
    )
    assert build.returncode == 0, build.stderr
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", str(bundle),
         "--tcp", "127.0.0.1:0", "--workers", "2",
         "--wal-dir", str(tmp_path / "dyn.wal"), "--mmap",
         "--fsync", "off", "--max-inflight", "32"],
        env=env, stderr=subprocess.PIPE, text=True,
    )
    try:
        port = None
        deadline = time.time() + 120
        while time.time() < deadline:
            line = proc.stderr.readline()
            if not line:
                break
            found = re.search(r"listening on [\d.]+:(\d+) workers=2", line)
            if found:
                port = int(found.group(1))
                break
        assert port is not None, "no readiness line"
        rng = np.random.default_rng(0)
        pids = set()
        with ServeClient("127.0.0.1", port, timeout=60) as client:
            ids, dists = client.query(rng.normal(size=128), k=5)
            assert list(dists) == sorted(dists)
            inserted = client.insert(rng.normal(size=128))
            assert inserted["seq"] >= 1
            # read-your-writes across processes: whatever worker this
            # lands on must catch up to the write's WAL position
            ids, _ = client.query(
                np.zeros(128), k=201, min_version=inserted["seq"]
            )
            assert inserted["handle"] in ids.tolist()
            stats = client.stats()
            assert stats["role"] == "replica"
            assert stats["applied_seq"] >= inserted["seq"]
            pids.add(stats["pid"])
        # a second connection may land on either worker — both serve
        with ServeClient("127.0.0.1", port, timeout=60) as client:
            client.query(rng.normal(size=128), k=3)
            pids.add(client.stats()["pid"])
        assert pids  # at least one worker pid observed
        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=60)
        rest = proc.stderr.read()
        assert rc == 0, rest
        assert "all workers drained" in rest
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)

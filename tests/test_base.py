"""Tests for the shared ANNIndex contract."""

import numpy as np
import pytest

from repro.base import ANNIndex
from repro.baselines import LinearScan


class _Dummy(ANNIndex):
    name = "dummy"

    def _fit(self, data):
        pass

    def _query(self, q, k, **kw):
        return self._verify(np.arange(self.n), q, k)


def test_fit_validation(rng):
    idx = _Dummy(dim=4)
    with pytest.raises(ValueError):
        idx.fit(rng.normal(size=4))  # 1-d
    with pytest.raises(ValueError):
        idx.fit(np.empty((0, 4)))
    with pytest.raises(ValueError):
        idx.fit(rng.normal(size=(5, 3)))  # wrong dim
    with pytest.raises(ValueError):
        _Dummy(dim=0)


def test_query_validation(rng):
    idx = _Dummy(dim=4)
    with pytest.raises(RuntimeError):
        idx.query(np.zeros(4), k=1)
    idx.fit(rng.normal(size=(10, 4)))
    with pytest.raises(ValueError):
        idx.query(np.zeros(3), k=1)
    with pytest.raises(ValueError):
        idx.query(np.zeros(4), k=0)


def test_properties_and_repr(rng):
    idx = _Dummy(dim=4)
    assert not idx.is_fitted and idx.n == 0
    assert "unfitted" in repr(idx)
    idx.fit(rng.normal(size=(10, 4)))
    assert idx.is_fitted and idx.n == 10
    assert "n=10" in repr(idx)


def test_verify_dedupes_and_sorts(rng):
    idx = _Dummy(dim=4).fit(rng.normal(size=(20, 4)))
    q = rng.normal(size=4)
    ids, dists = idx._verify(np.array([3, 3, 7, 1, 7]), q, 5)
    assert len(ids) == 3  # deduplicated
    assert (np.diff(dists) >= 0).all()
    assert idx.last_stats["candidates"] == 3


def test_verify_empty_candidates(rng):
    idx = _Dummy(dim=4).fit(rng.normal(size=(5, 4)))
    ids, dists = idx._verify(np.array([], dtype=np.int64), np.zeros(4), 3)
    assert len(ids) == 0 and len(dists) == 0


def test_batch_query_padding(rng):
    data = rng.normal(size=(3, 4))
    idx = LinearScan(dim=4).fit(data)
    ids, dists = idx.batch_query(rng.normal(size=(2, 4)), k=5)
    assert ids.shape == (2, 5)
    assert (ids[:, 3:] == -1).all()  # only 3 points exist
    assert np.isinf(dists[:, 3:]).all()
    with pytest.raises(ValueError):
        idx.batch_query(rng.normal(size=4), k=2)


def test_save_load_type_check(tmp_path):
    import pickle

    path = tmp_path / "junk.pkl"
    with open(path, "wb") as f:
        pickle.dump({"not": "an index"}, f)
    with pytest.raises(TypeError):
        ANNIndex.load(str(path))

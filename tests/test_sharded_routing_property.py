"""Hypothesis property: sharded round-robin routing == unsharded reference.

``ShardedIndex`` routes ``insert`` round-robin and ``delete`` by handle
lookup while promising the *unsharded* handle contract: the i-th insert
returns handle ``n + i`` and every handle keeps referring to the same
vector, across arbitrary interleavings of inserts and deletes (including
deletes of fitted rows, of fresh inserts, and of already-dead handles,
which must raise ``KeyError`` exactly like the reference).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DynamicLCCSLSH, IndexSpec, ShardedIndex

DIM = 4


def vector_for(counter: int) -> np.ndarray:
    """A distinct, deterministic vector per insertion counter."""
    base = np.arange(1.0, DIM + 1.0)
    return base * (counter + 1) + 0.25 * ((counter % 7) - 3)


def build_pair(n_fit: int, num_shards: int):
    data = np.stack([vector_for(-i - 1) for i in range(n_fit)])
    spec = IndexSpec(
        "DynamicLCCSLSH", dim=DIM, m=4, w=8.0, seed=0, rebuild_threshold=0.25
    )
    sharded = ShardedIndex(
        spec, num_shards=num_shards, parallel="serial"
    ).fit(data)
    reference = DynamicLCCSLSH(
        dim=DIM, m=4, w=8.0, seed=0, rebuild_threshold=0.25
    ).fit(data)
    return sharded, reference


#: an op is ("insert",) or ("delete", selector); the selector is reduced
#: modulo the current handle space so deletes hit fitted rows, fresh
#: inserts, and (on repeats) already-dead handles
ops_strategy = st.lists(
    st.one_of(
        st.just(("insert",)),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=10_000)),
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(
    n_fit=st.integers(min_value=2, max_value=10),
    num_shards=st.integers(min_value=2, max_value=4),
    ops=ops_strategy,
)
def test_routing_preserves_handle_to_vector_mapping(n_fit, num_shards, ops):
    if num_shards > n_fit:
        num_shards = n_fit
    sharded, reference = build_pair(n_fit, num_shards)
    inserted = 0
    live = set(range(n_fit))
    for op in ops:
        if op[0] == "insert":
            vec = vector_for(inserted)
            inserted += 1
            got = sharded.insert(vec)
            want = reference.insert(vec)
            assert got == want  # identical handle sequences
            live.add(want)
        else:
            target = op[1] % (n_fit + inserted)
            sharded_err = reference_err = None
            try:
                sharded.delete(target)
            except KeyError as exc:
                sharded_err = str(exc)
            try:
                reference.delete(target)
            except KeyError as exc:
                reference_err = str(exc)
            # Both fail or both succeed (messages may differ in detail).
            assert (sharded_err is None) == (reference_err is None)
            live.discard(target)

    # Handle -> vector mapping survives every interleaving: each live
    # handle resolves (through shard-local translation) to the same
    # vector the reference holds for it.
    for handle in sorted(live):
        shard, local = sharded._locate(handle)
        got = sharded.shards[shard].get_vector(local)
        want = reference.get_vector(handle)
        assert got.tobytes() == want.tobytes()

    # Dead handles are unknown on both sides.
    for handle in sorted(set(range(n_fit + inserted)) - live):
        with pytest.raises(KeyError):
            sharded.delete(handle)
        with pytest.raises(KeyError):
            reference.delete(handle)

    # Candidate-saturated queries agree on the merged live set.
    if live:
        q = vector_for(3)
        cap = max(sharded.n, 1)
        ids_s, dists_s = sharded.query(q, k=min(5, len(live)),
                                       num_candidates=cap)
        ids_r, dists_r = reference.query(q, k=min(5, len(live)),
                                         num_candidates=cap)
        assert ids_s.tolist() == ids_r.tolist()
        assert dists_s.tolist() == dists_r.tolist()
    sharded.close()

"""Tests for collision probabilities, the LCCS length law, and Table 1."""

import math

import numpy as np
import pytest

from repro.theory import (
    approx_cdf,
    bit_sampling_collision_probability,
    cp_collision_probability,
    cp_rho,
    exact_cdf,
    exact_pmf,
    hyperplane_collision_probability,
    lccs_lambda_for_alpha,
    lccs_m_for_alpha,
    median_length,
    minhash_collision_probability,
    quantile_length,
    rho,
    rp_collision_probability,
    simulate_lccs_lengths,
    table1_rows,
    theorem51_lambda,
)


# ----------------------------------------------------------------------
# Collision probabilities (paper Eq. 2, 4, 5)
# ----------------------------------------------------------------------

def test_rp_collision_probability_monotone_decreasing():
    w = 4.0
    probs = [rp_collision_probability(tau, w) for tau in (0.5, 1, 2, 4, 8, 16)]
    assert all(probs[i] > probs[i + 1] for i in range(len(probs) - 1))
    assert all(0.0 <= p <= 1.0 for p in probs)


def test_rp_collision_probability_limits():
    assert rp_collision_probability(0.0, 4.0) == 1.0
    assert rp_collision_probability(1e9, 4.0) < 0.01
    # Very wide bucket always collides.
    assert rp_collision_probability(0.1, 1e6) > 0.999


def test_rp_collision_probability_monte_carlo(rng):
    """Eq. 2 matches an empirical estimate with m=20k projections."""
    w, tau, d = 4.0, 3.0, 16
    o = np.zeros(d)
    q = np.zeros(d)
    q[0] = tau
    a = rng.normal(size=(20000, d))
    b = rng.uniform(0, w, size=20000)
    ho = np.floor((a @ o + b) / w)
    hq = np.floor((a @ q + b) / w)
    emp = float((ho == hq).mean())
    assert rp_collision_probability(tau, w) == pytest.approx(emp, abs=0.015)


def test_rp_collision_validation():
    with pytest.raises(ValueError):
        rp_collision_probability(1.0, 0.0)
    with pytest.raises(ValueError):
        rp_collision_probability(-1.0, 1.0)


def test_cp_collision_probability_monotone():
    probs = [cp_collision_probability(t, 64) for t in (0.0, 0.3, 0.8, 1.3, 1.9)]
    assert all(probs[i] > probs[i + 1] for i in range(len(probs) - 1))
    assert probs[0] == 1.0


def test_cp_collision_validation():
    with pytest.raises(ValueError):
        cp_collision_probability(2.5, 64)
    with pytest.raises(ValueError):
        cp_collision_probability(0.5, 1)


def test_cp_rho_below_one_over_c_squared():
    """Eq. 5: rho <= 1/c^2 for all R (Corollary 1 of FALCONN paper)."""
    for c in (1.5, 2.0, 3.0):
        for R in (0.1, 0.3, 0.5):
            if c * R < 2.0:
                assert cp_rho(c, R) <= 1.0 / (c * c) + 1e-12


def test_hyperplane_collision_probability_known_values():
    assert hyperplane_collision_probability(0.0) == 1.0
    assert hyperplane_collision_probability(math.pi) == 0.0
    assert hyperplane_collision_probability(math.pi / 2) == pytest.approx(0.5)


def test_hyperplane_monte_carlo(rng):
    theta = 1.0
    a = np.array([1.0, 0.0])
    b = np.array([math.cos(theta), math.sin(theta)])
    proj = rng.normal(size=(20000, 2))
    emp = float(((proj @ a >= 0) == (proj @ b >= 0)).mean())
    assert hyperplane_collision_probability(theta) == pytest.approx(emp, abs=0.015)


def test_bit_sampling_and_minhash_formulas():
    assert bit_sampling_collision_probability(0, 10) == 1.0
    assert bit_sampling_collision_probability(5, 10) == 0.5
    assert minhash_collision_probability(0.25) == 0.75
    with pytest.raises(ValueError):
        bit_sampling_collision_probability(11, 10)
    with pytest.raises(ValueError):
        minhash_collision_probability(1.5)


def test_rho_formula():
    assert rho(0.5, 0.25) == pytest.approx(0.5)
    with pytest.raises(ValueError):
        rho(0.2, 0.5)


# ----------------------------------------------------------------------
# LCCS length distribution (paper Lemma 5.2, Eq. 6-7, Theorem 5.1)
# ----------------------------------------------------------------------

def test_exact_cdf_boundaries():
    assert exact_cdf(16, 0.5, -1) == 0.0
    assert exact_cdf(16, 0.5, 16) == 1.0
    # x = m-1 excludes only the all-match circle.
    assert exact_cdf(8, 0.5, 7) == pytest.approx(1 - 0.5 ** 8)


def test_exact_cdf_monotone_in_x_and_p():
    cdf = [exact_cdf(20, 0.5, x) for x in range(21)]
    assert all(cdf[i] <= cdf[i + 1] + 1e-12 for i in range(20))
    # Higher match probability -> stochastically longer LCCS -> smaller CDF.
    assert exact_cdf(20, 0.7, 5) < exact_cdf(20, 0.4, 5)


def test_exact_pmf_sums_to_one():
    pmf = exact_pmf(12, 0.3)
    assert pmf.shape == (13,)
    assert pmf.sum() == pytest.approx(1.0)
    assert (pmf >= -1e-12).all()


@pytest.mark.parametrize("m,p", [(12, 0.3), (24, 0.5), (16, 0.7)])
def test_exact_cdf_matches_monte_carlo(m, p):
    samples = simulate_lccs_lengths(m, p, 6000, seed=11)
    for x in range(0, m, max(1, m // 6)):
        emp = float((samples <= x).mean())
        assert exact_cdf(m, p, x) == pytest.approx(emp, abs=0.03)


@pytest.mark.parametrize("p", [0.3, 0.5, 0.7])
@pytest.mark.parametrize("m", [16, 64, 256])
def test_approx_cdf_within_one_lattice_unit(m, p):
    """Lemma 5.2 up to the discrete lattice: the extreme-value formula is
    sandwiched between the exact CDF shifted by one character either way
    (longest-run laws famously do not converge in sup norm)."""
    for x in range(m + 1):
        a = approx_cdf(m, p, x)
        assert exact_cdf(m, p, x - 2) - 0.02 <= a <= exact_cdf(m, p, x + 1) + 0.02


@pytest.mark.parametrize("p", [0.3, 0.5, 0.7])
def test_approx_median_tracks_exact_median(p):
    for m in (64, 256):
        med = median_length(m, p)
        exact_med = next(x for x in range(m + 1) if exact_cdf(m, p, x) >= 0.5)
        assert abs(med - exact_med) <= 1.0


def test_median_and_quantile_consistency():
    m, p = 128, 0.5
    med = median_length(m, p)
    # The approximate CDF at its median is 1/2 by construction.
    assert approx_cdf(m, p, med) == pytest.approx(0.5)
    q9 = quantile_length(m, p, 0.9)
    assert approx_cdf(m, p, q9) == pytest.approx(0.9)
    assert q9 > med


def test_quantile_validation():
    with pytest.raises(ValueError):
        quantile_length(16, 0.5, 0.0)
    with pytest.raises(ValueError):
        median_length(16, 1.5)


def test_theorem51_lambda_properties():
    lam = theorem51_lambda(64, 100000, 0.9, 0.5)
    assert lam > 0
    # Larger m -> smaller lambda (exponent 1 - 1/rho < 0).
    assert theorem51_lambda(256, 100000, 0.9, 0.5) < lam
    # Larger n -> proportionally larger lambda.
    assert theorem51_lambda(64, 200000, 0.9, 0.5) == pytest.approx(2 * lam)
    with pytest.raises(ValueError):
        theorem51_lambda(64, 1000, 0.5, 0.9)


# ----------------------------------------------------------------------
# Table 1 complexity models
# ----------------------------------------------------------------------

def test_table1_has_five_rows():
    rows = table1_rows()
    assert len(rows) == 5
    assert {r.method for r in rows} == {"E2LSH", "C2LSH", "LCCS-LSH"}


def test_m_and_lambda_for_alpha_endpoints():
    n, r = 10000, 0.5
    # alpha = 0: constant m, lambda = O(n).
    assert lccs_m_for_alpha(n, r, 0.0) == 2
    assert lccs_lambda_for_alpha(n, r, 0.0) == n
    # alpha = 1: m = n^rho = 100, lambda = n^rho = 100.
    assert lccs_m_for_alpha(n, r, 1.0) == 100
    assert lccs_lambda_for_alpha(n, r, 1.0) == 100
    # alpha = 1/(1-rho) = 2: lambda = O(1).
    assert lccs_lambda_for_alpha(n, r, 2.0) == 1
    with pytest.raises(ValueError):
        lccs_m_for_alpha(n, r, 5.0)

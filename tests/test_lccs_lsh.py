"""End-to-end tests for single-probe LCCS-LSH (paper §4.1)."""

import numpy as np
import pytest

from repro import LCCSLSH
from repro.data import binary_strings, compute_ground_truth, sparse_sets
from repro.hashes import HyperplaneFamily, RandomProjectionFamily

from tests.helpers import average_recall


def test_high_recall_on_clustered_euclidean(clustered):
    data, queries, gt = clustered
    index = LCCSLSH(dim=24, m=32, metric="euclidean", w=1.0, seed=0).fit(data)
    rec = average_recall(index, queries, gt, k=10, num_candidates=150)
    assert rec >= 0.9


def test_high_recall_on_clustered_angular(clustered_angular):
    data, queries, gt = clustered_angular
    index = LCCSLSH(dim=24, m=32, metric="angular", cp_dim=8, seed=0).fit(data)
    rec = average_recall(index, queries, gt, k=10, num_candidates=150)
    assert rec >= 0.9


def test_more_candidates_monotone_recall(clustered):
    """Larger lambda can only widen the verified set."""
    data, queries, gt = clustered
    index = LCCSLSH(dim=24, m=32, metric="euclidean", w=1.0, seed=1).fit(data)
    recalls = [
        average_recall(index, queries, gt, k=10, num_candidates=nc)
        for nc in (10, 50, 200, 800)
    ]
    assert all(recalls[i] <= recalls[i + 1] + 1e-9 for i in range(len(recalls) - 1))
    assert recalls[-1] >= 0.95


def test_exact_duplicate_query_found(clustered):
    data, _, _ = clustered
    index = LCCSLSH(dim=24, m=24, metric="euclidean", w=1.0, seed=2).fit(data)
    ids, dists = index.query(data[37], k=1, num_candidates=20)
    assert ids[0] == 37
    assert dists[0] == 0.0


def test_num_candidates_full_scan_equals_exact(clustered):
    """lambda = n degenerates to exact search (alpha = 0 row of Table 1)."""
    data, queries, gt = clustered
    index = LCCSLSH(dim=24, m=16, metric="euclidean", w=1.0, seed=3).fit(data)
    rec = average_recall(index, queries, gt, k=10, num_candidates=len(data))
    assert rec == 1.0


def test_hamming_metric(rng):
    data = binary_strings(400, 64, n_clusters=8, flip_prob=0.03, seed=1)
    queries = binary_strings(10, 64, n_clusters=8, flip_prob=0.03, seed=2)
    gt = compute_ground_truth(data, queries, k=5, metric="hamming")
    index = LCCSLSH(dim=64, m=48, metric="hamming", seed=4).fit(data)
    rec = average_recall(index, queries, gt, k=5, num_candidates=100)
    assert rec >= 0.5  # bit sampling is weak but must clearly beat random


def test_jaccard_metric():
    data = sparse_sets(300, 500, avg_size=24, n_clusters=6, seed=5)
    queries = data[:8] .copy()
    gt = compute_ground_truth(data, queries, k=5, metric="jaccard")
    index = LCCSLSH(dim=500, m=32, metric="jaccard", seed=6).fit(data)
    rec = average_recall(index, queries, gt, k=5, num_candidates=60)
    assert rec >= 0.6


def test_custom_family_injection(clustered_angular):
    """LSH-family-independence: inject a hyperplane family explicitly."""
    data, queries, gt = clustered_angular
    fam = HyperplaneFamily(24, 40, seed=7)
    index = LCCSLSH(dim=24, m=40, family=fam).fit(data)
    assert index.metric == "angular"
    rec = average_recall(index, queries, gt, k=10, num_candidates=200)
    assert rec >= 0.7


def test_family_shape_mismatch_rejected():
    fam = RandomProjectionFamily(10, 16, seed=0)
    with pytest.raises(ValueError):
        LCCSLSH(dim=10, m=32, family=fam)
    with pytest.raises(ValueError):
        LCCSLSH(dim=12, m=16, family=fam)


def test_validation_errors(clustered):
    data, queries, _ = clustered
    with pytest.raises(ValueError):
        LCCSLSH(dim=24, m=1)
    index = LCCSLSH(dim=24, m=8, seed=8)
    with pytest.raises(RuntimeError):
        index.query(queries[0], k=1)
    index.fit(data)
    with pytest.raises(ValueError):
        index.query(queries[0][:5], k=1)
    with pytest.raises(ValueError):
        index.query(queries[0], k=0)
    with pytest.raises(ValueError):
        index.query(queries[0], k=1, num_candidates=0)
    with pytest.raises(ValueError):
        index.fit(data[:, :5])


def test_stats_and_size(clustered):
    data, queries, _ = clustered
    index = LCCSLSH(dim=24, m=16, metric="euclidean", w=1.0, seed=9).fit(data)
    assert index.index_size_bytes() > 0
    assert index.build_time > 0.0
    index.query(queries[0], k=3, num_candidates=30)
    assert index.last_stats["candidates"] >= 3
    assert 0 <= index.last_stats["max_lccs"] <= 16


def test_save_load_roundtrip(tmp_path, clustered):
    data, queries, _ = clustered
    index = LCCSLSH(dim=24, m=16, metric="euclidean", w=1.0, seed=10).fit(data)
    want_ids, want_dists = index.query(queries[0], k=5, num_candidates=50)
    path = tmp_path / "index.pkl"
    index.save(str(path))
    loaded = LCCSLSH.load(str(path))
    got_ids, got_dists = loaded.query(queries[0], k=5, num_candidates=50)
    assert want_ids.tolist() == got_ids.tolist()
    assert np.allclose(want_dists, got_dists)

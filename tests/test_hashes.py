"""Tests for the LSH families (paper §2.2) and their probe alternatives."""

import numpy as np
import pytest

from repro.distances import angular, hamming, jaccard, normalize_rows
from repro.hashes import (
    BitSamplingFamily,
    CrossPolytopeFamily,
    HyperplaneFamily,
    MinHashFamily,
    RandomProjectionFamily,
    make_family,
)

ALL_REAL_FAMILIES = [
    lambda: RandomProjectionFamily(16, 24, w=4.0, seed=3),
    lambda: CrossPolytopeFamily(16, 24, cp_dim=8, seed=3),
    lambda: HyperplaneFamily(16, 24, seed=3),
]


# ----------------------------------------------------------------------
# Generic family contracts
# ----------------------------------------------------------------------

@pytest.mark.parametrize("make", ALL_REAL_FAMILIES)
def test_hash_shapes_and_dtype(make, rng):
    fam = make()
    data = rng.normal(size=(50, 16))
    codes = fam.hash(data)
    assert codes.shape == (50, fam.m)
    assert codes.dtype == np.int64
    single = fam.hash(data[0])
    assert single.shape == (fam.m,)
    assert (single == codes[0]).all()


@pytest.mark.parametrize("make", ALL_REAL_FAMILIES)
def test_hash_deterministic_given_seed(make, rng):
    data = rng.normal(size=(20, 16))
    a = make().hash(data)
    b = make().hash(data)
    assert (a == b).all()


@pytest.mark.parametrize("make", ALL_REAL_FAMILIES)
def test_hash_rejects_wrong_dim(make, rng):
    fam = make()
    with pytest.raises(ValueError):
        fam.hash(rng.normal(size=(5, 7)))


@pytest.mark.parametrize("make", ALL_REAL_FAMILIES)
def test_alternatives_convention(make, rng):
    """Scores ascending, non-negative; alternative codes differ from chosen."""
    fam = make()
    q = rng.normal(size=16)
    codes, alts = fam.query_alternatives(q, max_alternatives=6)
    assert codes.shape == (fam.m,)
    assert len(alts) == fam.m
    for i, (alt_codes, alt_scores) in enumerate(alts):
        assert len(alt_codes) == len(alt_scores)
        assert (alt_scores >= -1e-12).all()
        assert (np.diff(alt_scores) >= -1e-12).all()
        assert all(c != codes[i] for c in alt_codes)


def test_invalid_constructor_args():
    with pytest.raises(ValueError):
        RandomProjectionFamily(0, 4)
    with pytest.raises(ValueError):
        RandomProjectionFamily(4, 0)
    with pytest.raises(ValueError):
        RandomProjectionFamily(4, 4, w=-1.0)
    with pytest.raises(ValueError):
        CrossPolytopeFamily(4, 4, cp_dim=0)


# ----------------------------------------------------------------------
# Random projection family (Eq. 1-2)
# ----------------------------------------------------------------------

def test_rp_collision_rate_matches_formula(rng):
    """Empirical per-function collision rate ~ Eq. 2 at the pair's distance."""
    fam = RandomProjectionFamily(8, 2000, w=4.0, seed=1)
    o = rng.normal(size=8)
    q = o + np.array([3.0] + [0.0] * 7)  # distance exactly 3
    ho, hq = fam.hash(o), fam.hash(q)
    emp = float((ho == hq).mean())
    assert fam.collision_probability(3.0) == pytest.approx(emp, abs=0.04)


def test_rp_close_pairs_collide_more(rng):
    fam = RandomProjectionFamily(8, 500, w=4.0, seed=2)
    base = rng.normal(size=8)
    near = base + 0.1
    far = base + 3.0
    collisions_near = (fam.hash(base) == fam.hash(near)).mean()
    collisions_far = (fam.hash(base) == fam.hash(far)).mean()
    assert collisions_near > collisions_far


def test_rp_project_matches_hash(rng):
    fam = RandomProjectionFamily(8, 16, w=4.0, seed=4)
    q = rng.normal(size=8)
    assert (np.floor(fam.project(q) / fam.w).astype(np.int64) == fam.hash(q)).all()


def test_rp_alternative_scores_are_boundary_distances(rng):
    fam = RandomProjectionFamily(8, 4, w=4.0, seed=5)
    q = rng.normal(size=8)
    raw = fam.project(q)
    codes, alts = fam.query_alternatives(q, max_alternatives=4)
    frac = raw - codes * fam.w
    for i in range(fam.m):
        alt_codes, alt_scores = alts[i]
        for c, s in zip(alt_codes, alt_scores):
            delta = c - codes[i]
            if delta > 0:
                expected = (delta * fam.w - frac[i]) ** 2
            else:
                expected = (frac[i] + (abs(delta) - 1) * fam.w) ** 2
            assert s == pytest.approx(expected)


# ----------------------------------------------------------------------
# Cross-polytope family (Eq. 3-4)
# ----------------------------------------------------------------------

def test_cp_codes_in_range(rng):
    fam = CrossPolytopeFamily(16, 32, cp_dim=8, seed=6)
    codes = fam.hash(rng.normal(size=(100, 16)))
    assert codes.min() >= 0
    assert codes.max() < 2 * fam.cp_dim


def test_cp_scale_invariance(rng):
    """Angular hashing must ignore vector magnitude."""
    fam = CrossPolytopeFamily(16, 32, cp_dim=8, seed=6)
    x = rng.normal(size=(20, 16))
    assert (fam.hash(x) == fam.hash(x * 7.5)).all()


def test_cp_zero_vector_raises():
    fam = CrossPolytopeFamily(4, 4, cp_dim=4, seed=0)
    with pytest.raises(ValueError):
        fam.hash(np.zeros((1, 4)))


def test_cp_close_pairs_collide_more(rng):
    fam = CrossPolytopeFamily(16, 600, cp_dim=8, seed=7)
    base = normalize_rows(rng.normal(size=16))
    near = normalize_rows(base + 0.1 * rng.normal(size=16))
    far = normalize_rows(rng.normal(size=16))
    c_near = (fam.hash(base) == fam.hash(near)).mean()
    c_far = (fam.hash(base) == fam.hash(far)).mean()
    assert c_near > c_far


def test_cp_chosen_vertex_is_best_scoring(rng):
    fam = CrossPolytopeFamily(12, 8, cp_dim=6, seed=8)
    q = rng.normal(size=12)
    codes, alts = fam.query_alternatives(q, max_alternatives=11)
    # With 2*cp_dim - 1 alternatives everything but the chosen one shows up.
    for i in range(fam.m):
        assert len(alts[i][0]) == 2 * fam.cp_dim - 1
        assert set(alts[i][0].tolist()) == (
            set(range(2 * fam.cp_dim)) - {int(codes[i])}
        )


# ----------------------------------------------------------------------
# Hyperplane family
# ----------------------------------------------------------------------

def test_hyperplane_collision_rate_matches_formula(rng):
    fam = HyperplaneFamily(8, 3000, seed=9)
    base = normalize_rows(rng.normal(size=8))
    other = normalize_rows(base + 0.7 * rng.normal(size=8))
    theta = angular(base, other)
    emp = float((fam.hash(base) == fam.hash(other)).mean())
    assert fam.collision_probability(theta) == pytest.approx(emp, abs=0.03)


def test_hyperplane_alternatives_flip_bits(rng):
    fam = HyperplaneFamily(8, 8, seed=10)
    q = rng.normal(size=8)
    codes, alts = fam.query_alternatives(q)
    for i in range(fam.m):
        assert alts[i][0].tolist() == [1 - codes[i]]


# ----------------------------------------------------------------------
# Bit sampling family
# ----------------------------------------------------------------------

def test_bit_sampling_collision_rate(rng):
    d = 64
    fam = BitSamplingFamily(d, 4000, seed=11)
    a = (rng.random(d) < 0.5).astype(np.int64)
    b = a.copy()
    flip = rng.choice(d, size=16, replace=False)
    b[flip] ^= 1
    dist = hamming(a, b)
    emp = float((fam.hash(a) == fam.hash(b)).mean())
    assert fam.collision_probability(dist) == pytest.approx(emp, abs=0.03)


def test_bit_sampling_alternatives_binary_only(rng):
    fam = BitSamplingFamily(8, 4, seed=12)
    q = np.array([0, 1, 0, 1, 1, 0, 0, 1])
    codes, alts = fam.query_alternatives(q)
    for i in range(4):
        assert alts[i][0][0] == 1 - codes[i]
    with pytest.raises(ValueError):
        fam.query_alternatives(np.arange(8))


# ----------------------------------------------------------------------
# MinHash family
# ----------------------------------------------------------------------

def test_minhash_collision_rate(rng):
    universe = 200
    fam = MinHashFamily(universe, 2000, seed=13)
    a = np.zeros(universe, dtype=np.int64)
    b = np.zeros(universe, dtype=np.int64)
    a[:40] = 1
    b[20:60] = 1  # Jaccard similarity 20/60 = 1/3
    dist = jaccard(a, b)
    emp = float((fam.hash(a) == fam.hash(b)).mean())
    assert fam.collision_probability(dist) == pytest.approx(emp, abs=0.03)


def test_minhash_empty_sets_collide():
    fam = MinHashFamily(50, 16, seed=14)
    empty = np.zeros((2, 50))
    codes = fam.hash(empty)
    assert (codes[0] == codes[1]).all()


def test_minhash_no_probing(rng):
    fam = MinHashFamily(50, 8, seed=15)
    assert not fam.supports_probing
    with pytest.raises(NotImplementedError):
        fam.query_alternatives(np.zeros(50))


# ----------------------------------------------------------------------
# Factory
# ----------------------------------------------------------------------

def test_make_family_dispatch():
    assert isinstance(make_family("euclidean", 8, 4), RandomProjectionFamily)
    assert isinstance(make_family("angular", 8, 4), CrossPolytopeFamily)
    assert isinstance(
        make_family("angular", 8, 4, angular_family="hyperplane"), HyperplaneFamily
    )
    assert isinstance(make_family("hamming", 8, 4), BitSamplingFamily)
    assert isinstance(make_family("jaccard", 8, 4), MinHashFamily)
    with pytest.raises(ValueError):
        make_family("cosine", 8, 4)
    with pytest.raises(ValueError):
        make_family("angular", 8, 4, angular_family="nope")


def test_family_size_bytes_positive():
    for make in ALL_REAL_FAMILIES:
        assert make().size_bytes() > 0

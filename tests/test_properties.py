"""Cross-cutting property-based tests (hypothesis) over the whole stack."""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import LCCSLSH
from repro.core import CircularShiftArray
from repro.eval import EvalResult, grid, overall_ratio, pareto_frontier, recall
from repro.hashes import (
    CrossPolytopeFamily,
    HyperplaneFamily,
    RandomProjectionFamily,
)


# ----------------------------------------------------------------------
# Pareto frontier properties
# ----------------------------------------------------------------------

def _result(recall_, time_):
    return EvalResult(
        method="x", k=10, recall=recall_, ratio=1.0,
        avg_query_time_ms=time_, build_time_s=0.0, index_size_mb=0.0,
    )


@given(
    st.lists(
        st.tuples(
            st.floats(0, 1, allow_nan=False),
            st.floats(0.001, 1000, allow_nan=False),
        ),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=60)
def test_pareto_frontier_properties(points):
    results = [_result(r, t) for r, t in points]
    frontier = pareto_frontier(results)
    # Non-empty subset of the input.
    assert frontier
    assert all(f in results for f in frontier)
    # No frontier point is dominated by any input point.
    for f in frontier:
        for other in results:
            dominated = (
                other.recall >= f.recall
                and other.avg_query_time_ms < f.avg_query_time_ms
            )
            assert not dominated
    # Sorted by recall, strictly increasing time along the frontier.
    recalls = [f.recall for f in frontier]
    times = [f.avg_query_time_ms for f in frontier]
    assert recalls == sorted(recalls)
    assert times == sorted(times)


# ----------------------------------------------------------------------
# grid properties
# ----------------------------------------------------------------------

@given(
    st.dictionaries(
        st.sampled_from(["a", "b", "c"]),
        st.lists(st.integers(0, 5), min_size=1, max_size=3),
        max_size=3,
    )
)
@settings(max_examples=40)
def test_grid_size_is_product(axes):
    combos = grid(**axes)
    expected = 1
    for vals in axes.values():
        expected *= len(vals)
    assert len(combos) == expected
    # every combo draws one value per axis
    for combo in combos:
        assert set(combo) == set(axes)
        for key, val in combo.items():
            assert val in axes[key]


# ----------------------------------------------------------------------
# recall / ratio metric properties
# ----------------------------------------------------------------------

@given(st.data())
@settings(max_examples=60)
def test_recall_bounds_and_monotonicity(data):
    true_ids = np.array(
        data.draw(
            st.lists(st.integers(0, 50), min_size=1, max_size=10, unique=True)
        )
    )
    returned = data.draw(st.lists(st.integers(0, 50), max_size=15))
    r = recall(np.array(returned, dtype=np.int64), true_ids)
    assert 0.0 <= r <= 1.0
    # Adding a guaranteed hit never lowers recall.
    boosted = recall(
        np.array(list(returned) + [int(true_ids[0])], dtype=np.int64),
        true_ids,
    )
    assert boosted >= r - 1e-12


@given(st.data())
@settings(max_examples=60)
def test_ratio_at_least_one_for_sorted_truth(data):
    k = data.draw(st.integers(1, 8))
    true = np.sort(
        np.array(
            data.draw(
                st.lists(
                    st.floats(0.01, 100, allow_nan=False),
                    min_size=k,
                    max_size=k,
                )
            )
        )
    )
    # Any method output is >= the exact distances element-wise once both
    # are sorted, so the overall ratio is >= 1.
    slack = np.sort(
        np.array(
            data.draw(
                st.lists(
                    st.floats(0.0, 10, allow_nan=False), min_size=k, max_size=k
                )
            )
        )
    )
    method = np.sort(true + slack)
    assert overall_ratio(method, true) >= 1.0 - 1e-9


# ----------------------------------------------------------------------
# Family pickling and determinism
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "make",
    [
        lambda: RandomProjectionFamily(12, 8, w=3.0, seed=5),
        lambda: CrossPolytopeFamily(12, 8, cp_dim=4, seed=5),
        lambda: HyperplaneFamily(12, 8, seed=5),
    ],
)
def test_family_pickle_roundtrip(make, rng):
    fam = make()
    clone = pickle.loads(pickle.dumps(fam))
    data = rng.normal(size=(20, 12))
    assert (fam.hash(data) == clone.hash(data)).all()


# ----------------------------------------------------------------------
# End-to-end result contract for LCCS-LSH on random inputs
# ----------------------------------------------------------------------

@given(st.data())
@settings(max_examples=15, deadline=None)
def test_lccs_lsh_query_contract(data):
    n = data.draw(st.integers(5, 60))
    d = data.draw(st.integers(2, 10))
    m = data.draw(st.sampled_from([4, 8, 16]))
    k = data.draw(st.integers(1, 5))
    seed = data.draw(st.integers(0, 100))
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(n, d))
    q = rng.normal(size=d)
    index = LCCSLSH(dim=d, m=m, w=2.0, seed=seed).fit(points)
    ids, dists = index.query(q, k=k, num_candidates=n)
    # ids valid and unique; distances sorted ascending and correct.
    assert len(ids) == min(k, n)
    assert len(set(ids.tolist())) == len(ids)
    assert (ids >= 0).all() and (ids < n).all()
    assert (np.diff(dists) >= -1e-12).all()
    true = np.linalg.norm(points[ids] - q, axis=1)
    assert np.allclose(dists, true)
    # With num_candidates = n the answer is exact.
    exact = np.sort(np.linalg.norm(points - q, axis=1))[: len(ids)]
    assert np.allclose(np.sort(dists), exact)


# ----------------------------------------------------------------------
# CSA invariants on adversarial inputs
# ----------------------------------------------------------------------

def test_csa_single_column_strings():
    strings = np.array([[3], [1], [2], [1]])
    csa = CircularShiftArray(strings)
    ids, lens = csa.k_lccs(np.array([1]), 4)
    assert sorted(lens.tolist(), reverse=True) == [1, 1, 0, 0]


def test_csa_negative_codes(rng):
    """Hash codes can be negative (floor of projections); order must hold."""
    strings = rng.integers(-50, 50, size=(40, 6))
    csa = CircularShiftArray(strings)
    from repro.core import brute_force_k_lccs, lccs_length

    q = rng.integers(-50, 50, size=6)
    ids, lens = csa.k_lccs(q, 10)
    oracle = brute_force_k_lccs(strings, q, 10)
    assert sorted(lens.tolist(), reverse=True) == sorted(
        (lccs_length(strings[i], q) for i in oracle), reverse=True
    )


def test_csa_extreme_magnitude_codes():
    strings = np.array(
        [
            [2**60, -(2**60), 0, 5],
            [2**60, -(2**60), 0, 5],
            [-(2**60), 2**60, 1, -5],
        ],
        dtype=np.int64,
    )
    csa = CircularShiftArray(strings)
    ids, lens = csa.k_lccs(np.array([2**60, -(2**60), 0, 5]), 3)
    assert lens[0] == 4 and lens[1] == 4 and lens[2] == 0

"""Tests for the beyond-paper extensions: l1 family, naive CSA ablation,
dynamic index, (R,c)-NNS interface, CLI."""

import numpy as np
import pytest

from repro import DynamicLCCSLSH, LCCSLSH, NaiveCSA
from repro.core import CircularShiftArray, brute_force_k_lccs, lccs_length
from repro.data import compute_ground_truth, gaussian_clusters, split_queries
from repro.distances import manhattan, pairwise
from repro.hashes import CauchyProjectionFamily, make_family
from repro.theory import cauchy_collision_probability

from tests.helpers import average_recall


# ----------------------------------------------------------------------
# Manhattan metric + Cauchy projection family
# ----------------------------------------------------------------------

def test_manhattan_matches_pairwise(rng):
    data = rng.normal(size=(30, 6))
    q = rng.normal(size=6)
    batch = pairwise(data, q, "manhattan")
    for i in range(30):
        assert batch[i] == pytest.approx(manhattan(data[i], q))


def test_cauchy_collision_formula_limits():
    assert cauchy_collision_probability(0.0, 4.0) == 1.0
    assert cauchy_collision_probability(1e9, 4.0) < 0.01
    probs = [cauchy_collision_probability(t, 4.0) for t in (0.5, 1, 2, 4, 8)]
    assert all(probs[i] > probs[i + 1] for i in range(len(probs) - 1))
    with pytest.raises(ValueError):
        cauchy_collision_probability(1.0, 0.0)


def test_cauchy_collision_monte_carlo(rng):
    """Per-function collision rate matches the closed form."""
    w, tau, d = 4.0, 3.0, 8
    fam = CauchyProjectionFamily(d, 4000, w=w, seed=1)
    o = np.zeros(d)
    q = np.zeros(d)
    q[0] = tau  # l1 distance exactly tau
    emp = float((fam.hash(o) == fam.hash(q)).mean())
    assert cauchy_collision_probability(tau, w) == pytest.approx(emp, abs=0.03)


def test_factory_builds_cauchy():
    fam = make_family("manhattan", 8, 4, w=2.0)
    assert isinstance(fam, CauchyProjectionFamily)
    assert fam.metric == "manhattan"


def test_lccs_lsh_end_to_end_manhattan(rng):
    raw = gaussian_clusters(800, 16, n_clusters=10, cluster_std=0.08, seed=41)
    data, queries = split_queries(raw, 15, seed=42)
    gt = compute_ground_truth(data, queries, k=10, metric="manhattan")
    w = 2.0 * float(np.mean(gt.distances))
    index = LCCSLSH(dim=16, m=32, metric="manhattan", w=w, seed=1).fit(data)
    rec = average_recall(index, queries, gt, k=10, num_candidates=120)
    assert rec >= 0.8


def test_cauchy_alternatives_convention(rng):
    fam = CauchyProjectionFamily(8, 6, w=4.0, seed=2)
    q = rng.normal(size=8)
    codes, alts = fam.query_alternatives(q, max_alternatives=4)
    for i in range(6):
        alt_codes, alt_scores = alts[i]
        assert (alt_scores >= 0).all()
        assert (np.diff(alt_scores) >= -1e-12).all()
        assert all(c != codes[i] for c in alt_codes)


# ----------------------------------------------------------------------
# Naive CSA (the paper's "simple method") — ablation correctness
# ----------------------------------------------------------------------

def test_naive_csa_matches_csa(rng):
    strings = rng.integers(0, 3, size=(60, 10))
    naive = NaiveCSA(strings)
    fast = CircularShiftArray(strings)
    for _ in range(15):
        q = rng.integers(0, 3, size=10)
        ids_n, lens_n = naive.k_lccs(q, 12)
        ids_f, lens_f = fast.k_lccs(q, 12)
        assert lens_n.tolist() == lens_f.tolist()
        # both must report true LCCS lengths
        for i, l in zip(ids_n, lens_n):
            assert lccs_length(strings[i], q) == l


def test_naive_csa_exact_vs_oracle(rng):
    strings = rng.integers(0, 4, size=(40, 8))
    naive = NaiveCSA(strings)
    q = rng.integers(0, 4, size=8)
    ids, lens = naive.k_lccs(q, 10)
    oracle = brute_force_k_lccs(strings, q, 10)
    want = sorted((lccs_length(strings[i], q) for i in oracle), reverse=True)
    assert sorted(lens.tolist(), reverse=True) == want


# ----------------------------------------------------------------------
# DynamicLCCSLSH
# ----------------------------------------------------------------------

@pytest.fixture()
def dyn_workload(rng):
    raw = gaussian_clusters(600, 12, n_clusters=8, cluster_std=0.08, seed=51)
    data, extra = split_queries(raw, 100, seed=52)
    return data, extra


def test_dynamic_insert_then_query_finds_new_point(dyn_workload):
    data, extra = dyn_workload
    index = DynamicLCCSLSH(dim=12, m=16, w=1.0, seed=1).fit(data)
    handle = index.insert(extra[0])
    ids, dists = index.query(extra[0], k=1, num_candidates=50)
    assert ids[0] == handle
    assert dists[0] == 0.0


def test_dynamic_delete_removes_point(dyn_workload):
    data, _ = dyn_workload
    index = DynamicLCCSLSH(dim=12, m=16, w=1.0, seed=1).fit(data)
    ids, _ = index.query(data[5], k=1, num_candidates=50)
    assert ids[0] == 5
    index.delete(5)
    ids, _ = index.query(data[5], k=3, num_candidates=50)
    assert 5 not in ids.tolist()
    with pytest.raises(KeyError):
        index.delete(5)
    with pytest.raises(KeyError):
        index.delete(10**6)


def test_dynamic_rebuild_triggers(dyn_workload):
    data, extra = dyn_workload
    index = DynamicLCCSLSH(
        dim=12, m=16, w=1.0, seed=1, rebuild_threshold=0.05
    ).fit(data)
    before = index.rebuilds
    for v in extra[:40]:
        index.insert(v)
    assert index.rebuilds > before
    assert index.buffer_size <= 0.05 * index.live_count + 1


def test_dynamic_handles_stable_across_rebuilds(dyn_workload):
    data, extra = dyn_workload
    index = DynamicLCCSLSH(
        dim=12, m=16, w=1.0, seed=1, rebuild_threshold=0.02
    ).fit(data)
    handles = [index.insert(v) for v in extra[:30]]  # forces rebuilds
    for h, v in zip(handles, extra[:30]):
        assert np.allclose(index.get_vector(h), v)
        ids, dists = index.query(v, k=1, num_candidates=80)
        assert ids[0] == h and dists[0] == 0.0


def test_dynamic_live_count_accounting(dyn_workload):
    data, extra = dyn_workload
    index = DynamicLCCSLSH(dim=12, m=16, w=1.0, seed=1).fit(data)
    n0 = index.live_count
    h = index.insert(extra[0])
    assert index.live_count == n0 + 1
    index.delete(h)
    assert index.live_count == n0


def test_dynamic_recall_after_churn(dyn_workload):
    """After heavy churn the index still answers accurately."""
    data, extra = dyn_workload
    index = DynamicLCCSLSH(
        dim=12, m=24, w=1.0, seed=1, rebuild_threshold=0.1
    ).fit(data)
    for v in extra[:50]:
        index.insert(v)
    for h in range(0, 50, 2):
        index.delete(h)
    all_live = np.vstack(
        [index.get_vector(h) for h in range(len(data) + 50)
         if h not in index._dead]
    )
    queries = extra[50:60]
    live_handles = [
        h for h in range(len(data) + 50) if h not in index._dead
    ]
    gt = compute_ground_truth(all_live, queries, k=5, metric="euclidean")
    hits = 0
    for i, q in enumerate(queries):
        ids, _ = index.query(q, k=5, num_candidates=100)
        true_handles = {live_handles[j] for j in gt.indices[i]}
        hits += len(true_handles & set(ids.tolist()))
    assert hits / (5 * len(queries)) >= 0.8


def test_dynamic_validation(dyn_workload):
    data, _ = dyn_workload
    with pytest.raises(ValueError):
        DynamicLCCSLSH(dim=12, rebuild_threshold=0.0)
    index = DynamicLCCSLSH(dim=12, m=16, w=1.0, seed=1)
    with pytest.raises(RuntimeError):
        index.insert(np.zeros(12))
    index.fit(data)
    with pytest.raises(ValueError):
        index.insert(np.zeros(5))


# ----------------------------------------------------------------------
# (R, c)-NNS decision interface (paper Definition 2.2 / Theorem 5.1)
# ----------------------------------------------------------------------

def test_query_rc_finds_near_point(clustered):
    data, queries, gt = clustered
    index = LCCSLSH(dim=24, m=32, w=1.0, seed=1).fit(data)
    # Radius chosen so the true NN is inside R for these queries.
    hits = 0
    for i, q in enumerate(queries):
        R = float(gt.distances[i, 0]) * 1.1
        out = index.query_rc(q, R=R, c=2.0)
        if out is not None:
            pid, dist = out
            assert dist <= 2.0 * R + 1e-9
            hits += 1
    # Theorem 5.1 guarantees >= 1/4; clustered data does far better.
    assert hits / len(queries) >= 0.5


def test_query_rc_returns_none_when_empty(clustered):
    data, queries, _ = clustered
    index = LCCSLSH(dim=24, m=32, w=1.0, seed=1).fit(data)
    # A query moved far away from everything: no point within cR.
    far_q = queries[0] + 100.0
    assert index.query_rc(far_q, R=0.01, c=2.0) is None


def test_query_rc_validation(clustered):
    data, queries, _ = clustered
    index = LCCSLSH(dim=24, m=16, w=1.0, seed=1).fit(data)
    with pytest.raises(ValueError):
        index.query_rc(queries[0], R=-1.0, c=2.0)
    with pytest.raises(ValueError):
        index.query_rc(queries[0], R=1.0, c=0.5)


def test_theoretical_candidates_monotone(clustered):
    data, _, _ = clustered
    index = LCCSLSH(dim=24, m=32, w=1.0, seed=1).fit(data)
    lam_tight = index.theoretical_candidates(R=0.2, c=4.0)
    lam_loose = index.theoretical_candidates(R=0.2, c=1.5)
    assert 1 <= lam_tight <= lam_loose <= index.n


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def test_cli_theory(capsys):
    from repro.cli import main

    assert main(["theory", "--m", "32", "--n", "1000", "--p1", "0.8", "--p2", "0.4"]) == 0
    out = capsys.readouterr().out
    assert "rho" in out and "lambda" in out


def test_cli_datasets(capsys):
    from repro.cli import main

    assert main(["datasets", "--n", "200", "--queries", "5"]) == 0
    out = capsys.readouterr().out
    for name in ("msong", "sift", "gist", "glove", "deep"):
        assert name in out


def test_cli_compare_small(capsys):
    from repro.cli import main

    rc = main(
        [
            "compare", "--dataset", "sift", "--n", "400", "--queries", "5",
            "--methods", "lccs,scan", "--k", "5",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "LCCS-LSH" in out and "LinearScan" in out


def test_cli_compare_rejects_unknown_method(capsys):
    from repro.cli import main

    rc = main(
        ["compare", "--dataset", "sift", "--n", "200", "--queries", "4",
         "--methods", "nonsense"]
    )
    assert rc == 2


def test_cli_compare_rejects_euclidean_only_methods_on_angular(capsys):
    from repro.cli import main

    rc = main(
        ["compare", "--dataset", "deep", "--n", "200", "--queries", "4",
         "--metric", "angular", "--methods", "qalsh"]
    )
    assert rc == 2


def test_cli_profile(capsys):
    from repro.cli import main

    rc = main(
        ["profile", "--dataset", "sift", "--n", "300", "--queries", "3",
         "--m", "8", "--candidates", "10", "30"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "hash(ms)" in out and "verify(ms)" in out


def test_dynamic_delete_everything_then_insert(dyn_workload):
    """Deleting every point must not crash rebuilds; inserts recover."""
    data, extra = dyn_workload
    index = DynamicLCCSLSH(
        dim=12, m=16, w=1.0, seed=1, rebuild_threshold=0.99
    ).fit(data[:5])
    for h in range(5):
        try:
            index.delete(h)
        except KeyError:
            pass
    ids, _ = index.query(extra[0], k=3, num_candidates=10)
    assert len(ids) == 0
    assert index.live_count == 0
    handle = index.insert(extra[0])
    ids, dists = index.query(extra[0], k=1, num_candidates=10)
    assert ids[0] == handle and dists[0] == 0.0

"""Tests for every baseline index (paper §6.3)."""

import numpy as np
import pytest

from repro.baselines import (
    C2LSH,
    E2LSH,
    FALCONN,
    LinearScan,
    MultiProbeLSH,
    QALSH,
    SRS,
)

from tests.helpers import average_recall


# ----------------------------------------------------------------------
# Linear scan (exactness oracle)
# ----------------------------------------------------------------------

def test_linear_scan_is_exact(clustered):
    data, queries, gt = clustered
    index = LinearScan(dim=24).fit(data)
    for i, q in enumerate(queries):
        ids, dists = index.query(q, k=10)
        assert ids.tolist() == gt.indices[i].tolist()
        assert np.allclose(dists, gt.distances[i])


def test_linear_scan_k_exceeds_n(rng):
    data = rng.normal(size=(5, 4))
    index = LinearScan(dim=4).fit(data)
    ids, dists = index.query(data[0], k=50)
    assert len(ids) == 5


# ----------------------------------------------------------------------
# E2LSH (static concatenating framework)
# ----------------------------------------------------------------------

def test_e2lsh_recall_reasonable(clustered):
    data, queries, gt = clustered
    index = E2LSH(dim=24, K=4, L=32, w=1.0, seed=1).fit(data)
    rec = average_recall(index, queries, gt, k=10)
    assert rec >= 0.6


def test_e2lsh_duplicate_always_found(clustered):
    data, _, _ = clustered
    index = E2LSH(dim=24, K=4, L=8, w=1.0, seed=2).fit(data)
    ids, dists = index.query(data[3], k=1)
    assert ids[0] == 3 and dists[0] == 0.0


def test_e2lsh_more_tables_monotone(clustered):
    data, queries, gt = clustered
    recalls = []
    for L in (2, 8, 32):
        index = E2LSH(dim=24, K=6, L=L, w=1.0, seed=3).fit(data)
        recalls.append(average_recall(index, queries, gt, k=10))
    assert recalls[0] <= recalls[-1] + 0.05  # allow sampling noise


def test_e2lsh_angular_adaptation(clustered_angular):
    """The paper adapts E2LSH to angular distance via cross-polytope."""
    data, queries, gt = clustered_angular
    index = E2LSH(
        dim=24, K=1, L=16, metric="angular", cp_dim=8, seed=4
    ).fit(data)
    rec = average_recall(index, queries, gt, k=10)
    assert rec >= 0.5


def test_e2lsh_validation():
    with pytest.raises(ValueError):
        E2LSH(dim=8, K=0, L=4)
    with pytest.raises(ValueError):
        E2LSH(dim=8, K=4, L=0)


def test_e2lsh_index_size_grows_with_L(clustered):
    data, _, _ = clustered
    small = E2LSH(dim=24, K=4, L=4, w=1.0, seed=5).fit(data)
    large = E2LSH(dim=24, K=4, L=32, w=1.0, seed=5).fit(data)
    assert large.index_size_bytes() > small.index_size_bytes()


# ----------------------------------------------------------------------
# Multi-Probe LSH
# ----------------------------------------------------------------------

def test_multiprobe_beats_home_buckets_at_same_tables(clustered):
    data, queries, gt = clustered
    mp = MultiProbeLSH(dim=24, K=6, L=4, w=1.0, n_probes=4, seed=6).fit(data)
    base = average_recall(mp, queries, gt, k=10, n_probes=4)
    probed = average_recall(mp, queries, gt, k=10, n_probes=64)
    assert probed > base


def test_multiprobe_probe_budget_respected(clustered):
    data, queries, _ = clustered
    mp = MultiProbeLSH(dim=24, K=4, L=4, w=1.0, n_probes=20, seed=7).fit(data)
    mp.query(queries[0], k=5)
    assert mp.last_stats["probes"] == 20


def test_multiprobe_validation():
    with pytest.raises(ValueError):
        MultiProbeLSH(dim=8, n_probes=0)


# ----------------------------------------------------------------------
# FALCONN-style
# ----------------------------------------------------------------------

def test_falconn_recall_on_angular(clustered_angular):
    data, queries, gt = clustered_angular
    index = FALCONN(
        dim=24, K=1, L=8, n_probes=32, cp_dim=8, seed=8
    ).fit(data)
    rec = average_recall(index, queries, gt, k=10)
    assert rec >= 0.7


def test_falconn_multiprobe_improves(clustered_angular):
    data, queries, gt = clustered_angular
    index = FALCONN(dim=24, K=2, L=4, n_probes=4, cp_dim=8, seed=9).fit(data)
    base = average_recall(index, queries, gt, k=10, n_probes=4)
    probed = average_recall(index, queries, gt, k=10, n_probes=64)
    assert probed >= base


# ----------------------------------------------------------------------
# C2LSH
# ----------------------------------------------------------------------

def test_c2lsh_recall(clustered):
    data, queries, gt = clustered
    index = C2LSH(dim=24, m=32, l=8, w=1.0, beta=0.05, seed=10).fit(data)
    rec = average_recall(index, queries, gt, k=10)
    assert rec >= 0.6


def test_c2lsh_counts_work(clustered):
    data, queries, _ = clustered
    index = C2LSH(dim=24, m=16, l=4, w=1.0, seed=11).fit(data)
    index.query(queries[0], k=5)
    assert index.last_stats["collision_countings"] >= len(data)
    assert index.last_stats["rounds"] >= 1


def test_c2lsh_threshold_validation():
    with pytest.raises(ValueError):
        C2LSH(dim=8, m=8, l=9)
    with pytest.raises(ValueError):
        C2LSH(dim=8, m=8, l=0)
    with pytest.raises(ValueError):
        C2LSH(dim=8, m=8, c=1.0)


# ----------------------------------------------------------------------
# QALSH
# ----------------------------------------------------------------------

def test_qalsh_recall(clustered):
    data, queries, gt = clustered
    index = QALSH(dim=24, m=32, l=8, w=1.0, beta=0.05, seed=12).fit(data)
    rec = average_recall(index, queries, gt, k=10)
    assert rec >= 0.6


def test_qalsh_window_sweep_is_bounded(clustered):
    data, queries, _ = clustered
    index = QALSH(dim=24, m=16, l=4, w=1.0, seed=13).fit(data)
    index.query(queries[0], k=5)
    # Every (function, object) pair is swept at most once.
    assert index.last_stats["collision_countings"] <= 16 * len(data)


def test_qalsh_validation():
    with pytest.raises(ValueError):
        QALSH(dim=8, m=8, l=0)
    with pytest.raises(ValueError):
        QALSH(dim=8, w=-1.0)


# ----------------------------------------------------------------------
# SRS
# ----------------------------------------------------------------------

def test_srs_recall(clustered):
    data, queries, gt = clustered
    index = SRS(dim=24, d_proj=8, c=1.5, max_fraction=0.2, seed=14).fit(data)
    rec = average_recall(index, queries, gt, k=10)
    assert rec >= 0.7


def test_srs_examines_bounded_candidates(clustered):
    data, queries, _ = clustered
    index = SRS(dim=24, d_proj=6, c=4.0, max_fraction=0.01, seed=15).fit(data)
    index.query(queries[0], k=5)
    assert index.last_stats["candidates"] <= max(5, int(0.01 * len(data)))


def test_srs_exact_duplicate_found(clustered):
    data, _, _ = clustered
    index = SRS(dim=24, d_proj=8, c=2.0, seed=16).fit(data)
    ids, dists = index.query(data[11], k=1)
    assert ids[0] == 11 and dists[0] == 0.0


def test_srs_validation():
    with pytest.raises(ValueError):
        SRS(dim=8, d_proj=0)
    with pytest.raises(ValueError):
        SRS(dim=8, c=0.5)
    with pytest.raises(ValueError):
        SRS(dim=8, p_tau=1.5)
    with pytest.raises(ValueError):
        SRS(dim=8, max_fraction=0.0)

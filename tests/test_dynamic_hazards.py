"""Regression tests for DynamicLCCSLSH rebuild/query interleaving hazards.

The concurrency stress suite surfaced two hazards in the original
implementation, both fixed by the epoch-state refactor
(:class:`repro.core.dynamic._DynState`):

1. **Non-atomic rebuild swap.**  ``_rebuild`` used to clear the pending
   buffer and tombstones and reassign the handle map *before* building
   the new CSA (a slow operation).  Any query observing the index
   mid-rebuild — a reentrant hook, a tracing callback, or an unlocked
   concurrent reader — saw buffered points vanish and handle
   translation mix epochs.  Now the new CSA is fully built first and
   the whole epoch is swapped with one attribute store.

2. **In-place clearing.**  The old code emptied the buffer list and the
   tombstone set in place, so a reader that had already grabbed a
   reference watched its own snapshot mutate to empty.  Now an epoch's
   buffer/dead containers are never cleared — rebuilds publish fresh
   ones — so a grabbed reference stays a consistent pre-rebuild view.

These tests reproduce each hazard deterministically (no threads, no
timing): a hook fires a query from *inside* the rebuild.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.dynamic as dynamic_module
from repro import DynamicLCCSLSH
from repro.core.lccs_lsh import LCCSLSH

DIM = 6


def _fitted(threshold=0.5) -> DynamicLCCSLSH:
    rng = np.random.default_rng(17)
    data = rng.normal(size=(40, DIM))
    return DynamicLCCSLSH(
        dim=DIM, m=8, w=4.0, seed=2, rebuild_threshold=threshold
    ).fit(data)


@pytest.fixture()
def rebuild_hook(monkeypatch):
    """Patch the LCCSLSH used by rebuilds so ``fit`` first runs a hook.

    The hook executes at the exact point the old code had already
    destroyed the buffer/tombstone bookkeeping — mid-rebuild, CSA not
    yet swapped in.
    """
    hooks = {"fn": None}

    class HookedLCCSLSH(LCCSLSH):
        def fit(self, data):
            if hooks["fn"] is not None:
                fn, hooks["fn"] = hooks["fn"], None  # fire once
                fn()
            return super().fit(data)

    monkeypatch.setattr(dynamic_module, "LCCSLSH", HookedLCCSLSH)
    return hooks


def test_mid_rebuild_query_still_sees_buffered_points(rebuild_hook):
    """A query interleaved with the rebuild must not lose buffer points.

    With the pre-fix ordering (buffer cleared before the CSA build) the
    buffered insert is invisible mid-rebuild and this query misses an
    exact-match point.
    """
    index = _fitted(threshold=0.5)
    special = np.full(DIM, 7.5)
    observed = {}

    def query_during_rebuild():
        ids, dists = index.query(special, k=1, num_candidates=40)
        observed["ids"], observed["dists"] = ids, dists

    rebuild_hook["fn"] = query_during_rebuild
    handle = index.insert(special)  # lands in the buffer
    # Push over the rebuild threshold; the hook queries mid-rebuild.
    rng = np.random.default_rng(3)
    while index.rebuilds < 2 and index.buffer_size < 40:
        index.insert(rng.normal(size=DIM))
    assert "ids" in observed, "rebuild hook never fired"
    assert observed["ids"][0] == handle, (
        "mid-rebuild query lost the buffered point"
    )
    assert observed["dists"][0] == 0.0


def test_mid_rebuild_query_does_not_mix_epochs(rebuild_hook):
    """Handle translation mid-rebuild must use one epoch's handle map.

    The pre-fix code reassigned ``_indexed_handles`` before building the
    CSA, so a mid-rebuild query translated *old* CSA positions through
    the *new* handle map — returning wrong ids entirely.  Fixed, the
    mid-rebuild answer is byte-identical to the answer just before the
    rebuild started.
    """
    index = _fitted(threshold=0.5)
    rng = np.random.default_rng(5)
    probe = rng.normal(size=DIM)
    inserted = [index.insert(rng.normal(size=DIM)) for _ in range(10)]
    index.delete(inserted[0])
    # Ground truth: the answer while the pre-rebuild epoch is current.
    want_ids, want_dists = index.query(probe, k=5, num_candidates=200)
    observed = {}

    def query_during_rebuild():
        ids, dists = index.query(probe, k=5, num_candidates=200)
        observed["ids"], observed["dists"] = ids, dists

    rebuild_hook["fn"] = query_during_rebuild
    index._rebuild()  # the hook queries mid-swap, deterministically
    assert "ids" in observed, "rebuild hook never fired"
    assert observed["ids"].tobytes() == want_ids.tobytes()
    assert observed["dists"].tobytes() == want_dists.tobytes()
    # and after the swap the same query still agrees (epoch change is
    # invisible to read results)
    after_ids, after_dists = index.query(probe, k=5, num_candidates=200)
    assert after_ids.tobytes() == want_ids.tobytes()
    np.testing.assert_allclose(after_dists, want_dists, rtol=1e-12)


def test_rebuild_publishes_fresh_epoch_objects():
    """Rebuilds must replace — never clear — the epoch containers."""
    index = _fitted(threshold=0.9)
    rng = np.random.default_rng(8)
    for _ in range(5):
        index.insert(rng.normal(size=DIM))
    index.delete(1)
    old_state = index._state
    old_buffer = old_state.buffer
    old_dead = old_state.dead
    buffered = list(old_buffer)
    index._rebuild()
    # a reader holding the old epoch still sees its full pre-rebuild view
    assert index._state is not old_state
    assert old_state.buffer is old_buffer and list(old_buffer) == buffered
    assert old_state.dead is old_dead and 1 in old_dead
    # and the new epoch starts clean, with the buffer absorbed
    assert index.buffer_size == 0
    assert index._state.dead == set()
    assert index.live_count == 40 + 5 - 1


def test_insert_publishes_row_before_handle():
    """The store row must be readable the moment the handle is visible."""
    index = _fitted(threshold=0.9)
    vec = np.full(DIM, 3.25)
    handle = index.insert(vec)
    assert handle in index._state.buffer
    assert np.array_equal(index.get_vector(handle), vec)


def test_dynamic_still_correct_after_many_epochs():
    """End-to-end sanity across several rebuilds (exact vs linear scan)."""
    rng = np.random.default_rng(30)
    data = rng.normal(size=(50, DIM))
    index = DynamicLCCSLSH(
        dim=DIM, m=8, w=4.0, seed=2, rebuild_threshold=0.1
    ).fit(data)
    rows = {i: data[i] for i in range(50)}
    for i in range(40):
        vector = rng.normal(size=DIM)
        rows[index.insert(vector)] = vector
        if i % 5 == 0:
            live = sorted(rows)
            victim = live[int(rng.integers(len(live)))]
            index.delete(victim)
            del rows[victim]
    assert index.rebuilds >= 3
    q = rng.normal(size=DIM)
    ids, dists = index.query(q, k=5, num_candidates=200)
    # exact reference over the mirrored live set
    handles = np.array(sorted(rows), dtype=np.int64)
    ref = np.array([np.linalg.norm(rows[h] - q) for h in handles])
    order = np.lexsort((handles, ref))[:5]
    assert np.array_equal(ids, handles[order])
    np.testing.assert_allclose(dists, ref[order], rtol=1e-12)


def test_delete_stale_handle_raises_after_rebuild():
    """Deleting a handle twice must raise even if a rebuild cleared the
    tombstone set in between (liveness, not just tombstones)."""
    rng = np.random.default_rng(40)
    index = DynamicLCCSLSH(
        dim=DIM, m=8, w=4.0, seed=2, rebuild_threshold=1.0
    ).fit(rng.normal(size=(10, DIM)))
    for handle in range(6):  # dead > indexed // 2 forces a rebuild
        index.delete(handle)
    assert index.rebuilds == 2  # fit + tombstone-triggered
    assert index._state.dead == set()
    before = index.live_count
    with pytest.raises(KeyError, match="already deleted"):
        index.delete(3)
    assert index.live_count == before  # no silent corruption
    index.delete(7)  # genuinely live handles still delete fine
    assert index.live_count == before - 1

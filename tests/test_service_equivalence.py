"""ANNService equivalence: micro-batching changes nothing but speed.

Every request through :class:`~repro.serve.service.ANNService` —
whether it executed alone, coalesced into a micro-batch with strangers,
duplicated within one batch, or served from the cache — must return
exactly what a direct ``batch_query`` (equivalently, per PR 1, a direct
``query``) on the unwrapped index returns: same ids, same distances,
same tie-breaks, byte for byte.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import DynamicLCCSLSH, IndexSpec, LCCSLSH, ShardedIndex
from repro.serve import ANNService

DIM = 10


def _data(n=400, seed=0):
    return np.random.default_rng(seed).normal(size=(n, DIM))


def _lccs(n=400) -> LCCSLSH:
    return LCCSLSH(dim=DIM, m=16, w=4.0, seed=4).fit(_data(n))


def _assert_rows_match(service_rows, direct_ids, direct_dists):
    """Service per-request results == padded direct batch rows."""
    for i, (ids, dists) in enumerate(service_rows):
        valid = direct_ids[i] >= 0
        want_ids, want_dists = direct_ids[i][valid], direct_dists[i][valid]
        assert ids.tobytes() == want_ids.tobytes(), f"ids diverge at row {i}"
        assert dists.tobytes() == want_dists.tobytes(), (
            f"distances diverge at row {i}"
        )


@pytest.mark.parametrize("k", [1, 5, 1000])  # 1000 > n: padded rows
def test_async_singles_equal_direct_batch(k):
    index = _lccs()
    queries = np.random.default_rng(1).normal(size=(40, DIM))
    direct_ids, direct_dists = index.batch_query(
        queries, k=k, num_candidates=60
    )
    with ANNService(
        index, cache_size=0, batch_window_ms=20.0, max_batch_size=40
    ) as service:
        futures = [
            service.query_async(q, k=k, num_candidates=60) for q in queries
        ]
        rows = [f.result() for f in futures]
        stats = service.stats()
    _assert_rows_match(rows, direct_ids, direct_dists)
    # the 40 requests must actually have coalesced (that's the point)
    assert stats["batches"] < len(queries)
    assert stats["largest_batch"] > 1
    assert stats["batched_queries"] == len(queries)


def test_duplicate_queries_in_one_batch():
    index = _lccs()
    rng = np.random.default_rng(2)
    base = rng.normal(size=(4, DIM))
    queries = np.vstack([base, base, base[::-1]])  # heavy duplication
    direct_ids, direct_dists = index.batch_query(
        queries, k=7, num_candidates=50
    )
    with ANNService(
        index, cache_size=0, batch_window_ms=20.0, max_batch_size=len(queries)
    ) as service:
        futures = [
            service.query_async(q, k=7, num_candidates=50) for q in queries
        ]
        rows = [f.result() for f in futures]
    _assert_rows_match(rows, direct_ids, direct_dists)


def test_mixed_k_requests_split_into_groups():
    """Different (k, kwargs) never share a batch, and all stay correct."""
    index = _lccs()
    rng = np.random.default_rng(3)
    queries = rng.normal(size=(12, DIM))
    ks = [3 if i % 2 == 0 else 8 for i in range(len(queries))]
    with ANNService(
        index, cache_size=0, batch_window_ms=10.0, max_batch_size=32
    ) as service:
        futures = [
            service.query_async(q, k=k, num_candidates=40)
            for q, k in zip(queries, ks)
        ]
        rows = [f.result() for f in futures]
    for q, k, (ids, dists) in zip(queries, ks, rows):
        want_ids, want_dists = index.query(q, k=k, num_candidates=40)
        assert ids.tobytes() == want_ids.tobytes()
        assert dists.tobytes() == want_dists.tobytes()


def test_threaded_clients_equal_direct_batch():
    """Blocking service.query from many client threads, byte-identical."""
    index = _lccs()
    queries = np.random.default_rng(4).normal(size=(32, DIM))
    direct_ids, direct_dists = index.batch_query(
        queries, k=5, num_candidates=60
    )
    with ANNService(
        index, cache_size=64, batch_window_ms=2.0, max_batch_size=16
    ) as service:
        with ThreadPoolExecutor(max_workers=8) as clients:
            rows = list(
                clients.map(
                    lambda q: service.query(q, k=5, num_candidates=60),
                    queries,
                )
            )
    _assert_rows_match(rows, direct_ids, direct_dists)


def test_service_batch_query_passthrough_is_byte_identical():
    index = _lccs()
    queries = np.random.default_rng(5).normal(size=(25, DIM))
    want_ids, want_dists = index.batch_query(queries, k=6, num_candidates=60)
    with ANNService(index, cache_size=128, batch_window_ms=0.0) as service:
        got_ids, got_dists = service.batch_query(
            queries, k=6, num_candidates=60
        )
        assert got_ids.tobytes() == want_ids.tobytes()
        assert got_dists.tobytes() == want_dists.tobytes()
        # rows were written into the cache: single queries now hit
        before = service.stats()["cache_hits"]
        ids, dists = service.query(queries[3], k=6, num_candidates=60)
        assert service.stats()["cache_hits"] == before + 1
        valid = want_ids[3] >= 0
        assert ids.tobytes() == want_ids[3][valid].tobytes()
        assert dists.tobytes() == want_dists[3][valid].tobytes()


def test_service_over_sharded_index():
    spec = IndexSpec("LCCSLSH", dim=DIM, m=16, w=4.0, seed=4)
    sharded = ShardedIndex(spec, num_shards=3, parallel="thread").fit(
        _data(300)
    )
    queries = np.random.default_rng(6).normal(size=(15, DIM))
    direct_ids, direct_dists = sharded.batch_query(
        queries, k=4, num_candidates=40
    )
    with ANNService(
        sharded, cache_size=32, batch_window_ms=10.0, max_batch_size=15
    ) as service:
        futures = [
            service.query_async(q, k=4, num_candidates=40) for q in queries
        ]
        rows = [f.result() for f in futures]
    _assert_rows_match(rows, direct_ids, direct_dists)
    sharded.close()


def test_service_validates_requests_and_closes():
    index = _lccs(100)
    service = ANNService(index, cache_size=4)
    with pytest.raises(ValueError, match="shape"):
        service.query(np.zeros(DIM + 1), k=1)
    with pytest.raises(ValueError, match="k"):
        service.query(np.zeros(DIM), k=0)
    service.close()
    service.close()  # idempotent
    with pytest.raises(RuntimeError, match="closed"):
        service.query(np.zeros(DIM), k=1)


def test_write_through_service_matches_dynamic_index():
    """Read-your-writes: service inserts/deletes behave like the index."""
    rng = np.random.default_rng(7)
    data = rng.normal(size=(80, DIM))
    served = DynamicLCCSLSH(dim=DIM, m=8, w=4.0, seed=1).fit(data)
    direct = DynamicLCCSLSH(dim=DIM, m=8, w=4.0, seed=1).fit(data)
    with ANNService(served, cache_size=16, batch_window_ms=0.0) as service:
        vec = rng.normal(size=DIM)
        assert service.insert(vec) == direct.insert(vec)
        service.delete(3)
        direct.delete(3)
        q = rng.normal(size=DIM)
        got = service.query(q, k=6, num_candidates=40)
        want = direct.query(q, k=6, num_candidates=40)
        assert got[0].tobytes() == want[0].tobytes()
        assert got[1].tobytes() == want[1].tobytes()


def test_evaluate_service_matches_evaluate_accuracy(clustered):
    """Harness integration: served evaluation scores like the direct one."""
    from repro.eval import evaluate, evaluate_service

    data, queries, gt = clustered
    index = LCCSLSH(dim=data.shape[1], m=16, w=4.0, seed=3).fit(data)
    direct = evaluate(
        index, data, queries, gt, k=10,
        query_kwargs={"num_candidates": 200},
    )
    served = evaluate_service(
        index, data, queries, gt, k=10,
        query_kwargs={"num_candidates": 200},
        threads=2, cache_size=64, batch_window_ms=1.0,
    )
    # identical results => identical accuracy metrics
    assert served.recall == direct.recall
    assert served.ratio == direct.ratio
    assert served.method.endswith("+service")
    assert served.qps > 0
    assert served.stats["reads"] >= 1
    assert served.params["threads"] == 2


def test_cancelled_future_does_not_kill_the_executor():
    """A caller cancelling its future must not take the service down."""
    index = _lccs(100)
    q = np.random.default_rng(8).normal(size=DIM)
    with ANNService(index, cache_size=0, batch_window_ms=50.0) as service:
        fut = service.query_async(q, k=3, num_candidates=40)
        assert fut.cancel()  # still queued inside the batch window
        # the executor must survive and keep answering
        ids, dists = service.query(q, k=3, num_candidates=40)
        want_ids, want_dists = index.query(q, k=3, num_candidates=40)
        assert ids.tobytes() == want_ids.tobytes()
        assert dists.tobytes() == want_dists.tobytes()
        assert service._executor.is_alive()

"""LSM-tiered DynamicLCCSLSH: seals, fan-out equivalence, compaction.

Acceptance contract of the tiered design: no matter how inserts,
deletes, seals, and compactions interleave, a saturated query against
the tiered index is **byte-identical** to the same query against a
freshly rebuilt single-CSA index over the same live set — segment
membership must never show through.  On top of that, the write-path
fixes are pinned here: O(1) memtable-delete membership and
liveness-checked ``get_vector``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DynamicLCCSLSH
from repro.core.segments import CompactionManager, Segment, merge_segments

DIM = 6


def _mk(**kwargs) -> DynamicLCCSLSH:
    kwargs.setdefault("dim", DIM)
    kwargs.setdefault("m", 8)
    kwargs.setdefault("w", 4.0)
    kwargs.setdefault("seed", 2)
    return DynamicLCCSLSH(**kwargs)


def _fitted(n=30, seed=7, **kwargs):
    rng = np.random.default_rng(seed)
    return _mk(**kwargs).fit(rng.normal(size=(n, DIM))), rng


def _assert_same_answers(a, b, queries, k=5):
    cap = max(a.n, b.n, 1)
    for q in queries:
        ids_a, dists_a = a.query(q, k=k, num_candidates=cap)
        ids_b, dists_b = b.query(q, k=k, num_candidates=cap)
        assert ids_a.tobytes() == ids_b.tobytes()
        assert dists_a.tobytes() == dists_b.tobytes()
    bids_a, bdists_a = a.batch_query(queries, k=k, num_candidates=cap)
    bids_b, bdists_b = b.batch_query(queries, k=k, num_candidates=cap)
    assert bids_a.tobytes() == bids_b.tobytes()
    assert bdists_a.tobytes() == bdists_b.tobytes()


# ----------------------------------------------------------------------
# Tier mechanics
# ----------------------------------------------------------------------

def test_memtable_seals_into_segments():
    index, rng = _fitted(20, memtable_size=10, max_segments=100)
    assert index.segment_count == 1  # fit builds the base segment
    for v in rng.normal(size=(35, DIM)):
        index.insert(v)
    # 35 inserts with a 10-row memtable: three seals, five left pending.
    assert index.segment_count == 4
    assert index.seals == 3
    assert index.buffer_size == 5
    stats = index.tier_stats()
    assert stats["segments"] == 4
    assert stats["segment_rows"] == [20, 10, 10, 10]
    assert stats["memtable"] == 5


def test_inline_compaction_caps_segment_count():
    index, rng = _fitted(10, memtable_size=5, max_segments=2)
    for v in rng.normal(size=(80, DIM)):
        index.insert(v)
        assert index.segment_count <= 3  # cap + the segment being sealed
    assert index.compactions >= 1
    assert index.live_count == 90


def test_rebuild_mode_reproduces_legacy_single_segment():
    index, rng = _fitted(10, memtable_size=5, compaction="rebuild")
    for v in rng.normal(size=(40, DIM)):
        index.insert(v)
        assert index.segment_count <= 1
    assert index.compactions == 0  # never merges — it only full-rebuilds


def test_seal_drops_tombstoned_memtable_rows():
    index, rng = _fitted(20, memtable_size=100)
    handles = [index.insert(v) for v in rng.normal(size=(6, DIM))]
    index.delete(handles[2])
    before = index.live_count
    index.flush()
    assert index.buffer_size == 0
    assert index.live_count == before
    # The dead memtable row never reached a segment, so its tombstone is
    # gone too — but the handle still reads as deleted.
    assert handles[2] not in index._dead
    with pytest.raises(KeyError):
        index.delete(handles[2])
    with pytest.raises(KeyError):
        index.get_vector(handles[2])


def test_compact_merges_and_drops_segment_tombstones():
    index, rng = _fitted(20, memtable_size=5, max_segments=100)
    for v in rng.normal(size=(20, DIM)):
        index.insert(v)
    index.delete(3)       # fitted row, lives in segment 0
    index.delete(21)      # sealed insert
    assert index.segment_count > 1 and len(index._dead) == 2
    assert index.compact() is True
    assert index.segment_count == 1
    assert index._dead == set()  # dropped rows take their tombstones along
    with pytest.raises(KeyError):
        index.get_vector(3)
    assert index.live_count == 38


# ----------------------------------------------------------------------
# Fan-out equivalence (the headline property)
# ----------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_fanout_byte_identical_to_rebuilt_index(data):
    """Arbitrary insert/delete/seal/compact interleavings: saturated
    queries equal a freshly rebuilt single-CSA index byte-for-byte."""
    rng = np.random.default_rng(3)
    base = rng.normal(size=(12, DIM))
    tiered = _mk(memtable_size=5, max_segments=2).fit(base)
    # The reference shares the op order (handles must line up) but never
    # seals; one final _rebuild() makes it a single fresh CSA.
    reference = _mk(memtable_size=10**9).fit(base)
    live = set(range(12))
    next_handle = 12
    n_ops = data.draw(st.integers(min_value=10, max_value=40), label="n_ops")
    for i in range(n_ops):
        choice = data.draw(
            st.sampled_from(
                ["insert", "insert", "insert", "delete", "flush", "compact"]
            ),
            label=f"op{i}",
        )
        if choice == "delete" and live:
            handle = data.draw(
                st.sampled_from(sorted(live)), label=f"target{i}"
            )
            tiered.delete(handle)
            reference.delete(handle)
            live.discard(handle)
        elif choice == "flush":
            tiered.flush()
        elif choice == "compact":
            tiered.compact()
        else:
            vec = rng.normal(size=DIM)
            assert tiered.insert(vec) == reference.insert(vec) == next_handle
            live.add(next_handle)
            next_handle += 1
    reference._rebuild()
    _assert_same_answers(tiered, reference, rng.normal(size=(4, DIM)))


# ----------------------------------------------------------------------
# Background compaction
# ----------------------------------------------------------------------

def test_background_compaction_commits_and_matches_rebuilt():
    index, rng = _fitted(
        10, memtable_size=6, max_segments=2, compaction="background"
    )
    reference = _mk(memtable_size=10**9).fit(
        np.random.default_rng(7).normal(size=(10, DIM))
    )
    for v in rng.normal(size=(60, DIM)):
        index.insert(v)
        reference.insert(v)
    for _ in range(6):  # each drain commits at most one merged build
        if index.segment_count <= index.max_segments:
            break
        index.drain_compaction(timeout=30.0)
    assert index.compactions >= 1
    assert not index._compactor.busy
    reference._rebuild()
    _assert_same_answers(index, reference, rng.normal(size=(4, DIM)))


def test_stale_background_build_is_discarded():
    index, rng = _fitted(
        10, memtable_size=4, max_segments=1, compaction="background"
    )
    while not index._compactor.busy:
        index.insert(rng.normal(size=DIM))
    before = index.compactions
    index._rebuild()  # full GC rebuild replaces the build's input segments
    index._compactor.drain(timeout=30.0)
    index._commit_ready()
    assert index.compactions == before  # stale result dropped, not merged
    assert index.segment_count == 1


def test_compaction_manager_single_slot():
    manager = CompactionManager()
    assert manager.take_ready() is None
    started = manager.schedule(lambda: merge_segments([], set(), lambda h: None))
    assert started
    manager.drain(timeout=10.0)
    assert manager.busy  # finished but uncommitted still occupies the slot
    assert manager.schedule(lambda: None) is False
    result = manager.take_ready()
    assert result is not None and result.segment is None
    assert not manager.busy


def test_background_build_error_is_contained():
    manager = CompactionManager()

    def boom():
        raise RuntimeError("build exploded")

    manager.schedule(boom)
    manager.drain(timeout=10.0)
    with pytest.raises(RuntimeError, match="build exploded"):
        manager.take_ready()
    assert not manager.busy  # slot freed for the next attempt


# ----------------------------------------------------------------------
# merge_segments unit behavior
# ----------------------------------------------------------------------

def test_merge_segments_drops_dead_and_reports_them():
    seg_a = Segment(None, np.array([0, 2, 4], dtype=np.int64))
    seg_b = Segment(None, np.array([5, 7], dtype=np.int64))
    built = {}

    def build(handles):
        built["handles"] = handles.copy()
        return Segment(None, handles)

    result = merge_segments([seg_a, seg_b], {2, 7, 99}, build)
    assert result.dropped == [2, 7]
    assert built["handles"].tolist() == [0, 4, 5]
    assert result.inputs == (seg_a, seg_b)

    emptied = merge_segments([seg_a], {0, 2, 4}, build)
    assert emptied.segment is None
    assert emptied.dropped == [0, 2, 4]


# ----------------------------------------------------------------------
# Write-path bugfixes
# ----------------------------------------------------------------------

def test_delete_storm_is_not_quadratic_in_memtable():
    """Regression: delete did a linear `handle in buffer-list` scan, so a
    delete storm against a large memtable was quadratic (~100M list
    probes for this workload — seconds); the membership set makes each
    delete O(1) (+ a binary search per segment)."""
    rng = np.random.default_rng(0)
    dim = 4
    index = DynamicLCCSLSH(
        dim=dim, m=8, w=4.0, seed=1, memtable_size=10**9
    ).fit(rng.normal(size=(5000, dim)))
    for v in rng.normal(size=(50_000, dim)):
        index.insert(v)
    assert index.buffer_size == 50_000
    targets = rng.choice(
        np.arange(5000, 55_000), size=2000, replace=False
    )
    start = time.perf_counter()
    for h in targets:
        index.delete(int(h))
    elapsed = time.perf_counter() - start
    assert index.buffer_size == 50_000  # no seal/GC absorbed the storm
    assert elapsed < 2.0, f"delete storm took {elapsed:.2f}s"


def test_get_vector_raises_for_tombstoned_handles():
    index, rng = _fitted(20, memtable_size=100)
    vec = rng.normal(size=DIM)
    handle = index.insert(vec)
    assert np.array_equal(index.get_vector(handle), vec)
    index.delete(handle)
    with pytest.raises(KeyError):
        index.get_vector(handle)  # memtable tombstone
    index.delete(3)
    with pytest.raises(KeyError):
        index.get_vector(3)  # segment tombstone
    assert index.get_vector(4) is not None  # neighbors stay resolvable
    index.flush()
    index.compact()
    with pytest.raises(KeyError):
        index.get_vector(handle)  # fully dropped after compaction
    with pytest.raises(KeyError):
        index.get_vector(3)


# ----------------------------------------------------------------------
# Persistence and serving integration
# ----------------------------------------------------------------------

@pytest.mark.parametrize("mmap", [False, True])
def test_segmented_bundle_roundtrip(tmp_path, mmap):
    from repro.serve import load_index, save_index

    index, rng = _fitted(20, memtable_size=5, max_segments=100)
    for v in rng.normal(size=(17, DIM)):
        index.insert(v)
    index.delete(2)
    index.delete(23)
    assert index.segment_count >= 3 and index.buffer_size > 0
    save_index(index, str(tmp_path / "bundle"))
    loaded = load_index(str(tmp_path / "bundle"), mmap=mmap)
    assert loaded.segment_count == index.segment_count
    assert loaded.buffer_size == index.buffer_size
    assert loaded._dead == index._dead
    assert loaded.seals == index.seals
    assert loaded.compactions == index.compactions
    _assert_same_answers(index, loaded, rng.normal(size=(4, DIM)))
    # Loaded copies stay mutable: inserts promote copy-on-write.
    handle = loaded.insert(rng.normal(size=DIM))
    assert loaded.get_vector(handle) is not None


def test_service_stats_surface_tier_shape():
    from repro.serve import ANNService

    index, rng = _fitted(20, memtable_size=5, max_segments=100)
    service = ANNService(index, batch_window_ms=0.0)
    try:
        for v in rng.normal(size=(12, DIM)):
            service.insert(v)
        stats = service.stats()
        assert stats["tier_segments"] == index.segment_count
        assert stats["tier_memtable"] == index.buffer_size
        assert stats["tier_seals"] == index.seals
        assert stats["tier_compaction"] == "inline"
    finally:
        service.close()

"""Structural WAL records (seal/compact) and crash-exact LSM recovery.

PR-6 proved crash recovery byte-exact for data ops (fit/insert/delete).
The LSM tiering adds *structural* ops — ``seal`` (memtable flush) and
``compact`` (segment merge) — and this module extends the same
contract over them: truncate the log at **any byte**, recover, and the
index must answer byte-identically to a serial replay of the surviving
record prefix, with the same tier shape.  Replicas tailing the log
must track the primary's segment layout through compactions.
"""

from __future__ import annotations

import os
import shutil
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DynamicLCCSLSH, IndexSpec
from repro.serve import DurableIndex, WALError, recover
from repro.serve.durability.replica import ReplicaSet
from repro.serve.durability.wal import (
    OP_COMPACT,
    OP_SEAL,
    PAYLOAD,
    Op,
    apply_op,
    decode_payload,
    encode_record,
    iter_ops,
    list_segments,
)

DIM = 8
SPEC = IndexSpec(
    "DynamicLCCSLSH",
    dim=DIM,
    m=8,
    w=4.0,
    seed=7,
    memtable_size=6,
    max_segments=2,
)


def make_lsm_ops(n_fit: int = 15, n_updates: int = 40, seed: int = 5):
    """Mixed workload whose log contains seal and compact records."""
    rng = np.random.default_rng(seed)
    ops = [("fit", rng.normal(size=(n_fit, DIM)))]
    next_handle = n_fit
    for i in range(n_updates):
        r = i % 7
        if r in (0, 1, 2, 3):
            ops.append(("insert", rng.normal(size=DIM)))
            next_handle += 1
        elif r == 4:
            ops.append(("delete", (5 * i) % next_handle))
        elif r == 5:
            ops.append(("flush", None))
        else:
            ops.append(("compact", None))
    return ops


def drive(di, ops):
    """Apply workload tuples through a DurableIndex; returns ack offsets."""
    offsets = []
    for kind, payload in ops:
        if kind == "fit":
            di.fit(payload)
        elif kind == "insert":
            di.insert(payload)
        elif kind == "delete":
            try:
                di.delete(payload)
            except KeyError:
                pass  # double delete: logged, replays as a no-op
        elif kind == "flush":
            di.flush()
        else:
            di.compact()
        offsets.append(di.wal.tail_offset)
    return offsets


def queries_for(n: int = 5, seed: int = 11):
    return np.random.default_rng(seed).normal(size=(n, DIM))


def assert_identical_answers(a, b, queries, k=5):
    for q in queries:
        cap = max(a.n, b.n, 1)
        ids_a, dists_a = a.query(q, k=k, num_candidates=cap)
        ids_b, dists_b = b.query(q, k=k, num_candidates=cap)
        assert ids_a.tobytes() == ids_b.tobytes()
        assert dists_a.tobytes() == dists_b.tobytes()


def assert_same_tier_shape(a, b):
    sa, sb = a.tier_stats(), b.tier_stats()
    for key in ("segments", "segment_rows", "memtable", "tombstones"):
        assert sa[key] == sb[key], f"tier_stats[{key}]: {sa[key]} != {sb[key]}"


# ----------------------------------------------------------------------
# Record format
# ----------------------------------------------------------------------

def test_structural_record_roundtrip():
    for seq, op in [
        (3, Op.seal(1234)),
        (9, Op.compact(2, [1, 5, 42])),
        (10, Op.compact(1, [])),
    ]:
        record = encode_record(op, seq)
        got_seq, got = decode_payload(record[8:])
        assert got_seq == seq
        assert got.kind == op.kind
        assert got.payload == op.payload


def test_malformed_structural_bodies_raise():
    def payload(code, body):
        return PAYLOAD.pack(code, 0) + body

    with pytest.raises(WALError, match="seal"):
        decode_payload(payload(OP_SEAL, b"\x00" * 7))  # short boundary
    with pytest.raises(WALError, match="compact"):
        decode_payload(payload(OP_COMPACT, b"\x00" * 11))  # short header
    with pytest.raises(WALError, match="compact"):
        # header claims 3 dropped handles, body carries only 2
        body = struct.pack("<IQ", 1, 3) + b"\x00" * 16
        decode_payload(payload(OP_COMPACT, body))


def test_apply_op_structural_requires_lsm_hooks():
    class Plain:
        def insert(self, v):
            return 0

    with pytest.raises(WALError, match="seal"):
        apply_op(Plain(), Op.seal(10))
    with pytest.raises(WALError, match="compact"):
        apply_op(Plain(), Op.compact(1, []))


def test_durable_flush_requires_index_support(tmp_path):
    from repro.baselines import LinearScan

    di = DurableIndex(LinearScan(dim=DIM), str(tmp_path / "wal"))
    with pytest.raises(TypeError):
        di.flush()
    with pytest.raises(TypeError):
        di.compact()
    assert di.drain_compaction() is False


# ----------------------------------------------------------------------
# Recovery across structural records
# ----------------------------------------------------------------------

def test_recover_replays_structural_ops_byte_identically(tmp_path):
    wal_dir = str(tmp_path / "wal")
    ops = make_lsm_ops()
    di = DurableIndex(SPEC.build(), wal_dir, spec=SPEC)
    drive(di, ops)
    di.wal.sync()
    result = recover(wal_dir)
    assert result.applied_seq == di.applied_seq
    assert_same_tier_shape(result.index, di.inner)
    assert_identical_answers(result.index, di.inner, queries_for())


def test_recover_from_snapshot_mid_compaction_history(tmp_path):
    wal_dir = str(tmp_path / "wal")
    from repro.serve import SnapshotManager

    di = DurableIndex(
        SPEC.build(),
        wal_dir,
        spec=SPEC,
        snapshots=SnapshotManager(wal_dir, every_ops=11),
    )
    drive(di, make_lsm_ops())
    di.wal.sync()
    result = recover(wal_dir)
    assert result.snapshot_seq is not None  # snapshot + suffix, not full log
    assert_same_tier_shape(result.index, di.inner)
    assert_identical_answers(result.index, di.inner, queries_for())


@settings(max_examples=20, deadline=None)
@given(cut=st.integers(min_value=0, max_value=10**9), data=st.data())
def test_truncate_anywhere_recovers_acknowledged_prefix(tmp_path_factory, cut, data):
    """Crash at any byte of a log holding seal/compact records: recovery
    equals a serial replay of the records that survived whole."""
    base = tmp_path_factory.mktemp("lsm-crash")
    wal_dir = os.path.join(str(base), "wal")
    di = DurableIndex(SPEC.build(), wal_dir, spec=SPEC)
    drive(di, make_lsm_ops(n_updates=25))
    di.close()
    segments = list_segments(wal_dir)
    assert segments
    target = segments[-1][1]
    offset = cut % (os.path.getsize(target) + 1)
    torn = os.path.join(str(base), "torn")
    shutil.copytree(wal_dir, torn)
    with open(os.path.join(torn, os.path.basename(target)), "r+b") as f:
        f.truncate(offset)

    recovered = recover(torn).index
    reference = SPEC.build()
    for _, op in iter_ops(torn):
        reference.apply_op((op.kind, op.payload))
    assert recovered.is_fitted == reference.is_fitted
    if not reference.is_fitted:  # cut fell before the fit record survived
        return
    assert_same_tier_shape(recovered, reference)
    assert_identical_answers(recovered, reference, queries_for(3))


# ----------------------------------------------------------------------
# Replication across compactions
# ----------------------------------------------------------------------

def test_replicas_track_tier_shape_through_compactions(tmp_path):
    rng = np.random.default_rng(3)
    wal_dir = str(tmp_path / "wal")
    primary = DurableIndex(SPEC.build(), wal_dir, spec=SPEC)
    primary.fit(rng.normal(size=(15, DIM)))
    with ReplicaSet(primary, num_replicas=2) as rs:
        seq = 0
        for i, v in enumerate(rng.normal(size=(30, DIM))):
            _, seq = rs.insert(v)
            if i % 9 == 8:
                primary.flush()
                primary.compact()
                seq = primary.applied_seq
        primary.wal.sync()
        assert primary.inner.compactions >= 1
        rs.catch_up_all()
        queries = queries_for(4)
        for replica in rs.replicas:
            assert_same_tier_shape(replica.index, primary.inner)
            assert_identical_answers(replica.index, primary.inner, queries)
        # read-your-writes through the round-robin front door
        cap = max(primary.inner.n, 1)
        for q in queries:
            ids, dists = rs.query(q, k=5, min_version=seq, num_candidates=cap)
            pids, pdists = primary.inner.query(q, k=5, num_candidates=cap)
            assert ids.tobytes() == pids.tobytes()
            assert dists.tobytes() == pdists.tobytes()


def test_background_compaction_is_logged_before_visible(tmp_path):
    """A background merge commits only after its compact record is
    logged, so a replica tailing the WAL can always reproduce it."""
    spec = IndexSpec(
        "DynamicLCCSLSH",
        dim=DIM,
        m=8,
        w=4.0,
        seed=7,
        memtable_size=6,
        max_segments=2,
        compaction="background",
    )
    rng = np.random.default_rng(4)
    wal_dir = str(tmp_path / "wal")
    primary = DurableIndex(spec.build(), wal_dir, spec=spec)
    primary.fit(rng.normal(size=(12, DIM)))
    for v in rng.normal(size=(50, DIM)):
        primary.insert(v)
    for _ in range(6):
        if not primary.drain_compaction(timeout=30.0):
            break
    assert primary.inner.compactions >= 1
    primary.wal.sync()
    recovered = recover(wal_dir).index
    assert_same_tier_shape(recovered, primary.inner)
    assert_identical_answers(recovered, primary.inner, queries_for())

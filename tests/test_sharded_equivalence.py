"""Sharded-vs-unsharded equivalence: the contract every refactor keeps.

A ``ShardedIndex`` must return **byte-identical** ``(ids, distances)``
to the index it wraps whenever the per-shard queries are exact — which
the suite arranges by saturating ``num_candidates`` (every point becomes
a candidate, so both sides reduce to verified exact top-k under the
canonical ``(distance, id)`` tie-order).  Covered: S in {1, 2, 7},
single and batch query paths, k larger than any shard, duplicate rows
spread across shards, dynamic insert/delete routing, persistence of a
sharded index, and parallel (process-pool) builds matching serial ones.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import LinearScan
from repro.serve import IndexSpec, ShardedIndex, load_index, save_index

DIM = 16
SHARD_COUNTS = (1, 2, 7)

SPECS = {
    "scan": IndexSpec("LinearScan", dim=DIM, seed=0),
    "lccs": IndexSpec("LCCSLSH", dim=DIM, m=16, w=2.0, seed=5),
    "mp-lccs": IndexSpec("MPLCCSLSH", dim=DIM, m=16, w=2.0, seed=5, n_probes=9),
    "dynamic": IndexSpec("DynamicLCCSLSH", dim=DIM, m=16, w=2.0, seed=5),
}


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(42)
    data = rng.normal(size=(260, DIM))
    queries = rng.normal(size=(9, DIM))
    return data, queries


def _saturated(spec_name: str, n: int) -> dict:
    """Query kwargs that make every point a candidate (exact search)."""
    return {} if spec_name == "scan" else {"num_candidates": n}


def _assert_identical(a, b):
    a_ids, a_dists = a
    b_ids, b_dists = b
    assert a_ids.tolist() == b_ids.tolist()
    # tolist() compares exact float values: byte-identical, not approx
    assert a_dists.tolist() == b_dists.tolist()


@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
@pytest.mark.parametrize("spec_name", ["scan", "lccs", "mp-lccs"])
def test_single_query_equivalence(spec_name, num_shards, workload):
    data, queries = workload
    spec = SPECS[spec_name]
    base = spec.build().fit(data)
    sharded = ShardedIndex(spec, num_shards=num_shards, parallel="serial").fit(data)
    kwargs = _saturated(spec_name, len(data))
    for q in queries:
        _assert_identical(
            base.query(q, k=10, **kwargs), sharded.query(q, k=10, **kwargs)
        )


@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
@pytest.mark.parametrize("spec_name", ["scan", "lccs", "mp-lccs"])
def test_batch_query_equivalence(spec_name, num_shards, workload):
    data, queries = workload
    spec = SPECS[spec_name]
    base = spec.build().fit(data)
    sharded = ShardedIndex(spec, num_shards=num_shards, parallel="serial").fit(data)
    kwargs = _saturated(spec_name, len(data))
    want_ids, want_dists = base.batch_query(queries, k=10, **kwargs)
    got_ids, got_dists = sharded.batch_query(queries, k=10, **kwargs)
    assert np.array_equal(want_ids, got_ids)
    assert want_dists.tolist() == got_dists.tolist()


@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
def test_batch_matches_single_on_sharded(num_shards, workload):
    """The sharded index honours PR 1's batch == single contract itself."""
    data, queries = workload
    sharded = ShardedIndex(
        SPECS["lccs"], num_shards=num_shards, parallel="serial"
    ).fit(data)
    ids_mat, dists_mat = sharded.batch_query(
        queries, k=10, num_candidates=len(data)
    )
    for i, q in enumerate(queries):
        ids, dists = sharded.query(q, k=10, num_candidates=len(data))
        valid = ids_mat[i] >= 0
        assert ids_mat[i][valid].tolist() == ids.tolist()
        assert dists_mat[i][valid].tolist() == dists.tolist()


def test_k_exceeds_shard_size(workload):
    """k > n-per-shard: shards return what they have; the merge fills k."""
    data, queries = workload
    small = data[:30]
    spec = SPECS["lccs"]
    base = spec.build().fit(small)
    sharded = ShardedIndex(spec, num_shards=7, parallel="serial").fit(small)
    for q in queries:
        _assert_identical(
            base.query(q, k=12, num_candidates=30),
            sharded.query(q, k=12, num_candidates=30),
        )


@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
def test_duplicate_rows_across_shards(num_shards, workload):
    """Exact duplicates land in different shards; ties resolve by id."""
    data, queries = workload
    tiled = np.concatenate([data[:40]] * 4)  # every row appears 4 times
    spec = SPECS["scan"]
    base = spec.build().fit(tiled)
    sharded = ShardedIndex(spec, num_shards=num_shards, parallel="serial").fit(tiled)
    for q in queries:
        _assert_identical(base.query(q, k=9), sharded.query(q, k=9))


@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
def test_dynamic_insert_delete_equivalence(num_shards, workload):
    """The dynamic workload shards too: same handles, same answers."""
    data, queries = workload
    rng = np.random.default_rng(7)
    spec = SPECS["dynamic"]
    base = spec.build().fit(data)
    sharded = ShardedIndex(spec, num_shards=num_shards, parallel="serial").fit(data)
    for v in rng.normal(size=(20, DIM)):
        assert base.insert(v) == sharded.insert(v)
    for handle in (3, 100, 259, 263, 270):
        base.delete(handle)
        sharded.delete(handle)
    lam = base.n
    for q in queries:
        _assert_identical(
            base.query(q, k=12, num_candidates=lam),
            sharded.query(q, k=12, num_candidates=lam),
        )
    want = base.batch_query(queries, k=12, num_candidates=lam)
    got = sharded.batch_query(queries, k=12, num_candidates=lam)
    assert np.array_equal(want[0], got[0])
    assert want[1].tolist() == got[1].tolist()


def test_dynamic_handle_errors(workload):
    data, _ = workload
    sharded = ShardedIndex(SPECS["dynamic"], num_shards=3, parallel="serial").fit(data)
    with pytest.raises(KeyError):
        sharded.delete(len(data) + 50)  # never issued
    sharded.delete(5)
    with pytest.raises(KeyError):
        sharded.delete(5)  # already dead


def test_static_spec_rejects_updates(workload):
    data, _ = workload
    sharded = ShardedIndex(SPECS["scan"], num_shards=2, parallel="serial").fit(data)
    with pytest.raises(TypeError, match="insert/delete"):
        sharded.insert(np.zeros(DIM))


def test_sharded_roundtrip_equivalence(tmp_path, workload):
    """Persistence composes with sharding: save/load keeps answers."""
    data, queries = workload
    sharded = ShardedIndex(SPECS["lccs"], num_shards=4, parallel="serial").fit(data)
    path = str(tmp_path / "bundle")
    save_index(sharded, path)
    loaded = load_index(path)
    assert loaded.num_shards == 4
    assert loaded.n == sharded.n
    for q in queries[:3]:
        _assert_identical(
            sharded.query(q, k=10, num_candidates=len(data)),
            loaded.query(q, k=10, num_candidates=len(data)),
        )


def test_shard_stats_aggregate(workload):
    data, queries = workload
    sharded = ShardedIndex(SPECS["lccs"], num_shards=3, parallel="serial").fit(data)
    sharded.query(queries[0], k=5, num_candidates=50)
    assert sharded.last_stats["shards"] == 3.0
    assert sharded.last_stats["candidates"] > 0


def test_invalid_construction(workload):
    data, _ = workload
    with pytest.raises(ValueError, match="num_shards"):
        ShardedIndex(SPECS["scan"], num_shards=0)
    with pytest.raises(ValueError, match="parallel"):
        ShardedIndex(SPECS["scan"], num_shards=2, parallel="gpu")
    with pytest.raises(TypeError, match="IndexSpec"):
        ShardedIndex(LinearScan(dim=DIM), num_shards=2)
    with pytest.raises(ValueError, match="non-empty"):
        ShardedIndex(SPECS["scan"], num_shards=64, parallel="serial").fit(data[:8])


@pytest.mark.slow
@pytest.mark.parametrize("parallel", ["process", "thread"])
def test_parallel_build_matches_serial(parallel, workload):
    """Multiprocess/threaded shard builds produce identical indexes."""
    data, queries = workload
    spec = SPECS["lccs"]
    serial = ShardedIndex(spec, num_shards=4, parallel="serial").fit(data)
    other = ShardedIndex(spec, num_shards=4, parallel=parallel).fit(data)
    assert other.build_mode in (parallel, "thread", "serial")  # graceful fallback
    for q in queries:
        _assert_identical(
            serial.query(q, k=10, num_candidates=len(data)),
            other.query(q, k=10, num_candidates=len(data)),
        )


@pytest.mark.slow
def test_process_built_dynamic_still_routable(workload):
    """A process-pool-built dynamic sharded index accepts updates in-parent."""
    data, queries = workload
    rng = np.random.default_rng(11)
    sharded = ShardedIndex(SPECS["dynamic"], num_shards=3, parallel="process").fit(data)
    base = SPECS["dynamic"].build().fit(data)
    for v in rng.normal(size=(6, DIM)):
        assert base.insert(v) == sharded.insert(v)
    base.delete(2)
    sharded.delete(2)
    _assert_identical(
        base.query(queries[0], k=8, num_candidates=base.n),
        sharded.query(queries[0], k=8, num_candidates=base.n),
    )

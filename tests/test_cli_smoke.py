"""End-to-end CLI smoke: build --shards 2 -> inspect -> query --mmap -> serve.

One tiny synthetic dataset flows through the whole command surface the
way an operator would drive it — the same sequence the CI smoke job
runs from a shell.  Each step asserts on the human-facing output, so a
regression anywhere in the build/persist/load/serve pipeline fails
loudly here before it reaches an actual deployment.
"""

from __future__ import annotations

import builtins
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.cli import main

N = 400
QUERIES = 5
SIFT_DIM = 128  # the simulated sift dataset's dimensionality
SRC_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "src")
)


@pytest.fixture(scope="module")
def bundle(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("smoke") / "smoke.bundle")
    rc = main(
        [
            "build", "--dataset", "sift", "--n", str(N),
            "--queries", str(QUERIES), "--method", "lccs",
            "--shards", "2", "--parallel", "thread",
            "--out", path, "--mmap",
        ]
    )
    assert rc == 0
    return path


def test_build_reports_shards_and_mmap_open(bundle, capsys):
    # The fixture already ran build; rebuild output is gone, so re-run
    # inspect-level assertions through a fresh build into the same dir.
    rc = main(
        [
            "build", "--dataset", "sift", "--n", str(N),
            "--queries", str(QUERIES), "--method", "lccs",
            "--shards", "2", "--parallel", "thread",
            "--out", bundle, "--mmap",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "shards=2" in out
    assert "saved bundle to" in out
    assert "mmap cold-open check" in out


def test_inspect_describes_the_bundle(bundle, capsys):
    assert main(["inspect", bundle]) == 0
    out = capsys.readouterr().out
    assert "ShardedIndex" in out
    assert "npy-dir" in out
    assert "shard0.csa.sorted_idx" in out
    assert main(["inspect", bundle, "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["format_version"] == 2
    assert summary["shards"] == 2


def test_query_mmap_evaluates_the_bundle(bundle, capsys):
    rc = main(["query", bundle, "--k", "5", "--batch", "--mmap"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "recall" in out
    assert f"n={N}" in out


def test_serve_answers_one_stdin_request(bundle, tmp_path, capsys):
    rng = np.random.default_rng(0)
    requests = tmp_path / "requests.jsonl"
    requests.write_text(
        json.dumps({"query": rng.normal(size=SIFT_DIM).tolist(), "k": 3})
        + "\n"
    )
    rc = main(
        [
            "serve", bundle, "--mmap", "--threads", "2",
            "--requests", str(requests),
        ]
    )
    captured = capsys.readouterr()
    assert rc == 0
    response = json.loads(captured.out.strip().splitlines()[-1])
    assert len(response["ids"]) == 3
    assert len(response["dists"]) == 3
    assert response["dists"] == sorted(response["dists"])
    assert "served 1 responses" in captured.err


def test_serve_survives_a_future_that_raises_base_exception(
    bundle, tmp_path, capsys, monkeypatch
):
    """Regression: a query future that raises must become an error

    *line*, not kill the printer thread.  Pre-fix, the dead printer
    left the next ``flush()`` joined on a queue nobody drains — the
    serve loop deadlocked forever (only ``Exception`` was caught by the
    per-request handler, so a ``BaseException`` escaped into the
    future and out of ``fut.result()`` in the printer).
    """
    from repro.serve.service import ANNService

    class _Boom(BaseException):
        pass

    real_query = ANNService.query
    calls = {"n": 0}

    def boom_first_query(self, q, k=1, **kwargs):
        calls["n"] += 1
        if calls["n"] == 1:
            raise _Boom("poisoned future")
        return real_query(self, q, k=k, **kwargs)

    monkeypatch.setattr(ANNService, "query", boom_first_query)
    rng = np.random.default_rng(1)
    requests = tmp_path / "requests.jsonl"
    requests.write_text(
        "\n".join(
            [
                # the poison query, a healthy query *behind* it (its
                # answer is what the dead printer would never drain),
                # then stats — whose flush() is where pre-fix hung
                json.dumps(
                    {"query": rng.normal(size=SIFT_DIM).tolist(), "k": 2}
                ),
                json.dumps(
                    {"query": rng.normal(size=SIFT_DIM).tolist(), "k": 2}
                ),
                json.dumps({"stats": True}),
            ]
        )
        + "\n"
    )
    result = {}

    def run() -> None:
        result["rc"] = main(
            [
                "serve", bundle, "--mmap", "--threads", "1",
                "--requests", str(requests),
            ]
        )

    worker = threading.Thread(target=run, daemon=True)
    worker.start()
    worker.join(timeout=60)
    assert not worker.is_alive(), "serve deadlocked on a raising future"
    assert result["rc"] == 0
    lines = [
        json.loads(line)
        for line in capsys.readouterr().out.strip().splitlines()
    ]
    assert len(lines) == 3
    assert "_Boom" in lines[0]["error"]
    assert len(lines[1]["ids"]) == 2  # the queued answer still emitted
    assert "stats" in lines[2]


def test_serve_emits_every_response_from_one_thread(
    bundle, tmp_path, capsys, monkeypatch
):
    """Regression: *all* response lines must go out through the printer

    thread.  Pre-fix, malformed-JSON errors and write/stats responses
    were printed straight from the reader thread, racing the printer
    for stdout — two writers can interleave mid-line.
    """
    rng = np.random.default_rng(2)
    requests = tmp_path / "requests.jsonl"
    requests.write_text(
        "\n".join(
            [
                "{this is not json",
                json.dumps(
                    {"query": rng.normal(size=SIFT_DIM).tolist(), "k": 2}
                ),
                json.dumps({"stats": True}),
                json.dumps({"nonsense": 1}),
            ]
        )
        + "\n"
    )
    emitters = []
    real_print = builtins.print

    def recording_print(*args, **kwargs):
        if kwargs.get("file") is None:  # stdout == response lines
            emitters.append(threading.current_thread())
        real_print(*args, **kwargs)

    monkeypatch.setattr(builtins, "print", recording_print)
    caller = threading.current_thread()
    rc = main(
        [
            "serve", bundle, "--mmap", "--threads", "2",
            "--requests", str(requests),
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert len(out.strip().splitlines()) == 4
    assert len(emitters) == 4
    assert len(set(emitters)) == 1, (
        f"responses written by {len(set(emitters))} threads"
    )
    assert emitters[0] is not caller  # the printer thread, not the reader


def test_serve_tcp_round_trip(bundle):
    """The same bundle over ``serve --tcp``: a real subprocess, a real

    socket, results byte-identical to a direct in-process query, and a
    clean SIGTERM drain.
    """
    from repro.serve import load_index, read_manifest
    from repro.serve.client import ServeClient

    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve", bundle,
            "--tcp", "127.0.0.1:0", "--mmap", "--max-inflight", "16",
        ],
        env=env, stderr=subprocess.PIPE, text=True,
    )
    try:
        port = None
        deadline = time.time() + 120
        while time.time() < deadline:
            line = proc.stderr.readline()
            if not line:
                break
            found = re.search(r"listening on [\d.]+:(\d+)", line)
            if found:
                port = int(found.group(1))
                break
        assert port is not None, "no readiness line on stderr"
        rng = np.random.default_rng(3)
        queries = rng.normal(size=(3, SIFT_DIM))
        index = load_index(bundle, mmap=True)
        # the server folds the manifest's default query kwargs into
        # every request — the local reference must query the same way
        kwargs = dict(
            read_manifest(bundle).get("extra", {}).get("query_kwargs", {})
        )
        with ServeClient("127.0.0.1", port, timeout=60) as client:
            assert client.ping()
            for q in queries:
                ids, dists = client.query(q, k=4)
                want_ids, want_dists = index.query(q, k=4, **kwargs)
                assert ids.tolist() == want_ids.tolist()
                assert dists.tobytes() == want_dists.tobytes()
            stats = client.stats()
            assert stats["server"]["ops"]["query"]["requests"] == 3
            assert stats["server"]["ops"]["query"]["p99_ms"] > 0.0
        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=60)
        assert rc == 0
        assert "drained" in proc.stderr.read()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)

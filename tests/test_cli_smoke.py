"""End-to-end CLI smoke: build --shards 2 -> inspect -> query --mmap -> serve.

One tiny synthetic dataset flows through the whole command surface the
way an operator would drive it — the same sequence the CI smoke job
runs from a shell.  Each step asserts on the human-facing output, so a
regression anywhere in the build/persist/load/serve pipeline fails
loudly here before it reaches an actual deployment.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main

N = 400
QUERIES = 5
SIFT_DIM = 128  # the simulated sift dataset's dimensionality


@pytest.fixture(scope="module")
def bundle(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("smoke") / "smoke.bundle")
    rc = main(
        [
            "build", "--dataset", "sift", "--n", str(N),
            "--queries", str(QUERIES), "--method", "lccs",
            "--shards", "2", "--parallel", "thread",
            "--out", path, "--mmap",
        ]
    )
    assert rc == 0
    return path


def test_build_reports_shards_and_mmap_open(bundle, capsys):
    # The fixture already ran build; rebuild output is gone, so re-run
    # inspect-level assertions through a fresh build into the same dir.
    rc = main(
        [
            "build", "--dataset", "sift", "--n", str(N),
            "--queries", str(QUERIES), "--method", "lccs",
            "--shards", "2", "--parallel", "thread",
            "--out", bundle, "--mmap",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "shards=2" in out
    assert "saved bundle to" in out
    assert "mmap cold-open check" in out


def test_inspect_describes_the_bundle(bundle, capsys):
    assert main(["inspect", bundle]) == 0
    out = capsys.readouterr().out
    assert "ShardedIndex" in out
    assert "npy-dir" in out
    assert "shard0.csa.sorted_idx" in out
    assert main(["inspect", bundle, "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["format_version"] == 2
    assert summary["shards"] == 2


def test_query_mmap_evaluates_the_bundle(bundle, capsys):
    rc = main(["query", bundle, "--k", "5", "--batch", "--mmap"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "recall" in out
    assert f"n={N}" in out


def test_serve_answers_one_stdin_request(bundle, tmp_path, capsys):
    rng = np.random.default_rng(0)
    requests = tmp_path / "requests.jsonl"
    requests.write_text(
        json.dumps({"query": rng.normal(size=SIFT_DIM).tolist(), "k": 3})
        + "\n"
    )
    rc = main(
        [
            "serve", bundle, "--mmap", "--threads", "2",
            "--requests", str(requests),
        ]
    )
    captured = capsys.readouterr()
    assert rc == 0
    response = json.loads(captured.out.strip().splitlines()[-1])
    assert len(response["ids"]) == 3
    assert len(response["dists"]) == 3
    assert response["dists"] == sorted(response["dists"])
    assert "served 1 responses" in captured.err

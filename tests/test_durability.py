"""Durability: WAL format, torn tails, snapshots, and crash recovery.

The headline property (the subsystem's acceptance contract): kill the
process at **any WAL byte offset** — simulated by truncating the log
file at a hypothesis-chosen offset — recover, and the resulting index
answers queries *byte-identically* to an index built by serially
replaying the acknowledged op prefix (every op whose record lies wholly
inside the truncated log).  Corrupt snapshots must degrade to older
snapshots and finally to a full-log replay, never to wrong answers.
"""

from __future__ import annotations

import os
import shutil
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DynamicLCCSLSH, IndexSpec
from repro.serve import (
    DurableIndex,
    RecoveryError,
    SnapshotManager,
    WALError,
    WriteAheadLog,
    recover,
)
from repro.serve.durability import list_snapshots
from repro.serve.durability.wal import (
    Op,
    apply_op,
    decode_payload,
    encode_record,
    iter_ops,
    list_segments,
)

DIM = 8
SPEC = IndexSpec(
    "DynamicLCCSLSH", dim=DIM, m=8, w=4.0, seed=7, rebuild_threshold=0.3
)


def make_ops(n_fit: int = 20, n_updates: int = 30, seed: int = 5):
    """A deterministic mixed workload of replayable op tuples.

    Includes deletes of fresh handles, of fitted rows, and one
    *double* delete (which fails live and must replay as a no-op).
    """
    rng = np.random.default_rng(seed)
    ops = [("fit", rng.normal(size=(n_fit, DIM)))]
    next_handle = n_fit
    deleted = []
    for i in range(n_updates):
        r = i % 5
        if r in (0, 1, 2):
            ops.append(("insert", rng.normal(size=DIM)))
            next_handle += 1
        elif r == 3:
            target = (7 * i) % next_handle
            ops.append(("delete", target))
            deleted.append(target)
        else:
            # every other round: re-delete an already-deleted handle
            ops.append(("delete", deleted[-1] if i % 2 else (3 * i) % next_handle))
    return ops


def apply_all(index, ops):
    for op in ops:
        index.apply_op(op)
    return index


def run_through_wal(wal_dir, ops, **durable_kwargs):
    """Apply ``ops`` through a DurableIndex; returns (index, ack_offsets).

    ``ack_offsets[i]`` is the WAL byte offset after op ``i`` was
    acknowledged — the boundaries the crash property test truncates at.
    """
    di = DurableIndex(SPEC.build(), wal_dir, spec=SPEC, **durable_kwargs)
    offsets = []
    for kind, payload in ops:
        if kind == "fit":
            di.fit(payload)
        elif kind == "insert":
            di.insert(payload)
        else:
            try:
                di.delete(payload)
            except KeyError:
                pass  # double delete: logged, applied as no-op
        offsets.append(di.wal.tail_offset)
    return di, offsets


def queries_for(n: int = 6, seed: int = 11):
    return np.random.default_rng(seed).normal(size=(n, DIM))


def assert_identical_answers(a, b, queries, k=5):
    for q in queries:
        cap = max(a.n, b.n, 1)
        ids_a, dists_a = a.query(q, k=k, num_candidates=cap)
        ids_b, dists_b = b.query(q, k=k, num_candidates=cap)
        assert ids_a.tobytes() == ids_b.tobytes()
        assert dists_a.tobytes() == dists_b.tobytes()


# ----------------------------------------------------------------------
# Record / segment format
# ----------------------------------------------------------------------

def test_record_roundtrip():
    for seq, op in [
        (0, Op.fit(np.arange(12.0).reshape(3, 4))),
        (7, Op.insert(np.arange(4.0))),
        (123456789, Op.delete(42)),
    ]:
        record = encode_record(op, seq)
        payload = record[8:]
        got_seq, got = decode_payload(payload)
        assert got_seq == seq
        assert got.kind == op.kind
        if got.kind == "delete":
            assert got.payload == op.payload
        else:
            assert np.array_equal(got.payload, op.payload)


def test_append_and_iter(tmp_path):
    wal = WriteAheadLog(str(tmp_path / "wal"))
    ops = [Op.insert(np.full(3, float(i))) for i in range(5)]
    for i, op in enumerate(ops):
        assert wal.append(op) == i
    wal.close()
    got = list(iter_ops(str(tmp_path / "wal")))
    assert [seq for seq, _ in got] == list(range(5))
    assert [float(op.payload[0]) for _, op in got] == [0.0, 1.0, 2.0, 3.0, 4.0]
    # start_seq skips the prefix
    assert [seq for seq, _ in iter_ops(str(tmp_path / "wal"), start_seq=3)] == [3, 4]


def test_segment_rotation_and_reopen(tmp_path):
    path = str(tmp_path / "wal")
    wal = WriteAheadLog(path, segment_bytes=200)
    for i in range(20):
        wal.append(Op.insert(np.full(4, float(i))))
    assert wal.rotations > 0
    assert len(wal.segments()) == wal.rotations + 1
    wal.close()
    # Reopen resumes at the right sequence number and keeps appending.
    wal2 = WriteAheadLog(path, segment_bytes=200)
    assert wal2.next_seq == 20
    assert wal2.append(Op.delete(3)) == 20
    wal2.close()
    assert len(list(iter_ops(path))) == 21


def test_torn_tail_truncated_on_open(tmp_path):
    path = str(tmp_path / "wal")
    wal = WriteAheadLog(path)
    for i in range(4):
        wal.append(Op.insert(np.full(3, float(i))))
    wal.close()
    seg = list_segments(path)[-1][1]
    clean_size = os.path.getsize(seg)
    with open(seg, "ab") as f:
        f.write(b"\x13partial-record-garbage")
    # Readers stop cleanly in front of the torn tail...
    assert len(list(iter_ops(path))) == 4
    # ...and the writer physically truncates it on open.
    wal2 = WriteAheadLog(path)
    assert wal2.truncated_tail_bytes == len(b"\x13partial-record-garbage")
    assert os.path.getsize(seg) == clean_size
    assert wal2.next_seq == 4
    wal2.close()


def test_corruption_in_non_final_segment_raises(tmp_path):
    path = str(tmp_path / "wal")
    wal = WriteAheadLog(path, segment_bytes=150)
    for i in range(12):
        wal.append(Op.insert(np.full(4, float(i))))
    wal.close()
    segments = list_segments(path)
    assert len(segments) >= 3
    # Flip a payload byte in the middle of the first segment.
    first = segments[0][1]
    with open(first, "r+b") as f:
        f.seek(30)
        byte = f.read(1)
        f.seek(30)
        f.write(bytes([byte[0] ^ 0xFF]))
    with pytest.raises(WALError):
        list(iter_ops(path))
    with pytest.raises(WALError):
        WriteAheadLog(path)


def test_reader_polls_incrementally_across_rotations(tmp_path):
    from repro.serve.durability.wal import WALReader

    path = str(tmp_path / "wal")
    wal = WriteAheadLog(path, segment_bytes=200)
    reader = WALReader(path)
    seen = []
    for i in range(25):
        wal.append(Op.insert(np.full(4, float(i))))
        if i % 7 == 3:
            seen.extend(reader.poll())
    wal.close()
    seen.extend(reader.poll())
    assert [seq for seq, _ in seen] == list(range(25))
    assert [float(op.payload[0]) for _, op in seen] == [float(i) for i in range(25)]
    assert reader.poll() == []  # idempotent when nothing new arrived
    assert reader.next_seq == 25


def test_pruned_log_gap_is_detected_not_replayed(tmp_path):
    """A reader below the pruned range must fail loudly, never skip ops."""
    from repro.serve.durability.wal import WALReader

    path = str(tmp_path / "wal")
    wal = WriteAheadLog(path, segment_bytes=200)
    for i in range(20):
        wal.append(Op.insert(np.full(4, float(i))))
    stale = WALReader(path)  # bootstrapped before the prune
    stale.poll()
    more_stale = WALReader(path)
    retain = wal.segments()[2][0]
    assert wal.prune(retain) > 0
    # iter_ops from before the pruned range: error, not a silent gap.
    with pytest.raises(WALError, match="pruned"):
        list(iter_ops(path, start_seq=0))
    # ...from inside the surviving range: fine.
    assert [seq for seq, _ in iter_ops(path, start_seq=retain)]
    # A reader already past the prune point keeps tailing...
    wal.append(Op.delete(1))
    assert [seq for seq, _ in stale.poll()] == [20]
    # ...one still below it fails loudly.
    with pytest.raises(WALError, match="pruned"):
        more_stale.poll()
    wal.close()


def test_recover_on_pruned_log_without_snapshot_raises(tmp_path):
    wal_dir = str(tmp_path / "wal")
    ops = make_ops(n_updates=20)
    snaps = SnapshotManager(wal_dir, keep=1, every_ops=8, prune_wal=True)
    di, _ = run_through_wal(
        wal_dir, ops, snapshots=snaps, segment_bytes=400
    )
    di.checkpoint()  # prunes segments below the retained snapshot
    di.close()
    assert list_segments(wal_dir)[0][0] > 0  # the log really is pruned
    # With the snapshot readable, recovery works...
    assert recover(wal_dir).applied_seq == len(ops)
    # ...without it, the surviving suffix alone must refuse, not diverge.
    for _, path in list_snapshots(wal_dir):
        os.remove(os.path.join(path, "manifest.json"))
    with pytest.raises(RecoveryError, match="full-log replay impossible"):
        recover(wal_dir)


def test_snapshot_ahead_of_log_refused_on_reopen(tmp_path):
    """A snapshot tagged past the surviving log must not be appended to."""
    wal_dir = str(tmp_path / "wal")
    snaps = SnapshotManager(wal_dir, keep=2)
    di = DurableIndex(SPEC.build(), wal_dir, spec=SPEC, snapshots=snaps)
    rng = np.random.default_rng(0)
    di.fit(rng.normal(size=(10, DIM)))
    for _ in range(5):
        di.insert(rng.normal(size=DIM))
    di.checkpoint()
    di.close()
    # Simulate post-snapshot log loss (power cut before those records
    # ever fsynced, or manual tampering): chop two records off the tail.
    seg = list_segments(wal_dir)[-1][1]
    records = list(iter_ops(wal_dir))
    assert len(records) == 6
    keep = 4
    # Rewrite the segment with only the first `keep` records.
    from repro.serve.durability.wal import HEADER, MAGIC, encode_record

    with open(seg, "wb") as f:
        f.write(HEADER.pack(MAGIC, 0))
        for seq, op in records[:keep]:
            f.write(encode_record(op, seq))
    with pytest.raises(WALError, match="ahead of the log"):
        DurableIndex(
            SPEC.build(), wal_dir,
            snapshots=SnapshotManager(wal_dir, keep=2),
        )
    # recover() still prefers the snapshot (it is durable evidence of
    # the acknowledged ops the log lost).
    assert recover(wal_dir).applied_seq == 6


@pytest.mark.parametrize("policy", ["always", "interval", "off"])
def test_fsync_policies_all_recover(tmp_path, policy):
    wal_dir = str(tmp_path / f"wal-{policy}")
    ops = make_ops()
    di, _ = run_through_wal(wal_dir, ops, fsync=policy)
    di.close()
    result = recover(wal_dir)
    assert result.applied_seq == len(ops)
    assert_identical_answers(result.index, di.inner, queries_for())


# ----------------------------------------------------------------------
# Crash recovery: the headline property
# ----------------------------------------------------------------------

class _Workload:
    """The intact WAL of a mixed workload, built once per module."""

    def __init__(self):
        self.root = tempfile.mkdtemp(prefix="walprop-")
        self.ops = make_ops()
        self.wal_dir = os.path.join(self.root, "wal")
        di, self.ack_offsets = run_through_wal(self.wal_dir, self.ops)
        di.close()
        self.segment = list_segments(self.wal_dir)[-1][1]
        self.size = os.path.getsize(self.segment)
        self.queries = queries_for()


@pytest.fixture(scope="module")
def workload():
    w = _Workload()
    yield w
    shutil.rmtree(w.root, ignore_errors=True)


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_crash_at_any_byte_offset_recovers_acknowledged_prefix(
    workload, data
):
    """Truncate the log at an arbitrary byte; recovery == prefix replay."""
    offset = data.draw(
        st.integers(min_value=0, max_value=workload.size), label="crash offset"
    )
    crash_dir = tempfile.mkdtemp(prefix="crash-")
    try:
        target = os.path.join(crash_dir, "wal")
        shutil.copytree(workload.wal_dir, target)
        seg = list_segments(target)[-1][1]
        with open(seg, "r+b") as f:
            f.truncate(offset)
        result = recover(target)
        # Acknowledged prefix: every op whose record ends at or before
        # the crash offset.
        acknowledged = sum(1 for end in workload.ack_offsets if end <= offset)
        assert result.applied_seq == acknowledged
        reference = apply_all(SPEC.build(), workload.ops[:acknowledged])
        if acknowledged == 0:
            assert not result.index.is_fitted
            return
        assert_identical_answers(result.index, reference, workload.queries)
        assert result.index.live_count == reference.live_count
    finally:
        shutil.rmtree(crash_dir, ignore_errors=True)


def test_recovery_with_snapshots_equals_full_replay(tmp_path):
    wal_dir = str(tmp_path / "wal")
    ops = make_ops()
    snaps = SnapshotManager(wal_dir, keep=3, every_ops=10)
    di, _ = run_through_wal(wal_dir, ops, snapshots=snaps)
    di.close()
    assert len(snaps.list()) >= 2  # rolled past `keep` and pruned
    result = recover(wal_dir)
    assert result.snapshot_seq == snaps.latest_seq
    assert result.applied_seq == len(ops)
    reference = apply_all(SPEC.build(), ops)
    assert_identical_answers(result.index, reference, queries_for())


def test_corrupt_snapshot_falls_back_to_older(tmp_path):
    wal_dir = str(tmp_path / "wal")
    ops = make_ops()
    snaps = SnapshotManager(wal_dir, keep=3, every_ops=10)
    di, _ = run_through_wal(wal_dir, ops, snapshots=snaps)
    di.close()
    all_snaps = list_snapshots(wal_dir)
    assert len(all_snaps) >= 2
    newest = all_snaps[-1][1]
    with open(os.path.join(newest, "manifest.json"), "w") as f:
        f.write("{this is not json")
    result = recover(wal_dir)
    assert result.snapshot_seq == all_snaps[-2][0]
    assert [path for path, _ in result.corrupt] == [newest]
    reference = apply_all(SPEC.build(), ops)
    assert result.applied_seq == len(ops)
    assert_identical_answers(result.index, reference, queries_for())


def test_all_snapshots_corrupt_falls_back_to_full_log_replay(tmp_path):
    wal_dir = str(tmp_path / "wal")
    ops = make_ops()
    snaps = SnapshotManager(wal_dir, keep=2, every_ops=10)
    di, _ = run_through_wal(wal_dir, ops, snapshots=snaps)
    di.close()
    for _, path in list_snapshots(wal_dir):
        os.remove(os.path.join(path, "manifest.json"))
    result = recover(wal_dir)  # spec comes from the durable.json sidecar
    assert result.snapshot_seq is None
    assert result.replayed == len(ops)
    assert len(result.corrupt) == len(list_snapshots(wal_dir))
    reference = apply_all(SPEC.build(), ops)
    assert_identical_answers(result.index, reference, queries_for())


def test_recover_without_snapshot_or_spec_raises(tmp_path):
    wal_dir = str(tmp_path / "wal")
    di = DurableIndex(SPEC.build(), wal_dir)  # no spec recorded
    di.fit(np.random.default_rng(0).normal(size=(10, DIM)))
    di.close()
    with pytest.raises(RecoveryError, match="no readable snapshot"):
        recover(wal_dir)
    # ...but an explicit spec unblocks the full-log replay.
    result = recover(wal_dir, spec=SPEC)
    assert result.applied_seq == 1


def test_recover_missing_dir_raises(tmp_path):
    with pytest.raises(RecoveryError, match="no such WAL directory"):
        recover(str(tmp_path / "nope"))


# ----------------------------------------------------------------------
# Snapshot manager mechanics
# ----------------------------------------------------------------------

def test_snapshot_retention_and_wal_prune(tmp_path):
    wal_dir = str(tmp_path / "wal")
    snaps = SnapshotManager(wal_dir, keep=2, every_ops=8, prune_wal=True)
    di = DurableIndex(
        SPEC.build(), wal_dir, spec=SPEC, snapshots=snaps, segment_bytes=400
    )
    rng = np.random.default_rng(3)
    di.fit(rng.normal(size=(12, DIM)))
    for _ in range(40):
        di.insert(rng.normal(size=DIM))
        # checkpoint() prunes segments below the oldest retained snapshot
        if di.applied_seq % 16 == 0:
            di.checkpoint()
    assert len(snaps.list()) <= 2
    oldest = snaps.oldest_retained_seq
    assert list_segments(wal_dir)[0][0] <= oldest  # replay still possible
    di.close()
    result = recover(wal_dir)
    assert result.applied_seq == 41
    assert_identical_answers(result.index, di.inner, queries_for())


def test_wrapping_fitted_index_requires_snapshots(tmp_path):
    rng = np.random.default_rng(0)
    fitted = DynamicLCCSLSH(dim=DIM, m=8, w=4.0, seed=1).fit(
        rng.normal(size=(15, DIM))
    )
    with pytest.raises(ValueError, match="already-fitted"):
        DurableIndex(fitted, str(tmp_path / "wal"))
    # With a manager, a baseline checkpoint captures the current state.
    wal_dir = str(tmp_path / "wal2")
    snaps = SnapshotManager(wal_dir, keep=2)
    di = DurableIndex(fitted, wal_dir, snapshots=snaps)
    assert snaps.latest_seq == 0
    h = di.insert(rng.normal(size=DIM))
    di.close()
    result = recover(wal_dir)
    assert result.applied_seq == 1
    assert result.index.n == 16
    assert_identical_answers(result.index, fitted, queries_for())
    assert h == 15


def test_durable_index_save_refuses(tmp_path):
    di = DurableIndex(SPEC.build(), str(tmp_path / "wal"))
    with pytest.raises(TypeError, match="checkpoint"):
        di.save(str(tmp_path / "bundle"))


def test_failed_delete_is_logged_and_replays_as_noop(tmp_path):
    wal_dir = str(tmp_path / "wal")
    di = DurableIndex(SPEC.build(), wal_dir, spec=SPEC)
    rng = np.random.default_rng(2)
    di.fit(rng.normal(size=(10, DIM)))
    di.delete(4)
    with pytest.raises(KeyError):
        di.delete(4)  # second delete fails live...
    assert di.applied_seq == 3  # ...but was logged
    di.close()
    result = recover(wal_dir)
    assert result.applied_seq == 3
    assert result.index.live_count == di.inner.live_count == 9


def test_apply_op_rejects_unknown_kind():
    index = SPEC.build()
    with pytest.raises(ValueError, match="unknown op kind"):
        index.apply_op(("truncate", None))
    with pytest.raises(WALError, match="unknown op kind"):
        apply_op(object(), Op("truncate", None))


# ----------------------------------------------------------------------
# CLI: recover subcommand
# ----------------------------------------------------------------------

def test_cli_recover_reports_and_saves(tmp_path, capsys):
    from repro.cli import main
    from repro.serve import load_index

    wal_dir = str(tmp_path / "wal")
    ops = make_ops(n_updates=10)
    di, _ = run_through_wal(wal_dir, ops)
    di.close()
    out_bundle = str(tmp_path / "recovered.bundle")
    assert main(["recover", wal_dir, "--out", out_bundle]) == 0
    captured = capsys.readouterr()
    assert "full-log replay" in captured.out
    assert f"applied_seq: {len(ops)}" in captured.out
    loaded = load_index(out_bundle)
    assert_identical_answers(loaded, di.inner, queries_for())


def test_cli_recover_failure_exit_code(tmp_path, capsys):
    from repro.cli import main

    assert main(["recover", str(tmp_path / "missing")]) == 2
    assert "recovery failed" in capsys.readouterr().err

"""Zero-copy loading: eager vs mmap equivalence and format regression.

The storage-engine contract this file pins down:

* ``load_index(path, mmap=True)`` reconstructs an index whose
  ``query``/``batch_query`` results are **byte-identical** to both the
  original index and an eager load — for LCCS, MP-LCCS, Dynamic and
  Sharded indexes, including after ``insert``/``delete``-then-rebuild
  on the loaded copies (copy-on-write promotion).
* mmap-loaded arrays are read-only; the index never writes into them.
* format-v1 bundles (``arrays.npz``) and legacy single-file pickles
  still load and answer identically (``mmap=True`` degrades to eager).
* ``load_shard`` opens a single shard of a sharded bundle, and the
  process fan-out path answers byte-identically to in-process fan-out.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import DynamicLCCSLSH, LCCSLSH, MPLCCSLSH
from repro.baselines import QALSH
from repro.serve import (
    IndexSpec,
    ShardedIndex,
    load_index,
    load_shard,
    read_manifest,
    save_index,
)
from repro.serve.persistence import bundle_summary

DIM = 12
SEED = 7

BUILDERS = {
    "LCCSLSH": lambda: LCCSLSH(dim=DIM, m=16, w=2.0, seed=SEED),
    "MPLCCSLSH": lambda: MPLCCSLSH(dim=DIM, m=16, w=2.0, seed=SEED, n_probes=9),
    "DynamicLCCSLSH": lambda: DynamicLCCSLSH(dim=DIM, m=16, w=2.0, seed=SEED),
    "QALSH": lambda: QALSH(dim=DIM, m=8, l=2, w=1.0, beta=0.1, seed=SEED),
    "ShardedIndex": lambda: ShardedIndex(
        IndexSpec("LCCSLSH", dim=DIM, m=16, w=2.0, seed=SEED),
        num_shards=3,
        parallel="serial",
    ),
    "ShardedDynamic": lambda: ShardedIndex(
        IndexSpec("DynamicLCCSLSH", dim=DIM, m=16, w=2.0, seed=SEED),
        num_shards=2,
        parallel="serial",
    ),
}


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(1)
    return rng.normal(size=(180, DIM)), rng.normal(size=(6, DIM))


def assert_same_answers(a, b, queries, k=5, **kwargs):
    """Single and batched answers of ``a`` and ``b`` are byte-identical."""
    for q in queries:
        ids_a, dists_a = a.query(q, k=k, **kwargs)
        ids_b, dists_b = b.query(q, k=k, **kwargs)
        assert ids_a.tolist() == ids_b.tolist()
        assert dists_a.tolist() == dists_b.tolist()
    bids_a, bdists_a = a.batch_query(queries, k=k, **kwargs)
    bids_b, bdists_b = b.batch_query(queries, k=k, **kwargs)
    assert bids_a.tolist() == bids_b.tolist()
    assert bdists_a.tolist() == bdists_b.tolist()


# ----------------------------------------------------------------------
# Eager vs mmap equivalence for every index family
# ----------------------------------------------------------------------

@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_mmap_load_byte_identical(name, tmp_path, workload):
    data, queries = workload
    index = BUILDERS[name]().fit(data)
    path = str(tmp_path / "bundle")
    save_index(index, path)
    eager = load_index(path)
    mapped = load_index(path, mmap=True)
    assert_same_answers(index, eager, queries)
    assert_same_answers(index, mapped, queries)


def test_mmap_arrays_are_readonly(tmp_path, workload):
    data, _ = workload
    index = LCCSLSH(dim=DIM, m=16, w=2.0, seed=SEED).fit(data)
    path = str(tmp_path / "bundle")
    save_index(index, path)
    mapped = load_index(path, mmap=True)
    # Zero-copy views over the on-disk maps, never writable.
    assert isinstance(mapped.csa.sorted_idx.base, np.memmap)
    assert not mapped.csa.sorted_idx.flags.writeable
    with pytest.raises(ValueError):
        mapped.csa.sorted_idx[0, 0] = 1
    # The hash strings are the left half of the mapped doubled array —
    # one physical copy, not a reconstruction.
    assert mapped.hash_strings.base is not None
    assert np.array_equal(mapped.hash_strings, index.hash_strings)


def test_mmap_load_skips_csa_rebuild(tmp_path, workload):
    """A v2 bundle restores the CSA arrays instead of re-sorting."""
    data, _ = workload
    index = LCCSLSH(dim=DIM, m=16, w=2.0, seed=SEED).fit(data)
    path = str(tmp_path / "bundle")
    save_index(index, path)
    mapped = load_index(path, mmap=True)
    assert np.array_equal(mapped.csa.sorted_idx, index.csa.sorted_idx)
    assert np.array_equal(mapped.csa.next_link, index.csa.next_link)
    names = set(read_manifest(path)["array_index"])
    assert {"csa.doubled", "csa.sorted_idx", "csa.next_link"} <= names
    assert "hash_strings" not in names  # derived, not duplicated


# ----------------------------------------------------------------------
# Copy-on-write promotion: updates on mmap-loaded dynamic indexes
# ----------------------------------------------------------------------

def _apply_updates(index, rng):
    """Insert/delete enough to force at least one rebuild; returns handles."""
    start_rebuilds = index.rebuilds if hasattr(index, "rebuilds") else None
    handles = [index.insert(rng.normal(size=DIM)) for _ in range(60)]
    index.delete(handles[3])
    index.delete(5)
    if start_rebuilds is not None:
        assert index.rebuilds > start_rebuilds  # the buffer overflowed
    return handles


@pytest.mark.parametrize("name", ["DynamicLCCSLSH", "ShardedDynamic"])
def test_mmap_insert_delete_rebuild_identical(name, tmp_path, workload):
    data, queries = workload
    index = BUILDERS[name]().fit(data)
    path = str(tmp_path / "bundle")
    save_index(index, path)
    eager = load_index(path)
    mapped = load_index(path, mmap=True)
    for copy in (index, eager, mapped):
        handles = _apply_updates(copy, np.random.default_rng(11))
        assert handles[0] == len(data)  # handle sequence preserved
    assert_same_answers(eager, mapped, queries)
    assert_same_answers(index, mapped, queries)


def test_dynamic_mmap_promotes_store_on_insert(tmp_path, workload):
    data, _ = workload
    index = DynamicLCCSLSH(dim=DIM, m=16, w=2.0, seed=SEED).fit(data)
    path = str(tmp_path / "bundle")
    save_index(index, path)
    mapped = load_index(path, mmap=True)
    assert not mapped._store.flags.writeable  # served straight off the map
    mapped.insert(np.zeros(DIM))
    assert mapped._store.flags.writeable  # promoted by the first write
    assert mapped.n == len(data) + 1


# ----------------------------------------------------------------------
# Hypothesis: random indexes and query sets, eager == mmap everywhere
# ----------------------------------------------------------------------

@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    seed=st.integers(0, 2**31 - 1),
    n=st.integers(12, 90),
    dim=st.integers(3, 10),
    m=st.sampled_from([4, 8, 16]),
    k=st.integers(1, 8),
    n_queries=st.integers(1, 5),
    n_inserts=st.integers(0, 25),
    n_deletes=st.integers(0, 6),
)
def test_property_eager_mmap_identical(
    tmp_path_factory, seed, n, dim, m, k, n_queries, n_inserts, n_deletes
):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(n, dim))
    queries = rng.normal(size=(n_queries, dim))
    index = DynamicLCCSLSH(
        dim=dim, m=m, w=2.0, seed=seed % 1000, rebuild_threshold=0.2
    ).fit(data)
    path = str(tmp_path_factory.mktemp("prop") / "bundle")
    save_index(index, path)
    eager = load_index(path)
    mapped = load_index(path, mmap=True)
    for copy in (eager, mapped):
        op_rng = np.random.default_rng(seed + 1)
        for _ in range(n_inserts):
            copy.insert(op_rng.normal(size=dim))
        for i in range(min(n_deletes, n - 1)):
            copy.delete(i)
    assert_same_answers(eager, mapped, queries, k=k)


# ----------------------------------------------------------------------
# Regression: v1 bundles and legacy pickles still load
# ----------------------------------------------------------------------

@pytest.mark.parametrize("mmap", [False, True])
def test_v1_bundle_still_loads(tmp_path, workload, mmap):
    data, queries = workload
    index = LCCSLSH(dim=DIM, m=16, w=2.0, seed=SEED).fit(data)
    path = str(tmp_path / "v1bundle")
    save_index(index, path, format_version=1)
    assert read_manifest(path)["format_version"] == 1
    assert os.path.exists(os.path.join(path, "arrays.npz"))
    # mmap degrades to an eager load on the zip layout — same answers.
    loaded = load_index(path, mmap=mmap)
    assert_same_answers(index, loaded, queries)


def test_v1_pickle_fallback_bundle_still_loads(tmp_path, workload):
    from repro.baselines import C2LSH

    data, queries = workload
    index = C2LSH(dim=DIM, m=8, l=2, w=2.0, beta=0.1, seed=SEED).fit(data)
    path = str(tmp_path / "v1pickle")
    save_index(index, path, format_version=1)
    loaded = load_index(path, mmap=True)
    assert_same_answers(index, loaded, queries)


def test_legacy_single_file_pickle_still_loads(tmp_path, workload):
    import pickle

    data, queries = workload
    index = LCCSLSH(dim=DIM, m=16, w=2.0, seed=SEED).fit(data)
    path = str(tmp_path / "legacy.pkl")
    with open(path, "wb") as f:
        pickle.dump(index, f)
    loaded = load_index(str(path), mmap=True)  # mmap is a no-op for files
    assert_same_answers(index, loaded, queries)


def test_torn_resave_leaves_no_parseable_manifest(tmp_path, workload):
    """An in-place re-save drops the stale manifest before touching the
    arrays, so a crash mid-rewrite yields BundleError — never a load
    that silently pairs the old manifest with new payloads."""
    from repro.serve import BundleError
    from repro.serve.persistence import _write_arrays_v2, export_index

    data, _ = workload
    path = str(tmp_path / "bundle")
    save_index(LCCSLSH(dim=DIM, m=16, w=2.0, seed=SEED).fit(data), path)
    # Simulate the crash window of a re-save: manifest removed, new
    # arrays written, manifest never rewritten.
    os.remove(os.path.join(path, "manifest.json"))
    other = LCCSLSH(dim=DIM, m=16, w=2.0, seed=SEED + 1).fit(data)
    _write_arrays_v2(path, export_index(other)[1])
    with pytest.raises(BundleError, match="not a bundle"):
        load_index(path)


def test_bundle_summary_reports_both_layouts(tmp_path, workload):
    data, _ = workload
    index = LCCSLSH(dim=DIM, m=16, w=2.0, seed=SEED).fit(data)
    v1 = str(tmp_path / "v1")
    v2 = str(tmp_path / "v2")
    save_index(index, v1, format_version=1)
    save_index(index, v2)
    s1, s2 = bundle_summary(v1), bundle_summary(v2)
    assert (s1["format_version"], s1["layout"]) == (1, "npz")
    assert (s2["format_version"], s2["layout"]) == (2, "npy-dir")
    names1 = {a["name"] for a in s1["arrays"]}
    names2 = {a["name"] for a in s2["arrays"]}
    assert names1 == names2
    by2 = {a["name"]: a for a in s2["arrays"]}
    assert by2["data"]["shape"] == (len(data), DIM)
    assert by2["data"]["bytes"] == data.nbytes


# ----------------------------------------------------------------------
# Shard-level loading and the bundle-backed process fan-out
# ----------------------------------------------------------------------

def test_load_shard_answers_like_the_inner_shard(tmp_path, workload):
    data, queries = workload
    index = BUILDERS["ShardedIndex"]().fit(data)
    path = str(tmp_path / "bundle")
    save_index(index, path)
    for s, shard in enumerate(index.shards):
        for mmap in (False, True):
            loaded = load_shard(path, s, mmap=mmap)
            assert_same_answers(shard, loaded, queries)


def test_load_shard_rejects_bad_input(tmp_path, workload):
    from repro.serve import BundleError

    data, _ = workload
    sharded = BUILDERS["ShardedIndex"]().fit(data)
    flat = LCCSLSH(dim=DIM, m=16, w=2.0, seed=SEED).fit(data)
    good = str(tmp_path / "good")
    bad = str(tmp_path / "bad")
    save_index(sharded, good)
    save_index(flat, bad)
    with pytest.raises(BundleError, match="out of range"):
        load_shard(good, 99)
    with pytest.raises(BundleError, match="not a fitted ShardedIndex"):
        load_shard(bad, 0)


def test_eager_load_keeps_thread_fanout(tmp_path, workload):
    """Without mmap the bundle fan-out must stay off: spinning worker
    processes that each privately re-load a shard would multiply RSS."""
    data, queries = workload
    built = ShardedIndex(
        IndexSpec("LCCSLSH", dim=DIM, m=16, w=2.0, seed=SEED),
        num_shards=2,
        parallel="process",
    ).fit(data)
    path = str(tmp_path / "bundle")
    save_index(built, path)
    want = built.batch_query(queries, k=5)
    with load_index(path) as eager:  # no mmap
        assert not eager._bundle_mmap
        got = eager.batch_query(queries, k=5)
        assert eager._process_pool is None  # no worker pool was spun up
    assert got[0].tolist() == want[0].tolist()
    built.close()


def test_unreadable_bundle_detaches_fanout(tmp_path, workload):
    """Deleting the bundle under a mapped index degrades fan-out to the
    in-process shards instead of failing every batch_query."""
    import shutil

    data, queries = workload
    built = ShardedIndex(
        IndexSpec("LCCSLSH", dim=DIM, m=16, w=2.0, seed=SEED),
        num_shards=2,
        parallel="process",
    ).fit(data)
    path = str(tmp_path / "bundle")
    save_index(built, path)
    want = built.batch_query(queries, k=5)
    with load_index(path, mmap=True) as mapped:
        shutil.rmtree(path)  # snapshot GC / redeploy under our feet
        got = mapped.batch_query(queries, k=5)
        assert got[0].tolist() == want[0].tolist()
        assert got[1].tolist() == want[1].tolist()
        assert mapped._bundle_path is None  # detached, not retried
        again = mapped.batch_query(queries, k=5)
        assert again[0].tolist() == want[0].tolist()
    built.close()


@pytest.mark.slow
def test_process_fanout_from_bundle_identical(tmp_path, workload):
    """parallel="process" fan-out workers load shards from the bundle
    path (mmapped) and answer byte-identically to in-process fan-out."""
    data, queries = workload
    built = ShardedIndex(
        IndexSpec("DynamicLCCSLSH", dim=DIM, m=16, w=2.0, seed=SEED),
        num_shards=2,
        parallel="process",
    ).fit(data)
    path = str(tmp_path / "bundle")
    save_index(built, path)
    want_ids, want_dists = built.batch_query(queries, k=5)
    with load_index(path, mmap=True) as mapped:
        assert mapped._bundle_path is not None
        got_ids, got_dists = mapped.batch_query(queries, k=5)
        assert got_ids.tolist() == want_ids.tolist()
        assert got_dists.tolist() == want_dists.tolist()
        assert mapped.last_stats["shards"] == 2.0
        # A write invalidates the on-disk copy: fan-out must detach and
        # keep answering correctly from the in-process shards.
        mapped.insert(np.zeros(DIM))
        assert mapped._bundle_stale
        ref = load_index(path)
        ref.insert(np.zeros(DIM))
        got2 = mapped.batch_query(queries, k=5)
        want2 = ref.batch_query(queries, k=5)
        assert got2[0].tolist() == want2[0].tolist()
        assert got2[1].tolist() == want2[1].tolist()
        ref.close()
    built.close()


# ----------------------------------------------------------------------
# Durability integration: mmap recovery and replicas
# ----------------------------------------------------------------------

def test_recover_and_replica_mmap_identical(tmp_path, workload):
    from repro.serve import DurableIndex, ReplicaSet, SnapshotManager, recover

    data, queries = workload
    wal_dir = str(tmp_path / "wal")
    spec = IndexSpec("DynamicLCCSLSH", dim=DIM, m=16, w=2.0, seed=SEED)
    snaps = SnapshotManager(wal_dir, keep=2, every_ops=40)
    primary = DurableIndex(spec.build(), wal_dir, fsync="off", snapshots=snaps,
                           spec=spec)
    primary.fit(data)
    rng = np.random.default_rng(3)
    for _ in range(50):
        primary.insert(rng.normal(size=DIM))
    primary.wal.sync()

    eager = recover(wal_dir)
    mapped = recover(wal_dir, mmap=True)
    assert mapped.snapshot_seq is not None  # bootstrapped from a snapshot
    assert mapped.applied_seq == eager.applied_seq == primary.applied_seq
    assert_same_answers(eager.index, mapped.index, queries)
    assert_same_answers(primary.inner, mapped.index, queries)

    with ReplicaSet(primary, num_replicas=2, mmap=True) as rs:
        handle, seq = rs.insert(rng.normal(size=DIM))
        ids, dists = rs.query(queries[0], k=5, min_version=seq)
        primary_ids, primary_dists = primary.inner.query(queries[0], k=5)
        assert ids.tolist() == primary_ids.tolist()
        assert dists.tolist() == primary_dists.tolist()
    primary.close()

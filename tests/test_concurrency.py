"""Concurrency stress suite: readers and writers hammer ConcurrentIndex.

N reader threads and M writer threads share one
:class:`~repro.serve.concurrency.ConcurrentIndex` over a
``DynamicLCCSLSH`` (rebuilds included) and over a ``ShardedIndex`` of
dynamic shards.  The suite asserts the three serving invariants:

* **no exceptions** in any thread;
* **no torn reads** — every id a query returns was live at the version
  the query observed (reconstructed after the fact from the versioned
  write log; writes are serialized, so versions totally order them);
* **final state equals the serial replay** — applying the write log in
  version order to a fresh index reproduces the concurrent index's
  final answers byte-for-byte.

Everything is seeded; the thread *interleaving* varies run to run (that
is the point of a stress test) but every interleaving must satisfy the
invariants.  Marked ``concurrency`` (kept out of the CI fast lane) and
``timeout`` (pytest-timeout turns a deadlock into a failure, not a hung
job).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import ConcurrentIndex, DynamicLCCSLSH, IndexSpec, ShardedIndex

pytestmark = [pytest.mark.concurrency, pytest.mark.timeout(120)]

DIM = 12
N0 = 240  # initial fitted points
N_READERS = 4
N_WRITERS = 2
QUERIES_PER_READER = 40
OPS_PER_WRITER = 30


def _make_dynamic() -> DynamicLCCSLSH:
    rng = np.random.default_rng(101)
    data = rng.normal(size=(N0, DIM))
    # Low threshold so the stress run crosses several rebuilds.
    return DynamicLCCSLSH(
        dim=DIM, m=16, w=4.0, seed=5, rebuild_threshold=0.05
    ).fit(data)


def _make_sharded() -> ShardedIndex:
    rng = np.random.default_rng(101)
    data = rng.normal(size=(N0, DIM))
    spec = IndexSpec(
        "DynamicLCCSLSH", dim=DIM, m=16, w=4.0, seed=5,
        rebuild_threshold=0.05,
    )
    return ShardedIndex(spec, num_shards=2, parallel="thread").fit(data)


class _Stress:
    """Run the reader/writer stress workload and collect evidence."""

    def __init__(self, ci: ConcurrentIndex, seed: int):
        self.ci = ci
        self.seed = seed
        self.errors: list = []
        self.log_lock = threading.Lock()
        #: (version, "insert"/"delete", handle, vector) — appended
        #: post-write; vector is None for deletes
        self.write_log: list = []
        #: (version, tuple(ids)) per completed query
        self.read_log: list = []

    def reader(self, tid: int) -> None:
        rng = np.random.default_rng(self.seed + tid)
        try:
            for _ in range(QUERIES_PER_READER):
                q = rng.normal(size=DIM)
                ids, dists, version = self.ci.query_versioned(
                    q, k=5, num_candidates=50
                )
                assert len(ids) == len(dists)
                assert np.all(np.diff(dists) >= 0), "results not sorted"
                with self.log_lock:
                    self.read_log.append((version, tuple(int(i) for i in ids)))
        except BaseException as exc:  # noqa: BLE001 - reported by the test
            self.errors.append(exc)

    def writer(self, tid: int) -> None:
        rng = np.random.default_rng(self.seed + 100 + tid)
        mine: list = []  # handles this writer inserted and may delete
        try:
            for _ in range(OPS_PER_WRITER):
                if mine and rng.random() < 0.3:
                    handle = mine.pop(int(rng.integers(len(mine))))
                    version = self.ci.delete_versioned(handle)
                    with self.log_lock:
                        self.write_log.append((version, "delete", handle, None))
                else:
                    vector = rng.normal(size=DIM)
                    handle, version = self.ci.insert_versioned(vector)
                    mine.append(handle)
                    with self.log_lock:
                        self.write_log.append((version, "insert", handle, vector))
        except BaseException as exc:  # noqa: BLE001
            self.errors.append(exc)

    def run(self) -> None:
        threads = [
            threading.Thread(target=self.reader, args=(t,))
            for t in range(N_READERS)
        ] + [
            threading.Thread(target=self.writer, args=(t,))
            for t in range(N_WRITERS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=90)
            assert not t.is_alive(), "stress thread deadlocked"


def _check_no_torn_reads(stress: _Stress) -> None:
    """Every returned id must have been live at the observed version."""
    # Versions totally order the writes (writers are serialized).
    events = sorted(stress.write_log, key=lambda e: e[0])
    assert len({v for v, _, _, _ in events}) == len(events), (
        "two writes produced the same version"
    )
    initial = set(range(N0))
    for version, ids in stress.read_log:
        live = set(initial)
        for wv, op, handle, _ in events:
            if wv > version:
                break
            if op == "insert":
                live.add(handle)
            else:
                live.discard(handle)
        torn = set(ids) - live
        assert not torn, (
            f"query at version {version} returned ids {torn} that were "
            "not live then"
        )


def _check_serial_replay(stress: _Stress, make_index) -> None:
    """Replaying the write log serially reproduces the final state."""
    replica = make_index()
    for _, op, handle, vector in sorted(stress.write_log, key=lambda e: e[0]):
        if op == "insert":
            got = replica.insert(vector)
            assert got == handle, (
                f"serial replay assigned handle {got}, concurrent run "
                f"assigned {handle}"
            )
        else:
            replica.delete(handle)
    rng = np.random.default_rng(999)
    probes = rng.normal(size=(20, DIM))
    got_ids, got_dists = stress.ci.batch_query(
        probes, k=8, num_candidates=80
    )
    want_ids, want_dists = replica.batch_query(probes, k=8, num_candidates=80)
    assert got_ids.tobytes() == want_ids.tobytes()
    assert got_dists.tobytes() == want_dists.tobytes()


def _run_stress(make_index) -> None:
    ci = ConcurrentIndex(make_index())
    stress = _Stress(ci, seed=42)
    stress.run()
    assert not stress.errors, f"thread raised: {stress.errors[:3]}"
    assert len(stress.read_log) == N_READERS * QUERIES_PER_READER
    assert len(stress.write_log) == N_WRITERS * OPS_PER_WRITER
    _check_no_torn_reads(stress)
    _check_serial_replay(stress, make_index)
    stats = ci.stats()
    assert stats["writes"] == len(stress.write_log)
    assert stats["reads"] >= len(stress.read_log)


def test_stress_dynamic_lccs():
    _run_stress(_make_dynamic)


def test_stress_sharded_dynamic():
    _run_stress(_make_sharded)


# ----------------------------------------------------------------------
# Lock-layer units (fast, deterministic)
# ----------------------------------------------------------------------


def test_parallel_readers_share_the_lock():
    """Two readers hold the read lock at the same time."""
    from repro.serve.concurrency import RWLock

    lock = RWLock()
    both_in = threading.Barrier(2, timeout=10)

    def reader():
        with lock.read_locked():
            both_in.wait()  # only passes if the other reader is inside too

    threads = [threading.Thread(target=reader) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)
        assert not t.is_alive()


def test_writer_excludes_readers_and_cannot_starve():
    """A waiting writer blocks new readers (write-intent queue)."""
    from repro.serve.concurrency import RWLock

    lock = RWLock()
    order: list = []
    reader_in = threading.Event()
    release_reader = threading.Event()

    def long_reader():
        with lock.read_locked():
            reader_in.set()
            release_reader.wait(timeout=10)
        order.append("reader-out")

    def writer():
        lock.acquire_write()
        order.append("writer")
        lock.release_write()

    def late_reader():
        with lock.read_locked():
            order.append("late-reader")

    t_read = threading.Thread(target=long_reader)
    t_read.start()
    assert reader_in.wait(timeout=10)
    t_write = threading.Thread(target=writer)
    t_write.start()
    import time as _time

    while lock._writers_waiting == 0:  # until the writer is queued
        _time.sleep(0.001)
    t_late = threading.Thread(target=late_reader)
    t_late.start()
    release_reader.set()
    for t in (t_read, t_write, t_late):
        t.join(timeout=10)
        assert not t.is_alive()
    # The late reader arrived while the writer was waiting, so the
    # writer must have gone first.
    assert order.index("writer") < order.index("late-reader")


def test_concurrent_index_rejects_static_writes():
    from repro import LCCSLSH

    rng = np.random.default_rng(0)
    index = LCCSLSH(dim=8, m=8, w=4.0, seed=0).fit(rng.normal(size=(50, 8)))
    ci = ConcurrentIndex(index)
    with pytest.raises(TypeError, match="insert"):
        ci.insert(np.zeros(8))
    with pytest.raises(TypeError, match="delete"):
        ci.delete(0)


def test_version_counts_writes():
    ci = ConcurrentIndex(_make_dynamic())
    assert ci.version == 0
    h, v1 = ci.insert_versioned(np.zeros(DIM))
    assert (h, v1) == (N0, 1)
    v2 = ci.delete_versioned(h)
    assert v2 == 2
    assert ci.stats() == {"reads": 0, "writes": 2, "version": 2}

"""Tests for LazyLSH and the c-ANNS radius cascades."""

import numpy as np
import pytest

from repro.baselines import LazyLSH
from repro.core import E2LSHCascade, LCCSCascade, radius_ladder
from repro.data import compute_ground_truth

from tests.helpers import average_recall


# ----------------------------------------------------------------------
# LazyLSH
# ----------------------------------------------------------------------

def test_lazylsh_serves_both_metrics(clustered):
    data, queries, gt2 = clustered
    gt1 = compute_ground_truth(data, queries, k=10, metric="manhattan")
    index = LazyLSH(dim=24, m=32, l=6, w=1.0, beta=0.05, seed=1).fit(data)
    rec2 = average_recall(index, queries, gt2, k=10)
    rec1 = average_recall(index, queries, gt1, k=10, metric="manhattan")
    assert rec2 >= 0.6
    assert rec1 >= 0.6


def test_lazylsh_per_query_metric_restored(clustered):
    data, queries, _ = clustered
    index = LazyLSH(dim=24, m=16, l=4, w=1.0, seed=2, metric="euclidean")
    index.fit(data)
    index.query(queries[0], k=3, metric="manhattan")
    assert index.metric == "euclidean"  # constructor metric untouched


def test_lazylsh_duplicate_found(clustered):
    data, _, _ = clustered
    index = LazyLSH(dim=24, m=16, l=4, w=1.0, seed=3).fit(data)
    ids, dists = index.query(data[8], k=1)
    assert ids[0] == 8 and dists[0] == 0.0


def test_lazylsh_validation(clustered):
    data, queries, _ = clustered
    with pytest.raises(ValueError):
        LazyLSH(dim=24, metric="angular")
    with pytest.raises(ValueError):
        LazyLSH(dim=24, m=8, l=9)
    with pytest.raises(ValueError):
        LazyLSH(dim=24, w=0.0)
    index = LazyLSH(dim=24, m=16, l=4, w=1.0, seed=4).fit(data)
    with pytest.raises(ValueError):
        index.query(queries[0], k=3, metric="angular")


def test_lazylsh_counters(clustered):
    data, queries, _ = clustered
    index = LazyLSH(dim=24, m=16, l=4, w=1.0, seed=5).fit(data)
    index.query(queries[0], k=5)
    assert index.last_stats["collision_countings"] > 0


# ----------------------------------------------------------------------
# radius_ladder
# ----------------------------------------------------------------------

def test_radius_ladder_covers_range():
    ladder = radius_ladder(1.0, 10.0, 2.0)
    assert ladder == [1.0, 2.0, 4.0, 8.0, 16.0]
    assert ladder[0] == 1.0 and ladder[-1] >= 10.0


def test_radius_ladder_single_level():
    assert radius_ladder(5.0, 5.0, 2.0) == [5.0]


def test_radius_ladder_validation():
    with pytest.raises(ValueError):
        radius_ladder(0.0, 1.0, 2.0)
    with pytest.raises(ValueError):
        radius_ladder(2.0, 1.0, 2.0)
    with pytest.raises(ValueError):
        radius_ladder(1.0, 2.0, 1.0)


# ----------------------------------------------------------------------
# cascades
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def cascade_setup():
    from repro.data import gaussian_clusters, split_queries

    raw = gaussian_clusters(800, 16, n_clusters=10, cluster_std=0.08, seed=71)
    data, queries = split_queries(raw, 12, seed=72)
    gt = compute_ground_truth(data, queries, k=1, metric="euclidean")
    nn = float(np.mean(gt.distances[:, 0]))
    far = float(np.max(gt.distances)) * 4
    return data, queries, gt, nn, far


def test_lccs_cascade_answers_most_queries(cascade_setup):
    data, queries, gt, nn, far = cascade_setup
    lc = LCCSCascade(
        dim=16, r_min=nn * 0.5, r_max=far, c=2.0, m=32, w=2 * nn, seed=1
    ).fit(data)
    hits = sum(len(lc.query(q, k=1)[0]) > 0 for q in queries)
    assert hits >= 0.7 * len(queries)
    assert lc.total_hash_functions == 32


def test_e2lsh_cascade_answers_and_scales_K(cascade_setup):
    data, queries, gt, nn, far = cascade_setup
    e2 = E2LSHCascade(
        dim=16, r_min=nn * 0.5, r_max=far, c=2.0, L=4, seed=1
    ).fit(data)
    assert len(e2.levels) == len(e2.radii) >= 2
    hits = sum(len(e2.query(q, k=1)[0]) > 0 for q in queries)
    assert hits >= 0.5 * len(queries)
    # One sub-index per radius: functions accumulate across levels.
    assert e2.total_hash_functions == sum(
        lvl.K * lvl.L for lvl in e2.levels
    )


def test_cascade_answers_respect_contract(cascade_setup):
    """Any returned point is within c^2 * (level radius) of the query."""
    data, queries, gt, nn, far = cascade_setup
    lc = LCCSCascade(
        dim=16, r_min=nn * 0.5, r_max=far, c=2.0, m=32, w=2 * nn, seed=2
    ).fit(data)
    for i, q in enumerate(queries):
        ids, dists = lc.query(q, k=1)
        if len(ids):
            # Bound: c * (largest ladder radius), trivially; tighter
            # per-level bound is asserted inside the cascade itself.
            assert dists[0] <= 2.0 * lc.radii[-1] + 1e-9


def test_lccs_cascade_shares_one_index(cascade_setup):
    data, queries, _, nn, far = cascade_setup
    lc = LCCSCascade(
        dim=16, r_min=nn * 0.5, r_max=far, c=2.0, m=32, w=2 * nn, seed=3
    ).fit(data)
    e2 = E2LSHCascade(
        dim=16, r_min=nn * 0.5, r_max=far, c=2.0, L=4, seed=3
    ).fit(data)
    assert lc.total_hash_functions < e2.total_hash_functions
    lc.query(queries[0], k=1)
    assert lc.last_stats["levels_probed"] >= 1

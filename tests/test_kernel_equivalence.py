"""Kernel backends are invisible: every backend is byte-identical.

The compiled kernel backends (``numba``, ``cext``) are pure performance
refactors of the CSA bisection, the tournament merge, and candidate
verification.  For every index in the LCCS family — static, multi-probe,
dynamic (including after inserts/deletes/rebuilds), sharded — switching
the backend must change *nothing* observable: same ids, same distances,
same tie-breaks, byte for byte, on both ``query`` and ``batch_query``.

Also pinned here:

* registry semantics — explicit-kwarg > ``set_default_backend`` >
  ``REPRO_BACKEND`` env > numpy; unknown env values are ignored,
  unknown explicit names raise, unavailable backends fall back silently;
* ``pack_bits``/``hamming_packed`` equal the unpacked Hamming distance;
* the opt-in ``verify_dtype="float32"`` screen re-ranks exactly;
* the per-stage timing hooks are populated by the batch path.

The whole file runs against whichever compiled backends this machine
has (plain CI lanes exercise cext; the numba lane adds numba via
``REPRO_BACKEND=numba``).  With no compiled backend available the
equivalence tests self-skip and only the registry tests run.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DynamicLCCSLSH, LCCSLSH, MPLCCSLSH, kernels
from repro.distances import hamming_packed, pack_bits, pairwise_rows

COMPILED = [b for b in kernels.available_backends() if b != "numpy"]

needs_compiled = pytest.mark.skipif(
    not COMPILED, reason="no compiled kernel backend available"
)


def _workload(seed: int, n: int, dim: int, nq: int, binary: bool = False):
    rng = np.random.default_rng(seed)
    if binary:
        data = rng.integers(0, 2, size=(n, dim)).astype(np.float64)
        queries = rng.integers(0, 2, size=(nq, dim)).astype(np.float64)
    else:
        data = rng.normal(size=(n, dim))
        queries = rng.normal(size=(nq, dim))
    return data, queries


def assert_backends_identical(index, queries: np.ndarray, k: int):
    """Every available backend matches numpy on batch and single paths."""
    index.set_kernel_backend("numpy")
    ref_batch = index.batch_query(queries, k=k)
    ref_single = [index.query(q, k=k) for q in queries]
    for backend in COMPILED:
        assert index.set_kernel_backend(backend) == backend
        bi, bd = index.batch_query(queries, k=k)
        assert np.array_equal(bi, ref_batch[0]), f"{backend}: batch ids"
        assert np.array_equal(bd, ref_batch[1]), f"{backend}: batch dists"
        for qi, q in enumerate(queries):
            ids, dists = index.query(q, k=k)
            assert np.array_equal(ids, ref_single[qi][0]), (
                f"{backend}: single ids, query {qi}"
            )
            assert np.array_equal(dists, ref_single[qi][1]), (
                f"{backend}: single dists, query {qi}"
            )
    index.set_kernel_backend("numpy")


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------


def test_unknown_explicit_backend_raises():
    with pytest.raises(ValueError, match="unknown"):
        kernels.resolve_backend("fortran")
    with pytest.raises(ValueError, match="unknown"):
        kernels.set_default_backend("fortran")
    with pytest.raises(ValueError, match="unknown"):
        LCCSLSH(dim=4, m=4, backend="fortran").fit(
            np.random.default_rng(0).normal(size=(10, 4))
        )


def test_unknown_env_backend_ignored(monkeypatch):
    monkeypatch.setenv(kernels.BACKEND_ENV_VAR, "fortran")
    assert kernels.resolve_backend().name == "numpy"


def test_env_selects_backend(monkeypatch):
    for backend in COMPILED:
        monkeypatch.setenv(kernels.BACKEND_ENV_VAR, backend)
        assert kernels.resolve_backend().name == backend


def test_unavailable_backend_falls_back_silently():
    missing = [
        b for b in kernels.KNOWN_BACKENDS if b not in kernels.available_backends()
    ]
    for backend in missing:
        assert kernels.resolve_backend(backend).name == "numpy"
        assert isinstance(kernels.unavailable_reason(backend), str)
        index = LCCSLSH(dim=4, m=4, w=4.0, seed=1, backend=backend)
        assert index.kernel_backend == "numpy"


@needs_compiled
def test_precedence_kwarg_beats_default_beats_env(monkeypatch):
    backend = COMPILED[0]
    monkeypatch.setenv(kernels.BACKEND_ENV_VAR, backend)
    try:
        assert kernels.set_default_backend("numpy") == "numpy"
        assert kernels.resolve_backend().name == "numpy"  # default > env
        assert kernels.resolve_backend(backend).name == backend  # kwarg wins
    finally:
        kernels.set_default_backend(None)
    assert kernels.resolve_backend().name == backend  # env again


def test_numpy_always_available():
    assert "numpy" in kernels.available_backends()
    assert kernels.get_backend("numpy").compiled is False


# ----------------------------------------------------------------------
# Byte-identity across index classes (hypothesis-driven shapes)
# ----------------------------------------------------------------------


@needs_compiled
@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    n=st.integers(12, 90),
    m=st.sampled_from([4, 8, 16]),
    k=st.integers(1, 15),
)
def test_lccs_euclidean_identity(seed, n, m, k):
    data, queries = _workload(seed, n, dim=8, nq=6)
    index = LCCSLSH(dim=8, m=m, w=4.0, seed=seed % 1000).fit(data)
    assert_backends_identical(index, queries, k)


@needs_compiled
@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    n=st.integers(12, 90),
    k=st.integers(1, 12),
)
def test_lccs_hamming_identity(seed, n, k):
    """Binary data exercises the packed-popcount verification path."""
    data, queries = _workload(seed, n, dim=16, nq=6, binary=True)
    index = LCCSLSH(dim=16, m=8, metric="hamming", seed=seed % 1000).fit(data)
    assert_backends_identical(index, queries, k)


@needs_compiled
@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    n=st.integers(12, 70),
    n_probes=st.sampled_from([1, 5, 9]),
)
def test_mp_lccs_identity(seed, n, n_probes):
    data, queries = _workload(seed, n, dim=8, nq=5)
    index = MPLCCSLSH(
        dim=8, m=8, w=4.0, seed=seed % 1000, n_probes=n_probes
    ).fit(data)
    assert_backends_identical(index, queries, k=8)


@needs_compiled
@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_dynamic_identity_through_mutations(seed):
    """Byte-identity holds fresh, post-insert/delete, and post-rebuild."""
    rng = np.random.default_rng(seed)
    data, queries = _workload(seed, n=50, dim=8, nq=5)
    index = DynamicLCCSLSH(
        dim=8, m=8, w=4.0, seed=seed % 1000, rebuild_threshold=0.5
    ).fit(data)
    assert_backends_identical(index, queries, k=10)
    # Buffered inserts + tombstoned deletes (below the rebuild threshold).
    for vec in rng.normal(size=(8, 8)):
        index.insert(vec)
    index.delete(2)
    index.delete(41)
    assert index.buffer_size > 0
    assert_backends_identical(index, queries, k=10)
    # Push past the threshold so the CSA is rebuilt with the buffer.
    for vec in rng.normal(size=(25, 8)):
        index.insert(vec)
    assert index.rebuilds >= 2  # fit + at least one buffer-triggered
    assert_backends_identical(index, queries, k=10)


@needs_compiled
@pytest.mark.parametrize("backend", COMPILED)
def test_sharded_identity(backend):
    from repro.serve import IndexSpec, ShardedIndex

    data, queries = _workload(77, n=120, dim=8, nq=8)

    def build(b):
        spec = IndexSpec("LCCSLSH", dim=8, m=8, w=4.0, seed=3, backend=b)
        return ShardedIndex(spec, num_shards=3, parallel="serial").fit(data)

    ref = build("numpy").batch_query(queries, k=10)
    got = build(backend).batch_query(queries, k=10)
    assert np.array_equal(ref[0], got[0])
    assert np.array_equal(ref[1], got[1])


# ----------------------------------------------------------------------
# Verification kernels
# ----------------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    rows=st.integers(1, 40),
    dim=st.integers(1, 130),
)
def test_packed_hamming_equals_unpacked(seed, rows, dim):
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 2, size=(rows, dim)).astype(np.float64)
    b = rng.integers(0, 2, size=(rows, dim)).astype(np.float64)
    expected = pairwise_rows(a, b, "hamming")
    got = hamming_packed(pack_bits(a), pack_bits(b))
    assert np.array_equal(got, expected)


@needs_compiled
@pytest.mark.parametrize("backend", COMPILED)
def test_backend_hamming_packed_kernel(backend):
    rng = np.random.default_rng(5)
    a = rng.integers(0, 2, size=(60, 100)).astype(np.float64)
    b = rng.integers(0, 2, size=(60, 100)).astype(np.float64)
    kb = kernels.get_backend(backend)
    got = kb.hamming_packed(pack_bits(a), pack_bits(b))
    assert np.array_equal(got, pairwise_rows(a, b, "hamming"))


@needs_compiled
@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), k=st.integers(1, 12))
def test_float32_rerank_is_exact(seed, k):
    """The reduced-precision screen changes nothing after the re-rank."""
    data, queries = _workload(seed, n=80, dim=12, nq=6)
    ref = LCCSLSH(dim=12, m=8, w=4.0, seed=seed % 1000).fit(data)
    ref_out = ref.batch_query(queries, k=k)
    for backend in COMPILED:
        fast = LCCSLSH(
            dim=12, m=8, w=4.0, seed=seed % 1000,
            backend=backend, verify_dtype="float32",
        ).fit(data)
        bi, bd = fast.batch_query(queries, k=k)
        assert np.array_equal(bi, ref_out[0]), backend
        assert np.array_equal(bd, ref_out[1]), backend


def test_verify_dtype_validated():
    with pytest.raises(ValueError, match="verify_dtype"):
        LCCSLSH(dim=4, m=4, verify_dtype="float16")


# ----------------------------------------------------------------------
# Stage timing hooks + surfacing
# ----------------------------------------------------------------------


def test_stage_timings_recorded():
    data, queries = _workload(3, n=60, dim=8, nq=10)
    index = LCCSLSH(dim=8, m=8, w=4.0, seed=3).fit(data)
    index.batch_query(queries, k=5)
    for stage in ("hash", "search", "merge", "verify"):
        assert index.last_stats[f"stage_{stage}_s"] >= 0.0
    index.query(queries[0], k=5)
    for stage in ("hash", "search", "merge", "verify"):
        assert index.last_stats[f"stage_{stage}_s"] >= 0.0


def test_stage_timings_flow_into_evaluate():
    from repro.data import compute_ground_truth
    from repro.eval import evaluate

    data, queries = _workload(4, n=60, dim=8, nq=10)
    gt = compute_ground_truth(data, queries, k=5, metric="euclidean")
    index = LCCSLSH(dim=8, m=8, w=4.0, seed=4).fit(data)
    result = evaluate(index, data, queries, gt, k=5, batch=True)
    assert "stage_verify_s" in result.stats


def test_profile_batch_query_reports_backend():
    from repro.eval.profiler import profile_batch_query

    data, queries = _workload(5, n=60, dim=8, nq=10)
    index = LCCSLSH(dim=8, m=8, w=4.0, seed=5).fit(data)
    prof = profile_batch_query(index, queries, k=5)
    assert prof.backend == index.kernel_backend
    assert prof.num_queries == 10
    assert prof.qps > 0
    assert prof.total_s >= max(
        0.0, prof.hash_s + prof.search_s + prof.merge_s + prof.verify_s - 1e-6
    )


def test_service_stats_report_backend():
    from repro.serve.service import ANNService

    data, queries = _workload(6, n=60, dim=8, nq=4)
    index = LCCSLSH(dim=8, m=8, w=4.0, seed=6).fit(data)
    with ANNService(index) as service:
        service.query(queries[0], k=3)
        assert service.stats().get("kernel_backend") == index.kernel_backend


# ----------------------------------------------------------------------
# Persistence: the backend choice survives a save/load round trip
# ----------------------------------------------------------------------


@needs_compiled
@pytest.mark.parametrize("backend", COMPILED)
def test_backend_survives_bundle_roundtrip(tmp_path, backend):
    from repro.serve import load_index, save_index

    data, queries = _workload(9, n=60, dim=8, nq=5)
    index = LCCSLSH(dim=8, m=8, w=4.0, seed=9, backend=backend).fit(data)
    save_index(index, tmp_path / "b.bundle")
    loaded = load_index(tmp_path / "b.bundle")
    assert loaded.kernel_backend == backend
    ref = index.batch_query(queries, k=5)
    got = loaded.batch_query(queries, k=5)
    assert np.array_equal(ref[0], got[0])
    assert np.array_equal(ref[1], got[1])

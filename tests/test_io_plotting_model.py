"""Tests for vector-format I/O, ASCII plotting, and the recall model."""

import numpy as np
import pytest

from repro.data import (
    read_bvecs,
    read_fvecs,
    read_ivecs,
    write_bvecs,
    write_fvecs,
    write_ivecs,
)
from repro.eval import ascii_plot, plot_time_recall
from repro.hashes import HyperplaneFamily, RandomProjectionFamily
from repro.theory import RecallModel, predicted_recall, suggest_lambda


# ----------------------------------------------------------------------
# fvecs / ivecs / bvecs
# ----------------------------------------------------------------------

def test_fvecs_roundtrip(tmp_path, rng):
    data = rng.normal(size=(20, 7)).astype(np.float32)
    path = tmp_path / "x.fvecs"
    write_fvecs(path, data)
    assert np.allclose(read_fvecs(path), data)


def test_ivecs_roundtrip(tmp_path, rng):
    data = rng.integers(-1000, 1000, size=(15, 4)).astype(np.int32)
    path = tmp_path / "x.ivecs"
    write_ivecs(path, data)
    assert (read_ivecs(path) == data).all()


def test_bvecs_roundtrip(tmp_path, rng):
    data = rng.integers(0, 256, size=(9, 16)).astype(np.uint8)
    path = tmp_path / "x.bvecs"
    write_bvecs(path, data)
    assert (read_bvecs(path) == data).all()


def test_read_max_vectors(tmp_path, rng):
    data = rng.normal(size=(30, 5)).astype(np.float32)
    path = tmp_path / "x.fvecs"
    write_fvecs(path, data)
    out = read_fvecs(path, max_vectors=7)
    assert out.shape == (7, 5)
    assert np.allclose(out, data[:7])


def test_read_rejects_corrupt_files(tmp_path):
    path = tmp_path / "bad.fvecs"
    path.write_bytes(b"")
    with pytest.raises(ValueError):
        read_fvecs(path)
    path.write_bytes(b"\x01\x00")
    with pytest.raises(ValueError):
        read_fvecs(path)
    # valid header but truncated body
    path.write_bytes(np.array([3], dtype="<i4").tobytes() + b"\x00" * 5)
    with pytest.raises(ValueError):
        read_fvecs(path)
    # negative dimensionality
    path.write_bytes(np.array([-2], dtype="<i4").tobytes())
    with pytest.raises(ValueError):
        read_fvecs(path)


def test_write_rejects_bad_shapes(tmp_path):
    with pytest.raises(ValueError):
        write_fvecs(tmp_path / "x.fvecs", np.zeros(5))
    with pytest.raises(ValueError):
        write_fvecs(tmp_path / "x.fvecs", np.zeros((0, 3)))


def test_fvecs_matches_reference_layout(tmp_path):
    """Byte-level check against the TexMex format definition."""
    data = np.array([[1.5, -2.0]], dtype=np.float32)
    path = tmp_path / "x.fvecs"
    write_fvecs(path, data)
    raw = path.read_bytes()
    assert raw[:4] == np.array([2], dtype="<i4").tobytes()
    assert raw[4:] == data.astype("<f4").tobytes()


# ----------------------------------------------------------------------
# ASCII plotting
# ----------------------------------------------------------------------

def test_ascii_plot_contains_markers_and_legend():
    out = ascii_plot(
        {"a": [(0, 1), (1, 2)], "b": [(0.5, 1.5)]}, width=20, height=5
    )
    assert "o" in out and "x" in out
    assert "o=a" in out and "x=b" in out


def test_ascii_plot_log_scale():
    out = ascii_plot(
        {"a": [(0, 1), (1, 1000)]}, width=10, height=4, logy=True
    )
    assert "log10" in out
    with pytest.raises(ValueError):
        ascii_plot({"a": [(0, -1)]}, logy=True)


def test_ascii_plot_validation():
    with pytest.raises(ValueError):
        ascii_plot({})
    with pytest.raises(ValueError):
        ascii_plot({"a": []})


def test_plot_time_recall_handles_empty_series():
    out = plot_time_recall({"a": [], "b": [(50.0, 1.0)]}, title="t")
    assert "t" in out
    out_empty = plot_time_recall({"a": []}, title="t")
    assert "no series" in out_empty


def test_single_point_plot_no_division_by_zero():
    out = ascii_plot({"a": [(1.0, 1.0)]})
    assert "o" in out


# ----------------------------------------------------------------------
# Recall model (theory/recall_model.py)
# ----------------------------------------------------------------------

@pytest.fixture()
def model():
    fam = RandomProjectionFamily(8, 32, w=4.0, seed=0)
    # NNs at distance 1 (p ~ 0.92), background at distance 20 (p ~ 0.16)
    return RecallModel.from_family(
        fam, nn_distances=[1.0] * 5, background_distances=[20.0] * 20,
        n_background=5000,
    )


def test_predicted_recall_monotone_in_lambda(model):
    values = [model.predicted_recall(lam) for lam in (1, 10, 100, 1000)]
    assert all(values[i] <= values[i + 1] + 1e-9 for i in range(3))
    assert 0.0 <= values[0] <= values[-1] <= 1.0


def test_background_threshold_monotone(model):
    # Allowing more candidates lowers the length cutoff.
    assert model.background_threshold(1000) <= model.background_threshold(10)
    with pytest.raises(ValueError):
        model.background_threshold(0)


def test_suggest_lambda_hits_target(model):
    lam = model.suggest_lambda(0.8)
    assert lam is not None
    assert model.predicted_recall(lam) >= 0.8
    assert model.suggest_lambda(0.999999, max_lambda=2) in (None, 1, 2)
    with pytest.raises(ValueError):
        model.suggest_lambda(0.0)


def test_model_separates_easy_and_hard_workloads():
    fam = RandomProjectionFamily(8, 32, w=4.0, seed=0)
    easy = predicted_recall(fam, [0.5], [30.0], 5000, lam=50)
    hard = predicted_recall(fam, [8.0], [12.0], 5000, lam=50)
    assert easy > hard


def test_model_wrapper_suggest():
    fam = HyperplaneFamily(8, 64, seed=1)
    lam = suggest_lambda(
        fam, nn_distances=[0.3], background_distances=[1.4],
        n_background=2000, target_recall=0.5,
    )
    assert lam is None or lam >= 1


def test_model_validation():
    fam = RandomProjectionFamily(8, 16, w=4.0, seed=0)
    with pytest.raises(ValueError):
        RecallModel.from_family(fam, [], [1.0], 100)

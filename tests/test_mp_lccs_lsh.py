"""Tests for MP-LCCS-LSH (paper §4.2)."""

import numpy as np
import pytest

from repro import LCCSLSH, MPLCCSLSH
from repro.hashes import MinHashFamily

from tests.helpers import average_recall


def test_single_probe_matches_lccs_lsh(clustered):
    """With #probes = 1 MP-LCCS-LSH degenerates to LCCS-LSH (paper fn. 13)."""
    data, queries, _ = clustered
    kw = dict(dim=24, m=24, metric="euclidean", w=1.0, seed=5)
    plain = LCCSLSH(**kw).fit(data)
    mp = MPLCCSLSH(n_probes=1, **kw).fit(data)
    for q in queries[:10]:
        ids_a, dists_a = plain.query(q, k=5, num_candidates=40)
        ids_b, dists_b = mp.query(q, k=5, num_candidates=40)
        assert ids_a.tolist() == ids_b.tolist()
        assert np.allclose(dists_a, dists_b)


def test_more_probes_do_not_hurt_recall(clustered):
    """Extra probes only add candidates, so recall is non-decreasing."""
    data, queries, gt = clustered
    kw = dict(dim=24, m=16, metric="euclidean", w=1.0, seed=6)
    mp = MPLCCSLSH(n_probes=1, **kw).fit(data)
    recalls = []
    for probes in (1, 17, 33):
        recalls.append(
            average_recall(
                mp, queries, gt, k=10, num_candidates=60, n_probes=probes
            )
        )
    assert recalls[0] <= recalls[1] + 1e-9
    assert recalls[1] <= recalls[2] + 1e-9


def test_probing_helps_small_m(clustered):
    """The paper's motivation: probing recovers recall when m is small."""
    data, queries, gt = clustered
    kw = dict(dim=24, m=8, metric="euclidean", w=1.0, seed=7)
    mp = MPLCCSLSH(n_probes=1, **kw).fit(data)
    base = average_recall(mp, queries, gt, k=10, num_candidates=30, n_probes=1)
    probed = average_recall(mp, queries, gt, k=10, num_candidates=30, n_probes=65)
    assert probed >= base


def test_angular_multiprobe(clustered_angular):
    data, queries, gt = clustered_angular
    mp = MPLCCSLSH(
        dim=24, m=16, metric="angular", cp_dim=8, seed=8, n_probes=33
    ).fit(data)
    rec = average_recall(mp, queries, gt, k=10, num_candidates=100)
    assert rec >= 0.85


def test_stats_reported(clustered):
    data, queries, _ = clustered
    mp = MPLCCSLSH(
        dim=24, m=16, metric="euclidean", w=1.0, seed=9, n_probes=17
    ).fit(data)
    mp.query(queries[0], k=3, num_candidates=30)
    assert mp.last_stats["probes"] == 17
    assert mp.last_stats["probe_searches"] >= 0
    assert mp.last_stats["candidates"] >= 3


def test_default_probes_is_m_plus_one():
    mp = MPLCCSLSH(dim=8, m=16, metric="euclidean", seed=0)
    assert mp.n_probes == 17


def test_rejects_nonprobing_family():
    fam = MinHashFamily(50, 16, seed=1)
    with pytest.raises(ValueError, match="multi-probe"):
        MPLCCSLSH(dim=50, m=16, family=fam)


def test_validation():
    with pytest.raises(ValueError):
        MPLCCSLSH(dim=8, m=8, n_probes=0)
    with pytest.raises(ValueError):
        MPLCCSLSH(dim=8, m=8, max_gap=0)
    with pytest.raises(ValueError):
        MPLCCSLSH(dim=8, m=8, max_alternatives=0)


def test_affected_shifts_cover_modified_positions(clustered):
    """Every shift whose window reaches a modified position is re-searched."""
    data, _, _ = clustered
    mp = MPLCCSLSH(
        dim=24, m=12, metric="euclidean", w=1.0, seed=10, n_probes=5
    ).fit(data)
    reach = np.array([2] * 12)
    affected = mp._affected_shifts((4,), reach)
    # shifts 2, 3, 4 have (4 - s) % 12 <= 2
    assert affected == [2, 3, 4]
    # wrap-around: position 0 with reach 3 affects shifts 9, 10, 11, 0
    affected = mp._affected_shifts((0,), np.array([3] * 12))
    assert affected == [0, 9, 10, 11]

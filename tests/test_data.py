"""Tests for synthetic generators, the dataset registry, and ground truth."""

import numpy as np
import pytest

from repro.data import (
    DATASET_SPECS,
    binary_strings,
    compute_ground_truth,
    dataset_names,
    exact_knn,
    gaussian_clusters,
    load_dataset,
    sift_like,
    sparse_sets,
    split_queries,
    uniform_hypercube,
)
from repro.data.synthetic import embedding_like
from repro.distances import pairwise


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------

def test_gaussian_clusters_shape_and_determinism():
    a = gaussian_clusters(100, 8, seed=1)
    b = gaussian_clusters(100, 8, seed=1)
    assert a.shape == (100, 8)
    assert np.array_equal(a, b)
    c = gaussian_clusters(100, 8, seed=2)
    assert not np.array_equal(a, c)


def test_gaussian_clusters_are_clustered():
    """Within-cluster spread must be far below the global spread."""
    data = gaussian_clusters(500, 16, n_clusters=5, cluster_std=0.05, seed=3)
    global_std = data.std()
    q = data[0]
    dists = np.sort(pairwise(data[1:], q, "euclidean"))
    # nearest neighbours are much closer than the median point
    assert dists[5] < 0.2 * np.median(dists)
    assert global_std > 0


def test_generator_validation():
    with pytest.raises(ValueError):
        gaussian_clusters(0, 4)
    with pytest.raises(ValueError):
        gaussian_clusters(10, 0)
    with pytest.raises(ValueError):
        gaussian_clusters(10, 4, n_clusters=0)
    with pytest.raises(ValueError):
        uniform_hypercube(0, 4)
    with pytest.raises(ValueError):
        binary_strings(10, 8, flip_prob=1.5)
    with pytest.raises(ValueError):
        sparse_sets(10, 50, overlap=0.0)


def test_sift_like_value_range():
    data = sift_like(200, seed=4)
    assert data.shape == (200, 128)
    assert data.min() >= 0.0
    assert data.max() <= 255.0
    assert np.allclose(data, np.rint(data))  # integer-valued


def test_embedding_like_normalised():
    data = embedding_like(100, 32, seed=5, normalize=True)
    assert np.allclose(np.linalg.norm(data, axis=1), 1.0)


def test_binary_strings_binary():
    data = binary_strings(50, 32, seed=6)
    assert set(np.unique(data)) <= {0, 1}


def test_sparse_sets_sizes():
    data = sparse_sets(50, 300, avg_size=20, seed=7)
    sizes = data.sum(axis=1)
    assert (sizes >= 1).all()
    assert sizes.mean() == pytest.approx(20, rel=0.3)


def test_split_queries_disjoint():
    data = uniform_hypercube(100, 4, seed=8)
    base, queries = split_queries(data, 10, seed=9)
    assert len(base) == 90 and len(queries) == 10
    # every original row appears exactly once across the two splits
    joined = np.vstack([base, queries])
    assert np.array_equal(
        np.sort(joined, axis=0), np.sort(data, axis=0)
    )
    with pytest.raises(ValueError):
        split_queries(data, 100)


# ----------------------------------------------------------------------
# Dataset registry (paper Table 2)
# ----------------------------------------------------------------------

def test_registry_matches_paper_dimensions():
    dims = {name: spec.dim for name, spec in DATASET_SPECS.items()}
    assert dims == {
        "msong": 420, "sift": 128, "gist": 960, "glove": 100, "deep": 256
    }
    assert dataset_names() == ("msong", "sift", "gist", "glove", "deep")


@pytest.mark.parametrize("name", ["sift", "glove"])
def test_load_dataset_contract(name):
    ds = load_dataset(name, n=300, n_queries=20, seed=1)
    assert ds.n == 300
    assert ds.n_queries == 20
    assert ds.dim == DATASET_SPECS[name].dim
    assert "euclidean" in ds.metrics
    assert ds.size_bytes() > 0
    again = load_dataset(name, n=300, n_queries=20, seed=1)
    assert np.array_equal(ds.data, again.data)
    assert np.array_equal(ds.queries, again.queries)


def test_load_dataset_unknown_name():
    with pytest.raises(KeyError):
        load_dataset("imagenet", n=10)
    with pytest.raises(ValueError):
        load_dataset("sift", n=10, n_queries=0)


def test_deep_dataset_is_unit_norm():
    ds = load_dataset("deep", n=100, n_queries=5, seed=2)
    assert np.allclose(np.linalg.norm(ds.data, axis=1), 1.0)


# ----------------------------------------------------------------------
# Ground truth
# ----------------------------------------------------------------------

def test_exact_knn_matches_naive(rng):
    data = rng.normal(size=(80, 6))
    q = rng.normal(size=6)
    ids, dists = exact_knn(data, q, 7, "euclidean")
    naive = np.sort(pairwise(data, q, "euclidean"))[:7]
    assert np.allclose(dists, naive)
    assert len(ids) == 7


def test_exact_knn_clamps_k(rng):
    data = rng.normal(size=(4, 3))
    ids, _ = exact_knn(data, data[0], 10)
    assert len(ids) == 4


def test_exact_knn_validation(rng):
    with pytest.raises(ValueError):
        exact_knn(np.empty((0, 3)), np.zeros(3), 1)
    with pytest.raises(ValueError):
        exact_knn(rng.normal(size=(5, 3)), np.zeros(3), 0)


def test_compute_ground_truth_shape(rng):
    data = rng.normal(size=(60, 5))
    queries = rng.normal(size=(7, 5))
    gt = compute_ground_truth(data, queries, k=4)
    assert gt.indices.shape == (7, 4)
    assert gt.distances.shape == (7, 4)
    assert gt.k == 4
    assert len(gt) == 7
    # distances ascending per row
    assert (np.diff(gt.distances, axis=1) >= 0).all()


def test_compute_ground_truth_validation(rng):
    with pytest.raises(ValueError):
        compute_ground_truth(rng.normal(size=(5, 3)), rng.normal(size=3), 2)

"""Tests for the probing-sequence generator and the kd-tree substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import Atom, KDTree, probing_sequence


# ----------------------------------------------------------------------
# probing_sequence (Lv et al. shift/expand enumeration)
# ----------------------------------------------------------------------

def test_first_probe_is_home_bucket():
    probes = list(probing_sequence([Atom(0, 5, 1.0)]))
    assert probes[0] == (0.0, {})


def test_costs_ascending(rng):
    atoms = [
        Atom(pos, int(code), float(cost))
        for pos, code, cost in zip(
            rng.integers(0, 4, 30), rng.integers(0, 100, 30), rng.random(30)
        )
    ]
    probes = []
    for i, (cost, mods) in enumerate(probing_sequence(atoms)):
        probes.append((cost, mods))
        if i > 100:
            break
    costs = [c for c, _ in probes]
    assert all(costs[i] <= costs[i + 1] + 1e-9 for i in range(len(costs) - 1))


def test_positions_unique_within_probe():
    atoms = [Atom(0, 1, 0.1), Atom(0, 2, 0.2), Atom(1, 3, 0.3)]
    for i, (cost, mods) in enumerate(probing_sequence(atoms)):
        assert len(mods) == len(set(mods))
        if i > 50:
            break


def test_enumerates_all_valid_subsets():
    atoms = [Atom(0, 10, 1.0), Atom(1, 20, 2.0)]
    seen = set()
    for cost, mods in probing_sequence(atoms):
        seen.add(tuple(sorted(mods.items())))
    assert seen == {
        (), ((0, 10),), ((1, 20),), ((0, 10), (1, 20)),
    }


def test_empty_atoms():
    assert list(probing_sequence([])) == [(0.0, {})]


@given(st.data())
@settings(max_examples=30, deadline=None)
def test_probing_property(data):
    n_atoms = data.draw(st.integers(1, 8))
    atoms = [
        Atom(
            data.draw(st.integers(0, 3)),
            data.draw(st.integers(0, 50)),
            data.draw(st.floats(0, 10, allow_nan=False)),
        )
        for _ in range(n_atoms)
    ]
    out = []
    for i, probe in enumerate(probing_sequence(atoms)):
        out.append(probe)
        if i >= 60:
            break
    costs = [c for c, _ in out]
    assert all(costs[i] <= costs[i + 1] + 1e-9 for i in range(len(costs) - 1))
    # no duplicate probes
    keys = [tuple(sorted(m.items())) for _, m in out]
    assert len(set(keys)) == len(keys)


# ----------------------------------------------------------------------
# KDTree
# ----------------------------------------------------------------------

def test_kdtree_query_exact(rng):
    pts = rng.normal(size=(200, 5))
    tree = KDTree(pts, leaf_size=8)
    for _ in range(10):
        q = rng.normal(size=5)
        ids, dists = tree.query(q, k=7)
        true = np.sort(np.linalg.norm(pts - q, axis=1))[:7]
        assert np.allclose(dists, true)


def test_kdtree_iter_nearest_is_sorted(rng):
    pts = rng.normal(size=(100, 3))
    tree = KDTree(pts, leaf_size=4)
    q = rng.normal(size=3)
    dists = [d for _, d in tree.iter_nearest(q)]
    assert len(dists) == 100
    assert all(dists[i] <= dists[i + 1] + 1e-12 for i in range(99))


def test_kdtree_enumerates_every_point_once(rng):
    pts = rng.normal(size=(64, 2))
    tree = KDTree(pts, leaf_size=4)
    ids = [i for i, _ in tree.iter_nearest(rng.normal(size=2))]
    assert sorted(ids) == list(range(64))


def test_kdtree_duplicate_points(rng):
    pts = np.tile(rng.normal(size=(1, 4)), (30, 1))
    tree = KDTree(pts, leaf_size=4)
    ids, dists = tree.query(pts[0], k=30)
    assert len(ids) == 30
    assert np.allclose(dists, 0.0)


def test_kdtree_validation(rng):
    with pytest.raises(ValueError):
        KDTree(np.empty((0, 3)))
    with pytest.raises(ValueError):
        KDTree(rng.normal(size=10))
    with pytest.raises(ValueError):
        KDTree(rng.normal(size=(5, 2)), leaf_size=0)
    tree = KDTree(rng.normal(size=(5, 2)))
    with pytest.raises(ValueError):
        tree.query(np.zeros(3), k=1)
    with pytest.raises(ValueError):
        tree.query(np.zeros(2), k=0)


@given(st.data())
@settings(max_examples=25, deadline=None)
def test_kdtree_exactness_property(data):
    n = data.draw(st.integers(1, 40))
    d = data.draw(st.integers(1, 4))
    elems = st.floats(-100, 100, allow_nan=False, allow_infinity=False)
    pts = np.array(
        data.draw(
            st.lists(
                st.lists(elems, min_size=d, max_size=d), min_size=n, max_size=n
            )
        )
    )
    q = np.array(data.draw(st.lists(elems, min_size=d, max_size=d)))
    k = data.draw(st.integers(1, n))
    tree = KDTree(pts, leaf_size=data.draw(st.integers(1, 8)))
    _, dists = tree.query(q, k=k)
    true = np.sort(np.linalg.norm(pts - q, axis=1))[:k]
    assert np.allclose(dists, true)

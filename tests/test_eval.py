"""Tests for evaluation metrics, harness, grid search, and reporting."""

import numpy as np
import pytest

from repro import LCCSLSH
from repro.baselines import LinearScan
from repro.data import compute_ground_truth, gaussian_clusters, split_queries
from repro.eval import (
    EvalResult,
    banner,
    evaluate,
    format_curve,
    format_results,
    format_table,
    grid,
    overall_ratio,
    pareto_frontier,
    recall,
    sweep,
    time_at_recall,
)


# ----------------------------------------------------------------------
# recall / ratio
# ----------------------------------------------------------------------

def test_recall_basic():
    assert recall(np.array([1, 2, 3]), np.array([1, 2, 3])) == 1.0
    assert recall(np.array([1, 9, 8]), np.array([1, 2, 3])) == pytest.approx(1 / 3)
    assert recall(np.array([]), np.array([1, 2])) == 0.0


def test_recall_ignores_padding():
    assert recall(np.array([1, -1, -1]), np.array([1, 2])) == 0.5


def test_recall_validation():
    with pytest.raises(ValueError):
        recall(np.array([1]), np.array([]))


def test_overall_ratio_basic():
    assert overall_ratio(np.array([2.0, 4.0]), np.array([1.0, 2.0])) == 2.0
    assert overall_ratio(np.array([1.0]), np.array([1.0])) == 1.0


def test_overall_ratio_short_result():
    # only the returned prefix is scored
    assert overall_ratio(np.array([3.0]), np.array([1.0, 1.0])) == 3.0
    assert overall_ratio(np.array([]), np.array([1.0])) == float("inf")


def test_overall_ratio_zero_distances():
    assert overall_ratio(np.array([0.0]), np.array([0.0])) == 1.0
    assert overall_ratio(np.array([1.0]), np.array([0.0])) == float("inf")


def test_overall_ratio_validation():
    with pytest.raises(ValueError):
        overall_ratio(np.array([1.0]), np.array([]))


# ----------------------------------------------------------------------
# evaluate
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def small_workload():
    raw = gaussian_clusters(400, 12, n_clusters=8, cluster_std=0.1, seed=21)
    data, queries = split_queries(raw, 10, seed=22)
    gt = compute_ground_truth(data, queries, k=10)
    return data, queries, gt


def test_evaluate_linear_scan_perfect(small_workload):
    data, queries, gt = small_workload
    res = evaluate(LinearScan(dim=12), data, queries, gt, k=10)
    assert res.recall == 1.0
    assert res.ratio == pytest.approx(1.0)
    assert res.avg_query_time_ms > 0
    assert res.method == "LinearScan"


def test_evaluate_records_params_and_stats(small_workload):
    data, queries, gt = small_workload
    idx = LCCSLSH(dim=12, m=16, w=1.0, seed=1)
    res = evaluate(
        idx, data, queries, gt, k=5,
        query_kwargs={"num_candidates": 30}, params={"m": 16},
    )
    assert res.params == {"m": 16}
    assert res.stats["candidates"] > 0
    assert res.index_size_mb > 0


def test_evaluate_validation(small_workload):
    data, queries, gt = small_workload
    with pytest.raises(ValueError):
        evaluate(LinearScan(dim=12), data, queries, gt, k=99)
    with pytest.raises(ValueError):
        evaluate(LinearScan(dim=12), data, queries[:3], gt, k=5)


# ----------------------------------------------------------------------
# grid / sweep / pareto
# ----------------------------------------------------------------------

def test_grid_cartesian_product():
    combos = grid(a=[1, 2], b=["x"])
    assert combos == [{"a": 1, "b": "x"}, {"a": 2, "b": "x"}]
    assert grid() == [{}]


def test_sweep_reuses_builds(small_workload):
    data, queries, gt = small_workload
    results = sweep(
        lambda m: LCCSLSH(dim=12, m=m, w=1.0, seed=2),
        grid(m=[8, 16]),
        data, queries, gt, k=5,
        query_grid=grid(num_candidates=[10, 40]),
    )
    assert len(results) == 4
    # identical build params share identical build times (same object)
    by_m = {}
    for r in results:
        by_m.setdefault(r.params["m"], set()).add(r.build_time_s)
    assert all(len(v) == 1 for v in by_m.values())


def _mk(recall_, time_):
    return EvalResult(
        method="x", k=10, recall=recall_, ratio=1.0,
        avg_query_time_ms=time_, build_time_s=0.0, index_size_mb=0.0,
    )


def test_pareto_frontier_removes_dominated():
    results = [_mk(0.5, 10.0), _mk(0.6, 5.0), _mk(0.7, 20.0), _mk(0.4, 50.0)]
    frontier = pareto_frontier(results)
    assert [(r.recall, r.avg_query_time_ms) for r in frontier] == [
        (0.6, 5.0), (0.7, 20.0)
    ]


def test_time_at_recall():
    results = [_mk(0.5, 10.0), _mk(0.9, 30.0), _mk(0.95, 25.0)]
    best = time_at_recall(results, 0.9)
    assert best.avg_query_time_ms == 25.0
    assert time_at_recall(results, 0.99) is None


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------

def test_format_table_alignment():
    out = format_table(["a", "bb"], [[1, 2.34567], ["xyz", 5]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert "2.346" in out
    assert "xyz" in out


def test_format_results_and_curve():
    out = format_results([_mk(0.5, 10.0)])
    assert "recall%" in out and "50" in out
    curve = format_curve("LCCS-LSH", [(50.0, 1.2), (90.0, 8.0)])
    assert "LCCS-LSH" in curve and "(50, 1.2)" in curve
    assert banner("Figure 4").count("=") > 0

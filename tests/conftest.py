"""Shared fixtures: small deterministic datasets and ground truths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import compute_ground_truth, gaussian_clusters, split_queries


@pytest.fixture()
def rng():
    """Fresh deterministic generator per test (no cross-test coupling)."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def clustered():
    """A small, well-clustered Euclidean workload: (data, queries, gt10)."""
    raw = gaussian_clusters(1200, 24, n_clusters=12, cluster_std=0.08, seed=7)
    data, queries = split_queries(raw, 20, seed=8)
    gt = compute_ground_truth(data, queries, k=10, metric="euclidean")
    return data, queries, gt


@pytest.fixture(scope="session")
def clustered_angular():
    """Unit-norm clustered workload with angular ground truth."""
    raw = gaussian_clusters(1200, 24, n_clusters=12, cluster_std=0.08, seed=9)
    raw /= np.linalg.norm(raw, axis=1, keepdims=True)
    data, queries = split_queries(raw, 20, seed=10)
    gt = compute_ground_truth(data, queries, k=10, metric="angular")
    return data, queries, gt

"""Cross-module integration tests: full pipelines on the paper datasets."""

import numpy as np
import pytest

from repro import LCCSLSH, MPLCCSLSH
from repro.baselines import E2LSH, FALCONN, LinearScan, MultiProbeLSH
from repro.data import compute_ground_truth, load_dataset
from repro.eval import evaluate, pareto_frontier, sweep, grid

from tests.helpers import average_recall


@pytest.fixture(scope="module")
def sift_small():
    ds = load_dataset("sift", n=1500, n_queries=12, seed=31)
    gt = compute_ground_truth(ds.data, ds.queries, k=10, metric="euclidean")
    return ds, gt


@pytest.fixture(scope="module")
def deep_small():
    ds = load_dataset("deep", n=1500, n_queries=12, seed=32)
    gt = compute_ground_truth(ds.data, ds.queries, k=10, metric="angular")
    return ds, gt


def test_lccs_lsh_beats_random_on_every_dataset():
    """On all five (simulated) paper datasets LCCS-LSH must find real NNs."""
    for name in ("msong", "sift", "gist", "glove", "deep"):
        ds = load_dataset(name, n=600, n_queries=6, seed=33)
        gt = compute_ground_truth(ds.data, ds.queries, k=5, metric="euclidean")
        scale = float(np.std(ds.data)) * np.sqrt(ds.dim) / 2 or 1.0
        index = LCCSLSH(
            dim=ds.dim, m=24, metric="euclidean", w=scale, seed=1
        ).fit(ds.data)
        rec = average_recall(index, ds.queries, gt, k=5, num_candidates=120)
        # 120/600 random candidates would give recall ~0.2
        assert rec >= 0.5, (name, rec)


def test_euclidean_pipeline_ranks_methods(sift_small):
    """LCCS-LSH should reach high recall with far fewer candidates than n."""
    ds, gt = sift_small
    w = 130.0
    lccs = evaluate(
        LCCSLSH(dim=ds.dim, m=32, w=w, seed=2),
        ds.data, ds.queries, gt, k=10,
        query_kwargs={"num_candidates": 150},
    )
    exact = evaluate(LinearScan(dim=ds.dim), ds.data, ds.queries, gt, k=10)
    assert lccs.recall >= 0.8
    assert lccs.stats["candidates"] < 0.25 * ds.n
    assert exact.recall == 1.0


def test_angular_pipeline_all_methods(deep_small):
    ds, gt = deep_small
    methods = {
        "lccs": LCCSLSH(dim=ds.dim, m=32, metric="angular", cp_dim=16, seed=3),
        "mp": MPLCCSLSH(
            dim=ds.dim, m=32, metric="angular", cp_dim=16, seed=3, n_probes=33
        ),
        "falconn": FALCONN(dim=ds.dim, K=1, L=8, n_probes=24, cp_dim=16, seed=3),
        "e2lsh-cp": E2LSH(dim=ds.dim, K=1, L=8, metric="angular", cp_dim=16, seed=3),
    }
    recalls = {}
    for name, idx in methods.items():
        kw = {"num_candidates": 150} if "lccs" in ("lccs",) and name in ("lccs", "mp") else {}
        res = evaluate(idx, ds.data, ds.queries, gt, k=10, query_kwargs=kw)
        recalls[name] = res.recall
    assert recalls["lccs"] >= 0.75
    assert recalls["mp"] >= recalls["lccs"] - 0.05
    assert all(r > 0.2 for r in recalls.values()), recalls


def test_sweep_produces_usable_frontier(sift_small):
    ds, gt = sift_small
    results = sweep(
        lambda m: LCCSLSH(dim=ds.dim, m=m, w=130.0, seed=4),
        grid(m=[16, 32]),
        ds.data, ds.queries, gt, k=10,
        query_grid=grid(num_candidates=[30, 120, 400]),
    )
    frontier = pareto_frontier(results)
    assert 1 <= len(frontier) <= len(results)
    recalls = [r.recall for r in frontier]
    assert recalls == sorted(recalls)
    assert frontier[-1].recall >= 0.85


def test_multiprobe_saves_memory_for_same_recall(sift_small):
    """Paper §6.4 'Indexing Performance': MP reaches the recall of a larger
    single-probe index while holding a smaller one (smaller m)."""
    ds, gt = sift_small
    big = LCCSLSH(dim=ds.dim, m=64, w=130.0, seed=5).fit(ds.data)
    small_mp = MPLCCSLSH(
        dim=ds.dim, m=16, w=130.0, seed=5, n_probes=65
    ).fit(ds.data)
    rec_big = average_recall(big, ds.queries, gt, k=10, num_candidates=100)
    rec_small = average_recall(small_mp, ds.queries, gt, k=10, num_candidates=100)
    assert small_mp.index_size_bytes() < big.index_size_bytes()
    assert rec_small >= rec_big - 0.12


def test_mixed_serialization(tmp_path, sift_small):
    """Every index type survives a save/load round trip."""
    ds, gt = sift_small
    indexes = [
        LCCSLSH(dim=ds.dim, m=16, w=130.0, seed=6),
        MPLCCSLSH(dim=ds.dim, m=16, w=130.0, seed=6, n_probes=17),
        E2LSH(dim=ds.dim, K=4, L=8, w=130.0, seed=6),
        MultiProbeLSH(dim=ds.dim, K=4, L=4, w=130.0, n_probes=16, seed=6),
    ]
    q = ds.queries[0]
    for idx in indexes:
        idx.fit(ds.data)
        want = idx.query(q, k=5)[0].tolist()
        path = tmp_path / f"{idx.name.replace(' ', '_')}.pkl"
        idx.save(str(path))
        loaded = type(idx).load(str(path))
        assert loaded.query(q, k=5)[0].tolist() == want

"""Tests for the query profiler and CSA npz persistence."""

import numpy as np
import pytest

from repro import LCCSLSH
from repro.core import CircularShiftArray
from repro.eval.profiler import profile_query


# ----------------------------------------------------------------------
# profiler
# ----------------------------------------------------------------------

def test_profile_phases_positive(clustered):
    data, queries, _ = clustered
    index = LCCSLSH(dim=24, m=16, w=1.0, seed=1).fit(data)
    prof = profile_query(index, queries[0], k=5, num_candidates=50)
    assert prof.hash_ms >= 0.0
    assert prof.search_ms > 0.0
    assert prof.merge_ms > 0.0
    assert prof.verify_ms > 0.0
    assert prof.total_ms == pytest.approx(
        prof.hash_ms + prof.search_ms + prof.merge_ms + prof.verify_ms
    )
    assert prof.candidates >= 50
    assert 0 <= prof.max_lccs <= 16


def test_profile_matches_query_candidates(clustered):
    data, queries, _ = clustered
    index = LCCSLSH(dim=24, m=16, w=1.0, seed=2).fit(data)
    prof = profile_query(index, queries[1], k=5, num_candidates=40)
    index.query(queries[1], k=5, num_candidates=40)
    assert prof.candidates == index.last_stats["candidates"]


def test_profile_as_dict_keys(clustered):
    data, queries, _ = clustered
    index = LCCSLSH(dim=24, m=16, w=1.0, seed=3).fit(data)
    d = profile_query(index, queries[0], k=3).as_dict()
    assert set(d) == {
        "hash_ms", "search_ms", "merge_ms", "verify_ms",
        "total_ms", "candidates", "max_lccs",
    }


def test_profile_requires_fitted_index():
    index = LCCSLSH(dim=8, m=8, seed=0)
    with pytest.raises(RuntimeError):
        profile_query(index, np.zeros(8))


def test_verify_dominates_at_alpha_zero(clustered):
    """Table 1 intuition: with lambda ~ n, verification is the main cost."""
    data, queries, _ = clustered
    index = LCCSLSH(dim=24, m=8, w=1.0, seed=4).fit(data)
    prof = profile_query(
        index, queries[0], k=5, num_candidates=len(data)
    )
    assert prof.verify_ms + prof.merge_ms > prof.search_ms


# ----------------------------------------------------------------------
# CSA npz persistence
# ----------------------------------------------------------------------

def test_csa_npz_roundtrip(tmp_path, rng):
    strings = rng.integers(0, 5, size=(50, 8))
    csa = CircularShiftArray(strings)
    path = str(tmp_path / "csa.npz")
    csa.save_npz(path)
    loaded = CircularShiftArray.load_npz(path)
    assert loaded.n == csa.n and loaded.m == csa.m
    assert np.array_equal(loaded.sorted_idx, csa.sorted_idx)
    assert np.array_equal(loaded.next_link, csa.next_link)
    q = rng.integers(0, 5, size=8)
    a_ids, a_lens = csa.k_lccs(q, 10)
    b_ids, b_lens = loaded.k_lccs(q, 10)
    assert a_ids.tolist() == b_ids.tolist()
    assert a_lens.tolist() == b_lens.tolist()


def test_csa_npz_rejects_corrupt(tmp_path, rng):
    strings = rng.integers(0, 5, size=(10, 4))
    csa = CircularShiftArray(strings)
    # missing arrays
    path = str(tmp_path / "bad.npz")
    np.savez_compressed(path, strings=csa.strings)
    with pytest.raises(ValueError, match="missing"):
        CircularShiftArray.load_npz(path)
    # inconsistent shapes
    path2 = str(tmp_path / "bad2.npz")
    np.savez_compressed(
        path2,
        strings=csa.strings,
        sorted_idx=csa.sorted_idx[:, :5],
        next_link=csa.next_link,
    )
    with pytest.raises(ValueError, match="inconsistent"):
        CircularShiftArray.load_npz(path2)

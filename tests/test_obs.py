"""The observability plane: tracing, metrics registry, exporters.

Covers the ``repro.obs`` package end to end:

* registry semantics — idempotent declarations, collector replace /
  conditional-unregister, one-snapshot consistency;
* ``ServerMetrics`` atomicity — ``requests`` can never disagree with
  the latency histogram ``count`` in any observable snapshot;
* Prometheus text rendering and cross-process snapshot merging
  (the prefork fan-in), including the file-based ``SnapshotSpool``;
* tracing — sampling, propagation tokens across threads, the always-on
  slow-query log, and the ``on_span`` history-recorder hook;
* the TCP server's ``trace`` / ``metrics`` protocol ops over a real
  socket, with a span-tree coherence check: a traced query's child
  spans must account for (nearly) all of the request's wall latency.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro import DynamicLCCSLSH
from repro.obs.export import SnapshotSpool, merge_snapshots, render_prometheus
from repro.obs.metrics import (
    LatencyHistogram,
    MetricsRegistry,
    ServerMetrics,
)
from repro.obs.tracing import Tracer, get_tracer, render_trace
from repro.serve import ANNService, ServeClient
from repro.serve.server import ServiceBackend, ThreadedServer

DIM = 16


@pytest.fixture()
def registry():
    return MetricsRegistry()


@pytest.fixture()
def quiet_tracer():
    """The process tracer, reset and disabled again afterwards."""
    tracer = get_tracer()
    tracer.reset()
    tracer.configure(sample=1, slow_threshold_s=10.0)
    yield tracer
    tracer.reset()
    tracer.configure(sample=0, slow_threshold_s=0.1)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

def test_registry_declarations_are_idempotent(registry):
    c1 = registry.counter("reqs_total", "requests")
    c2 = registry.counter("reqs_total")
    assert c1 is c2
    c1.inc(2.0, op="query")
    assert c2.value(op="query") == 2.0
    with pytest.raises(ValueError):
        registry.gauge("reqs_total")  # kind mismatch is an error


def test_registry_snapshot_tree(registry):
    registry.counter("hits_total", "cache hits").inc(3)
    registry.gauge("entries", "live entries", merge="max").set(7)
    registry.histogram("lat_seconds", "latency").observe(0.01, op="query")
    snap = registry.snapshot()
    assert isinstance(snap["pid"], int)
    fams = snap["families"]
    assert fams["hits_total"]["kind"] == "counter"
    assert fams["hits_total"]["samples"][0]["value"] == 3
    assert fams["entries"]["merge"] == "max"
    hist = fams["lat_seconds"]["samples"][0]
    assert hist["labels"] == {"op": "query"}
    assert hist["count"] == 1
    assert sum(hist["buckets"]) == 1


def test_collector_replace_and_conditional_unregister(registry):
    old = lambda: {"a": {"kind": "gauge", "samples": []}}  # noqa: E731
    new = lambda: {"b": {"kind": "gauge", "samples": []}}  # noqa: E731
    registry.register_collector("svc", old)
    registry.register_collector("svc", new)  # newest instance wins
    assert "b" in registry.snapshot()["families"]
    # The stale instance's close() must not evict its replacement.
    registry.unregister_collector("svc", old)
    assert "b" in registry.snapshot()["families"]
    registry.unregister_collector("svc", new)
    assert "b" not in registry.snapshot()["families"]


def test_broken_collector_never_breaks_a_scrape(registry):
    registry.counter("ok_total").inc()
    registry.register_collector("bad", lambda: 1 / 0)
    fams = registry.snapshot()["families"]
    assert "ok_total" in fams


# ----------------------------------------------------------------------
# ServerMetrics: counters and histogram can never disagree
# ----------------------------------------------------------------------

def test_server_metrics_snapshot_is_atomic():
    """Hammer observe() from threads while snapshotting: in every
    snapshot, per-op ``requests`` equals the histogram ``count`` plus
    that op's sheds (sheds never enter the histogram)."""
    metrics = ServerMetrics()
    stop = threading.Event()
    violations = []

    def writer():
        while not stop.is_set():
            metrics.observe("query", 0.001)
            metrics.count_shed("query")

    def reader():
        while not stop.is_set():
            snap = metrics.snapshot()
            op = snap["ops"].get("query")
            if op and op["requests"] != op["count"] + op["shed"]:
                violations.append(dict(op))

    threads = [threading.Thread(target=writer) for _ in range(4)]
    threads += [threading.Thread(target=reader) for _ in range(2)]
    for t in threads:
        t.start()
    time.sleep(0.4)
    stop.set()
    for t in threads:
        t.join(timeout=10)
    assert not violations, violations[:3]
    snap = metrics.snapshot()
    op = snap["ops"]["query"]
    assert op["requests"] == op["count"] + op["shed"]


def test_server_metrics_families():
    metrics = ServerMetrics()
    metrics.observe("query", 0.002)
    metrics.observe("insert", 0.004, error=True)
    metrics.count_shed("query")
    metrics.count_bad()
    fams = metrics.families()
    by_op = {
        s["labels"]["op"]: s["value"]
        for s in fams["repro_server_requests_total"]["samples"]
    }
    assert by_op == {"query": 2, "insert": 1}
    lat = {
        s["labels"]["op"]: s
        for s in fams["repro_server_request_latency_seconds"]["samples"]
    }
    assert lat["query"]["count"] == 1  # the shed never entered
    assert fams["repro_server_bad_requests_total"]["samples"][0]["value"] == 1


# ----------------------------------------------------------------------
# Export: Prometheus text + cross-process merge + spool
# ----------------------------------------------------------------------

def test_render_prometheus(registry):
    registry.counter("repro_reads_total", "reads").inc(5)
    registry.histogram("repro_lat_seconds", "latency").observe(0.01)
    text = render_prometheus(registry.snapshot())
    assert "# TYPE repro_reads_total counter" in text
    assert "repro_reads_total 5" in text
    assert "# TYPE repro_lat_seconds histogram" in text
    assert 'repro_lat_seconds_bucket{le="+Inf"} 1' in text
    assert "repro_lat_seconds_count 1" in text
    # cumulative bucket counts are monotone
    counts = [
        int(line.rsplit(" ", 1)[1])
        for line in text.splitlines()
        if line.startswith("repro_lat_seconds_bucket")
    ]
    assert counts == sorted(counts)


def test_merge_snapshots_counters_gauges_histograms():
    def snap(pid, reads, entries, seq, lat_bucket):
        buckets = [0] * 4
        buckets[lat_bucket] = 1
        return {
            "pid": pid,
            "families": {
                "reads_total": {
                    "kind": "counter", "help": "",
                    "samples": [{"labels": {}, "value": reads}],
                },
                "entries": {
                    "kind": "gauge", "help": "", "merge": "sum",
                    "samples": [{"labels": {}, "value": entries}],
                },
                "seq": {
                    "kind": "gauge", "help": "", "merge": "max",
                    "samples": [{"labels": {}, "value": seq}],
                },
                "lat": {
                    "kind": "histogram", "help": "",
                    "samples": [{
                        "labels": {}, "buckets": buckets, "count": 1,
                        "sum": 0.5, "min": 0.1, "max": 0.9,
                    }],
                },
            },
        }

    merged = merge_snapshots([snap(1, 10, 3, 41, 0), snap(2, 7, 4, 44, 2)])
    assert merged["pids"] == [1, 2]
    fams = merged["families"]
    assert fams["reads_total"]["samples"][0]["value"] == 17  # counters sum
    assert fams["entries"]["samples"][0]["value"] == 7  # sum mode
    assert fams["seq"]["samples"][0]["value"] == 44  # max mode
    lat = fams["lat"]["samples"][0]
    assert lat["buckets"] == [1, 0, 1, 0]
    assert lat["count"] == 2
    assert lat["sum"] == pytest.approx(1.0)
    assert (lat["min"], lat["max"]) == (0.1, 0.9)


def test_merge_single_snapshot_does_not_double():
    """Fan-in regression twin of the histogram self-merge fix: one
    process's snapshot merged alone (the single-worker scrape) must
    come out value-identical, not doubled."""
    reg = MetricsRegistry()
    reg.counter("c_total").inc(3)
    reg.histogram("h_seconds").observe(0.01)
    snap = reg.snapshot()
    merged = merge_snapshots([snap])
    assert merged["families"]["c_total"]["samples"][0]["value"] == 3
    assert merged["families"]["h_seconds"]["samples"][0]["count"] == 1


def test_snapshot_spool_roundtrip(tmp_path):
    spool = SnapshotSpool(str(tmp_path))
    spool.dump({"pid": 1, "families": {}})
    # simulate a peer process's dump
    (tmp_path / "obs-99999.json").write_text(
        json.dumps({"pid": 99999, "families": {}})
    )
    # torn file from a dead writer: skipped, not fatal
    (tmp_path / "obs-11111.json").write_text("{not json")
    snaps = spool.read_all()
    assert sorted(s["pid"] for s in snaps) == [1, 99999]
    peers = spool.read_all(exclude_self=True)
    assert [s["pid"] for s in peers] == [99999]
    spool.clear()
    assert spool.read_all() == []


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------

def test_sampling_one_in_n():
    tracer = Tracer(sample=3)
    traces = [tracer.start_trace("query") for _ in range(9)]
    assert sum(t is not None for t in traces) == 3


def test_sample_zero_disables():
    tracer = Tracer(sample=0)
    assert tracer.start_trace("query") is None
    # span() without an active parent is the shared no-op
    with tracer.span("anything") as sp:
        assert sp is not None


def test_span_tree_and_cross_thread_token():
    tracer = Tracer(sample=1)
    trace = tracer.start_trace("query", op="query")
    results = []

    def worker(token):
        # explicit propagation: attach the token on the other thread
        with tracer.attach(token):
            with tracer.span("index.query") as sp:
                sp.annotate(rows=5)
        results.append(tracer.current())

    with tracer.attach(trace.root):
        with tracer.span("batch") as batch_span:
            t = threading.Thread(target=worker, args=(batch_span,))
            t.start()
            t.join()
    trace.finish()
    assert results == [None]  # attach is scoped: nothing leaks
    payload = trace.to_dict()
    by_name = {s["name"]: s for s in payload["spans"]}
    assert by_name["batch"]["parent_id"] == trace.root.span_id
    assert by_name["index.query"]["parent_id"] == by_name["batch"]["span_id"]
    assert by_name["index.query"]["attrs"] == {"rows": 5}
    # synthesized externally-measured interval
    trace.add_span("kernel.hash", 0.0, 0.001, parent=trace.root)
    assert "kernel.hash" in render_trace(trace.to_dict())


def test_slow_log_always_on_and_bounded():
    tracer = Tracer(sample=0, slow_threshold_s=0.005, slow_log_size=4)
    tracer.observe_request("query", 0.001)  # fast: one compare, no entry
    for i in range(10):
        tracer.observe_request("query", 0.01 + i * 0.001)
    log = tracer.slow_log()
    assert len(log) == 4  # bounded top-N
    durations = [e["duration_s"] for e in log]
    assert durations == sorted(durations, reverse=True)
    assert durations[0] == pytest.approx(0.019)
    assert tracer.stats()["slow_total"] == 10.0


def test_slow_log_dump_json_lines(tmp_path):
    tracer = Tracer(sample=1, slow_threshold_s=0.0)
    trace = tracer.start_trace("query", op="query")
    trace.finish()
    tracer.observe_request("query", 0.5, trace=trace)
    path = tmp_path / "slow.jsonl"
    assert tracer.dump_slow_log(str(path)) == 1
    entry = json.loads(path.read_text().splitlines()[0])
    assert entry["op"] == "query"
    assert entry["trace"]["trace_id"] == trace.trace_id


def test_on_span_recorder_hook():
    """The history-recorder hook (ROADMAP item 4): a subscriber sees
    every finished span of sampled traces, root spans included — the
    stream a consistency checker replays as the client history."""
    tracer = Tracer(sample=1)
    seen = []
    tracer.on_span(lambda sp: seen.append((sp.name, sp.attrs.get("op"))))
    trace = tracer.start_trace("insert", op="insert")
    with tracer.attach(trace.root):
        with tracer.span("wal.append"):
            pass
    trace.finish()
    assert ("wal.append", None) in seen
    assert ("insert", "insert") in seen
    # a crashing subscriber never breaks serving
    tracer.on_span(lambda sp: 1 / 0)
    t2 = tracer.start_trace("query")
    t2.finish()
    assert any(name == "query" for name, _ in seen)


# ----------------------------------------------------------------------
# TCP protocol ops: trace / metrics over a real socket
# ----------------------------------------------------------------------

def _served(tracer=None):
    rng = np.random.default_rng(3)
    index = DynamicLCCSLSH(dim=DIM, m=8, w=4.0, seed=2).fit(
        rng.normal(size=(150, DIM))
    )
    service = ANNService(index, batch_window_ms=2.0, cache_size=64)
    backend = ServiceBackend(service, default_k=5)
    return ThreadedServer(backend, tracer=tracer), service


def test_tcp_trace_op_span_tree_coherent(quiet_tracer):
    """End to end over a socket: a sampled query's span tree must show
    the full pipeline, and its direct children must account for nearly
    all of the root's wall latency (the acceptance bar: within 10%)."""
    server, service = _served()
    rng = np.random.default_rng(4)
    try:
        with server, ServeClient("127.0.0.1", server.port) as client:
            for _ in range(5):
                client.request(
                    {"query": rng.normal(size=DIM).tolist(), "k": 3}
                )
            response = client.request({"trace": 10})
    finally:
        service.close()
    traces = [t for t in response["traces"] if t["name"] == "query"]
    assert traces, response
    best = 0.0
    names_seen = set()
    for payload in traces:
        spans = payload["spans"]
        root = next(s for s in spans if s["parent_id"] is None)
        names = {s["name"] for s in spans}
        names_seen |= names
        kids = [s for s in spans if s["parent_id"] == root["span_id"]]
        coverage = sum(s["duration_s"] for s in kids) / root["duration_s"]
        best = max(best, coverage)
        # children stay inside the root interval
        root_end = root["start_s"] + root["duration_s"]
        for s in kids:
            assert s["start_s"] >= root["start_s"] - 1e-6
            assert s["start_s"] + s["duration_s"] <= root_end + 1e-6
    assert {"admission", "cache.probe", "batch", "batch.wait",
            "index.query", "lock.wait", "kernel.search"} <= names_seen
    assert best >= 0.9, f"best child coverage {best:.3f} < 0.9"


def test_tcp_trace_op_cache_hit_and_batching(quiet_tracer):
    server, service = _served()
    rng = np.random.default_rng(5)
    q = rng.normal(size=DIM).tolist()
    try:
        with server, ServeClient("127.0.0.1", server.port) as client:
            client.request({"query": q, "k": 3})
            client.request({"query": q, "k": 3})  # identical: cache hit
            response = client.request({"trace": 10})
    finally:
        service.close()
    probes = [
        s
        for t in response["traces"]
        for s in t["spans"]
        if s["name"] == "cache.probe"
    ]
    hits = [s for s in probes if s["attrs"].get("hit")]
    assert hits, probes  # the second request probed hot


def test_tcp_metrics_op_families(quiet_tracer):
    server, service = _served()
    rng = np.random.default_rng(6)
    try:
        with server, ServeClient("127.0.0.1", server.port) as client:
            client.request({"query": rng.normal(size=DIM).tolist(), "k": 3})
            client.request({"insert": rng.normal(size=DIM).tolist()})
            tree = client.request({"metrics": True})["metrics"]
            text = client.request({"metrics": "prometheus"})["prometheus"]
    finally:
        service.close()
    fams = tree["families"]
    for family in (
        "repro_server_requests_total",
        "repro_server_request_latency_seconds",
        "repro_index_reads_total",
        "repro_index_writes_total",
        "repro_cache_misses_total",
        "repro_tier_segments",
        "repro_batch_batches_total",
        "repro_index_version",
    ):
        assert family in fams, family
        assert family in text, family
    assert "repro_trace_sampled_total" in fams


def test_tcp_metrics_op_merges_spool(quiet_tracer, tmp_path):
    """A scrape on a spooled server folds peer snapshots in (the
    prefork fan-in), without double counting its own."""
    peer = {
        "pid": 424242,
        "families": {
            "repro_peer_only_total": {
                "kind": "counter", "help": "",
                "samples": [{"labels": {}, "value": 5}],
            },
        },
    }
    (tmp_path / "obs-424242.json").write_text(json.dumps(peer))
    spool = SnapshotSpool(str(tmp_path))
    server, service = _served()
    rng = np.random.default_rng(7)
    try:
        with server:
            server.server._spool = spool
            with ServeClient("127.0.0.1", server.port) as client:
                client.request(
                    {"query": rng.normal(size=DIM).tolist(), "k": 3}
                )
                tree = client.request({"metrics": True})["metrics"]
    finally:
        service.close()
    assert 424242 in tree["pids"]
    fams = tree["families"]
    assert fams["repro_peer_only_total"]["samples"][0]["value"] == 5
    # the local worker's families are merged exactly once
    query_reqs = [
        s["value"]
        for s in fams["repro_server_requests_total"]["samples"]
        if s["labels"].get("op") == "query"
    ]
    assert query_reqs == [1]


def test_backcompat_reexports():
    import repro.serve.metrics as old
    from repro.obs import metrics as new

    assert old.LatencyHistogram is new.LatencyHistogram
    assert old.ServerMetrics is new.ServerMetrics
    assert old.get_registry is new.get_registry

"""Query-cache correctness: LRU mechanics and the no-staleness property.

The load-bearing property (hypothesis-driven): under **arbitrary
interleavings** of query / insert / delete through an
:class:`~repro.serve.service.ANNService`, a query answer served from the
cache is always byte-identical to a fresh ``query`` against a replica
index in the same state — i.e. the version-keyed cache can never return
a stale result, no matter how ops interleave.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DynamicLCCSLSH
from repro.serve import ANNService, QueryCache, query_key

DIM = 8


def _fitted_dynamic(seed: int = 3) -> DynamicLCCSLSH:
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(60, DIM))
    return DynamicLCCSLSH(
        dim=DIM, m=8, w=4.0, seed=7, rebuild_threshold=0.15
    ).fit(data)


# ----------------------------------------------------------------------
# QueryCache units
# ----------------------------------------------------------------------


def test_cache_hit_returns_copies():
    cache = QueryCache(max_entries=4)
    key = query_key(np.arange(DIM, dtype=np.float64), 3, 0, {})
    ids = np.array([1, 2, 3], dtype=np.int64)
    dists = np.array([0.1, 0.2, 0.3])
    cache.put(key, ids, dists)
    got_ids, got_dists = cache.get(key)
    assert np.array_equal(got_ids, ids) and np.array_equal(got_dists, dists)
    got_ids[0] = 99  # mutating a hit must not poison the cache
    again_ids, _ = cache.get(key)
    assert again_ids[0] == 1
    stats = cache.stats()
    assert stats["hits"] == 2 and stats["misses"] == 0


def test_cache_lru_eviction_order():
    cache = QueryCache(max_entries=2)
    keys = [
        query_key(np.full(DIM, float(i)), 1, 0, {}) for i in range(3)
    ]
    empty = (np.empty(0, dtype=np.int64), np.empty(0))
    cache.put(keys[0], *empty)
    cache.put(keys[1], *empty)
    assert cache.get(keys[0]) is not None  # key0 is now most recent
    cache.put(keys[2], *empty)  # evicts key1, the LRU
    assert cache.get(keys[1]) is None
    assert cache.get(keys[0]) is not None
    assert cache.get(keys[2]) is not None
    assert cache.stats()["evictions"] == 1


def test_cache_key_distinguishes_everything():
    q = np.arange(DIM, dtype=np.float64)
    base = query_key(q, 3, 0, {})
    assert query_key(q, 4, 0, {}) != base          # k
    assert query_key(q, 3, 1, {}) != base          # version
    assert query_key(q, 3, 0, {"num_candidates": 5}) != base  # kwargs
    assert query_key(q + 1, 3, 0, {}) != base      # bytes
    assert query_key(q.astype(np.float32), 3, 0, {}) != base  # dtype
    assert query_key(q, 3, 0, {}) == base          # deterministic


def test_cache_invalidate_clears_but_counts():
    cache = QueryCache(max_entries=8)
    key = query_key(np.zeros(DIM), 1, 0, {})
    cache.put(key, np.array([0], dtype=np.int64), np.array([0.0]))
    cache.invalidate()
    assert len(cache) == 0
    assert cache.get(key) is None
    assert cache.stats()["invalidations"] == 1


def test_cache_rejects_bad_capacity():
    with pytest.raises(ValueError):
        QueryCache(max_entries=0)


# ----------------------------------------------------------------------
# Service-level staleness property (hypothesis)
# ----------------------------------------------------------------------

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("query"), st.integers(0, 7), st.integers(1, 6)),
        st.tuples(st.just("insert"), st.integers(0, 15), st.just(0)),
        st.tuples(st.just("delete"), st.integers(0, 200), st.just(0)),
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(ops=_OPS)
def test_cache_never_stale_under_interleavings(ops):
    """Service answers (cached or not) always match a fresh replica query.

    The service runs with an aggressive cache (every query cached, big
    window disabled) while a bare replica index receives the identical
    op sequence; any stale cache entry surviving a write would make the
    post-write comparison fail.
    """
    rng = np.random.default_rng(11)
    query_pool = rng.normal(size=(8, DIM))
    insert_pool = rng.normal(size=(16, DIM))
    service_index = _fitted_dynamic()
    replica = _fitted_dynamic()
    live: list = list(range(60))  # handles believed live, mirror-side
    writes = 0
    with ANNService(
        service_index, cache_size=256, batch_window_ms=0.0, max_batch_size=8
    ) as service:
        for op, a, b in ops:
            if op == "query":
                q = query_pool[a]
                got_ids, got_dists = service.query(q, k=b, num_candidates=30)
                want_ids, want_dists = replica.query(q, k=b, num_candidates=30)
                assert got_ids.tobytes() == want_ids.tobytes()
                assert got_dists.tobytes() == want_dists.tobytes()
                # and a repeat (likely a cache hit) must agree too
                rep_ids, rep_dists = service.query(q, k=b, num_candidates=30)
                assert rep_ids.tobytes() == want_ids.tobytes()
                assert rep_dists.tobytes() == want_dists.tobytes()
            elif op == "insert":
                vector = insert_pool[a]
                handle = service.insert(vector)
                assert handle == replica.insert(vector)
                live.append(handle)
                writes += 1
            else:  # delete a pseudo-random live handle, if any
                if not live:
                    continue
                handle = live.pop(a % len(live))
                service.delete(handle)
                replica.delete(handle)
                writes += 1
        stats = service.stats()
        assert stats["version"] == writes  # every write bumped the version


def test_cached_hit_equals_fresh_query_at_same_version():
    """Direct statement of the invariant: hit bytes == fresh-query bytes."""
    index = _fitted_dynamic()
    replica = _fitted_dynamic()
    rng = np.random.default_rng(21)
    q = rng.normal(size=DIM)
    with ANNService(index, cache_size=16, batch_window_ms=0.0) as service:
        first = service.query(q, k=4, num_candidates=30)
        hit = service.query(q, k=4, num_candidates=30)
        assert service.stats()["cache_hits"] >= 1
        fresh = replica.query(q, k=4, num_candidates=30)
        for got in (first, hit):
            assert got[0].tobytes() == fresh[0].tobytes()
            assert got[1].tobytes() == fresh[1].tobytes()
        # a write makes the old entry unreachable: the next query must
        # reflect the new point, not the cached pre-write answer
        handle = service.insert(q)  # the query point itself: nearest hit
        ids, dists = service.query(q, k=4, num_candidates=30)
        assert ids[0] == handle and dists[0] == 0.0


def test_cache_disabled_service_still_correct():
    index = _fitted_dynamic()
    replica = _fitted_dynamic()
    rng = np.random.default_rng(22)
    q = rng.normal(size=DIM)
    with ANNService(index, cache_size=0, batch_window_ms=0.0) as service:
        got = service.query(q, k=3, num_candidates=30)
        want = replica.query(q, k=3, num_candidates=30)
        assert got[0].tobytes() == want[0].tobytes()
        assert "cache_hits" not in service.stats()


# ----------------------------------------------------------------------
# Unhashable kwarg values (regression: TypeError from query_key, and a
# ValueError killing the micro-batcher's group comparison)
# ----------------------------------------------------------------------


def test_query_key_accepts_unhashable_kwarg_values():
    """Regression: list/ndarray/dict kwarg values used to raise

    ``TypeError: unhashable type`` the moment the key hit the cache's
    dict.  ``freeze_kwargs`` must normalize them into hashable
    equivalents, insensitive to kwarg order.
    """
    q = np.arange(DIM, dtype=np.float64)
    kwargs = {
        "subset": [1, 2, 3],
        "weights": np.array([0.5, 0.25]),
        "opts": {"b": 2, "a": 1},
    }
    key = query_key(q, 3, 0, kwargs)
    assert {key: "cached"}[key] == "cached"  # usable as a dict key
    same = query_key(
        q, 3, 0,
        {
            "opts": {"a": 1, "b": 2},
            "weights": np.array([0.5, 0.25]),
            "subset": (1, 2, 3),  # list vs tuple: same frozen sequence
        },
    )
    assert key == same
    different = query_key(
        q, 3, 0, {**kwargs, "subset": [1, 2, 4]}
    )
    assert key != different


def test_freeze_kwargs_distinguishes_dtype_shape_and_scalars():
    from repro.serve import freeze_kwargs

    base = freeze_kwargs({"w": np.array([1.0, 2.0])})
    assert base == freeze_kwargs({"w": np.array([1.0, 2.0])})
    assert base != freeze_kwargs({"w": np.array([1.0, 2.0], np.float32)})
    assert base != freeze_kwargs({"w": np.array([[1.0], [2.0]])})
    # numpy scalars fold to their python value: np.int64(5) and 5 are
    # the same query, so they must be the same cache key
    assert freeze_kwargs({"n": np.int64(5)}) == freeze_kwargs({"n": 5})


def test_request_group_comparison_is_plain_bool_with_array_kwargs():
    """Regression: ``_Request.group`` held raw kwarg values, so the

    batcher's ``group == group`` comparison on ndarray values raised
    ``ValueError: truth value of an array ... is ambiguous`` inside the
    executor thread, killing the micro-batcher.
    """
    from repro.serve.service import _Request

    q = np.zeros(DIM)
    r1 = _Request(q, 3, {"weights": np.array([1.0, 2.0])})
    r2 = _Request(q.copy(), 3, {"weights": np.array([1.0, 2.0])})
    r3 = _Request(q, 3, {"weights": np.array([1.0, 3.0])})
    assert (r1.group == r2.group) is True
    assert (r1.group == r3.group) is False


def test_service_query_with_numpy_kwarg_end_to_end():
    """The whole path — cache lookup, batch grouping, cache fill — must

    work when a kwarg value is a numpy scalar, and hit the same cache
    entry as the equivalent python int.
    """
    index = _fitted_dynamic()
    rng = np.random.default_rng(23)
    q = rng.normal(size=DIM)
    with ANNService(index, cache_size=16, batch_window_ms=0.0) as service:
        first = service.query(q, k=3, num_candidates=np.int64(30))
        again = service.query(q, k=3, num_candidates=30)
        assert service.stats()["cache_hits"] >= 1
        assert first[0].tobytes() == again[0].tobytes()
        assert first[1].tobytes() == again[1].tobytes()

"""Tests for Algorithm 3 (perturbation vector generation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import generate_perturbation_vectors, score_of


def make_scores(rng, m, n_alt):
    return [np.sort(rng.random(n_alt)) for _ in range(m)]


def test_first_probe_is_empty(rng):
    scores = make_scores(rng, 6, 3)
    probes = list(generate_perturbation_vectors(scores, 5))
    assert probes[0] == ()


def test_emits_exactly_n_probes_when_available(rng):
    scores = make_scores(rng, 8, 4)
    probes = list(generate_perturbation_vectors(scores, 20))
    assert len(probes) == 20


def test_probe_count_can_be_limited_by_space():
    # One position, one alternative: only 2 probes exist.
    scores = [np.array([0.5])]
    probes = list(generate_perturbation_vectors(scores, 10))
    assert probes == [(), ((0, 0),)]


def test_scores_are_non_decreasing(rng):
    scores = make_scores(rng, 10, 4)
    probes = list(generate_perturbation_vectors(scores, 64))
    vals = [score_of(p, scores) for p in probes]
    assert all(vals[i] <= vals[i + 1] + 1e-12 for i in range(len(vals) - 1))


def test_no_duplicate_probes(rng):
    scores = make_scores(rng, 10, 3)
    probes = list(generate_perturbation_vectors(scores, 100))
    assert len(set(probes)) == len(probes)


def test_gap_constraint_respected(rng):
    scores = make_scores(rng, 12, 3)
    for max_gap in (1, 2, 3):
        probes = generate_perturbation_vectors(scores, 200, max_gap=max_gap)
        for p in probes:
            positions = [pos for pos, _ in p]
            assert positions == sorted(positions)
            gaps = np.diff(positions)
            assert (gaps >= 1).all() and (gaps <= max_gap).all()


def test_all_single_modifications_eventually_emitted(rng):
    """Algorithm 3 seeds every position, so all singletons appear."""
    m = 6
    scores = make_scores(rng, m, 1)
    probes = list(generate_perturbation_vectors(scores, 1000))
    singles = {p[0][0] for p in probes if len(p) == 1}
    assert singles == set(range(m))


def test_exhaustive_enumeration_small_case():
    """With MAX_GAP=1 and m=3, all vectors are contiguous blocks."""
    scores = [np.array([1.0]), np.array([2.0]), np.array([4.0])]
    probes = set(generate_perturbation_vectors(scores, 100, max_gap=1))
    expected = {
        (),
        ((0, 0),), ((1, 0),), ((2, 0),),
        ((0, 0), (1, 0)), ((1, 0), (2, 0)),
        ((0, 0), (1, 0), (2, 0)),
    }
    assert probes == expected


def test_validation():
    with pytest.raises(ValueError):
        list(generate_perturbation_vectors([np.array([1.0])], 0))
    with pytest.raises(ValueError):
        list(generate_perturbation_vectors([np.array([1.0])], 5, max_gap=0))


def test_empty_positions_skipped():
    scores = [np.array([]), np.array([1.0]), np.array([])]
    probes = list(generate_perturbation_vectors(scores, 10))
    assert probes == [(), ((1, 0),)]


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_property_sorted_and_valid(data):
    m = data.draw(st.integers(1, 8))
    n_alt = data.draw(st.integers(1, 4))
    max_gap = data.draw(st.integers(1, 3))
    n_probes = data.draw(st.integers(1, 60))
    raw = data.draw(
        st.lists(
            st.lists(
                st.floats(0, 100, allow_nan=False), min_size=n_alt, max_size=n_alt
            ),
            min_size=m,
            max_size=m,
        )
    )
    scores = [np.sort(np.array(row)) for row in raw]
    probes = list(generate_perturbation_vectors(scores, n_probes, max_gap=max_gap))
    assert len(probes) <= n_probes
    assert probes[0] == ()
    vals = [score_of(p, scores) for p in probes]
    assert all(vals[i] <= vals[i + 1] + 1e-9 for i in range(1, len(vals) - 1))
    for p in probes:
        positions = [pos for pos, _ in p]
        assert all(
            1 <= positions[i + 1] - positions[i] <= max_gap
            for i in range(len(positions) - 1)
        )
        for pos, j in p:
            assert 0 <= pos < m and 0 <= j < len(scores[pos])

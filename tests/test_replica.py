"""Log-shipping replicas: equivalence, routing, read-your-writes.

Acceptance contract: after the primary acknowledges N writes, a
caught-up replica (``min_version=N``) returns **byte-identical** results
to the primary for the same queries — replicas are not approximately
fresh copies, they are the same deterministic state reached through
snapshot restore + log replay.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import IndexSpec
from repro.eval import evaluate_replicas
from repro.serve import (
    DurableIndex,
    ReplicaSet,
    SnapshotManager,
    StaleReadError,
)

DIM = 8
SPEC = IndexSpec(
    "DynamicLCCSLSH", dim=DIM, m=8, w=4.0, seed=13, rebuild_threshold=0.3
)


def make_primary(tmp_path, n_writes=25, snapshots=False):
    wal_dir = str(tmp_path / "wal")
    snaps = (
        SnapshotManager(wal_dir, keep=2, every_ops=10) if snapshots else None
    )
    primary = DurableIndex(SPEC.build(), wal_dir, spec=SPEC, snapshots=snaps)
    rng = np.random.default_rng(1)
    primary.fit(rng.normal(size=(30, DIM)))
    for i in range(n_writes):
        if i % 6 == 5:
            try:
                primary.delete((11 * i) % primary.n)
            except KeyError:
                pass
        else:
            primary.insert(rng.normal(size=DIM))
    return primary


def queries_for(n=8, seed=21):
    return np.random.default_rng(seed).normal(size=(n, DIM))


def assert_matches_primary(replica_set, primary, queries, k=5):
    seq = primary.applied_seq
    for q in queries:
        cap = primary.n
        ids_r, dists_r = replica_set.query(
            q, k=k, min_version=seq, num_candidates=cap
        )
        ids_p, dists_p = primary.query(q, k=k, num_candidates=cap)
        assert ids_r.tobytes() == ids_p.tobytes()
        assert dists_r.tobytes() == dists_p.tobytes()


@pytest.mark.parametrize("snapshots", [False, True])
def test_caught_up_replica_is_byte_identical(tmp_path, snapshots):
    primary = make_primary(tmp_path, snapshots=snapshots)
    with ReplicaSet(primary, num_replicas=2) as rs:
        assert_matches_primary(rs, primary, queries_for())
    primary.close()


def test_replica_catches_up_after_later_writes(tmp_path):
    primary = make_primary(tmp_path)
    rng = np.random.default_rng(9)
    with ReplicaSet(primary, num_replicas=2) as rs:
        # Writes that land *after* the replicas bootstrapped.
        handle, seq = rs.insert(rng.normal(size=DIM))
        assert handle == primary.n - 1
        assert seq == primary.applied_seq
        seq = rs.delete(handle)
        assert_matches_primary(rs, primary, queries_for())
        stats = rs.stats()
        assert stats["primary_seq"] == float(primary.applied_seq)
        assert all(
            stats[f"replica{i}_applied_seq"] == float(seq) for i in range(2)
        )
    primary.close()


def test_round_robin_routing_balances_reads(tmp_path):
    primary = make_primary(tmp_path, n_writes=5)
    with ReplicaSet(primary, num_replicas=3) as rs:
        queries = queries_for(n=9)
        for q in queries:
            rs.query(q, k=2, num_candidates=primary.n)
        reads = [replica.reads for replica in rs.replicas]
        assert reads == [3, 3, 3]
    primary.close()


def test_stale_read_without_min_version_serves_old_state(tmp_path):
    primary = make_primary(tmp_path, n_writes=0)
    rng = np.random.default_rng(4)
    with ReplicaSet(primary, num_replicas=1) as rs:
        boot_seq = rs.replicas[0].applied_seq
        vec = rng.normal(size=DIM)
        handle, seq = rs.insert(vec)
        # Without min_version the replica answers from its stale state...
        ids, _ = rs.query(vec, k=1, num_candidates=primary.n)
        assert rs.replicas[0].applied_seq == boot_seq
        assert handle not in ids.tolist()
        # ...with min_version it catches up and reads its own write.
        ids, dists = rs.query(vec, k=1, min_version=seq,
                              num_candidates=primary.n)
        assert ids.tolist() == [handle]
        assert dists[0] == 0.0
    primary.close()


def test_min_version_beyond_log_raises(tmp_path):
    primary = make_primary(tmp_path, n_writes=3)
    with ReplicaSet(primary, num_replicas=1) as rs:
        with pytest.raises(StaleReadError, match="min_version"):
            rs.query(
                queries_for(1)[0], k=1,
                min_version=primary.applied_seq + 10,
            )
    primary.close()


@pytest.mark.timeout(60)
def test_background_tailing_converges(tmp_path):
    primary = make_primary(tmp_path, n_writes=2)
    rng = np.random.default_rng(8)
    with ReplicaSet(primary, num_replicas=2) as rs:
        rs.start_tailing(interval_s=0.01)
        target = None
        for _ in range(10):
            primary.insert(rng.normal(size=DIM))
        target = primary.applied_seq
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if all(r.applied_seq >= target for r in rs.replicas):
                break
            time.sleep(0.01)
        assert all(r.applied_seq >= target for r in rs.replicas)
        rs.stop_tailing()
    primary.close()


def test_replica_set_validates_arguments(tmp_path):
    primary = make_primary(tmp_path, n_writes=0)
    with pytest.raises(ValueError, match="num_replicas"):
        ReplicaSet(primary, num_replicas=0)
    primary.close()
    from repro import DynamicLCCSLSH

    with pytest.raises(TypeError, match="DurableIndex"):
        ReplicaSet(DynamicLCCSLSH(dim=DIM, m=8, w=4.0), num_replicas=1)


def test_evaluate_replicas_matches_primary_accuracy(tmp_path):
    from repro.data import compute_ground_truth
    from repro.eval import evaluate

    primary = make_primary(tmp_path, n_writes=0)
    queries = queries_for(n=10)
    data = primary.inner._vectors
    gt = compute_ground_truth(data, queries, k=5, metric="euclidean")
    with ReplicaSet(primary, num_replicas=2) as rs:
        result = evaluate_replicas(
            rs, queries, gt, k=5,
            query_kwargs={"num_candidates": primary.n}, threads=2,
        )
        direct = evaluate(
            primary.inner, data, queries, gt, k=5,
            query_kwargs={"num_candidates": primary.n},
        )
    assert result.recall == direct.recall
    assert result.ratio == direct.ratio
    assert result.stats["replicas"] == 2.0
    assert result.stats["replica0_reads"] + result.stats["replica1_reads"] == 10.0
    primary.close()

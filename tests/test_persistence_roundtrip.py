"""Save -> load round trips for every index in the serving registry.

The equivalence contract: ``fit -> query -> save -> load -> query``
returns *identical* ``(ids, distances)``, and the loaded index preserves
``dim`` / ``metric`` / ``seed`` / ``build_time`` and the work counters
in ``last_stats``.  Native bundles (LCCS family, LinearScan, Sharded)
and pickle-fallback bundles (the remaining baselines) go through the
same assertions.  Corrupt manifests, wrong format versions, unknown
classes and missing payloads must raise :class:`BundleError` — not
arbitrary exceptions.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil

import numpy as np
import pytest

from repro import DynamicLCCSLSH, LCCSLSH, MPLCCSLSH
from repro.baselines import (
    C2LSH,
    E2LSH,
    FALCONN,
    LSBForest,
    LSHForest,
    LazyLSH,
    LinearScan,
    MultiProbeLSH,
    QALSH,
    SKLSH,
    SRS,
    StaticConcatIndex,
)
from repro.core.cascade import E2LSHCascade, LCCSCascade
from repro.serve import (
    FORMAT_VERSION,
    BundleError,
    IndexSpec,
    ShardedIndex,
    index_registry,
    load_index,
    read_manifest,
    save_index,
)

DIM = 16
SEED = 3

#: registry name -> zero-arg builder; the coverage test forces every new
#: index class to either appear here or explicitly opt out.
BUILDERS = {
    "C2LSH": lambda: C2LSH(dim=DIM, m=8, l=2, w=2.0, beta=0.1, seed=SEED),
    "DynamicLCCSLSH": lambda: DynamicLCCSLSH(dim=DIM, m=16, w=2.0, seed=SEED),
    "E2LSH": lambda: E2LSH(dim=DIM, K=2, L=4, w=2.0, seed=SEED),
    "E2LSHCascade": lambda: E2LSHCascade(
        dim=DIM, r_min=1.0, r_max=8.0, L=4, seed=SEED
    ),
    "FALCONN": lambda: FALCONN(dim=DIM, K=1, L=4, cp_dim=8, n_probes=8, seed=SEED),
    "LCCSCascade": lambda: LCCSCascade(
        dim=DIM, r_min=1.0, r_max=8.0, m=16, w=2.0, seed=SEED
    ),
    "LCCSLSH": lambda: LCCSLSH(dim=DIM, m=16, w=2.0, seed=SEED),
    "LSBForest": lambda: LSBForest(
        dim=DIM, K=4, L=2, w=2.0, seed=SEED, bits_per_dim=8
    ),
    "LSHForest": lambda: LSHForest(dim=DIM, K_max=8, L=4, w=2.0, seed=SEED),
    "LazyLSH": lambda: LazyLSH(dim=DIM, m=8, l=2, w=2.0, seed=SEED),
    "LinearScan": lambda: LinearScan(dim=DIM, seed=SEED),
    "MPLCCSLSH": lambda: MPLCCSLSH(dim=DIM, m=16, w=2.0, seed=SEED, n_probes=9),
    "MultiProbeLSH": lambda: MultiProbeLSH(
        dim=DIM, K=4, L=2, w=2.0, n_probes=8, seed=SEED
    ),
    "QALSH": lambda: QALSH(dim=DIM, m=8, l=2, w=1.0, beta=0.1, seed=SEED),
    "SKLSH": lambda: SKLSH(dim=DIM, K=4, L=2, w=2.0, seed=SEED),
    "SRS": lambda: SRS(
        dim=DIM, d_proj=4, c=2.0, max_fraction=0.2, seed=SEED
    ),
    "ShardedIndex": lambda: ShardedIndex(
        IndexSpec("LCCSLSH", dim=DIM, m=16, w=2.0, seed=SEED),
        num_shards=3,
        parallel="serial",
    ),
    "StaticConcatIndex": lambda: StaticConcatIndex(
        dim=DIM, K=2, L=2, w=2.0, seed=SEED
    ),
}

#: indexes with native (pickle-free) bundle serializers; the remaining
#: baselines must still round-trip, just through the documented pickle
#: fallback
NATIVE = {
    "LCCSLSH", "MPLCCSLSH", "DynamicLCCSLSH", "LinearScan", "ShardedIndex",
    "QALSH", "SKLSH", "LSBForest", "SRS",
}


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(0)
    return rng.normal(size=(150, DIM)), rng.normal(size=DIM)


def test_builders_cover_registry():
    """Every registered index class must have a round-trip builder."""
    assert set(BUILDERS) == set(index_registry())


@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_fit_save_load_query_identical(name, tmp_path, workload):
    data, q = workload
    index = BUILDERS[name]().fit(data)
    want_ids, want_dists = index.query(q, k=5)
    want_stats = dict(index.last_stats)
    path = str(tmp_path / "bundle")
    save_index(index, path)

    manifest = read_manifest(path)
    assert manifest["format_version"] == FORMAT_VERSION
    assert manifest["class"] == name
    expected = "native" if name in NATIVE else "pickle"
    assert manifest["serializer"] == expected

    loaded = load_index(path)
    assert type(loaded) is type(index)
    assert loaded.dim == index.dim
    assert loaded.metric == index.metric
    assert loaded.seed == index.seed
    assert loaded.build_time == pytest.approx(index.build_time)
    assert loaded.last_stats == pytest.approx(want_stats)
    assert loaded.n == index.n

    got_ids, got_dists = loaded.query(q, k=5)
    assert got_ids.tolist() == want_ids.tolist()
    assert got_dists.tolist() == want_dists.tolist()


@pytest.mark.parametrize("name", sorted(NATIVE))
def test_native_bundles_load_without_pickle(name, tmp_path, workload):
    """Native arrays must be readable with ``allow_pickle=False``."""
    data, _ = workload
    index = BUILDERS[name]().fit(data)
    path = str(tmp_path / "bundle")
    save_index(index, path)
    manifest = read_manifest(path)
    names = sorted(manifest["array_index"])
    assert names  # at least the data payload
    assert "__pickle__" not in names
    for name_ in names:
        entry = manifest["array_index"][name_]
        arr = np.load(os.path.join(path, entry["file"]), allow_pickle=False)
        assert list(arr.shape) == entry["shape"]


def test_unfitted_index_roundtrip(tmp_path):
    index = LCCSLSH(dim=DIM, m=16, w=2.0, seed=SEED)
    path = str(tmp_path / "bundle")
    save_index(index, path)
    loaded = load_index(path)
    assert not loaded.is_fitted
    assert loaded.m == index.m


def test_dynamic_roundtrip_preserves_updates(tmp_path, workload):
    data, q = workload
    rng = np.random.default_rng(9)
    index = DynamicLCCSLSH(dim=DIM, m=16, w=2.0, seed=SEED).fit(data)
    handles = [index.insert(rng.normal(size=DIM)) for _ in range(12)]
    index.delete(handles[4])
    index.delete(7)
    want = index.query(q, k=8, num_candidates=index.n)
    path = str(tmp_path / "bundle")
    save_index(index, path)
    loaded = load_index(path)
    assert loaded.live_count == index.live_count
    assert loaded.buffer_size == index.buffer_size
    assert loaded.rebuilds == index.rebuilds
    got = loaded.query(q, k=8, num_candidates=loaded.n)
    assert got[0].tolist() == want[0].tolist()
    assert got[1].tolist() == want[1].tolist()
    # the loaded index keeps accepting updates with the same handles
    assert loaded.insert(rng.normal(size=DIM)) == index.insert(rng.normal(size=DIM))


# ----------------------------------------------------------------------
# Manifest-only inspection (CLI `inspect`)
# ----------------------------------------------------------------------

def test_bundle_summary_reads_headers_without_loading(tmp_path, workload):
    from repro.serve.persistence import bundle_summary

    data, _ = workload
    index = ShardedIndex(
        IndexSpec("LCCSLSH", dim=DIM, m=16, w=2.0, seed=SEED),
        num_shards=2, parallel="serial",
    ).fit(data)
    path = str(tmp_path / "bundle")
    save_index(index, path, extra={"dataset": "unit"})
    summary = bundle_summary(path)
    assert summary["class"] == "ShardedIndex"
    assert summary["serializer"] == "native"
    assert summary["shards"] == 2
    assert summary["extra"] == {"dataset": "unit"}
    by_name = {a["name"]: a for a in summary["arrays"]}
    # Shard payload shapes are reported exactly, without loading them.
    assert by_name["shard0.data"]["shape"] == (75, DIM)
    assert by_name["shard0.data"]["dtype"] == "float64"
    assert by_name["shard0.data"]["bytes"] == 75 * DIM * 8
    assert summary["total_bytes"] == sum(a["bytes"] for a in summary["arrays"])
    assert summary["total_stored_bytes"] > 0


def test_cli_inspect_prints_manifest_and_arrays(tmp_path, workload, capsys):
    from repro.cli import main

    data, _ = workload
    index = LCCSLSH(dim=DIM, m=16, w=2.0, seed=SEED).fit(data)
    path = str(tmp_path / "bundle")
    save_index(index, path)
    assert main(["inspect", path]) == 0
    out = capsys.readouterr().out
    assert "LCCSLSH" in out
    assert "csa.sorted_idx" in out
    assert "npy-dir" in out  # v2 layout reported
    assert "150x16" in out  # the data payload's shape
    # JSON mode emits the machine-readable summary.
    assert main(["inspect", path, "--json"]) == 0
    out = capsys.readouterr().out
    assert '"class": "LCCSLSH"' in out


def test_cli_inspect_bad_bundle_exit_code(tmp_path, capsys):
    from repro.cli import main

    assert main(["inspect", str(tmp_path / "nope")]) == 2
    assert "cannot inspect" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Error paths: corrupt or incompatible bundles fail loudly and cleanly
# ----------------------------------------------------------------------

@pytest.fixture()
def bundle(tmp_path, workload):
    data, _ = workload
    index = LCCSLSH(dim=DIM, m=16, w=2.0, seed=SEED).fit(data)
    path = str(tmp_path / "bundle")
    save_index(index, path)
    return path


def _rewrite_manifest(path, **overrides):
    manifest_path = os.path.join(path, "manifest.json")
    with open(manifest_path, "r", encoding="utf-8") as f:
        manifest = json.load(f)
    manifest.update(overrides)
    with open(manifest_path, "w", encoding="utf-8") as f:
        json.dump(manifest, f)


def test_corrupt_manifest_raises(bundle):
    with open(os.path.join(bundle, "manifest.json"), "w") as f:
        f.write("{this is not json")
    with pytest.raises(BundleError, match="corrupt manifest"):
        load_index(bundle)


def test_wrong_format_version_raises(bundle):
    _rewrite_manifest(bundle, format_version=FORMAT_VERSION + 1)
    with pytest.raises(BundleError, match="format_version"):
        load_index(bundle)


def test_unknown_class_raises(bundle):
    _rewrite_manifest(bundle, **{"class": "NoSuchIndex"})
    with pytest.raises(BundleError, match="NoSuchIndex"):
        load_index(bundle)


def test_missing_arrays_raises(bundle):
    shutil.rmtree(os.path.join(bundle, "arrays"))
    with pytest.raises(BundleError, match="missing array file"):
        load_index(bundle)


def test_missing_arrays_npz_raises_v1(bundle, tmp_path, workload):
    data, _ = workload
    index = LCCSLSH(dim=DIM, m=16, w=2.0, seed=SEED).fit(data)
    path = str(tmp_path / "v1bundle")
    save_index(index, path, format_version=1)
    os.remove(os.path.join(path, "arrays.npz"))
    with pytest.raises(BundleError, match="arrays.npz"):
        load_index(path)


def test_missing_manifest_raises(bundle):
    os.remove(os.path.join(bundle, "manifest.json"))
    with pytest.raises(BundleError, match="manifest"):
        load_index(bundle)


def test_nonexistent_path_raises(tmp_path):
    with pytest.raises(BundleError, match="no such bundle"):
        load_index(str(tmp_path / "nope"))


def test_read_manifest_on_plain_file_raises(tmp_path):
    """A legacy pickle (or any file) is cleanly 'not a bundle'."""
    path = tmp_path / "legacy.pkl"
    path.write_bytes(b"\x80\x04N.")
    with pytest.raises(BundleError, match="not a bundle"):
        read_manifest(str(path))


def test_truncated_state_raises(bundle, tmp_path):
    """Dropping a required array from a native bundle is caught."""
    arrays_dir = os.path.join(bundle, "arrays")
    for name in os.listdir(arrays_dir):
        if name.startswith("family."):
            os.remove(os.path.join(arrays_dir, name))
    with pytest.raises(BundleError):
        load_index(bundle)
    with pytest.raises(BundleError):
        load_index(bundle, mmap=True)


def test_save_refuses_file_path(bundle, tmp_path, workload):
    data, _ = workload
    target = tmp_path / "plain_file"
    target.write_text("occupied")
    index = LinearScan(dim=DIM).fit(data)
    with pytest.raises(BundleError, match="not a directory"):
        save_index(index, str(target))


# ----------------------------------------------------------------------
# Legacy single-file pickles stay loadable
# ----------------------------------------------------------------------

def test_legacy_pickle_file_roundtrip(tmp_path, workload):
    data, q = workload
    index = LCCSLSH(dim=DIM, m=16, w=2.0, seed=SEED).fit(data)
    want = index.query(q, k=5)
    path = tmp_path / "legacy.pkl"
    with open(path, "wb") as f:
        pickle.dump(index, f)
    loaded = load_index(str(path))
    got = loaded.query(q, k=5)
    assert got[0].tolist() == want[0].tolist()


def test_legacy_pickle_type_check(tmp_path):
    path = tmp_path / "junk.pkl"
    with open(path, "wb") as f:
        pickle.dump({"not": "an index"}, f)
    with pytest.raises(TypeError):
        load_index(str(path))

"""Tests for the related-work baselines: LSH-Forest, SK-LSH, LSB-Forest."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import LSBForest, LSHForest, SKLSH, zorder_interleave

from tests.helpers import average_recall


# ----------------------------------------------------------------------
# Z-order curve
# ----------------------------------------------------------------------

def test_zorder_2d_unit_square():
    z = zorder_interleave(np.array([[0, 0], [1, 0], [0, 1], [1, 1]]), 1)
    # dimension 0 contributes the higher bit at each level
    assert z.tolist() == [0, 2, 1, 3]


def test_zorder_preserves_locality_roughly():
    """Adjacent grid cells get close codes more often than far cells."""
    coords = np.array([[i, j] for i in range(8) for j in range(8)])
    z = zorder_interleave(coords, 3)
    z_map = {tuple(c): int(v) for c, v in zip(coords, z)}
    near_gaps = [abs(z_map[(i, j)] - z_map[(i, j + 1)])
                 for i in range(8) for j in range(7)]
    far_gaps = [abs(z_map[(i, 0)] - z_map[(i, 7)]) for i in range(8)]
    assert np.median(near_gaps) < np.median(far_gaps)


def test_zorder_handles_wide_values():
    z = zorder_interleave(np.array([[2**15, 2**15 - 1]]), 16)
    assert int(z[0]) > 0  # arbitrary precision, no overflow


def test_zorder_validation():
    with pytest.raises(ValueError):
        zorder_interleave(np.array([1, 2]), 4)
    with pytest.raises(ValueError):
        zorder_interleave(np.array([[1, -2]]), 4)
    with pytest.raises(ValueError):
        zorder_interleave(np.array([[1, 2]]), 0)


@given(st.data())
@settings(max_examples=30)
def test_zorder_injective_within_range(data):
    bits = data.draw(st.integers(1, 8))
    K = data.draw(st.integers(1, 3))
    n = data.draw(st.integers(1, 20))
    coords = np.array(
        data.draw(
            st.lists(
                st.lists(st.integers(0, 2**bits - 1), min_size=K, max_size=K),
                min_size=n, max_size=n, unique_by=tuple,
            )
        )
    )
    z = zorder_interleave(coords, bits)
    assert len(set(z.tolist())) == len(coords)


# ----------------------------------------------------------------------
# LSH-Forest
# ----------------------------------------------------------------------

def test_lsh_forest_recall(clustered):
    data, queries, gt = clustered
    index = LSHForest(dim=24, K_max=16, L=8, w=1.0, seed=1).fit(data)
    rec = average_recall(index, queries, gt, k=10, candidates=120)
    assert rec >= 0.6


def test_lsh_forest_duplicate_found(clustered):
    data, _, _ = clustered
    index = LSHForest(dim=24, K_max=12, L=4, w=1.0, seed=2).fit(data)
    ids, dists = index.query(data[9], k=1, candidates=40)
    assert ids[0] == 9 and dists[0] == 0.0


def test_lsh_forest_budget_monotone(clustered):
    data, queries, gt = clustered
    index = LSHForest(dim=24, K_max=16, L=8, w=1.0, seed=3).fit(data)
    small = average_recall(index, queries, gt, k=10, candidates=20)
    large = average_recall(index, queries, gt, k=10, candidates=300)
    assert large >= small - 0.05


def test_lsh_forest_reports_depth(clustered):
    data, queries, _ = clustered
    index = LSHForest(dim=24, K_max=16, L=4, w=1.0, seed=4).fit(data)
    index.query(queries[0], k=5)
    assert 0 <= index.last_stats["depth"] <= 16


def test_lsh_forest_validation():
    with pytest.raises(ValueError):
        LSHForest(dim=8, K_max=0)
    with pytest.raises(ValueError):
        LSHForest(dim=8, L=0)
    with pytest.raises(ValueError):
        LSHForest(dim=8, candidates=0)


# ----------------------------------------------------------------------
# SK-LSH
# ----------------------------------------------------------------------

def test_sk_lsh_recall(clustered):
    data, queries, gt = clustered
    index = SKLSH(dim=24, K=8, L=8, w=1.0, seed=5).fit(data)
    rec = average_recall(index, queries, gt, k=10, probes_per_table=40)
    assert rec >= 0.6


def test_sk_lsh_probe_budget(clustered):
    data, queries, _ = clustered
    index = SKLSH(dim=24, K=6, L=4, w=1.0, seed=6).fit(data)
    index.query(queries[0], k=5, probes_per_table=10)
    assert index.last_stats["probed_entries"] <= 4 * 11
    with pytest.raises(ValueError):
        index.query(queries[0], k=5, probes_per_table=0)


def test_sk_lsh_more_probes_monotone(clustered):
    data, queries, gt = clustered
    index = SKLSH(dim=24, K=8, L=8, w=1.0, seed=7).fit(data)
    small = average_recall(index, queries, gt, k=10, probes_per_table=8)
    large = average_recall(index, queries, gt, k=10, probes_per_table=128)
    assert large >= small - 1e-9


# ----------------------------------------------------------------------
# LSB-Forest
# ----------------------------------------------------------------------

def test_lsb_forest_recall(clustered):
    data, queries, gt = clustered
    index = LSBForest(dim=24, K=8, L=8, w=1.0, seed=8).fit(data)
    rec = average_recall(index, queries, gt, k=10, probes_per_table=40)
    assert rec >= 0.6


def test_lsb_forest_duplicate_found(clustered):
    data, _, _ = clustered
    index = LSBForest(dim=24, K=8, L=4, w=1.0, seed=9).fit(data)
    ids, dists = index.query(data[21], k=1, probes_per_table=16)
    assert ids[0] == 21 and dists[0] == 0.0


def test_lsb_forest_validation():
    with pytest.raises(ValueError):
        LSBForest(dim=8, bits_per_dim=0)
    with pytest.raises(ValueError):
        LSBForest(dim=8, K=0)


def test_all_related_work_index_sizes(clustered):
    data, _, _ = clustered
    for cls, kw in (
        (LSHForest, dict(K_max=8, L=4)),
        (SKLSH, dict(K=4, L=4)),
        (LSBForest, dict(K=4, L=4)),
    ):
        index = cls(dim=24, w=1.0, seed=10, **kw).fit(data)
        assert index.index_size_bytes() > 0

"""Batch-vs-single equivalence: the vectorised engine changes nothing.

The batched query path (``batch_k_lccs``, ``batch_query``) is a pure
performance refactor: for every index in the LCCS family and for the CSA
itself it must return *exactly* the single-query results — same ids, same
LCCS lengths, same distances, same tie-breaks.  These tests pin that
contract down across metrics and the edge cases that stress the merge
(k > n, duplicate rows, m not a power of two, all-identical strings).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DynamicLCCSLSH, LCCSLSH, MPLCCSLSH
from repro.core import CircularShiftArray


def assert_csa_batch_matches(strings: np.ndarray, queries: np.ndarray, k: int):
    csa = CircularShiftArray(strings)
    batched = csa.batch_k_lccs(queries, k)
    assert len(batched) == len(queries)
    for qi, q in enumerate(queries):
        ids, lens = csa.k_lccs(q, k)
        bids, blens = batched[qi]
        assert np.array_equal(ids, bids), f"ids diverge for query {qi}"
        assert np.array_equal(lens, blens), f"lengths diverge for query {qi}"


def assert_index_batch_matches(index, queries: np.ndarray, k: int, **kwargs):
    batch_ids, batch_dists = index.batch_query(queries, k=k, **kwargs)
    assert batch_ids.shape == (len(queries), k)
    assert batch_dists.shape == (len(queries), k)
    for qi, q in enumerate(queries):
        ids, dists = index.query(q, k=k, **kwargs)
        assert np.array_equal(batch_ids[qi, : len(ids)], ids)
        assert np.array_equal(batch_dists[qi, : len(dists)], dists)
        # padding beyond the true result count
        assert (batch_ids[qi, len(ids):] == -1).all()
        assert np.isinf(batch_dists[qi, len(dists):]).all()


# ----------------------------------------------------------------------
# CSA level: batch_k_lccs == k_lccs
# ----------------------------------------------------------------------

def test_csa_batch_random(rng):
    strings = rng.integers(0, 4, size=(60, 12))
    queries = rng.integers(0, 4, size=(15, 12))
    assert_csa_batch_matches(strings, queries, k=10)


def test_csa_batch_k_exceeds_n(rng):
    strings = rng.integers(0, 3, size=(7, 6))
    queries = rng.integers(0, 3, size=(5, 6))
    assert_csa_batch_matches(strings, queries, k=50)


def test_csa_batch_duplicate_rows(rng):
    strings = rng.integers(0, 3, size=(40, 8))
    strings[10:25] = strings[3]  # heavy duplication
    queries = np.vstack([strings[3], rng.integers(0, 3, size=(6, 8))])
    assert_csa_batch_matches(strings, queries, k=20)


def test_csa_batch_m_not_power_of_two(rng):
    strings = rng.integers(0, 5, size=(50, 11))
    queries = rng.integers(0, 5, size=(8, 11))
    assert_csa_batch_matches(strings, queries, k=12)


def test_csa_batch_all_identical_strings():
    strings = np.tile(np.array([2, 1, 2, 1, 0]), (12, 1))
    queries = np.array([[2, 1, 2, 1, 0], [0, 0, 0, 0, 0]])
    assert_csa_batch_matches(strings, queries, k=12)


def test_csa_batch_single_query_single_string(rng):
    assert_csa_batch_matches(
        np.array([[5, 6, 7]]), np.array([[5, 6, 0]]), k=3
    )


def test_csa_batch_empty_batch(rng):
    csa = CircularShiftArray(rng.integers(0, 3, size=(10, 4)))
    assert csa.batch_k_lccs(np.empty((0, 4), dtype=np.int64), 5) == []


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_csa_batch_equivalence_property(data):
    n = data.draw(st.integers(2, 25))
    m = data.draw(st.integers(2, 9))
    alpha = data.draw(st.integers(1, 3))
    nq = data.draw(st.integers(1, 5))
    strings = np.array(
        data.draw(
            st.lists(
                st.lists(st.integers(0, alpha), min_size=m, max_size=m),
                min_size=n, max_size=n,
            )
        )
    )
    queries = np.array(
        data.draw(
            st.lists(
                st.lists(st.integers(0, alpha), min_size=m, max_size=m),
                min_size=nq, max_size=nq,
            )
        )
    )
    k = data.draw(st.integers(1, n + 2))
    assert_csa_batch_matches(strings, queries, k)


# ----------------------------------------------------------------------
# Index level: batch_query == query, per index and metric
# ----------------------------------------------------------------------

@pytest.mark.parametrize("metric", ["euclidean", "angular"])
def test_lccs_lsh_batch_matches_single(rng, metric):
    data = rng.normal(size=(500, 16))
    queries = rng.normal(size=(25, 16))
    if metric == "angular":
        data /= np.linalg.norm(data, axis=1, keepdims=True)
        queries /= np.linalg.norm(queries, axis=1, keepdims=True)
    index = LCCSLSH(dim=16, m=24, metric=metric, seed=5).fit(data)
    assert_index_batch_matches(index, queries, k=8)


def test_lccs_lsh_batch_matches_single_hamming(rng):
    data = rng.integers(0, 2, size=(300, 64))
    queries = rng.integers(0, 2, size=(15, 64))
    index = LCCSLSH(dim=64, m=24, metric="hamming", seed=4).fit(data)
    assert_index_batch_matches(index, queries, k=6)


def test_lccs_lsh_batch_k_exceeds_n(rng):
    data = rng.normal(size=(9, 8))
    queries = rng.normal(size=(4, 8))
    index = LCCSLSH(dim=8, m=16, seed=2).fit(data)
    assert_index_batch_matches(index, queries, k=30)


def test_lccs_lsh_batch_duplicate_points(rng):
    data = rng.normal(size=(120, 12))
    data[40:80] = data[0]  # duplicate vectors hash identically
    queries = np.vstack([data[0][None, :], rng.normal(size=(5, 12))])
    index = LCCSLSH(dim=12, m=20, seed=9).fit(data)
    assert_index_batch_matches(index, queries, k=15)


def test_lccs_lsh_batch_m_not_power_of_two(rng):
    data = rng.normal(size=(400, 10))
    queries = rng.normal(size=(10, 10))
    index = LCCSLSH(dim=10, m=17, seed=21).fit(data)
    assert_index_batch_matches(index, queries, k=5)


def test_lccs_lsh_batch_explicit_num_candidates(rng):
    data = rng.normal(size=(300, 8))
    queries = rng.normal(size=(12, 8))
    index = LCCSLSH(dim=8, m=16, seed=13).fit(data)
    assert_index_batch_matches(index, queries, k=4, num_candidates=40)


def test_mp_lccs_lsh_batch_matches_single(rng):
    data = rng.normal(size=(400, 12))
    queries = rng.normal(size=(15, 12))
    index = MPLCCSLSH(dim=12, m=16, n_probes=10, seed=3).fit(data)
    assert_index_batch_matches(index, queries, k=6)


def test_mp_lccs_lsh_batch_explicit_probes(rng):
    data = rng.normal(size=(250, 10))
    queries = rng.normal(size=(8, 10))
    index = MPLCCSLSH(dim=10, m=12, n_probes=4, seed=17).fit(data)
    assert_index_batch_matches(index, queries, k=5, n_probes=12)


def test_dynamic_batch_matches_single_with_buffer(rng):
    data = rng.normal(size=(300, 12))
    index = DynamicLCCSLSH(dim=12, m=16, seed=8).fit(data)
    # leave pending inserts in the buffer and a few tombstones
    for row in rng.normal(size=(20, 12)):
        index.insert(row)
    index.delete(5)
    index.delete(305)
    queries = rng.normal(size=(12, 12))
    assert_index_batch_matches(index, queries, k=7)


def test_dynamic_batch_matches_single_angular_buffer(rng):
    data = rng.normal(size=(200, 10))
    data /= np.linalg.norm(data, axis=1, keepdims=True)
    index = DynamicLCCSLSH(dim=10, m=12, metric="angular", seed=4).fit(data)
    extra = rng.normal(size=(10, 10))
    extra /= np.linalg.norm(extra, axis=1, keepdims=True)
    for row in extra:
        index.insert(row)
    queries = rng.normal(size=(8, 10))
    queries /= np.linalg.norm(queries, axis=1, keepdims=True)
    assert_index_batch_matches(index, queries, k=6)


def test_dynamic_batch_matches_single_before_fitting_inner(rng):
    # tiny index: everything sits in the rebuild path/buffer states
    data = rng.normal(size=(10, 6))
    index = DynamicLCCSLSH(dim=6, m=8, seed=1).fit(data)
    for row in rng.normal(size=(3, 6)):
        index.insert(row)
    queries = rng.normal(size=(5, 6))
    assert_index_batch_matches(index, queries, k=20)


def test_default_batch_hook_loops_single_path(rng):
    """Indexes without a vectorised override still satisfy the contract."""
    from repro.baselines import LinearScan

    data = rng.normal(size=(80, 6))
    queries = rng.normal(size=(7, 6))
    index = LinearScan(dim=6).fit(data)
    assert_index_batch_matches(index, queries, k=5)


# ----------------------------------------------------------------------
# Distance kernels: the batched kernels agree with the single-query one
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "metric", ["euclidean", "squared_euclidean", "manhattan", "angular",
               "cosine", "hamming", "jaccard"]
)
def test_pairwise_rows_bit_identical_to_pairwise(rng, metric):
    from repro.distances import pairwise, pairwise_rows

    if metric in ("hamming", "jaccard"):
        data = rng.integers(0, 2, size=(30, 12))
        q = rng.integers(0, 2, size=12)
    else:
        data = rng.normal(size=(30, 12))
        q = rng.normal(size=12)
    single = pairwise(data, q, metric)
    rows = pairwise_rows(data, np.tile(q, (len(data), 1)), metric)
    assert np.array_equal(single, rows)  # bit-identical, not just close


@pytest.mark.parametrize("metric", ["euclidean", "manhattan", "hamming"])
def test_pairwise_cross_matches_pairwise(rng, metric):
    from repro.distances import pairwise, pairwise_cross

    if metric == "hamming":
        data = rng.integers(0, 2, size=(20, 8))
        queries = rng.integers(0, 2, size=(5, 8))
    else:
        data = rng.normal(size=(20, 8))
        queries = rng.normal(size=(5, 8))
    cross = pairwise_cross(data, queries, metric)
    for i, q in enumerate(queries):
        assert np.array_equal(cross[i], pairwise(data, q, metric))


def test_batch_stats_accumulate_over_batch(rng):
    data = rng.normal(size=(200, 8))
    queries = rng.normal(size=(10, 8))
    index = LCCSLSH(dim=8, m=16, seed=6).fit(data)
    index.batch_query(queries, k=5)
    batch_cands = index.last_stats["candidates"]
    total = 0.0
    for q in queries:
        index.query(q, k=5)
        total += index.last_stats["candidates"]
    assert batch_cands == total


def test_default_batch_hook_sums_stats(rng):
    """The loop fallback must also report batch-total work counters."""
    from repro.baselines import E2LSH

    data = rng.normal(size=(300, 8))
    queries = rng.normal(size=(12, 8))
    index = E2LSH(dim=8, seed=7).fit(data)
    index.batch_query(queries, k=5)
    batch_stats = dict(index.last_stats)
    totals: dict = {}
    for q in queries:
        index.query(q, k=5)
        for key, val in index.last_stats.items():
            totals[key] = totals.get(key, 0.0) + float(val)
    assert batch_stats == totals
    assert batch_stats["candidates"] > index.last_stats["candidates"]

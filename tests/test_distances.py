"""Unit and property tests for repro.distances."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.distances import (
    METRICS,
    angular,
    cosine,
    euclidean,
    get_metric,
    hamming,
    jaccard,
    normalize_rows,
    pairwise,
    squared_euclidean,
)

vectors = hnp.arrays(
    np.float64,
    st.integers(2, 16),
    elements=st.floats(-100, 100, allow_nan=False, allow_infinity=False),
)


def test_euclidean_known_value():
    assert euclidean([0.0, 0.0], [3.0, 4.0]) == pytest.approx(5.0)


def test_squared_euclidean_known_value():
    assert squared_euclidean([0.0, 0.0], [3.0, 4.0]) == pytest.approx(25.0)


def test_angular_orthogonal_vectors():
    assert angular([1.0, 0.0], [0.0, 1.0]) == pytest.approx(np.pi / 2)


def test_angular_identical_vectors():
    assert angular([1.0, 2.0], [2.0, 4.0]) == pytest.approx(0.0, abs=1e-6)


def test_angular_opposite_vectors():
    assert angular([1.0, 0.0], [-1.0, 0.0]) == pytest.approx(np.pi)


def test_angular_zero_vector_raises():
    with pytest.raises(ValueError):
        angular([0.0, 0.0], [1.0, 0.0])


def test_cosine_matches_angular_ordering():
    a = np.array([1.0, 0.2])
    b = np.array([0.5, 0.9])
    c = np.array([-1.0, 0.1])
    assert cosine(a, b) < cosine(a, c)
    assert angular(a, b) < angular(a, c)


def test_hamming_counts_mismatches():
    assert hamming([0, 1, 1, 0], [1, 1, 0, 0]) == 2.0


def test_jaccard_known_value():
    # sets {0,1} and {1,2}: intersection 1, union 3
    assert jaccard([1, 1, 0], [0, 1, 1]) == pytest.approx(1 - 1 / 3)


def test_jaccard_empty_sets_is_zero():
    assert jaccard([0, 0], [0, 0]) == 0.0


@given(vectors)
@settings(max_examples=50)
def test_euclidean_identity(v):
    assert euclidean(v, v) == pytest.approx(0.0)


@given(st.data())
@settings(max_examples=50)
def test_euclidean_symmetry(data):
    d = data.draw(st.integers(2, 12))
    elems = st.floats(-50, 50, allow_nan=False, allow_infinity=False)
    a = np.array(data.draw(st.lists(elems, min_size=d, max_size=d)))
    b = np.array(data.draw(st.lists(elems, min_size=d, max_size=d)))
    assert euclidean(a, b) == pytest.approx(euclidean(b, a))


@given(st.data())
@settings(max_examples=50)
def test_triangle_inequality_euclidean(data):
    d = data.draw(st.integers(2, 8))
    elems = st.floats(-20, 20, allow_nan=False, allow_infinity=False)
    pts = [
        np.array(data.draw(st.lists(elems, min_size=d, max_size=d)))
        for _ in range(3)
    ]
    a, b, c = pts
    assert euclidean(a, c) <= euclidean(a, b) + euclidean(b, c) + 1e-9


@pytest.mark.parametrize("metric", sorted(set(METRICS) - {"jaccard", "hamming"}))
def test_pairwise_matches_scalar(metric, rng):
    data = rng.normal(size=(50, 8)) + 0.5
    q = rng.normal(size=8) + 0.5
    batch = pairwise(data, q, metric)
    fn = get_metric(metric)
    for i in range(len(data)):
        assert batch[i] == pytest.approx(fn(data[i], q), abs=1e-9)


@pytest.mark.parametrize("metric", ["hamming", "jaccard"])
def test_pairwise_matches_scalar_discrete(metric, rng):
    data = (rng.random(size=(50, 12)) < 0.4).astype(np.int64)
    q = (rng.random(size=12) < 0.4).astype(np.int64)
    batch = pairwise(data, q, metric)
    fn = get_metric(metric)
    for i in range(len(data)):
        assert batch[i] == pytest.approx(fn(data[i], q))


def test_pairwise_rejects_bad_shapes(rng):
    with pytest.raises(ValueError):
        pairwise(rng.normal(size=(5,)), rng.normal(size=5), "euclidean")
    with pytest.raises(ValueError):
        pairwise(rng.normal(size=(5, 3)), rng.normal(size=4), "euclidean")


def test_unknown_metric_raises():
    with pytest.raises(KeyError, match="unknown metric"):
        get_metric("mahalanobis")
    with pytest.raises(KeyError, match="unknown metric"):
        pairwise(np.zeros((2, 2)), np.zeros(2), "mahalanobis")


def test_normalize_rows_unit_norm(rng):
    data = rng.normal(size=(20, 6))
    out = normalize_rows(data)
    assert np.allclose(np.linalg.norm(out, axis=1), 1.0)


def test_normalize_rows_single_vector():
    out = normalize_rows(np.array([3.0, 4.0]))
    assert out.shape == (2,)
    assert np.allclose(out, [0.6, 0.8])


def test_normalize_rows_zero_raises():
    with pytest.raises(ValueError):
        normalize_rows(np.zeros((2, 3)))

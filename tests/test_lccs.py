"""Tests for the LCCS definitions and brute-force oracle (paper §3.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    brute_force_k_lccs,
    compare_rotations,
    lccs_length,
    lcp_length,
    shift,
)
from repro.core.lccs import lccs_positions

strings_pair = st.integers(2, 24).flatmap(
    lambda m: st.tuples(
        st.lists(st.integers(0, 3), min_size=m, max_size=m),
        st.lists(st.integers(0, 3), min_size=m, max_size=m),
    )
)


# ----------------------------------------------------------------------
# shift
# ----------------------------------------------------------------------

def test_shift_paper_convention():
    t = np.array([1, 2, 3, 4, 5])
    assert shift(t, 0).tolist() == [1, 2, 3, 4, 5]
    assert shift(t, 2).tolist() == [3, 4, 5, 1, 2]
    assert shift(t, 5).tolist() == [1, 2, 3, 4, 5]  # wraps modulo m
    assert shift(t, 7).tolist() == [3, 4, 5, 1, 2]


def test_shift_empty_raises():
    with pytest.raises(ValueError):
        shift(np.array([]), 1)


@given(st.lists(st.integers(0, 9), min_size=1, max_size=20), st.integers(0, 40))
@settings(max_examples=50)
def test_shift_composition(values, i):
    t = np.array(values)
    once = shift(shift(t, i), 1)
    direct = shift(t, i + 1)
    assert once.tolist() == direct.tolist()


# ----------------------------------------------------------------------
# lcp / comparison
# ----------------------------------------------------------------------

def test_lcp_basic():
    assert lcp_length(np.array([1, 2, 3]), np.array([1, 2, 4])) == 2
    assert lcp_length(np.array([1, 2, 3]), np.array([1, 2, 3])) == 3
    assert lcp_length(np.array([9, 2, 3]), np.array([1, 2, 3])) == 0


def test_lcp_shape_mismatch():
    with pytest.raises(ValueError):
        lcp_length(np.array([1, 2]), np.array([1, 2, 3]))


def test_compare_rotations_orders_lexicographically():
    a = np.array([1, 2, 3])
    b = np.array([1, 3, 0])
    cmp, lcp = compare_rotations(a, b)
    assert cmp == -1 and lcp == 1
    cmp, lcp = compare_rotations(b, a)
    assert cmp == 1 and lcp == 1
    cmp, lcp = compare_rotations(a, a.copy())
    assert cmp == 0 and lcp == 3


# ----------------------------------------------------------------------
# lccs_length
# ----------------------------------------------------------------------

def test_paper_figure1_example():
    """Figure 1(c): LCCS lengths of o1, o2, o3 against q are 5, 3, 2."""
    q = np.array([1, 2, 3, 4, 5, 6, 7, 8])
    o1 = np.array([1, 2, 4, 5, 6, 6, 7, 8])
    o2 = np.array([5, 2, 2, 4, 3, 6, 7, 8])
    o3 = np.array([3, 1, 3, 5, 5, 6, 4, 9])
    assert lccs_length(o1, q) == 5  # [6,7,8,1,2] wrapping
    assert lccs_length(o2, q) == 3  # [6,7,8]
    assert lccs_length(o3, q) == 2


def test_paper_example_31_definition():
    """Example 3.1: common circular substrings must share positions."""
    t = np.array([1, 2, 3, 4, 1, 5])
    q = np.array([1, 1, 2, 3, 4, 5])
    # [5, 1] starting at position 5 (wrapping) is a circular co-substring;
    # [1, 2, 3, 4] is common but not position-aligned.
    assert lccs_length(t, q) == 2


def test_lccs_identical_and_disjoint():
    t = np.array([1, 2, 3, 4])
    assert lccs_length(t, t.copy()) == 4
    assert lccs_length(t, t + 10) == 0


def test_lccs_wrap_around_run():
    t = np.array([7, 2, 3, 7, 7, 7])
    q = np.array([7, 9, 9, 7, 7, 7])
    # positions 3,4,5,0 match -> circular run of 4
    assert lccs_length(t, q) == 4


def test_lccs_shape_mismatch():
    with pytest.raises(ValueError):
        lccs_length(np.array([1, 2]), np.array([1, 2, 3]))


@given(strings_pair)
@settings(max_examples=100)
def test_lccs_symmetry(pair):
    t, q = np.array(pair[0]), np.array(pair[1])
    assert lccs_length(t, q) == lccs_length(q, t)


@given(strings_pair)
@settings(max_examples=100)
def test_lccs_equals_max_lcp_over_shifts(pair):
    """Fact 3.1: |LCCS| = max_i |LCP(shift(T,i), shift(Q,i))|."""
    t, q = np.array(pair[0]), np.array(pair[1])
    m = len(t)
    expected = max(
        lcp_length(shift(t, i), shift(q, i)) for i in range(m)
    )
    assert lccs_length(t, q) == expected


@given(strings_pair, st.integers(0, 30))
@settings(max_examples=100)
def test_lccs_shift_invariance(pair, i):
    """Shifting both strings together preserves the LCCS length."""
    t, q = np.array(pair[0]), np.array(pair[1])
    assert lccs_length(shift(t, i), shift(q, i)) == lccs_length(t, q)


@given(strings_pair)
@settings(max_examples=100)
def test_lccs_positions_consistent(pair):
    t, q = np.array(pair[0]), np.array(pair[1])
    start, length = lccs_positions(t, q)
    assert length == lccs_length(t, q)
    # The reported window must actually match position-wise.
    m = len(t)
    for off in range(length):
        pos = (start + off) % m
        assert t[pos] == q[pos]


# ----------------------------------------------------------------------
# brute_force_k_lccs
# ----------------------------------------------------------------------

def test_brute_force_orders_by_length(rng):
    strings = rng.integers(0, 3, size=(30, 8))
    q = rng.integers(0, 3, size=8)
    top = brute_force_k_lccs(strings, q, 30)
    lengths = [lccs_length(strings[i], q) for i in top]
    assert lengths == sorted(lengths, reverse=True)


def test_brute_force_validates():
    with pytest.raises(ValueError):
        brute_force_k_lccs(np.zeros((2, 3), dtype=int), np.zeros(3, dtype=int), 0)
    with pytest.raises(ValueError):
        brute_force_k_lccs(np.zeros(3, dtype=int), np.zeros(3, dtype=int), 1)

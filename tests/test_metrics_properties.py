"""Property tests for :class:`repro.obs.metrics.LatencyHistogram`.

The histogram's contract (pinned here with hypothesis):

* **Quantile accuracy.**  Buckets grow geometrically by ``_GROWTH``
  (25 %), so the estimate and the exact order statistic of the same
  rank land in the same bucket — their ratio is bounded by the bucket
  width.  The documented expected error is ``QUANTILE_ERROR_BOUND``
  (half the bucket ratio, ~12.5 %); the hard worst case across the
  full bucket is ``_GROWTH - 1`` (25 %), which is what a property test
  may assert without flaking on adversarial rank/interpolation
  alignments.
* **Clamping.**  Percentiles never escape the exactly tracked
  ``[min, max]``: p0 is exactly the minimum, p100 exactly the maximum.
* **Merge algebra.**  ``a.merge(b)`` equals the histogram of the
  concatenated samples; ``state()``/``merge_state()`` (the cross-
  process fan-in used by registry snapshots) agrees with ``merge``;
  self-merge is a no-op (the PR's regression — it used to double).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    _GROWTH,
    QUANTILE_ERROR_BOUND,
    LatencyHistogram,
)

# Latencies from ~2 µs to ~80 s: spans most of the bucket range without
# touching the clamped first/last buckets (whose width is unbounded).
latency = st.floats(
    min_value=2e-6, max_value=80.0, allow_nan=False, allow_infinity=False
)
samples = st.lists(latency, min_size=1, max_size=200)
percentiles = st.floats(min_value=0.0, max_value=100.0)


def _filled(values):
    hist = LatencyHistogram()
    for v in values:
        hist.record(v)
    return hist


def test_documented_bound_is_half_the_bucket_ratio():
    assert QUANTILE_ERROR_BOUND == pytest.approx((_GROWTH - 1.0) / 2.0)


@settings(max_examples=200, deadline=None)
@given(samples, percentiles)
def test_percentile_within_bucket_bound(values, p):
    """The estimate is within one bucket width of the exact same-rank
    order statistic (``np.percentile`` with ``inverted_cdf`` uses the
    matching rank convention)."""
    hist = _filled(values)
    est = hist.percentile(p)
    exact = float(np.percentile(values, p, method="inverted_cdf"))
    assert est is not None
    # same bucket => ratio bounded by the bucket growth factor
    tol = _GROWTH - 1.0
    assert est <= exact * (1.0 + tol) + 1e-12
    assert est >= exact * (1.0 - tol) - 1e-12


@settings(max_examples=200, deadline=None)
@given(samples, percentiles)
def test_percentile_clamped_to_observed_extremes(values, p):
    hist = _filled(values)
    est = hist.percentile(p)
    assert min(values) <= est <= max(values)


@settings(max_examples=100, deadline=None)
@given(samples)
def test_p0_and_p100_are_exact(values):
    hist = _filled(values)
    assert hist.percentile(0.0) == pytest.approx(min(values))
    assert hist.percentile(100.0) == pytest.approx(max(values))


def test_percentile_empty_and_bad_p():
    hist = LatencyHistogram()
    assert hist.percentile(50.0) is None
    with pytest.raises(ValueError):
        hist.percentile(101.0)


def _assert_states_equal(got, want):
    """Bucket counts / count / extremes exactly; the running float sum
    only up to accumulation order."""
    assert got["buckets"] == want["buckets"]
    assert got["count"] == want["count"]
    assert got["min"] == want["min"]
    assert got["max"] == want["max"]
    assert got["sum"] == pytest.approx(want["sum"], rel=1e-12, abs=1e-15)


@settings(max_examples=100, deadline=None)
@given(samples, samples)
def test_merge_equals_histogram_of_concatenation(a_vals, b_vals):
    a, b = _filled(a_vals), _filled(b_vals)
    combined = _filled(a_vals + b_vals)
    a.merge(b)
    _assert_states_equal(a.state(), combined.state())
    for p in (50.0, 95.0, 99.0):
        assert a.percentile(p) == pytest.approx(combined.percentile(p))
    # b is untouched by the merge
    _assert_states_equal(b.state(), _filled(b_vals).state())


@settings(max_examples=100, deadline=None)
@given(samples, samples)
def test_state_fan_in_matches_merge(a_vals, b_vals):
    """The registry fan-in path (state dicts across processes) agrees
    with the in-process merge."""
    via_merge = _filled(a_vals)
    via_merge.merge(_filled(b_vals))
    via_state = _filled(a_vals)
    via_state.merge_state(_filled(b_vals).state())
    _assert_states_equal(via_state.state(), via_merge.state())


@settings(max_examples=50, deadline=None)
@given(samples)
def test_self_merge_is_noop_property(values):
    hist = _filled(values)
    before = hist.state()
    hist.merge(hist)
    assert hist.state() == before

"""Property test: the shard top-k merge equals a global argsort.

For random shard counts, shard sizes, tie-heavy distances and k, taking
each shard's top-k under the canonical ``(distance, id)`` order and
merging with :func:`repro.serve.merge_topk` must equal ``np.argsort``
(stable, id-then-distance) applied to the concatenated candidate pool.
This is the exactness argument behind the sharded/unsharded equivalence:
per-shard top-k is a sufficient statistic for global top-k.

Uses hypothesis when available (it is a test dependency), with a seeded
fuzz loop as a fallback so the property still runs without it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import merge_topk

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is a test dep
    HAVE_HYPOTHESIS = False


def _global_topk_reference(ids, dists, k):
    """Top-k via np.argsort on the concatenated pool: two stable passes
    give (distance asc, id asc) — independent of lexsort."""
    by_id = np.argsort(ids, kind="stable")
    order = by_id[np.argsort(dists[by_id], kind="stable")][: min(k, len(ids))]
    return ids[order], dists[order]


def _check_once(seed: int, num_shards: int, k: int) -> None:
    rng = np.random.default_rng(seed)
    total = int(rng.integers(1, 120))
    ids = rng.permutation(10_000)[:total].astype(np.int64)
    # Draw from a tiny value set so distance ties (the hard case for the
    # tie-order contract) occur constantly.
    dists = rng.choice([0.0, 0.25, 0.5, 1.0, 2.0], size=total)
    # Random ragged partition of the pool into shards (some may be empty).
    owner = rng.integers(0, num_shards, size=total)
    per_ids, per_dists = [], []
    for s in range(num_shards):
        mask = owner == s
        top = _global_topk_reference(ids[mask], dists[mask], k)
        per_ids.append(top[0])
        per_dists.append(top[1])
    got_ids, got_dists = merge_topk(per_ids, per_dists, k)
    want_ids, want_dists = _global_topk_reference(ids, dists, k)
    assert got_ids.tolist() == want_ids.tolist()
    assert got_dists.tolist() == want_dists.tolist()


if HAVE_HYPOTHESIS:

    @settings(max_examples=200, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        num_shards=st.integers(min_value=1, max_value=12),
        k=st.integers(min_value=1, max_value=25),
    )
    def test_merge_equals_global_argsort(seed, num_shards, k):
        _check_once(seed, num_shards, k)

else:  # pragma: no cover - exercised only without hypothesis

    def test_merge_equals_global_argsort():
        rng = np.random.default_rng(0)
        for _ in range(300):
            _check_once(
                int(rng.integers(2**32)),
                int(rng.integers(1, 13)),
                int(rng.integers(1, 26)),
            )


def test_merge_empty_inputs():
    ids, dists = merge_topk([], [], 5)
    assert len(ids) == 0 and len(dists) == 0
    ids, dists = merge_topk(
        [np.empty(0, dtype=np.int64)] * 3, [np.empty(0)] * 3, 5
    )
    assert len(ids) == 0 and len(dists) == 0


def test_merge_validates_arguments():
    with pytest.raises(ValueError, match="k must be positive"):
        merge_topk([np.array([1])], [np.array([0.5])], 0)
    with pytest.raises(ValueError, match="align"):
        merge_topk([np.array([1])], [], 5)
    with pytest.raises(ValueError, match="equal length"):
        merge_topk([np.array([1, 2])], [np.array([0.5])], 5)

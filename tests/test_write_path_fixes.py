"""Regression tests for the serving write-path bugfix sweep.

Two fixes pinned here:

* :meth:`LatencyHistogram.merge` used to take ``self._lock`` then
  ``other._lock`` — two threads cross-merging (``a.merge(b)`` vs
  ``b.merge(a)``, the shape a stats aggregator produces) could each
  grab their first lock and deadlock forever.  The fix orders
  acquisition by ``id()`` so every thread locks the pair in the same
  order.
* :meth:`ANNService.query_async` probed the result cache before
  checking ``_stop``, so a *closed* service kept answering queries
  that happened to hit the cache while missing ones raised — behavior
  depended on cache state.  Closed must mean closed, uniformly.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.serve.metrics import LatencyHistogram

DIM = 6


# ----------------------------------------------------------------------
# LatencyHistogram.merge lock ordering
# ----------------------------------------------------------------------

def _filled(n=100, scale=1.0, seed=0):
    hist = LatencyHistogram()
    rng = np.random.default_rng(seed)
    for v in rng.exponential(scale, size=n):
        hist.record(float(v))
    return hist


def _total_seconds(hist):
    snap = hist.snapshot()
    return snap["count"] * snap["mean_ms"] / 1e3


def test_merge_accumulates_counts_and_sum():
    a, b = _filled(50, seed=1), _filled(70, scale=2.0, seed=2)
    expected_sum = _total_seconds(a) + _total_seconds(b)
    a.merge(b)
    assert a.count == 120
    assert _total_seconds(a) == pytest.approx(expected_sum)
    # b is untouched
    assert b.count == 70


def test_self_merge_is_noop():
    """merge(self) must be idempotent.

    The old behavior doubled counts and sums while leaving min/max
    untouched — a fan-in loop that revisited its accumulator silently
    corrupted totals.  Now the histogram is simply unchanged.
    """
    hist = _filled(30)
    before = _total_seconds(hist)
    before_snap = hist.snapshot()
    hist.merge(hist)
    assert hist.count == 30
    assert _total_seconds(hist) == pytest.approx(before)
    after_snap = hist.snapshot()
    assert after_snap["min_ms"] == before_snap["min_ms"]
    assert after_snap["max_ms"] == before_snap["max_ms"]
    assert after_snap["mean_ms"] == pytest.approx(before_snap["mean_ms"])


def test_cross_merge_does_not_deadlock():
    """Two threads merging a↔b concurrently: the old self-then-other
    lock order deadlocked; id()-ordered acquisition must finish."""
    a, b = _filled(200, seed=3), _filled(200, seed=4)
    stop = time.monotonic() + 0.5
    barrier = threading.Barrier(2)

    def worker(dst, src):
        barrier.wait()
        while time.monotonic() < stop:
            dst.merge(src)

    threads = [
        threading.Thread(target=worker, args=(a, b), daemon=True),
        threading.Thread(target=worker, args=(b, a), daemon=True),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10.0)
    # Daemon threads: a deadlock shows up as still-alive workers rather
    # than a hung test run.
    assert not any(t.is_alive() for t in threads), "cross-merge deadlocked"


# ----------------------------------------------------------------------
# ANNService.query_async after close
# ----------------------------------------------------------------------

def test_query_async_closed_rejects_even_cache_hits():
    from repro import DynamicLCCSLSH
    from repro.serve import ANNService

    rng = np.random.default_rng(5)
    index = DynamicLCCSLSH(dim=DIM, m=8, w=4.0, seed=2).fit(
        rng.normal(size=(30, DIM))
    )
    service = ANNService(index, batch_window_ms=0.0, cache_size=32)
    q_cached = rng.normal(size=DIM)
    q_cold = rng.normal(size=DIM)
    service.query(q_cached, k=3)  # populate the cache
    service.close()
    # The old code answered q_cached from the cache after close but
    # raised on q_cold — closed-service behavior must be uniform.
    with pytest.raises(RuntimeError):
        service.query_async(q_cached, k=3)
    with pytest.raises(RuntimeError):
        service.query_async(q_cold, k=3)

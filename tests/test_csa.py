"""Tests for the Circular Shift Array (paper §3.2, Algorithms 1-2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CircularShiftArray, brute_force_k_lccs, lccs_length, shift


def rotations_matrix(strings, s):
    return np.array([shift(row, s) for row in strings])


# ----------------------------------------------------------------------
# Construction invariants (Algorithm 1)
# ----------------------------------------------------------------------

def test_sorted_indices_are_sorted_per_shift(rng):
    strings = rng.integers(0, 3, size=(40, 9))
    csa = CircularShiftArray(strings)
    for s in range(csa.m):
        rots = rotations_matrix(strings, s)[csa.sorted_idx[s]]
        for i in range(len(rots) - 1):
            assert tuple(rots[i]) <= tuple(rots[i + 1])


def test_next_links_point_to_same_string(rng):
    strings = rng.integers(0, 4, size=(25, 6))
    csa = CircularShiftArray(strings)
    for s in range(csa.m):
        nxt = (s + 1) % csa.m
        for j in range(csa.n):
            sid = csa.sorted_idx[s][j]
            assert csa.sorted_idx[nxt][csa.next_link[s][j]] == sid


def test_paper_figure2_example():
    """Figure 2 / Example 3.2: I_1 = [1, 3, 2] and N_1 = [3, 1, 2] (1-based)."""
    o1 = [1, 2, 4, 5, 6, 6, 7, 8]
    o2 = [5, 2, 2, 4, 3, 6, 7, 8]
    o3 = [3, 1, 3, 5, 5, 6, 4, 9]
    csa = CircularShiftArray(np.array([o1, o2, o3]))
    # 0-based: I_1 (shift 0) sorts o1 < o3 < o2 -> ids [0, 2, 1]
    assert csa.sorted_idx[0].tolist() == [0, 2, 1]
    # N_1 maps ranks in I_1 to ranks in I_2; paper gives [3, 1, 2] 1-based.
    assert (csa.next_link[0] + 1).tolist() == [3, 1, 2]


def test_rejects_bad_inputs():
    with pytest.raises(ValueError):
        CircularShiftArray(np.zeros((0, 4), dtype=int))
    with pytest.raises(ValueError):
        CircularShiftArray(np.zeros((4, 0), dtype=int))
    with pytest.raises(ValueError):
        CircularShiftArray(np.zeros(4, dtype=int))
    with pytest.raises(TypeError):
        CircularShiftArray(np.zeros((3, 3)))


def test_size_bytes_positive(rng):
    csa = CircularShiftArray(rng.integers(0, 5, size=(10, 4)))
    assert csa.size_bytes() > 0


# ----------------------------------------------------------------------
# Binary search (full and windowed)
# ----------------------------------------------------------------------

def test_binary_search_bounds_bracket_query(rng):
    strings = rng.integers(0, 3, size=(60, 7))
    csa = CircularShiftArray(strings)
    for _ in range(20):
        q = rng.integers(0, 3, size=7)
        qd = CircularShiftArray.query_rotations(q)
        for s in range(csa.m):
            b = csa.binary_search(s, qd[s : s + csa.m])
            q_rot = tuple(qd[s : s + csa.m])
            if b.pos_lower >= 0:
                low = tuple(shift(strings[csa.sorted_idx[s][b.pos_lower]], s))
                assert low <= q_rot
            if b.pos_upper < csa.n:
                up = tuple(shift(strings[csa.sorted_idx[s][b.pos_upper]], s))
                assert up > q_rot
            # adjacent ranks: everything below pos_lower is <= query too
            assert b.pos_upper == b.pos_lower + 1


def test_windowed_search_matches_full_search(rng):
    """Chained (Lemma 3.1) searches agree with independent full searches."""
    strings = rng.integers(0, 3, size=(80, 10))
    csa = CircularShiftArray(strings)
    for _ in range(25):
        q = rng.integers(0, 3, size=10)
        qd = CircularShiftArray.query_rotations(q)
        chained = csa.search_all_shifts(q)
        for s, b in enumerate(chained):
            full = csa.binary_search(s, qd[s : s + csa.m])
            assert (b.pos_lower, b.pos_upper) == (full.pos_lower, full.pos_upper)
            assert (b.len_lower, b.len_upper) == (full.len_lower, full.len_upper)


def test_search_all_shifts_rejects_bad_length(rng):
    csa = CircularShiftArray(rng.integers(0, 3, size=(5, 4)))
    with pytest.raises(ValueError):
        csa.search_all_shifts(np.array([1, 2, 3]))


# ----------------------------------------------------------------------
# k-LCCS search (Algorithm 2) vs the brute-force oracle
# ----------------------------------------------------------------------

def assert_k_lccs_exact(strings, q, k):
    csa = CircularShiftArray(strings)
    ids, lens = csa.k_lccs(q, k)
    # no duplicates
    assert len(set(ids.tolist())) == len(ids)
    # reported length is the true LCCS length
    for i, l in zip(ids, lens):
        assert lccs_length(strings[i], q) == l
    # multiset of lengths matches the oracle's top-k
    oracle = brute_force_k_lccs(strings, q, k)
    want = sorted((lccs_length(strings[i], q) for i in oracle), reverse=True)
    assert sorted(lens.tolist(), reverse=True) == want
    # lengths are emitted in non-increasing order
    assert all(lens[i] >= lens[i + 1] for i in range(len(lens) - 1))


def test_k_lccs_exact_random(rng):
    strings = rng.integers(0, 3, size=(100, 12))
    for _ in range(20):
        q = rng.integers(0, 3, size=12)
        assert_k_lccs_exact(strings, q, 10)


def test_k_lccs_exact_large_alphabet(rng):
    strings = rng.integers(0, 1000, size=(80, 8))
    strings[: 10] = strings[0]  # duplicates
    for _ in range(10):
        q = strings[rng.integers(0, 80)].copy()
        q[rng.integers(0, 8)] += 1
        assert_k_lccs_exact(strings, q, 15)


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_k_lccs_exact_property(data):
    n = data.draw(st.integers(2, 30))
    m = data.draw(st.integers(2, 10))
    alpha = data.draw(st.integers(1, 3))
    strings = np.array(
        data.draw(
            st.lists(
                st.lists(st.integers(0, alpha), min_size=m, max_size=m),
                min_size=n,
                max_size=n,
            )
        )
    )
    q = np.array(data.draw(st.lists(st.integers(0, alpha), min_size=m, max_size=m)))
    k = data.draw(st.integers(1, n))
    assert_k_lccs_exact(strings, q, k)


def test_k_lccs_query_present_in_dataset(rng):
    strings = rng.integers(0, 4, size=(50, 9))
    q = strings[17].copy()
    csa = CircularShiftArray(strings)
    ids, lens = csa.k_lccs(q, 1)
    assert lens[0] == 9  # full-length match found
    assert lccs_length(strings[ids[0]], q) == 9


def test_k_lccs_all_identical_strings():
    strings = np.tile(np.array([1, 2, 3, 4]), (10, 1))
    csa = CircularShiftArray(strings)
    ids, lens = csa.k_lccs(np.array([1, 2, 3, 4]), 10)
    assert len(ids) == 10
    assert (lens == 4).all()


def test_k_lccs_single_string():
    csa = CircularShiftArray(np.array([[5, 6, 7]]))
    ids, lens = csa.k_lccs(np.array([5, 6, 0]), 3)
    assert ids.tolist() == [0]
    assert lens.tolist() == [2]


def test_k_lccs_k_exceeds_n(rng):
    strings = rng.integers(0, 3, size=(6, 5))
    csa = CircularShiftArray(strings)
    ids, lens = csa.k_lccs(rng.integers(0, 3, size=5), 50)
    assert len(ids) == 6  # everything returned once


def test_k_lccs_rejects_bad_k(rng):
    csa = CircularShiftArray(rng.integers(0, 3, size=(5, 4)))
    with pytest.raises(ValueError):
        csa.k_lccs(np.zeros(4, dtype=int), 0)


def test_rotation_view_matches_shift(rng):
    strings = rng.integers(0, 9, size=(7, 6))
    csa = CircularShiftArray(strings)
    for sid in range(7):
        for s in range(6):
            assert csa.rotation(sid, s).tolist() == shift(strings[sid], s).tolist()

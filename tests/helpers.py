"""Shared helpers for index tests."""

from __future__ import annotations


def average_recall(index, queries, gt, k=10, **query_kwargs):
    """Mean recall of ``index`` over a query batch against exact truth."""
    from repro.eval import recall

    total = 0.0
    for i, q in enumerate(queries):
        ids, _ = index.query(q, k=k, **query_kwargs)
        total += recall(ids, gt.indices[i, :k])
    return total / len(queries)

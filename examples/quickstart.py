"""Quickstart: build an LCCS-LSH index, query it, persist it.

Run:  python examples/quickstart.py
"""

import os
import tempfile

import numpy as np

from repro import LCCSLSH
from repro.data import compute_ground_truth, load_dataset
from repro.eval import recall


def main():
    # 1. A workload: simulated SIFT descriptors (see repro.data.datasets).
    ds = load_dataset("sift", n=5000, n_queries=10, seed=7)
    print(f"dataset: {ds.name}, n={ds.n}, d={ds.dim}, queries={ds.n_queries}")

    # 2. Build the index.  `m` is the hash-string length — the single
    #    structural knob of LCCS-LSH.  `w` is the bucket width of the
    #    underlying random projection LSH family.
    gt = compute_ground_truth(ds.data, ds.queries, k=10, metric="euclidean")
    w = 2.0 * float(np.mean(gt.distances))  # a good default operating point
    index = LCCSLSH(dim=ds.dim, m=64, metric="euclidean", w=w, seed=0)
    index.fit(ds.data)
    print(f"built in {index.build_time:.2f}s, "
          f"index size {index.index_size_bytes() / 2**20:.1f} MB")

    # 3. Query.  `num_candidates` (the paper's lambda) trades accuracy
    #    for time: candidates are verified by true distance.
    total = 0.0
    for i, q in enumerate(ds.queries):
        ids, dists = index.query(q, k=10, num_candidates=200)
        total += recall(ids, gt.indices[i])
    print(f"recall@10 with 200/{ds.n} candidates: {total / ds.n_queries:.2%}")

    # 4. Persist and reload.
    path = os.path.join(tempfile.gettempdir(), "lccs_index.pkl")
    index.save(path)
    loaded = LCCSLSH.load(path)
    ids, dists = loaded.query(ds.queries[0], k=3, num_candidates=100)
    print(f"reloaded index answers: ids={ids.tolist()}, "
          f"dists={np.round(dists, 3).tolist()}")


if __name__ == "__main__":
    main()

"""Drive the TCP front door end to end: spawn, query, write, drain.

Spawns ``python -m repro.cli serve <bundle> --tcp 127.0.0.1:0 ...`` as
a subprocess (exactly what an operator runs), discovers the port from
the stderr readiness line, then drives the JSON-lines protocol through
:class:`repro.serve.ServeClient`:

* ``ping`` + a few ``query`` requests (answers must be sorted by
  distance);
* with ``--wal-dir``: an ``insert``, then a read-your-writes ``query``
  carrying the write's ``seq`` as ``min_version`` — on *any* worker;
* ``stats`` (asserts the server's request counters and latency
  percentiles are present);
* ``SIGTERM``, asserting the graceful drain: exit code 0 and every
  in-flight response delivered.

Run (read-only, 2 prefork workers)::

    PYTHONPATH=src python -m repro.cli build --dataset sift --n 600 \
        --method lccs --shards 2 --parallel thread --out /tmp/s.bundle
    PYTHONPATH=src python examples/tcp_serving.py /tmp/s.bundle --workers 2

Run (durable writes routed to the primary)::

    PYTHONPATH=src python -m repro.cli build --dataset sift --n 600 \
        --method dynamic --out /tmp/d.bundle
    PYTHONPATH=src python examples/tcp_serving.py /tmp/d.bundle \
        --workers 2 --wal-dir /tmp/d.wal
"""

import argparse
import re
import signal
import subprocess
import sys
import time

import numpy as np

from repro.serve import read_manifest
from repro.serve.client import ServeClient


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bundle")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--wal-dir", default=None)
    parser.add_argument("--queries", type=int, default=5)
    args = parser.parse_args()

    dim = int(read_manifest(args.bundle)["dim"])
    cmd = [
        sys.executable, "-m", "repro.cli", "serve", args.bundle,
        "--tcp", "127.0.0.1:0", "--workers", str(args.workers),
        "--mmap", "--max-inflight", "32",
    ]
    if args.wal_dir:
        cmd += ["--wal-dir", args.wal_dir, "--fsync", "off"]
    proc = subprocess.Popen(cmd, stderr=subprocess.PIPE, text=True)
    try:
        port = None
        deadline = time.time() + 120
        while time.time() < deadline:
            line = proc.stderr.readline()
            if not line:
                break
            print(f"[server] {line.rstrip()}")
            found = re.search(r"listening on [\d.]+:(\d+)", line)
            if found:
                port = int(found.group(1))
                break
        assert port is not None, "server never announced its port"

        rng = np.random.default_rng(0)
        with ServeClient("127.0.0.1", port, timeout=60) as client:
            assert client.ping()
            for _ in range(args.queries):
                ids, dists = client.query(rng.normal(size=dim), k=5)
                assert list(dists) == sorted(dists), "unsorted answer"
            print(f"{args.queries} queries answered, k=5, sorted")

            if args.wal_dir:
                written = client.insert(rng.normal(size=dim))
                print(f"insert acknowledged: {written}")
                assert written["seq"] >= 1
                ids, _ = client.query(
                    np.zeros(dim), k=min(1000, written["handle"] + 1),
                    min_version=written["seq"],
                )
                assert written["handle"] in ids.tolist(), \
                    "read-your-writes failed"
                print(f"min_version={written['seq']} read sees the insert")

            stats = client.stats()
            server = stats["server"]
            assert server["requests_total"] >= args.queries
            assert server["ops"]["query"]["p99_ms"] > 0.0
            print(
                f"stats: role={stats.get('role')} pid={stats.get('pid')} "
                f"requests={server['requests_total']} "
                f"query p50={server['ops']['query']['p50_ms']:.2f}ms "
                f"p99={server['ops']['query']['p99_ms']:.2f}ms"
            )

        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=60)
        rest = proc.stderr.read()
        for line in rest.strip().splitlines():
            print(f"[server] {line}")
        assert rc == 0, f"server exited {rc}"
        if args.workers > 1:
            assert "all workers drained" in rest
        print("graceful drain confirmed (exit 0)")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)


if __name__ == "__main__":
    raise SystemExit(main())

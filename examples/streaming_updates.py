"""Streaming updates: DynamicLCCSLSH under insert/delete churn.

The paper evaluates static indexes; real deployments see a stream of
inserts and deletions.  This example runs the dynamic wrapper (pending
buffer + tombstones + threshold-triggered rebuilds) through a churn
workload and tracks accuracy and rebuild behaviour over time.

Run:  python examples/streaming_updates.py
"""

import numpy as np

from repro import DynamicLCCSLSH
from repro.data import compute_ground_truth, gaussian_clusters, split_queries
from repro.eval import format_table, recall


def main():
    rng = np.random.default_rng(23)
    raw = gaussian_clusters(6010, 32, n_clusters=25, cluster_std=0.1, seed=23)
    raw, queries = split_queries(raw, 10, seed=24)
    initial, stream = raw[:4000], raw[4000:]

    index = DynamicLCCSLSH(
        dim=32, m=32, w=1.0, seed=5, rebuild_threshold=0.1
    ).fit(initial)
    print(f"initial index: {index.live_count} points\n")

    rows = []
    inserted = []
    for step in range(5):
        # Insert a batch, delete a few old points.
        batch = stream[step * 300 : (step + 1) * 300]
        for v in batch:
            inserted.append(index.insert(v))
        victims = rng.choice(len(initial), size=30, replace=False)
        deleted = 0
        for h in victims:
            try:
                index.delete(int(h))
                deleted += 1
            except KeyError:
                pass  # already deleted in an earlier step

        # Measure recall against the current live set.
        live_handles = [
            h for h in range(4000 + len(inserted))
            if h not in index._dead
        ]
        live = np.vstack([index.get_vector(h) for h in live_handles])
        gt = compute_ground_truth(live, queries, k=10)
        hits = 0.0
        for i, q in enumerate(queries):
            ids, _ = index.query(q, k=10, num_candidates=200)
            truth = [live_handles[j] for j in gt.indices[i]]
            hits += recall(ids, np.array(truth))
        rows.append(
            (
                step + 1,
                index.live_count,
                index.buffer_size,
                index.rebuilds,
                f"{hits / len(queries):.1%}",
            )
        )
    print(
        format_table(
            ("step", "live points", "buffer", "rebuilds", "recall@10"), rows
        )
    )
    print(
        "\nThe buffer stays below the rebuild threshold and recall holds "
        "steady through churn;\neach rebuild folds the buffer and drops "
        "tombstones back into the CSA."
    )


if __name__ == "__main__":
    main()

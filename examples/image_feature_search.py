"""Image-feature search: LCCS-LSH vs the paper's Euclidean baselines.

The scenario from the paper's introduction: a million-scale image
descriptor database (here: a scaled simulated SIFT corpus) needs
sub-linear top-k retrieval.  We run LCCS-LSH, MP-LCCS-LSH, E2LSH,
Multi-Probe LSH and C2LSH at comparable settings and print the accuracy
/ time / memory table.

Run:  python examples/image_feature_search.py
"""

import numpy as np

from repro import LCCSLSH, MPLCCSLSH
from repro.baselines import C2LSH, E2LSH, MultiProbeLSH
from repro.data import compute_ground_truth, load_dataset
from repro.eval import evaluate, format_results


def main():
    ds = load_dataset("sift", n=5000, n_queries=15, seed=11)
    gt = compute_ground_truth(ds.data, ds.queries, k=10, metric="euclidean")
    w = 2.0 * float(np.mean(gt.distances))
    print(f"simulated SIFT corpus: n={ds.n}, d={ds.dim}, w={w:.1f}\n")

    contenders = [
        (
            LCCSLSH(dim=ds.dim, m=64, w=w, seed=1),
            {"num_candidates": 200},
            {"m": 64},
        ),
        (
            MPLCCSLSH(dim=ds.dim, m=16, w=w, seed=1, n_probes=65),
            {"num_candidates": 200},
            {"m": 16, "#probes": 65},
        ),
        (E2LSH(dim=ds.dim, K=4, L=32, w=w, seed=1), {}, {"K": 4, "L": 32}),
        (
            MultiProbeLSH(dim=ds.dim, K=8, L=8, w=w, n_probes=64, seed=1),
            {},
            {"K": 8, "L": 8, "#probes": 64},
        ),
        (
            C2LSH(dim=ds.dim, m=32, l=6, w=w / 2, beta=0.04, seed=1),
            {},
            {"m": 32, "l": 6},
        ),
    ]
    results = []
    for index, query_kwargs, params in contenders:
        results.append(
            evaluate(
                index, ds.data, ds.queries, gt, k=10,
                query_kwargs=query_kwargs, params=params,
            )
        )
    print(format_results(results))
    print(
        "\nNote the trade-off the paper reports: the LCCS schemes reach "
        "high recall\nwhile verifying a small, LCCS-ranked candidate set; "
        "MP-LCCS-LSH does so\nfrom a 4x smaller index than LCCS-LSH."
    )


if __name__ == "__main__":
    main()

"""Near-duplicate detection in Hamming space (bit-sampling family).

The paper's framework supports any metric with an LSH family; Hamming
distance is the extreme where hashing costs O(1) per function, which
motivates the alpha = 1/(1-rho) operating point of Table 1 (verify only
a constant number of candidates).  Here: fingerprint-style binary codes
with planted near-duplicates.

Run:  python examples/near_duplicate_hamming.py
"""

import numpy as np

from repro import LCCSLSH
from repro.data import binary_strings
from repro.distances import hamming


def main():
    rng = np.random.default_rng(17)
    d = 256
    corpus = binary_strings(4000, d, n_clusters=40, flip_prob=0.02, seed=18)

    # Plant near-duplicates of 5 documents (2% of bits flipped).
    originals = corpus[rng.choice(len(corpus), 5, replace=False)]
    noisy = originals.copy()
    for row in noisy:
        flip = rng.choice(d, size=5, replace=False)
        row[flip] ^= 1

    index = LCCSLSH(dim=d, m=128, metric="hamming", seed=3).fit(corpus)
    print(f"indexed {len(corpus)} binary fingerprints (d={d}, m=128)\n")

    hits = 0
    for i, q in enumerate(noisy):
        ids, dists = index.query(q, k=1, num_candidates=50)
        true_dist = hamming(q, originals[i])
        found = dists[0] <= true_dist
        hits += found
        print(
            f"probe {i}: nearest id={ids[0]}, Hamming={dists[0]:.0f} "
            f"(planted duplicate at {true_dist:.0f}) "
            f"{'FOUND' if found else 'missed'}"
        )
    print(f"\nrecovered {hits}/5 planted near-duplicates "
          f"verifying only 50/{len(corpus)} candidates each")


if __name__ == "__main__":
    main()

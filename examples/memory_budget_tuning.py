"""Tuning under a memory budget: LCCS-LSH vs MP-LCCS-LSH (Figure 6 story).

A database operator has a fixed memory budget for the ANN index.  The
paper's claim (§6.4 Indexing Performance): at small budgets the
multi-probe scheme reaches the recall of a much larger single-probe
index by probing more.  We sweep m under a budget and print the
frontier both schemes achieve.

Run:  python examples/memory_budget_tuning.py
"""


from repro import LCCSLSH, MPLCCSLSH
from repro.data import compute_ground_truth, load_dataset
from repro.eval import evaluate, format_table


def main():
    ds = load_dataset("deep", n=5000, n_queries=15, seed=19)
    gt = compute_ground_truth(ds.data, ds.queries, k=10, metric="angular")
    rows = []
    for m in (8, 16, 32, 64):
        single = LCCSLSH(
            dim=ds.dim, m=m, metric="angular", cp_dim=16, seed=4
        )
        multi = MPLCCSLSH(
            dim=ds.dim, m=m, metric="angular", cp_dim=16, seed=4,
            n_probes=4 * m + 1,
        )
        res_s = evaluate(
            single, ds.data, ds.queries, gt, k=10,
            query_kwargs={"num_candidates": 100},
        )
        res_m = evaluate(
            multi, ds.data, ds.queries, gt, k=10,
            query_kwargs={"num_candidates": 100},
        )
        rows.append(
            (
                m,
                f"{res_s.index_size_mb:.1f}",
                f"{res_s.recall:.1%}",
                f"{res_s.avg_query_time_ms:.2f}",
                f"{res_m.recall:.1%}",
                f"{res_m.avg_query_time_ms:.2f}",
            )
        )
    print(
        format_table(
            (
                "m", "size(MB)", "LCCS recall", "LCCS ms",
                "MP recall (4m+1 probes)", "MP ms",
            ),
            rows,
        )
    )
    print(
        "\nReading: at the smallest budgets the multi-probe column reaches "
        "recall the\nsingle-probe scheme only gets from a multiple of the "
        "memory — the paper's\nFigure 6 effect."
    )


if __name__ == "__main__":
    main()

"""Angular-distance search over text embeddings (GloVe-style workload).

Demonstrates the LSH-family-independence of the LCCS framework: the same
index machinery runs on the cross-polytope family for angular distance,
compared against FALCONN-style multi-probe tables — the paper's
Figure 5 setting.

Run:  python examples/text_embedding_search.py
"""

import numpy as np

from repro import LCCSLSH, MPLCCSLSH
from repro.baselines import FALCONN
from repro.data import compute_ground_truth, load_dataset
from repro.distances import normalize_rows
from repro.eval import evaluate, format_results


def main():
    ds = load_dataset("glove", n=5000, n_queries=15, seed=13)
    data = normalize_rows(ds.data)
    queries = normalize_rows(ds.queries)
    gt = compute_ground_truth(data, queries, k=10, metric="angular")
    print(f"simulated GloVe embeddings: n={len(data)}, d={ds.dim}\n")

    contenders = [
        (
            LCCSLSH(dim=ds.dim, m=64, metric="angular", cp_dim=16, seed=2),
            {"num_candidates": 200},
            {"m": 64},
        ),
        (
            MPLCCSLSH(
                dim=ds.dim, m=32, metric="angular", cp_dim=16, seed=2,
                n_probes=33,
            ),
            {"num_candidates": 200},
            {"m": 32, "#probes": 33},
        ),
        (
            FALCONN(dim=ds.dim, K=1, L=16, cp_dim=16, n_probes=64, seed=2),
            {},
            {"K": 1, "L": 16, "#probes": 64},
        ),
    ]
    results = []
    for index, query_kwargs, params in contenders:
        results.append(
            evaluate(
                index, data, queries, gt, k=10,
                query_kwargs=query_kwargs, params=params,
            )
        )
    print(format_results(results))

    # Show one concrete query end-to-end.
    index = contenders[0][0]
    ids, dists = index.query(queries[0], k=5, num_candidates=200)
    angles = np.degrees(dists)
    print("\ntop-5 for query 0 (angles in degrees):",
          [f"id={i} {a:.1f}deg" for i, a in zip(ids, angles)])


if __name__ == "__main__":
    main()

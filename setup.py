"""Packaging for the LCCS-LSH reproduction (``pip install -e .``).

Kept as a plain ``setup.py`` (no build-isolation requirements) so the
editable install works offline with the baked-in toolchain.
"""

import os

from setuptools import find_packages, setup

_here = os.path.dirname(os.path.abspath(__file__))
_readme = os.path.join(_here, "README.md")
long_description = ""
if os.path.exists(_readme):
    with open(_readme, encoding="utf-8") as fh:
        long_description = fh.read()

setup(
    name="lccs-lsh-repro",
    version="1.0.0",
    description=(
        "Reproduction of LCCS-LSH (SIGMOD 2020) with a batched, "
        "vectorised query engine"
    ),
    long_description=long_description,
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=[
        "numpy>=1.22",
        "scipy>=1.8",
    ],
    extras_require={
        "plot": ["matplotlib"],
        "test": ["pytest", "hypothesis"],
    },
)

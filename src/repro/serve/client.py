"""Clients for the JSON-lines ANN server (:mod:`repro.serve.server`).

Two flavours over the same newline-framed protocol:

* :class:`AsyncServeClient` — asyncio streams; used by the server
  itself (workers forwarding writes to the primary), by
  ``benchmarks/bench_server.py`` (many concurrent closed-loop clients
  in one event loop), and by any async application code.
* :class:`ServeClient` — a plain blocking socket for tests, shell
  drivers and the CI smoke lane; no event loop required.

Both expose ``request(dict) -> dict`` (one request line in, the
matching response line out) plus typed conveniences.  ``query`` returns
``(ids, dists)`` as numpy arrays — byte-identical to a local
``index.query`` against the same state, because JSON round-trips float
``repr`` exactly.  Error responses raise :class:`ServerError`;
``{"error": "overloaded"}`` shed responses raise the
:class:`Overloaded` subclass so callers can implement backoff.

The wire protocol is documented in :mod:`repro.serve.server` and the
README "Serving" section.
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import Optional, Tuple

import numpy as np

__all__ = ["AsyncServeClient", "Overloaded", "ServeClient", "ServerError"]

#: maximum response-line length accepted by the async reader (a query
#: against a huge k can produce long lines; 32 MB is far beyond any
#: realistic response and still bounds memory)
_LINE_LIMIT = 32 << 20


class ServerError(RuntimeError):
    """The server answered ``{"error": ...}``; ``.response`` has it all."""

    def __init__(self, response: dict):
        super().__init__(str(response.get("error", response)))
        self.response = response


class Overloaded(ServerError):
    """Admission control shed the request (``{"shed": true}``)."""


def _encode(request: dict) -> bytes:
    return json.dumps(request).encode("utf-8") + b"\n"


def _decode(line: bytes) -> dict:
    response = json.loads(line.decode("utf-8"))
    if not isinstance(response, dict):
        raise ServerError({"error": f"non-object response: {response!r}"})
    return response


def _raise_on_error(response: dict) -> dict:
    if "error" in response:
        if response.get("shed"):
            raise Overloaded(response)
        raise ServerError(response)
    return response


def _query_result(response: dict) -> Tuple[np.ndarray, np.ndarray]:
    _raise_on_error(response)
    ids = np.asarray(response["ids"], dtype=np.int64)
    dists = np.asarray(response["dists"], dtype=np.float64)
    return ids, dists


def _query_request(
    q: np.ndarray, k: int, min_version: Optional[int], kwargs: dict
) -> dict:
    request = {"query": np.asarray(q, dtype=np.float64).tolist(), "k": int(k)}
    if min_version is not None:
        request["min_version"] = int(min_version)
    request.update(kwargs)
    return request


class AsyncServeClient:
    """One connection to the server, request/response serialized.

    ``request`` holds an internal lock, so a single client instance is
    safe to share between tasks (requests queue up); open several
    clients for real concurrency.  For explicit pipelining (many
    requests on the wire at once over one connection) use ``send`` /
    ``recv`` directly — responses come back in request order.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._lock = asyncio.Lock()

    @classmethod
    async def connect(cls, host: str, port: int) -> "AsyncServeClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=_LINE_LIMIT
        )
        return cls(reader, writer)

    async def send(self, request: dict) -> None:
        self._writer.write(_encode(request))
        await self._writer.drain()

    async def recv(self) -> dict:
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return _decode(line)

    async def request(self, request: dict) -> dict:
        async with self._lock:
            await self.send(request)
            return await self.recv()

    # -- typed conveniences -------------------------------------------

    async def query(
        self,
        q: np.ndarray,
        k: int = 1,
        min_version: Optional[int] = None,
        **kwargs,
    ) -> Tuple[np.ndarray, np.ndarray]:
        response = await self.request(
            _query_request(q, k, min_version, kwargs)
        )
        return _query_result(response)

    async def insert(self, vector: np.ndarray) -> dict:
        request = {"insert": np.asarray(vector, dtype=np.float64).tolist()}
        return _raise_on_error(await self.request(request))

    async def delete(self, handle: int) -> dict:
        return _raise_on_error(
            await self.request({"delete": int(handle)})
        )

    async def stats(self) -> dict:
        return _raise_on_error(await self.request({"stats": True}))["stats"]

    async def ping(self) -> bool:
        return bool((await self.request({"ping": True})).get("pong"))

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # peer already gone
            pass

    async def __aenter__(self) -> "AsyncServeClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()


class ServeClient:
    """Blocking JSON-lines client (plain socket, no event loop).

    Mirrors :class:`AsyncServeClient`'s surface; one request at a time.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def send(self, request: dict) -> None:
        self._file.write(_encode(request))
        self._file.flush()

    def recv(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return _decode(line)

    def request(self, request: dict) -> dict:
        self.send(request)
        return self.recv()

    # -- typed conveniences -------------------------------------------

    def query(
        self,
        q: np.ndarray,
        k: int = 1,
        min_version: Optional[int] = None,
        **kwargs,
    ) -> Tuple[np.ndarray, np.ndarray]:
        return _query_result(
            self.request(_query_request(q, k, min_version, kwargs))
        )

    def insert(self, vector: np.ndarray) -> dict:
        request = {"insert": np.asarray(vector, dtype=np.float64).tolist()}
        return _raise_on_error(self.request(request))

    def delete(self, handle: int) -> dict:
        return _raise_on_error(self.request({"delete": int(handle)}))

    def stats(self) -> dict:
        return _raise_on_error(self.request({"stats": True}))["stats"]

    def ping(self) -> bool:
        return bool(self.request({"ping": True}).get("pong"))

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

"""Checkpointing and crash recovery for WAL-backed indexes.

A *snapshot* is a normal PR-2 bundle (see
:mod:`repro.serve.persistence`) of the wrapped index, written atomically
under ``<wal_dir>/snapshots/snap-<seq>`` and tagged in its manifest
``extra`` with ``wal_seq`` — the number of WAL ops the snapshotted state
reflects.  :class:`SnapshotManager` takes them on demand or
automatically every N ops / M logged bytes and retains the newest ``K``.

:func:`recover` rebuilds an index from a WAL directory::

    newest readable snapshot  +  replay of WAL records with seq >= tag

Corrupt snapshots are skipped (newest to oldest); when none is readable
the whole log is replayed onto a fresh index built from the recorded
:class:`~repro.serve.sharding.IndexSpec` (``durable.json``, or the
``spec`` argument).  The result is byte-identical to serially replaying
the acknowledged op prefix — the property
``tests/test_durability.py`` pins down at arbitrary crash offsets.
"""

from __future__ import annotations

import json
import os
import shutil
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.serve.durability.wal import CONFIG_NAME, WALError, iter_ops, replay
from repro.serve.persistence import (
    BundleError,
    load_index,
    read_manifest,
    save_index,
)

__all__ = [
    "SnapshotManager",
    "RecoveryError",
    "RecoveryResult",
    "recover",
    "list_snapshots",
]

SNAP_DIR = "snapshots"
SNAP_PREFIX = "snap-"


class RecoveryError(RuntimeError):
    """No combination of snapshots and log suffices to rebuild the index."""


def _snap_root(wal_dir: str) -> str:
    return os.path.join(wal_dir, SNAP_DIR)


def list_snapshots(wal_dir: str) -> List[Tuple[int, str]]:
    """Sorted ``(wal_seq, path)`` of every snapshot directory (ascending)."""
    root = _snap_root(wal_dir)
    out: List[Tuple[int, str]] = []
    try:
        names = os.listdir(root)
    except FileNotFoundError:
        return out
    for name in names:
        if name.startswith(SNAP_PREFIX):
            try:
                seq = int(name[len(SNAP_PREFIX):])
            except ValueError:
                continue
            out.append((seq, os.path.join(root, name)))
    return sorted(out)


class SnapshotManager:
    """Take, retain, and prune bundle snapshots of a WAL-wrapped index.

    Args:
        wal_dir: the WAL directory (snapshots live in its ``snapshots/``
            subdirectory, so log and checkpoints travel together).
        keep: how many snapshots to retain (oldest pruned first).
        every_ops: auto-snapshot once this many ops were applied since
            the latest snapshot (``None`` disables the op trigger).
        every_bytes: auto-snapshot once this many WAL bytes were written
            since the latest snapshot (``None`` disables it).
        prune_wal: when True, :meth:`repro.serve.durability.wal.DurableIndex.checkpoint`
            also deletes WAL segments older than the *oldest retained*
            snapshot.  Default False: keeping the whole log preserves
            the full-log-replay fallback even if every snapshot rots.

    Writes are atomic: the bundle is assembled in a dot-prefixed temp
    directory and ``os.rename``d into place, so a crash mid-snapshot
    never leaves a half-readable ``snap-*`` entry.
    """

    def __init__(
        self,
        wal_dir: str,
        keep: int = 3,
        every_ops: Optional[int] = None,
        every_bytes: Optional[int] = None,
        prune_wal: bool = False,
    ):
        if keep <= 0:
            raise ValueError("keep must be positive")
        if every_ops is not None and every_ops <= 0:
            raise ValueError("every_ops must be positive (or None)")
        if every_bytes is not None and every_bytes <= 0:
            raise ValueError("every_bytes must be positive (or None)")
        self.wal_dir = wal_dir
        self.keep = int(keep)
        self.every_ops = every_ops
        self.every_bytes = every_bytes
        self.prune_wal = bool(prune_wal)
        self.taken = 0
        os.makedirs(_snap_root(wal_dir), exist_ok=True)
        existing = list_snapshots(wal_dir)
        #: seq of the newest snapshot (None when there is none yet)
        self.latest_seq: Optional[int] = existing[-1][0] if existing else None
        #: WAL bytes_written at the time of the latest snapshot
        self._bytes_at_last: Optional[float] = None

    # ------------------------------------------------------------------

    def list(self) -> List[Tuple[int, str]]:
        return list_snapshots(self.wal_dir)

    @property
    def oldest_retained_seq(self) -> Optional[int]:
        snaps = self.list()
        return snaps[0][0] if snaps else None

    def notify(
        self, index, seq: int, wal_bytes: float, barrier=None
    ) -> Optional[str]:
        """Called after every applied op; takes a snapshot if due.

        Args:
            index: the index to snapshot when a trigger fires.
            seq: ops applied so far (``DurableIndex.applied_seq``).
            wal_bytes: cumulative WAL bytes written so far.
            barrier: optional callable invoked just before a due
                snapshot is written — ``DurableIndex`` passes
                ``wal.sync`` so a snapshot never becomes visible ahead
                of the durable log.

        Returns the new snapshot path, or ``None``.
        """
        due = False
        if self.every_ops is not None:
            since = seq - (self.latest_seq or 0)
            due = due or since >= self.every_ops
        if self.every_bytes is not None:
            if self._bytes_at_last is None:
                self._bytes_at_last = 0.0
            due = due or (wal_bytes - self._bytes_at_last) >= self.every_bytes
        if not due:
            return None
        if barrier is not None:
            barrier()
        path = self.take(index, seq)
        self._bytes_at_last = float(wal_bytes)
        return path

    def take(self, index, seq: int) -> str:
        """Snapshot ``index`` as the state after ``seq`` ops (atomic)."""
        root = _snap_root(self.wal_dir)
        os.makedirs(root, exist_ok=True)
        final = os.path.join(root, f"{SNAP_PREFIX}{seq:012d}")
        tmp = os.path.join(root, f".tmp-{seq:012d}")
        if os.path.exists(tmp):
            shutil.rmtree(tmp)
        extra: dict = {"wal_seq": int(seq)}
        # Record the LSM tier shape alongside the position — cheap
        # provenance for `inspect` when debugging compaction histories.
        tier = getattr(index, "tier_stats", None)
        if callable(tier):
            shape = tier()
            extra["tier_segments"] = int(shape.get("segments", 0))
            extra["tier_memtable"] = int(shape.get("memtable", 0))
        save_index(index, tmp, extra=extra)
        if os.path.exists(final):  # re-snapshot at the same seq: replace
            shutil.rmtree(final)
        os.rename(tmp, final)
        self.taken += 1
        self.latest_seq = int(seq)
        self._prune_snapshots()
        return final

    def _prune_snapshots(self) -> None:
        snaps = self.list()
        for seq, path in snaps[: max(0, len(snaps) - self.keep)]:
            shutil.rmtree(path, ignore_errors=True)

    def stats(self) -> Dict[str, float]:
        return {
            "snapshots": float(len(self.list())),
            "snapshots_taken": float(self.taken),
            "latest_snapshot_seq": float(
                -1 if self.latest_seq is None else self.latest_seq
            ),
        }


# ----------------------------------------------------------------------
# Recovery
# ----------------------------------------------------------------------

class RecoveryResult(NamedTuple):
    """What :func:`recover` did: the index plus provenance."""

    index: object
    #: ops reflected by the recovered state (== acknowledged prefix length)
    applied_seq: int
    #: wal_seq of the snapshot used (None = full-log replay)
    snapshot_seq: Optional[int]
    #: WAL records replayed on top of the snapshot
    replayed: int
    #: snapshots skipped as unreadable: (path, error message)
    corrupt: List[Tuple[str, str]]


def _load_spec(wal_dir: str):
    from repro.serve.sharding import IndexSpec

    config_path = os.path.join(wal_dir, CONFIG_NAME)
    try:
        with open(config_path, "r", encoding="utf-8") as f:
            config = json.load(f)
    except FileNotFoundError:
        return None
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise RecoveryError(f"{config_path}: corrupt recipe sidecar: {exc}")
    manifest = config.get("spec")
    if manifest is None:
        return None
    return IndexSpec.from_manifest(manifest)


def recover(wal_dir: str, spec=None, mmap: bool = False) -> RecoveryResult:
    """Rebuild the acknowledged index state from ``wal_dir``.

    Tries snapshots newest-first; each readable one is loaded and the
    WAL suffix (``seq >= wal_seq``) replayed on top.  Unreadable
    snapshots (:class:`~repro.serve.persistence.BundleError`, or a
    manifest whose ``wal_seq`` tag is missing) are skipped and reported
    in ``RecoveryResult.corrupt``.  With no usable snapshot the whole
    log is replayed onto a fresh index built from ``spec`` (argument,
    or the ``durable.json`` sidecar a
    :class:`~repro.serve.durability.wal.DurableIndex` records).

    With ``mmap=True`` the snapshot opens as read-only memory maps
    (see :func:`repro.serve.persistence.load_index`): recovery time
    stops scaling with snapshot size — only the replayed WAL suffix
    costs time — and the recovered index's resident memory is just the
    pages its queries touch.  Replayed writes promote state
    copy-on-write exactly as live writes do.

    Raises :class:`RecoveryError` when nothing can produce an index —
    no readable snapshot and no spec for a full replay.
    """
    if not os.path.isdir(wal_dir):
        raise RecoveryError(f"{wal_dir}: no such WAL directory")
    corrupt: List[Tuple[str, str]] = []
    for seq, path in reversed(list_snapshots(wal_dir)):
        try:
            manifest = read_manifest(path)
            tagged = manifest.get("extra", {}).get("wal_seq")
            if tagged is None:
                raise BundleError(f"{path}: snapshot lacks a wal_seq tag")
            if int(tagged) != seq:
                raise BundleError(
                    f"{path}: wal_seq tag {tagged} contradicts its name"
                )
            index = load_index(path, mmap=mmap)
        except BundleError as exc:
            corrupt.append((path, str(exc)))
            continue
        replayed = replay(index, iter_ops(wal_dir, start_seq=seq))
        return RecoveryResult(
            index=index,
            applied_seq=seq + replayed,
            snapshot_seq=seq,
            replayed=replayed,
            corrupt=corrupt,
        )
    # Full-log replay from a fresh index.
    if spec is None:
        spec = _load_spec(wal_dir)
    if spec is None:
        raise RecoveryError(
            f"{wal_dir}: no readable snapshot and no index recipe "
            f"({CONFIG_NAME} or spec=...) for a full-log replay"
        )
    index = spec.build()
    try:
        replayed = replay(index, iter_ops(wal_dir, start_seq=0))
    except WALError as exc:
        # Typically: segments pruned after a snapshot that is now
        # unreadable — the surviving suffix alone cannot rebuild state.
        raise RecoveryError(
            f"{wal_dir}: full-log replay impossible ({exc}); corrupt "
            f"snapshots skipped: {[p for p, _ in corrupt]}"
        ) from exc
    return RecoveryResult(
        index=index,
        applied_seq=replayed,
        snapshot_seq=None,
        replayed=replayed,
        corrupt=corrupt,
    )

"""Durability & replication: write-ahead log, snapshots, read replicas.

The three cooperating pieces (see each module's docstring for the
on-disk formats and guarantees):

* :mod:`repro.serve.durability.wal` — an append-only, checksummed,
  length-prefixed, segmented binary log of ``fit``/``insert``/``delete``
  records, plus :class:`~repro.serve.durability.wal.DurableIndex`, the
  log-then-apply wrapper with an ``always``/``interval``/``off`` fsync
  policy and torn-tail truncation on open.
* :mod:`repro.serve.durability.snapshots` —
  :class:`~repro.serve.durability.snapshots.SnapshotManager` checkpoints
  the wrapped index as a bundle tagged with its WAL position (every N
  ops / M bytes, keeping the last K), and
  :func:`~repro.serve.durability.snapshots.recover` rebuilds the
  acknowledged state: newest readable snapshot + WAL suffix replay,
  falling back to older snapshots or a full-log replay when snapshots
  are corrupt.
* :mod:`repro.serve.durability.replica` —
  :class:`~repro.serve.durability.replica.ReplicaSet`: a durable primary
  applies writes while replicas tail the shared WAL (file-based log
  shipping) and serve round-robin reads, with per-replica applied-seq
  tracking and a ``min_version`` read-your-writes option.
"""

from repro.serve.durability.replica import Replica, ReplicaSet, StaleReadError
from repro.serve.durability.snapshots import (
    RecoveryError,
    RecoveryResult,
    SnapshotManager,
    list_snapshots,
    recover,
)
from repro.serve.durability.wal import (
    DurableIndex,
    Op,
    WALError,
    WALReader,
    WriteAheadLog,
    iter_ops,
    replay,
)

__all__ = [
    "DurableIndex",
    "Op",
    "Replica",
    "ReplicaSet",
    "RecoveryError",
    "RecoveryResult",
    "SnapshotManager",
    "StaleReadError",
    "WALError",
    "WALReader",
    "WriteAheadLog",
    "iter_ops",
    "list_snapshots",
    "recover",
    "replay",
]

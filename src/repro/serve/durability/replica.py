"""Log-shipping read replicas over a shared WAL directory.

The primary is a :class:`~repro.serve.durability.wal.DurableIndex`:
every acknowledged write is already on disk in its WAL.  A
:class:`Replica` bootstraps its own private copy of the index via
:func:`~repro.serve.durability.snapshots.recover` and then **tails the
log**: ``catch_up`` reads records past its ``applied_seq`` and applies
them.  Because the WAL reader tolerates the in-flight tail (it stops in
front of a record still being written), replicas can tail a live log
safely — this is classic file-based log shipping.

:class:`ReplicaSet` bundles a primary with ``N`` replicas:

* writes (``insert``/``delete``/``fit``) go to the primary and return
  ``(result, seq)`` — the WAL sequence number the write produced;
* reads round-robin across the replicas, each replica serialized by its
  own lock (different replicas answer in parallel);
* ``min_version=seq`` turns a read into a **read-your-writes** read:
  the chosen replica catches up to at least ``seq`` first (raising
  :class:`StaleReadError` if the log does not reach that far — e.g. the
  primary process died before flushing);
* an optional background tailer keeps replicas near-current without
  per-read catch-up latency.

A caught-up replica is state-identical to the primary (same snapshot
format, same deterministic replay), so its query results are
byte-identical — the contract ``tests/test_replica.py`` pins down.
"""

from __future__ import annotations

import itertools
import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.serve.durability.snapshots import recover
from repro.serve.durability.wal import DurableIndex, WALReader, apply_op

__all__ = ["Replica", "ReplicaSet", "StaleReadError"]


class StaleReadError(RuntimeError):
    """A ``min_version`` read could not be satisfied from the log."""


class Replica:
    """One read-serving copy of the index, fed by tailing the WAL.

    Args:
        wal_dir: the primary's WAL directory.
        spec: optional index recipe forwarded to
            :func:`~repro.serve.durability.snapshots.recover` (needed
            only when the directory has neither snapshots nor a
            ``durable.json`` sidecar).
        replica_id: label used in stats.
        mmap: bootstrap from the snapshot as read-only memory maps.
            Every replica on the machine then shares one physical copy
            of the snapshotted arrays (the page cache's), so replica
            RSS stops scaling with index size; replayed writes promote
            state copy-on-write.

    ``query``/``batch_query``/``catch_up`` are serialized per replica by
    an internal lock, so one replica is safe to share across threads;
    distinct replicas proceed in parallel.
    """

    def __init__(
        self, wal_dir: str, spec=None, replica_id: int = 0, mmap: bool = False
    ):
        self.wal_dir = wal_dir
        self.replica_id = int(replica_id)
        result = recover(wal_dir, spec=spec, mmap=mmap)
        self.index = result.index
        #: ops reflected by this replica's state
        self.applied_seq = int(result.applied_seq)
        # Incremental tail reader: each poll costs O(new bytes), not
        # O(active segment), so frequent polling of a large log is cheap.
        self._reader = WALReader(wal_dir, start_seq=self.applied_seq)
        self.reads = 0
        self.catch_ups = 0
        self._lock = threading.Lock()

    def catch_up(self) -> int:
        """Apply every newly shipped record; returns ``applied_seq``."""
        with self._lock:
            return self._catch_up_locked()

    def _catch_up_locked(self) -> int:
        advanced = False
        for seq, op in self._reader.poll():
            apply_op(self.index, op)
            self.applied_seq = seq + 1
            advanced = True
        if advanced:
            self.catch_ups += 1
        return self.applied_seq

    def query(
        self,
        q: np.ndarray,
        k: int = 1,
        min_version: Optional[int] = None,
        **kwargs,
    ) -> Tuple[np.ndarray, np.ndarray]:
        with self._lock:
            self._ensure_version_locked(min_version)
            self.reads += 1
            return self.index.query(q, k=k, **kwargs)

    def batch_query(
        self,
        queries: np.ndarray,
        k: int = 1,
        min_version: Optional[int] = None,
        **kwargs,
    ) -> Tuple[np.ndarray, np.ndarray]:
        with self._lock:
            self._ensure_version_locked(min_version)
            self.reads += 1
            return self.index.batch_query(queries, k=k, **kwargs)

    def _ensure_version_locked(self, min_version: Optional[int]) -> None:
        if min_version is None or self.applied_seq >= min_version:
            return
        self._catch_up_locked()
        if self.applied_seq < min_version:
            raise StaleReadError(
                f"replica {self.replica_id} is at seq {self.applied_seq}, "
                f"the log does not (yet) reach min_version={min_version}"
            )

    def stats(self) -> Dict[str, float]:
        out = {
            "applied_seq": float(self.applied_seq),
            "reads": float(self.reads),
            "catch_ups": float(self.catch_ups),
        }
        # Tier shape confirms replayed seal/compact records landed: a
        # replica's segment count tracks the primary's exactly.
        tier = getattr(self.index, "tier_stats", None)
        if callable(tier):
            shape = tier()
            out["segments"] = float(shape.get("segments", 0))
            out["memtable"] = float(shape.get("memtable", 0))
            out["compactions"] = float(shape.get("compactions", 0))
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Replica(id={self.replica_id}, seq={self.applied_seq}, "
            f"wal={self.wal_dir!r})"
        )


class ReplicaSet:
    """A durable primary plus ``N`` log-shipping read replicas.

    Args:
        primary: the :class:`~repro.serve.durability.wal.DurableIndex`
            applying (and logging) all writes.
        num_replicas: how many read copies to bootstrap from its WAL.
        spec: optional recipe forwarded to replica recovery.
        mmap: bootstrap every replica from memory-mapped snapshots —
            N replicas, one physical copy of the snapshotted arrays.

    Reads route round-robin; pass ``min_version`` (a seq returned by a
    write) for read-your-writes.  ``start_tailing`` launches a daemon
    thread that calls :meth:`catch_up_all` every ``interval_s`` so
    replicas stay near-current without per-read catch-ups.
    """

    def __init__(
        self,
        primary: DurableIndex,
        num_replicas: int = 2,
        spec=None,
        mmap: bool = False,
    ):
        if not isinstance(primary, DurableIndex):
            raise TypeError("primary must be a DurableIndex")
        if num_replicas <= 0:
            raise ValueError("num_replicas must be positive")
        self.primary = primary
        # Replicas bootstrap by recovering from the shared directory, so
        # the primary's acknowledged state must be on disk first.
        primary.wal.sync()
        self.replicas: List[Replica] = [
            Replica(primary.wal.path, spec=spec, replica_id=i, mmap=mmap)
            for i in range(num_replicas)
        ]
        self._rr = itertools.cycle(range(num_replicas))
        self._rr_lock = threading.Lock()
        self._tailer: Optional[threading.Thread] = None
        self._stop_tailing = threading.Event()

    # ------------------------------------------------------------------
    # Writes: primary only
    # ------------------------------------------------------------------

    def fit(self, data: np.ndarray) -> int:
        """Fit the primary; returns the seq the fit record produced."""
        self.primary.fit(data)
        return self.primary.applied_seq

    def insert(self, vector: np.ndarray) -> Tuple[int, int]:
        """Insert on the primary; returns ``(handle, seq)``."""
        handle = self.primary.insert(vector)
        return handle, self.primary.applied_seq

    def delete(self, handle: int) -> int:
        """Delete on the primary; returns the seq the delete produced."""
        self.primary.delete(handle)
        return self.primary.applied_seq

    # ------------------------------------------------------------------
    # Reads: round-robin over replicas
    # ------------------------------------------------------------------

    def _next_replica(self) -> Replica:
        with self._rr_lock:
            return self.replicas[next(self._rr)]

    def query(
        self,
        q: np.ndarray,
        k: int = 1,
        min_version: Optional[int] = None,
        **kwargs,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Answer from the next replica (read-your-writes via
        ``min_version=seq``)."""
        return self._next_replica().query(
            q, k=k, min_version=min_version, **kwargs
        )

    def batch_query(
        self,
        queries: np.ndarray,
        k: int = 1,
        min_version: Optional[int] = None,
        **kwargs,
    ) -> Tuple[np.ndarray, np.ndarray]:
        return self._next_replica().batch_query(
            queries, k=k, min_version=min_version, **kwargs
        )

    def catch_up_all(self) -> List[int]:
        """Catch every replica up; returns their applied seqs."""
        return [replica.catch_up() for replica in self.replicas]

    # ------------------------------------------------------------------
    # Background tailing
    # ------------------------------------------------------------------

    def start_tailing(self, interval_s: float = 0.05) -> None:
        """Poll the log every ``interval_s`` seconds on a daemon thread."""
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if self._tailer is not None:
            return
        self._stop_tailing.clear()

        def run() -> None:
            while not self._stop_tailing.wait(interval_s):
                try:
                    self.catch_up_all()
                except Exception:  # pragma: no cover - tailer resilience
                    # A transient read race (e.g. segment pruned mid-read)
                    # must not kill the tailer; the next tick retries.
                    continue

        self._tailer = threading.Thread(
            target=run, name="replica-tailer", daemon=True
        )
        self._tailer.start()

    def stop_tailing(self) -> None:
        if self._tailer is None:
            return
        self._stop_tailing.set()
        self._tailer.join()
        self._tailer = None

    def close(self) -> None:
        self.stop_tailing()

    def __enter__(self) -> "ReplicaSet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """Primary seq plus per-replica applied seqs and read counts."""
        out: Dict[str, float] = {
            "primary_seq": float(self.primary.applied_seq),
            "replicas": float(len(self.replicas)),
        }
        for replica in self.replicas:
            for key, val in replica.stats().items():
                out[f"replica{replica.replica_id}_{key}"] = val
        return out

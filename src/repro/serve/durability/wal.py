"""Write-ahead logging: checksummed append-only op log + ``DurableIndex``.

Every mutation (``fit``/``insert``/``delete``) is encoded as a
self-describing binary record and appended to an on-disk **write-ahead
log** *before* it is applied in memory, so the acknowledged state of an
index is always reconstructible by replaying the log (optionally from a
snapshot, see :mod:`repro.serve.durability.snapshots`).

On-disk format
--------------

A WAL is a directory of *segment* files ``wal-<first_seq>.log``.  Each
segment starts with a 16-byte header (``LCWAL001`` magic + the u64
sequence number of its first record) followed by length-prefixed,
CRC-checksummed records::

    <u32 payload_len> <u32 crc32(payload)> <payload>
    payload = <u8 opcode> <u64 seq> <op body>

Op bodies are self-describing (dims and counts are part of the record),
so a log can be replayed without the index that wrote it:

* ``fit``    — ``<u32 dim> <u64 n>`` + row-major float64 data
* ``insert`` — ``<u32 dim>`` + float64 vector
* ``delete`` — ``<i64 handle>``

All integers are little-endian.  Records never span segments; a segment
rotates once it exceeds ``segment_bytes``.

Torn tails and corruption
-------------------------

A crash mid-append leaves a *torn tail*: a partial or checksum-invalid
record at the end of the **last** segment.  :class:`WriteAheadLog`
truncates it physically on open; :func:`iter_ops` stops cleanly in front
of it (readers must tolerate a tail that is still being written — that
is exactly how replicas tail a live log).  An invalid record anywhere
*other* than the last segment's tail is real corruption and raises
:class:`WALError`.

fsync policy
------------

``"always"`` fsyncs after every append (every acknowledged op survives
power loss), ``"interval"`` fsyncs at most every ``fsync_interval_s``
seconds (bounded loss window, much higher throughput), ``"off"`` never
fsyncs (the OS decides).  Appends are *flushed* to the OS on every call
regardless, so same-host readers (replicas) always see acknowledged
records.

``DurableIndex``
----------------

:class:`DurableIndex` is the logging wrapper: an
:class:`~repro.base.ANNIndex` facade that appends the record, applies
the op on the wrapped index, optionally notifies a snapshot manager,
and only then returns to the caller.  Queries pass straight through.
Wrap it in :class:`~repro.serve.concurrency.ConcurrentIndex` (or serve
it through :class:`~repro.serve.ANNService`) for concurrent traffic —
the exclusive write lock then also serializes log appends.
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib
from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple

import numpy as np

from repro.base import ANNIndex
from repro.obs.metrics import get_registry
from repro.obs.tracing import span as obs_span

_FSYNC_HIST = None


def _fsync_hist():
    """Lazy registry handle: fsync duration histogram (process-wide)."""
    global _FSYNC_HIST
    if _FSYNC_HIST is None:
        _FSYNC_HIST = get_registry().histogram(
            "repro_wal_fsync_seconds", "WAL fsync duration (seconds)"
        )
    return _FSYNC_HIST

__all__ = [
    "Op",
    "WALError",
    "WALReader",
    "WriteAheadLog",
    "DurableIndex",
    "iter_ops",
    "list_segments",
    "replay",
    "apply_op",
]

#: segment header: 8-byte magic + u64 first record sequence number
MAGIC = b"LCWAL001"
HEADER = struct.Struct("<8sQ")
#: record header: u32 payload length + u32 crc32(payload)
RECORD = struct.Struct("<II")
#: payload header: u8 opcode + u64 sequence number
PAYLOAD = struct.Struct("<BQ")

OP_FIT = 1
OP_INSERT = 2
OP_DELETE = 3
#: structural ops from the LSM-tiered dynamic index — a memtable seal
#: and a segment merge-compaction.  Logged *before* the epoch swap so
#: recovery and log-tailing replicas replay the exact same tier shape.
OP_SEAL = 4
OP_COMPACT = 5
_OP_NAMES = {
    OP_FIT: "fit",
    OP_INSERT: "insert",
    OP_DELETE: "delete",
    OP_SEAL: "seal",
    OP_COMPACT: "compact",
}
_OP_CODES = {name: code for code, name in _OP_NAMES.items()}

SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".log"
#: sidecar recording the index recipe (enables full-log recovery)
CONFIG_NAME = "durable.json"

FSYNC_POLICIES = ("always", "interval", "off")


class WALError(RuntimeError):
    """The log is corrupt beyond its (tolerated) torn tail."""


class Op(NamedTuple):
    """One replayable mutation record.

    ``kind`` is ``"fit"`` / ``"insert"`` / ``"delete"`` — payload: the
    ``(n, dim)`` data matrix, the ``(dim,)`` vector, or the integer
    handle — or a structural op from the LSM index: ``"seal"`` (payload:
    the store size at the seal point, advisory) / ``"compact"``
    (payload: ``(j, dropped)``, the number of head segments merged and
    the sorted tombstoned handles the merge excluded).
    """

    kind: str
    payload: object

    @classmethod
    def fit(cls, data: np.ndarray) -> "Op":
        return cls("fit", np.ascontiguousarray(data, dtype=np.float64))

    @classmethod
    def insert(cls, vector: np.ndarray) -> "Op":
        return cls("insert", np.ascontiguousarray(vector, dtype=np.float64))

    @classmethod
    def delete(cls, handle: int) -> "Op":
        return cls("delete", int(handle))

    @classmethod
    def seal(cls, boundary: int) -> "Op":
        return cls("seal", int(boundary))

    @classmethod
    def compact(cls, j: int, dropped) -> "Op":
        return cls("compact", (int(j), [int(h) for h in dropped]))


# ----------------------------------------------------------------------
# Record encode / decode
# ----------------------------------------------------------------------

def encode_record(op: Op, seq: int) -> bytes:
    """Serialize ``op`` (with sequence number ``seq``) into one record."""
    code = _OP_CODES.get(op.kind)
    if code is None:
        raise ValueError(f"unknown op kind {op.kind!r}")
    if code == OP_FIT:
        data = np.ascontiguousarray(op.payload, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("fit payload must be a 2-d array")
        body = struct.pack("<IQ", data.shape[1], data.shape[0]) + data.tobytes()
    elif code == OP_INSERT:
        vec = np.ascontiguousarray(op.payload, dtype=np.float64)
        if vec.ndim != 1:
            raise ValueError("insert payload must be a 1-d vector")
        body = struct.pack("<I", vec.shape[0]) + vec.tobytes()
    elif code == OP_DELETE:
        body = struct.pack("<q", int(op.payload))
    elif code == OP_SEAL:
        body = struct.pack("<Q", int(op.payload))
    else:  # OP_COMPACT
        j, dropped = op.payload
        handles = np.ascontiguousarray(dropped, dtype=np.int64)
        if handles.ndim != 1:
            raise ValueError("compact dropped-handles must be a flat list")
        body = struct.pack("<IQ", int(j), len(handles)) + handles.tobytes()
    payload = PAYLOAD.pack(code, seq) + body
    return RECORD.pack(len(payload), zlib.crc32(payload)) + payload


def decode_payload(payload: bytes) -> Tuple[int, Op]:
    """Parse a checksum-verified payload into ``(seq, Op)``."""
    if len(payload) < PAYLOAD.size:
        raise WALError("record payload shorter than its header")
    code, seq = PAYLOAD.unpack_from(payload)
    body = payload[PAYLOAD.size:]
    if code == OP_FIT:
        if len(body) < 12:
            raise WALError("truncated fit record")
        dim, n = struct.unpack_from("<IQ", body)
        raw = body[12:]
        if len(raw) != n * dim * 8:
            raise WALError("fit record length contradicts its dimensions")
        data = np.frombuffer(raw, dtype=np.float64).reshape(n, dim).copy()
        return seq, Op("fit", data)
    if code == OP_INSERT:
        if len(body) < 4:
            raise WALError("truncated insert record")
        (dim,) = struct.unpack_from("<I", body)
        raw = body[4:]
        if len(raw) != dim * 8:
            raise WALError("insert record length contradicts its dimension")
        return seq, Op("insert", np.frombuffer(raw, dtype=np.float64).copy())
    if code == OP_DELETE:
        if len(body) != 8:
            raise WALError("malformed delete record")
        (handle,) = struct.unpack("<q", body)
        return seq, Op("delete", int(handle))
    if code == OP_SEAL:
        if len(body) != 8:
            raise WALError("malformed seal record")
        (boundary,) = struct.unpack("<Q", body)
        return seq, Op("seal", int(boundary))
    if code == OP_COMPACT:
        if len(body) < 12:
            raise WALError("truncated compact record")
        j, count = struct.unpack_from("<IQ", body)
        raw = body[12:]
        if len(raw) != count * 8:
            raise WALError("compact record length contradicts its count")
        dropped = np.frombuffer(raw, dtype=np.int64)
        return seq, Op("compact", (int(j), [int(h) for h in dropped]))
    raise WALError(f"unknown opcode {code}")


def _segment_path(root: str, first_seq: int) -> str:
    return os.path.join(
        root, f"{SEGMENT_PREFIX}{first_seq:012d}{SEGMENT_SUFFIX}"
    )


def _list_segments(root: str) -> List[Tuple[int, str]]:
    """Sorted ``(first_seq, path)`` for every segment file under ``root``."""
    out = []
    try:
        names = os.listdir(root)
    except FileNotFoundError:
        return []
    for name in names:
        if name.startswith(SEGMENT_PREFIX) and name.endswith(SEGMENT_SUFFIX):
            digits = name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)]
            try:
                out.append((int(digits), os.path.join(root, name)))
            except ValueError:
                raise WALError(f"unparseable segment name {name!r}") from None
    return sorted(out)


def list_segments(root: str) -> List[Tuple[int, str]]:
    """Public alias of the segment listing (used by the CLI and tests)."""
    return _list_segments(root)


def _scan_segment(
    path: str,
    expected_first: int,
    resume: Optional[Tuple[int, int]] = None,
) -> Tuple[List[Tuple[int, Op]], int, bool]:
    """Parse one segment: ``(records, valid_byte_length, tail_torn)``.

    ``valid_byte_length`` is the offset of the first invalid byte (the
    whole file when clean); ``tail_torn`` is True when parsing stopped
    early.  Corruption is *reported*, not raised — the caller decides
    whether a torn tail is tolerable (last segment) or fatal.

    ``resume`` is an optional ``(offset, seq)`` position from a previous
    scan of the same segment: parsing starts there and only the bytes
    past it are read from disk — the incremental path
    :class:`WALReader` uses so tailing a live log costs O(new bytes),
    not O(segment bytes), per poll.
    """
    with open(path, "rb") as f:
        header = f.read(HEADER.size)
        if len(header) < HEADER.size:
            return [], 0, True
        magic, first_seq = HEADER.unpack(header)
        if magic != MAGIC or first_seq != expected_first:
            return [], 0, True
        if resume is None:
            offset, seq = HEADER.size, first_seq
        else:
            offset, seq = resume
            f.seek(offset)
        blob = f.read()
    records: List[Tuple[int, Op]] = []
    rel = 0
    while rel < len(blob):
        if rel + RECORD.size > len(blob):
            return records, offset + rel, True
        length, crc = RECORD.unpack_from(blob, rel)
        start = rel + RECORD.size
        end = start + length
        if end > len(blob):
            return records, offset + rel, True
        payload = blob[start:end]
        if zlib.crc32(payload) != crc:
            return records, offset + rel, True
        try:
            rec_seq, op = decode_payload(payload)
        except WALError:
            return records, offset + rel, True
        if rec_seq != seq:
            return records, offset + rel, True
        records.append((seq, op))
        seq += 1
        rel = end
    return records, offset + rel, False


def iter_ops(path: str, start_seq: int = 0) -> Iterator[Tuple[int, Op]]:
    """Yield ``(seq, Op)`` for every record with ``seq >= start_seq``.

    Tolerates a torn tail on the *last* segment (stops in front of it —
    a live writer may still be appending there); raises
    :class:`WALError` for invalid records anywhere else.  Segments whose
    whole range lies below ``start_seq`` are skipped without parsing.

    Raises :class:`WALError` when the log no longer reaches back to
    ``start_seq`` (segments pruned past it): silently replaying a
    non-contiguous suffix would diverge the caller's state.
    """
    segments = _list_segments(path)
    if start_seq > 0 and not segments:
        raise WALError(
            f"{path}: log is empty but records from seq {start_seq} were "
            "requested (segments pruned or deleted)"
        )
    if segments and start_seq < segments[0][0]:
        raise WALError(
            f"{path}: log starts at seq {segments[0][0]}; records from "
            f"seq {start_seq} have been pruned — replaying the surviving "
            "suffix alone would silently diverge"
        )
    for i, (first_seq, seg_path) in enumerate(segments):
        is_last = i == len(segments) - 1
        if not is_last and segments[i + 1][0] <= start_seq:
            continue  # every record in this segment is below start_seq
        records, _, torn = _scan_segment(seg_path, first_seq)
        if torn and not is_last:
            raise WALError(
                f"{seg_path}: invalid record in a non-final segment "
                "(corruption beyond the torn-tail rule)"
            )
        if not is_last and records and records[-1][0] + 1 != segments[i + 1][0]:
            raise WALError(
                f"{seg_path}: segment ends at seq {records[-1][0]} but the "
                f"next segment starts at {segments[i + 1][0]}"
            )
        for seq, op in records:
            if seq >= start_seq:
                yield seq, op


class WALReader:
    """Stateful incremental log reader for tailing a live WAL.

    Remembers its ``(segment, byte offset)`` position between polls, so
    a poll costs O(bytes appended since the last poll) — not O(segment
    bytes) — even while a huge active segment keeps growing.  This is
    what replicas use to ship the log (:mod:`repro.serve.durability.replica`).

    ``poll`` returns every newly completed record (stopping cleanly in
    front of a torn/in-flight tail on the last segment) and raises
    :class:`WALError` on corruption elsewhere or when the log no longer
    reaches back to the reader's position (segments pruned past it).
    """

    def __init__(self, path: str, start_seq: int = 0):
        self.path = path
        #: seq of the next record this reader will return
        self.next_seq = int(start_seq)
        #: resume position inside the current segment: (first_seq, offset)
        self._pos: Optional[Tuple[int, int]] = None

    def poll(self) -> List[Tuple[int, Op]]:
        """Every ``(seq, Op)`` appended since the last poll, in order."""
        segments = _list_segments(self.path)
        if not segments:
            if self.next_seq > 0:
                raise WALError(
                    f"{self.path}: log vanished under a reader at seq "
                    f"{self.next_seq}"
                )
            return []
        if self.next_seq < segments[0][0]:
            raise WALError(
                f"{self.path}: log starts at seq {segments[0][0]}; a "
                f"reader at seq {self.next_seq} can no longer catch up "
                "(segments pruned past it)"
            )
        # First segment that can contain next_seq: the last one whose
        # first_seq <= next_seq.
        start = 0
        for i, (first_seq, _) in enumerate(segments):
            if first_seq <= self.next_seq:
                start = i
        out: List[Tuple[int, Op]] = []
        for i in range(start, len(segments)):
            first_seq, seg_path = segments[i]
            is_last = i == len(segments) - 1
            if first_seq > self.next_seq:
                raise WALError(
                    f"{seg_path}: segment starts at seq {first_seq} but "
                    f"the reader expected {self.next_seq} (gap in the log)"
                )
            resume = None
            if self._pos is not None and self._pos[0] == first_seq:
                resume = (self._pos[1], self.next_seq)
            records, valid_len, torn = _scan_segment(
                seg_path, first_seq, resume=resume
            )
            if torn and not is_last:
                raise WALError(
                    f"{seg_path}: invalid record in a non-final segment"
                )
            for seq, op in records:
                if seq >= self.next_seq:
                    out.append((seq, op))
                    self.next_seq = seq + 1
            if is_last:
                self._pos = (first_seq, valid_len)
            else:
                self._pos = None  # next iteration starts a fresh segment
        return out


class WriteAheadLog:
    """Append-only, checksummed, segmented op log in a directory.

    Args:
        path: log directory (created if needed).  Existing segments are
            validated on open and a torn tail is physically truncated.
        fsync: ``"always"`` / ``"interval"`` / ``"off"`` — see the
            module docstring.
        fsync_interval_s: maximum seconds between fsyncs under the
            ``"interval"`` policy.
        segment_bytes: rotate to a new segment file once the active one
            exceeds this size (records never split across segments).

    ``next_seq`` is the sequence number the next append will get, i.e.
    the number of (valid) records currently in the log.
    """

    def __init__(
        self,
        path: str,
        fsync: str = "always",
        fsync_interval_s: float = 0.05,
        segment_bytes: int = 64 << 20,
    ):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"fsync must be one of {FSYNC_POLICIES}")
        if fsync_interval_s <= 0:
            raise ValueError("fsync_interval_s must be positive")
        if segment_bytes <= HEADER.size:
            raise ValueError("segment_bytes too small to hold a header")
        self.path = path
        self.fsync_policy = fsync
        self.fsync_interval_s = float(fsync_interval_s)
        self.segment_bytes = int(segment_bytes)
        self.appends = 0
        self.bytes_written = 0
        self.syncs = 0
        self.rotations = 0
        self.truncated_tail_bytes = 0
        self._last_sync = time.monotonic()
        self._file = None
        os.makedirs(path, exist_ok=True)
        self._open_existing()

    # ------------------------------------------------------------------
    # Open / recovery of the tail
    # ------------------------------------------------------------------

    def _open_existing(self) -> None:
        segments = _list_segments(self.path)
        if not segments:
            self.next_seq = 0
            self._start_segment(0)
            return
        count = 0
        for i, (first_seq, seg_path) in enumerate(segments):
            if first_seq != count:
                raise WALError(
                    f"{seg_path}: segment starts at seq {first_seq}, "
                    f"expected {count} (missing or misnamed segment)"
                )
            records, valid_len, torn = _scan_segment(seg_path, first_seq)
            if torn:
                if i != len(segments) - 1:
                    raise WALError(
                        f"{seg_path}: invalid record in a non-final segment"
                    )
                # Torn tail on the last segment: truncate it away so the
                # file ends on a record boundary again.
                size = os.path.getsize(seg_path)
                self.truncated_tail_bytes = size - valid_len
                if valid_len < HEADER.size:
                    # Not even a whole header survived; rewrite it.
                    with open(seg_path, "wb") as f:
                        f.write(HEADER.pack(MAGIC, first_seq))
                else:
                    with open(seg_path, "r+b") as f:
                        f.truncate(valid_len)
            count += len(records)
        self.next_seq = count
        last_path = segments[-1][1]
        self._segment_first = segments[-1][0]
        self._segment_path = last_path
        self._file = open(last_path, "ab")
        self._offset = os.path.getsize(last_path)

    def _start_segment(self, first_seq: int) -> None:
        if self._file is not None:
            self._file.close()
        self._segment_first = first_seq
        self._segment_path = _segment_path(self.path, first_seq)
        self._file = open(self._segment_path, "ab")
        if os.path.getsize(self._segment_path) == 0:
            self._file.write(HEADER.pack(MAGIC, first_seq))
            self._file.flush()
        self._offset = os.path.getsize(self._segment_path)

    # ------------------------------------------------------------------
    # Append path
    # ------------------------------------------------------------------

    def append(self, op: Op) -> int:
        """Append one op; returns its sequence number.

        The record is flushed to the OS before returning (same-host
        readers see it immediately); whether it is *fsynced* is governed
        by the policy.
        """
        if self._file is None:
            raise WALError("log is closed")
        # obs_span is a shared no-op unless a sampled trace is attached
        # on this thread (the service attaches it around traced writes).
        with obs_span("wal.append", op=op.kind):
            record = encode_record(op, self.next_seq)
            if (
                self._offset > HEADER.size
                and self._offset + len(record) > self.segment_bytes
            ):
                self._rotate()
            self._file.write(record)
            self._file.flush()
            seq = self.next_seq
            self.next_seq += 1
            self._offset += len(record)
            self.appends += 1
            self.bytes_written += len(record)
            if self.fsync_policy == "always":
                self._fsync()
            elif self.fsync_policy == "interval":
                now = time.monotonic()
                if now - self._last_sync >= self.fsync_interval_s:
                    self._fsync()
        return seq

    def _rotate(self) -> None:
        self._fsync()  # a finalized segment is never torn
        self._start_segment(self.next_seq)
        self.rotations += 1

    def _fsync(self) -> None:
        with obs_span("wal.fsync"):
            t0 = time.perf_counter()
            os.fsync(self._file.fileno())
            _fsync_hist().observe(time.perf_counter() - t0)
        self._last_sync = time.monotonic()
        self.syncs += 1

    def sync(self) -> None:
        """Flush and fsync the active segment (any policy)."""
        if self._file is not None:
            self._file.flush()
            self._fsync()

    def close(self) -> None:
        """Flush, fsync (unless policy ``off``) and close the log."""
        if self._file is None:
            return
        self._file.flush()
        if self.fsync_policy != "off":
            self._fsync()
        self._file.close()
        self._file = None

    # ------------------------------------------------------------------
    # Introspection / maintenance
    # ------------------------------------------------------------------

    @property
    def tail_offset(self) -> int:
        """Byte offset of the next record in the active segment."""
        return self._offset

    @property
    def active_segment(self) -> str:
        return self._segment_path

    def segments(self) -> List[Tuple[int, str]]:
        """Sorted ``(first_seq, path)`` of all segment files."""
        return _list_segments(self.path)

    def total_bytes(self) -> int:
        return sum(os.path.getsize(p) for _, p in self.segments())

    def prune(self, retain_seq: int) -> int:
        """Delete segments fully below ``retain_seq``; returns how many.

        A segment is removable when the *next* segment starts at or
        before ``retain_seq`` (every record in it has ``seq <
        retain_seq``).  The active segment is never removed.  Call this
        after a snapshot at ``retain_seq`` has been persisted — earlier
        records are then covered by the snapshot.
        """
        segments = self.segments()
        removed = 0
        for (first, path), (next_first, _) in zip(segments, segments[1:]):
            if next_first <= retain_seq and path != self._segment_path:
                os.remove(path)
                removed += 1
            else:
                break
        return removed

    def stats(self) -> Dict[str, float]:
        return {
            "appends": float(self.appends),
            "bytes_written": float(self.bytes_written),
            "syncs": float(self.syncs),
            "rotations": float(self.rotations),
            "next_seq": float(self.next_seq),
            "segments": float(len(self.segments())),
        }

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------

def apply_op(index, op: Op) -> Optional[int]:
    """Apply one decoded record to ``index`` (replay semantics).

    Prefers the index's own ``apply_op`` hook (e.g.
    :meth:`repro.core.dynamic.DynamicLCCSLSH.apply_op`); otherwise
    dispatches to ``fit``/``insert``/``delete``.  A ``delete`` that
    raises ``KeyError`` is a **no-op**, exactly matching the live call
    that logged it (the original ``delete`` raised to its caller without
    changing state), so replayed state tracks acknowledged state even
    through failed deletes.
    """
    hook = getattr(index, "apply_op", None)
    if hook is not None:
        return hook((op.kind, op.payload))
    if op.kind == "fit":
        index.fit(op.payload)
        return None
    if op.kind == "insert":
        return int(index.insert(op.payload))
    if op.kind == "delete":
        try:
            index.delete(int(op.payload))
        except KeyError:
            pass
        return None
    if op.kind in ("seal", "compact"):
        # Structural LSM ops are only written by indexes exposing the
        # apply_op hook; an index without it cannot replay them.
        raise WALError(
            f"{type(index).__name__} cannot replay structural "
            f"{op.kind!r} records (no apply_op hook)"
        )
    raise WALError(f"unknown op kind {op.kind!r}")


def replay(index, ops) -> int:
    """Apply an iterable of ``(seq, Op)`` pairs in order; returns count."""
    applied = 0
    for _, op in ops:
        apply_op(index, op)
        applied += 1
    return applied


# ----------------------------------------------------------------------
# DurableIndex
# ----------------------------------------------------------------------

class DurableIndex(ANNIndex):
    """Log-then-apply wrapper making any dynamic index crash-durable.

    Every ``fit``/``insert``/``delete`` is appended (and per policy
    fsynced) to the WAL *before* the in-memory apply; the op is
    acknowledged — the call returns — only after both.  Recovery
    (:func:`repro.serve.durability.snapshots.recover`) therefore
    reconstructs exactly the acknowledged prefix: kill the process at
    any WAL byte offset and the recovered index equals a serial replay
    of the ops whose records survived intact.

    Args:
        index: the index to wrap.  Must support ``insert``/``delete``
            for those ops to be accepted (e.g.
            :class:`~repro.core.dynamic.DynamicLCCSLSH`).
        wal_dir: WAL directory; also hosts ``snapshots/`` and the
            ``durable.json`` recipe sidecar.
        fsync / fsync_interval_s / segment_bytes: see
            :class:`WriteAheadLog`.
        snapshots: optional
            :class:`~repro.serve.durability.snapshots.SnapshotManager`;
            notified after every applied op and used for the baseline
            checkpoint when wrapping an already-fitted index.
        spec: optional :class:`~repro.serve.sharding.IndexSpec` recorded
            in ``durable.json`` so recovery can rebuild the index from
            the log alone (without it, recovery needs at least one
            readable snapshot or an explicit spec).

    Wrapping an **already-fitted** index over an *empty* log requires a
    snapshot manager: the pre-existing state is captured by an immediate
    baseline checkpoint (it is not re-derivable from an empty log).
    Like every index, the wrapper is single-threaded — put it behind
    :class:`~repro.serve.concurrency.ConcurrentIndex` (or
    :class:`~repro.serve.ANNService`) to serialize writers.
    """

    def __init__(
        self,
        index: ANNIndex,
        wal_dir: str,
        fsync: str = "always",
        fsync_interval_s: float = 0.05,
        segment_bytes: int = 64 << 20,
        snapshots=None,
        spec=None,
    ):
        if not isinstance(index, ANNIndex):
            raise TypeError(f"{index!r} is not an ANNIndex")
        # Deliberately not calling ANNIndex.__init__: every stateful
        # attribute (data, stats, build time) delegates to the wrapped
        # index so the wrapper adds logging, not a second copy of state.
        self.inner = index
        self.dim = index.dim
        self.metric = index.metric
        self.seed = index.seed
        self.name = f"Durable[{index.name}]"
        self.wal = WriteAheadLog(
            wal_dir,
            fsync=fsync,
            fsync_interval_s=fsync_interval_s,
            segment_bytes=segment_bytes,
        )
        self.snapshots = snapshots
        # LSM-tiered indexes announce seals/compactions through a
        # structural listener; registering it routes those epoch swaps
        # through the log *before* they are published (log-then-apply),
        # keeping recovery and WAL-tailing replicas byte-exact across
        # background compactions.
        register = getattr(index, "set_structural_listener", None)
        if register is not None:
            register(self._log_structural)
        if spec is not None:
            self._write_config(spec)
        if snapshots is not None and snapshots.latest_seq is not None:
            if self.wal.next_seq < snapshots.latest_seq:
                # A snapshot tagged ahead of the surviving log means the
                # log lost fsync-pending records a snapshot had already
                # captured.  Appending here would reuse sequence numbers
                # the snapshot covers, making the new writes permanently
                # invisible to recovery and replicas — refuse loudly.
                # (The sync-before-snapshot barrier in checkpoint()
                # prevents this for crashes; this guard catches manual
                # tampering or logs mixed across directories.)
                raise WALError(
                    f"snapshot at seq {snapshots.latest_seq} is ahead of "
                    f"the log (next_seq={self.wal.next_seq}); recover() "
                    "from the snapshot into a fresh WAL directory instead "
                    "of appending to this one"
                )
        if index.is_fitted and self.wal.next_seq == 0:
            have_snapshot = (
                snapshots is not None and snapshots.latest_seq is not None
            )
            if snapshots is None:
                raise ValueError(
                    "wrapping an already-fitted index over an empty WAL "
                    "loses its current state; pass a SnapshotManager (a "
                    "baseline checkpoint is taken automatically) or wrap "
                    "before fitting"
                )
            if not have_snapshot:
                self.checkpoint()

    def _write_config(self, spec) -> None:
        config_path = os.path.join(self.wal.path, CONFIG_NAME)
        payload = {"spec": spec.to_manifest()}
        with open(config_path, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")

    # ------------------------------------------------------------------
    # Delegated state
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        return self.inner.n

    @property
    def is_fitted(self) -> bool:
        return self.inner.is_fitted

    @property
    def last_stats(self):
        return self.inner.last_stats

    @last_stats.setter
    def last_stats(self, value) -> None:
        self.inner.last_stats = value

    @property
    def build_time(self) -> float:
        return self.inner.build_time

    @build_time.setter
    def build_time(self, value: float) -> None:
        self.inner.build_time = value

    @property
    def _data(self):
        return self.inner._data

    @_data.setter
    def _data(self, value) -> None:
        self.inner._data = value

    @property
    def applied_seq(self) -> int:
        """Number of ops logged *and* applied (the acknowledged count)."""
        return self.wal.next_seq

    # ------------------------------------------------------------------
    # Logged writes
    # ------------------------------------------------------------------

    def fit(self, data: np.ndarray) -> "DurableIndex":
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[1] != self.dim:
            raise ValueError(
                f"data must have shape (n, {self.dim}), got {data.shape}"
            )
        self.wal.append(Op.fit(data))
        self.inner.fit(data)
        self._notify()
        return self

    def insert(self, vector: np.ndarray) -> int:
        if not hasattr(self.inner, "insert"):
            raise TypeError(
                f"{type(self.inner).__name__} does not support insert"
            )
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dim,):
            raise ValueError(f"vector must have shape ({self.dim},)")
        self.wal.append(Op.insert(vector))
        handle = int(self.inner.insert(vector))
        self._notify()
        return handle

    def delete(self, handle: int) -> None:
        if not hasattr(self.inner, "delete"):
            raise TypeError(
                f"{type(self.inner).__name__} does not support delete"
            )
        handle = int(handle)
        # Log-then-apply even though the apply may raise: a delete that
        # fails with KeyError leaves the state unchanged both live and
        # on replay (see apply_op), so the log stays a faithful history.
        self.wal.append(Op.delete(handle))
        try:
            self.inner.delete(handle)
        finally:
            self._notify()

    def _log_structural(self, kind: str, payload) -> None:
        """Structural-listener callback: append seal/compact records.

        Invoked by the wrapped index on its own write path, immediately
        *before* the corresponding epoch swap, so the WAL ordering
        matches the in-memory ordering exactly.
        """
        if kind == "seal":
            self.wal.append(Op.seal(int(payload)))
        elif kind == "compact":
            j, dropped = payload
            self.wal.append(Op.compact(j, dropped))
        else:  # pragma: no cover - future-proofing
            raise WALError(f"unknown structural op {kind!r}")

    def flush(self) -> bool:
        """Seal the wrapped index's memtable (logged via the listener)."""
        flush = getattr(self.inner, "flush", None)
        if flush is None:
            raise TypeError(
                f"{type(self.inner).__name__} does not support flush"
            )
        try:
            return bool(flush())
        finally:
            self._notify()

    def compact(self) -> bool:
        """Merge the wrapped index's segments (logged via the listener)."""
        compact = getattr(self.inner, "compact", None)
        if compact is None:
            raise TypeError(
                f"{type(self.inner).__name__} does not support compact"
            )
        try:
            return bool(compact())
        finally:
            self._notify()

    def drain_compaction(self, timeout=None) -> bool:
        """Wait for and commit an in-flight background compaction."""
        drain = getattr(self.inner, "drain_compaction", None)
        if drain is None:
            return False
        try:
            return bool(drain(timeout))
        finally:
            self._notify()

    def _notify(self) -> None:
        if self.snapshots is not None:
            self.snapshots.notify(
                self.inner,
                self.applied_seq,
                self.wal.bytes_written,
                barrier=self.wal.sync,
            )

    def checkpoint(self) -> Optional[str]:
        """Force a snapshot of the wrapped index at the current seq."""
        if self.snapshots is None:
            raise RuntimeError("no SnapshotManager attached")
        # Durability barrier: every op the snapshot reflects must be on
        # disk before the snapshot becomes visible, or a power loss
        # could leave a snapshot tagged ahead of the log (whose sequence
        # numbers later writes would then silently reuse).
        self.wal.sync()
        path = self.snapshots.take(self.inner, self.applied_seq)
        if self.snapshots.prune_wal:
            oldest = self.snapshots.oldest_retained_seq
            if oldest is not None:
                self.wal.prune(oldest)
        return path

    # ------------------------------------------------------------------
    # Pass-through reads
    # ------------------------------------------------------------------

    def query(self, q: np.ndarray, k: int = 1, **kwargs):
        return self.inner.query(q, k=k, **kwargs)

    def batch_query(self, queries: np.ndarray, k: int = 1, **kwargs):
        return self.inner.batch_query(queries, k=k, **kwargs)

    def index_size_bytes(self) -> int:
        return self.inner.index_size_bytes()

    # Abstract-hook implementations (the public overrides above are the
    # real entry points; these keep the ABC satisfied and behave sanely
    # if called directly).
    def _fit(self, data: np.ndarray) -> None:  # pragma: no cover
        self.inner._fit(data)

    def _query(self, q: np.ndarray, k: int, **kwargs):  # pragma: no cover
        return self.inner._query(q, k, **kwargs)

    def save(self, path: str) -> None:
        """Refuse: persist through snapshots (or ``inner.save``) instead.

        Pickling an open log handle would neither work nor mean
        anything; the durable state of this wrapper *is* the WAL plus
        its snapshots.
        """
        raise TypeError(
            "DurableIndex does not save directly; use checkpoint() / a "
            "SnapshotManager, or save the wrapped index via .inner.save()"
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def sync(self) -> None:
        """Fsync the WAL (make every acknowledged op durable now)."""
        self.wal.sync()

    def close(self) -> None:
        self.wal.close()

    def __enter__(self) -> "DurableIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def wal_stats(self) -> Dict[str, float]:
        """WAL counters plus snapshot count (for service stats)."""
        out = self.wal.stats()
        if self.snapshots is not None:
            out["snapshots"] = float(len(self.snapshots.list()))
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DurableIndex({self.inner!r}, wal={self.wal.path!r}, "
            f"seq={self.applied_seq})"
        )

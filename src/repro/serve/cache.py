"""Thread-safe LRU cache for query results, keyed on the index version.

A cache entry maps ``(query bytes, k, query kwargs, index version)`` to
the exact ``(ids, dists)`` the index returned at that version.  Because
the **version is part of the key**, a write (which bumps the version)
makes every older entry unreachable — a lookup after a write can never
return a stale answer, even if invalidation raced with the write.
:meth:`QueryCache.invalidate` additionally drops the dead entries
eagerly so memory is reclaimed immediately rather than via LRU churn.

Entries are stored and returned as **copies**, so a caller mutating a
result array cannot poison the cache, and hits are byte-identical to the
answer originally computed.  Hit/miss/eviction counters are exact (kept
under the same mutex as the table) and surfaced via :meth:`stats`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np

__all__ = ["QueryCache", "freeze_kwargs", "query_key"]

#: cache key type: (query bytes, dtype, shape, k, kwargs, version)
CacheKey = Tuple[bytes, str, tuple, int, tuple, int]


def _freeze_value(value):
    """A hashable, equality-stable stand-in for one kwarg value.

    Arrays become ``("ndarray", bytes, dtype, shape)`` and sequences
    become tuples (recursively), so a kwarg like ``num_candidates=[100,
    200]`` or an ndarray-valued knob can sit inside a dict key — and
    compare with plain ``==`` — instead of raising ``TypeError:
    unhashable`` (or, for arrays inside tuples, an ambiguous-truth
    ``ValueError``) deep inside the cache or the micro-batcher.
    """
    if isinstance(value, np.ndarray):
        return ("ndarray", value.tobytes(), value.dtype.str, value.shape)
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(_freeze_value(v) for v in value))
    if isinstance(value, dict):
        return (
            "map",
            tuple(sorted((k, _freeze_value(v)) for k, v in value.items())),
        )
    return value


def freeze_kwargs(kwargs: dict) -> tuple:
    """Canonical hashable form of a query-kwargs dict.

    Used both by :func:`query_key` (cache keys must be hashable) and by
    the micro-batcher's request grouping in
    :mod:`repro.serve.service` (group tags must compare with ``==``
    without tripping over ndarray broadcasting), so the two stay
    consistent: requests that batch together also share cache slots.
    """
    return tuple(sorted((k, _freeze_value(v)) for k, v in kwargs.items()))


def query_key(q: np.ndarray, k: int, version: int, kwargs: dict) -> CacheKey:
    """Build the cache key for one query at one index version.

    The raw query bytes (plus dtype and shape, so distinct arrays with
    equal buffers don't collide) identify the query; ``kwargs`` covers
    query-time knobs like ``num_candidates`` that change the answer.
    """
    q = np.asarray(q)
    return (
        q.tobytes(),
        q.dtype.str,
        q.shape,
        int(k),
        freeze_kwargs(kwargs),
        int(version),
    )


class QueryCache:
    """Bounded LRU mapping :func:`query_key` -> ``(ids, dists)``.

    Args:
        max_entries: capacity; the least recently *used* entry is
            evicted when a put would exceed it.

    All methods are safe to call from any thread.
    """

    def __init__(self, max_entries: int = 1024):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = int(max_entries)
        self._table: "OrderedDict[CacheKey, Tuple[np.ndarray, np.ndarray]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    def get(self, key: CacheKey) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """The cached ``(ids, dists)`` (fresh copies), or ``None``."""
        with self._lock:
            entry = self._table.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._table.move_to_end(key)
            self._hits += 1
            ids, dists = entry
        return ids.copy(), dists.copy()

    def put(self, key: CacheKey, ids: np.ndarray, dists: np.ndarray) -> None:
        """Store copies of ``(ids, dists)``; evicts LRU entries to fit."""
        ids = np.array(ids, copy=True)
        dists = np.array(dists, copy=True)
        with self._lock:
            self._table[key] = (ids, dists)
            self._table.move_to_end(key)
            while len(self._table) > self.max_entries:
                self._table.popitem(last=False)
                self._evictions += 1

    def invalidate(self) -> None:
        """Drop every entry (called after a write; key versioning already
        guarantees correctness — this reclaims the memory eagerly)."""
        with self._lock:
            self._table.clear()
            self._invalidations += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._table)

    def stats(self) -> dict:
        """Exact counters: hits, misses, hit_ratio, size, evictions."""
        with self._lock:
            total = self._hits + self._misses
            return {
                "hits": self._hits,
                "misses": self._misses,
                "hit_ratio": self._hits / total if total else 0.0,
                "size": len(self._table),
                "max_entries": self.max_entries,
                "evictions": self._evictions,
                "invalidations": self._invalidations,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (
            f"QueryCache(size={s['size']}/{s['max_entries']}, "
            f"hits={s['hits']}, misses={s['misses']})"
        )

"""In-process ANN service: locking, caching, and query micro-batching.

:class:`ANNService` is the top of the serving stack built across PRs
1-3: it wraps any :class:`~repro.base.ANNIndex` (including a
:class:`~repro.serve.sharding.ShardedIndex`) in a
:class:`~repro.serve.concurrency.ConcurrentIndex` and serves requests
from many threads at once with two throughput levers on top of the
locks:

* **query-result cache** — an LRU keyed on ``(query bytes, k, kwargs,
  index version)`` (:mod:`repro.serve.cache`).  Hits skip the index
  entirely; any ``insert``/``delete`` bumps the version, making every
  cached entry unreachable (and eagerly dropped), so a cached answer is
  always byte-identical to a fresh query at the same version.
* **micro-batching** — concurrent single queries are coalesced by a
  dedicated executor thread into one ``batch_query`` call (PR 1's
  vectorised engine).  The first request in an empty queue waits at most
  ``batch_window_ms`` for company; compatible requests (same ``k`` and
  query kwargs) then execute as one batch of up to ``max_batch_size``.
  Per request the answer is *byte-identical* to what a direct
  ``batch_query`` (and therefore a direct ``query``) would return — the
  contract ``tests/test_service_equivalence.py`` pins down.

Thread-safety summary (see README "Serving"):

=====================  ====================================================
class                  guarantee
=====================  ====================================================
``ANNIndex`` family    none — single thread only
``ConcurrentIndex``    many parallel readers XOR one writer; no starvation
``QueryCache``         fully thread-safe; version-keyed (never stale)
``ANNService``         fully thread-safe; results versioned and cached
=====================  ====================================================
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Deque, Tuple

import numpy as np

from repro.base import ANNIndex
from repro.obs.metrics import get_registry
from repro.obs.tracing import get_tracer
from repro.serve.cache import QueryCache, freeze_kwargs, query_key
from repro.serve.concurrency import ConcurrentIndex
from repro.serve.durability.wal import DurableIndex

__all__ = ["ANNService", "families_from_stats"]

#: kernel stage keys in execution order, for synthesized trace spans
_STAGE_ORDER = (
    ("stage_hash_s", "kernel.hash"),
    ("stage_search_s", "kernel.search"),
    ("stage_merge_s", "kernel.merge"),
    ("stage_verify_s", "kernel.verify"),
)

#: service ``stats()`` keys -> counter families for the registry
_COUNTER_FAMILIES = {
    "reads": ("repro_index_reads_total", "completed concurrent-index reads"),
    "writes": ("repro_index_writes_total", "completed concurrent-index writes"),
    "cache_hits": ("repro_cache_hits_total", "query cache hits"),
    "cache_misses": ("repro_cache_misses_total", "query cache misses"),
    "cache_evictions": ("repro_cache_evictions_total", "query cache LRU evictions"),
    "cache_invalidations": (
        "repro_cache_invalidations_total",
        "query cache invalidations (version bumps)",
    ),
    "batches": ("repro_batch_batches_total", "micro-batches executed"),
    "batched_queries": (
        "repro_batch_queries_total",
        "queries served through micro-batches",
    ),
    "wal_appends": ("repro_wal_appends_total", "WAL records appended"),
    "wal_syncs": ("repro_wal_fsyncs_total", "WAL fsync calls"),
    "wal_rotations": ("repro_wal_rotations_total", "WAL segment rotations"),
    "wal_bytes_written": (
        "repro_wal_appended_bytes_total",
        "bytes appended to the WAL",
    ),
    "wal_snapshots": ("repro_wal_snapshots_total", "snapshot checkpoints written"),
    "tier_seals": ("repro_tier_seals_total", "memtable seals"),
    "tier_compactions": ("repro_tier_compactions_total", "completed compactions"),
    "tier_compaction_errors": (
        "repro_tier_compaction_errors_total",
        "failed compactions",
    ),
    "tier_rebuilds": ("repro_tier_rebuilds_total", "full index rebuilds"),
    "tier_compaction_time_s": (
        "repro_tier_compaction_seconds_total",
        "write-path seconds spent in structural ops",
    ),
}

#: service ``stats()`` keys -> gauge families.  Merge mode matters for
#: prefork fan-in: every worker replica mirrors the same index, so tier
#: shape and version take ``max`` (identical everywhere, modulo lag)
#: while per-process caches genuinely add up.
_GAUGE_FAMILIES = {
    "version": ("repro_index_version", "index version (completed writes)", "max"),
    "cache_size": ("repro_cache_entries", "live query cache entries", "sum"),
    "largest_batch": ("repro_batch_largest", "largest micro-batch seen", "max"),
    "tier_segments": ("repro_tier_segments", "sealed LCCS segments", "max"),
    "tier_memtable": ("repro_tier_memtable_rows", "writable memtable rows", "max"),
    "tier_segment_rows": (
        "repro_tier_segment_rows",
        "rows across sealed segments",
        "max",
    ),
    "tier_tombstones": ("repro_tier_tombstones", "tombstoned rows", "max"),
    "wal_segments": ("repro_wal_segments", "live WAL segments", "max"),
    "wal_next_seq": ("repro_wal_next_seq", "next WAL sequence number", "max"),
}


def families_from_stats(stats: dict) -> dict:
    """Map a flat serving ``stats()`` dict onto registry metric families.

    Shared by the service's registry collector and the prefork
    primary's (whose stats dict uses the same ``wal_*``/``tier_*``
    keys).  Unknown keys are simply skipped, so every layer can use it
    with whatever subset it has.
    """
    families: dict = {}
    for key, (name, help_text) in _COUNTER_FAMILIES.items():
        val = stats.get(key)
        if val is not None:
            families[name] = {
                "kind": "counter",
                "help": help_text,
                "samples": [{"labels": {}, "value": float(val)}],
            }
    for key, (name, help_text, merge) in _GAUGE_FAMILIES.items():
        val = stats.get(key)
        if isinstance(val, (list, tuple)):
            val = sum(val)  # e.g. tier_segment_rows: per-segment counts
        if val is not None:
            families[name] = {
                "kind": "gauge",
                "help": help_text,
                "merge": merge,
                "samples": [{"labels": {}, "value": float(val)}],
            }
    hit_ratio = stats.get("cache_hit_ratio")
    if hit_ratio is not None:
        families["repro_cache_hit_ratio"] = {
            "kind": "gauge",
            "help": "query cache hit ratio since start",
            "merge": "last",
            "samples": [{"labels": {}, "value": float(hit_ratio)}],
        }
    return families


class _Request:
    """One pending single-query request inside the micro-batcher."""

    __slots__ = ("q", "k", "kwargs", "group", "future", "trace", "enqueue_s")

    def __init__(self, q: np.ndarray, k: int, kwargs: dict, trace=None):
        self.q = q
        self.k = k
        self.kwargs = kwargs
        #: requests batch together only when k and kwargs agree; frozen
        #: so ndarray/list-valued kwargs neither break the ``==`` group
        #: comparison nor diverge from the cache's keying
        self.group = (k, freeze_kwargs(kwargs))
        self.future: "Future[Tuple[np.ndarray, np.ndarray]]" = Future()
        #: sampled request's trace (or None) — carried across the thread
        #: hop into the micro-batch executor, which grafts batch/kernel
        #: spans onto it
        self.trace = trace
        self.enqueue_s = time.perf_counter()


class ANNService:
    """Serve an index to many threads: locks + cache + micro-batching.

    Args:
        index: any :class:`ANNIndex`, or an already-wrapped
            :class:`ConcurrentIndex` (shared locking with other users).
        cache_size: LRU capacity for the query-result cache; ``0``
            disables caching entirely.
        batch_window_ms: how long the first queued query waits for
            others to coalesce with before executing (0 = no wait; each
            drain takes whatever is queued at that instant).
        max_batch_size: micro-batch size cap; a full batch executes
            immediately without waiting out the window.
        min_vector_batch: micro-batches smaller than this loop the
            single-query path instead of the vectorised ``batch_query``
            engine, whose fixed per-call cost only amortises at larger
            batches (PR 1 pins both paths byte-identical, so only the
            speed changes).  Default 12, near the measured crossover in
            ``benchmarks/bench_concurrent.py``.

    ``query`` returns ``(ids, dists)`` exactly like ``ANNIndex.query``
    (unpadded, ascending distance, ties by id); ``query_async`` returns
    a :class:`~concurrent.futures.Future` resolving to the same.  Use
    the service as a context manager, or call :meth:`close`, to stop the
    executor thread.
    """

    def __init__(
        self,
        index,
        cache_size: int = 1024,
        batch_window_ms: float = 2.0,
        max_batch_size: int = 64,
        min_vector_batch: int = 12,
    ):
        if isinstance(index, ConcurrentIndex):
            self._ci = index
        elif isinstance(index, ANNIndex):
            self._ci = ConcurrentIndex(index)
        else:
            raise TypeError(
                f"{index!r} is neither an ANNIndex nor a ConcurrentIndex"
            )
        if batch_window_ms < 0:
            raise ValueError("batch_window_ms must be >= 0")
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        # A durable wrapper under the lock layer: surface its WAL
        # counters in stats() and make close() force its log to disk.
        inner = self._ci.inner
        self._durable = inner if isinstance(inner, DurableIndex) else None
        self._cache = QueryCache(cache_size) if cache_size > 0 else None
        self._window = float(batch_window_ms) / 1e3
        self._max_batch = int(max_batch_size)
        self._min_vector_batch = max(1, int(min_vector_batch))
        self._queue: Deque[_Request] = deque()
        self._cond = threading.Condition()
        self._stop = False
        self._batches = 0
        self._batched_queries = 0
        self._largest_batch = 0
        self._executor = threading.Thread(
            target=self._run, name="ANNService-batcher", daemon=True
        )
        self._executor.start()
        # Publish this service's stats() into the unified registry.  The
        # fixed key means the newest service instance in a process wins
        # (one serving stack per process in practice; short-lived test
        # services replace instead of leaking).
        get_registry().register_collector("service", self._metric_families)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def query(
        self, q: np.ndarray, k: int = 1, trace=None, **kwargs
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Single query through cache + micro-batcher (blocking)."""
        return self.query_async(q, k, trace=trace, **kwargs).result()

    def query_async(
        self, q: np.ndarray, k: int = 1, trace=None, **kwargs
    ) -> "Future[Tuple[np.ndarray, np.ndarray]]":
        """Submit a single query; the future resolves to ``(ids, dists)``.

        Cache hits resolve immediately without touching the index; on a
        miss the request joins the micro-batch queue and executes inside
        the next coalesced ``batch_query`` call.

        ``trace`` (a sampled :class:`repro.obs.tracing.Trace`, or None)
        is deliberately a named parameter rather than part of
        ``**kwargs``: the kwargs feed both the cache key and the
        batch-compatibility group, and a trace must affect neither.
        """
        q = np.asarray(q)
        if q.shape != (self._ci.dim,):
            raise ValueError(
                f"query must have shape ({self._ci.dim},), got {q.shape}"
            )
        if k <= 0:
            raise ValueError("k must be positive")
        # Closed-service behavior must be uniform: check before the
        # cache probe, or a closed service would still answer whatever
        # happened to be cached while raising on everything else.
        with self._cond:
            if self._stop:
                raise RuntimeError("ANNService is closed")
        fut: "Future[Tuple[np.ndarray, np.ndarray]]" = Future()
        if self._cache is not None:
            t0 = time.perf_counter()
            hit = self._cache.get(query_key(q, k, self._ci.version, kwargs))
            if trace is not None:
                trace.add_span(
                    "cache.probe", t0, time.perf_counter(),
                    hit=hit is not None,
                )
            if hit is not None:
                fut.set_result(hit)
                return fut
        request = _Request(q.copy(), int(k), dict(kwargs), trace=trace)
        with self._cond:
            if self._stop:
                raise RuntimeError("ANNService is closed")
            self._queue.append(request)
            self._cond.notify_all()
        return request.future

    def batch_query(
        self, queries: np.ndarray, k: int = 1, **kwargs
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batch passthrough: one locked ``batch_query`` on the index.

        Already-batched callers skip the micro-batcher (no window wait).
        Returns the padded ``(n, k)`` matrices exactly as
        ``ANNIndex.batch_query`` would; rows are written into the cache
        so later single queries can hit.
        """
        ids, dists, version = self._ci.batch_query_versioned(
            queries, k=k, **kwargs
        )
        if self._cache is not None:
            queries = np.asarray(queries)
            for i in range(len(queries)):
                valid = ids[i] >= 0
                self._cache.put(
                    query_key(queries[i], k, version, kwargs),
                    ids[i][valid],
                    dists[i][valid],
                )
        return ids, dists

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def insert(self, vector: np.ndarray, trace=None) -> int:
        """Insert under the exclusive lock; invalidates the cache."""
        if trace is None:
            handle, _ = self._ci.insert_versioned(vector)
        else:
            # Attach the trace on this thread so the WAL's append/fsync
            # spans (repro.obs.span calls inside DurableIndex) nest
            # under this request instead of vanishing.
            tracer = get_tracer()
            with tracer.attach(trace.root):
                with tracer.span("index.insert"):
                    handle, _ = self._ci.insert_versioned(vector)
        if self._cache is not None:
            self._cache.invalidate()
        return handle

    def delete(self, handle: int, trace=None) -> None:
        """Delete under the exclusive lock; invalidates the cache."""
        if trace is None:
            self._ci.delete_versioned(handle)
        else:
            tracer = get_tracer()
            with tracer.attach(trace.root):
                with tracer.span("index.delete"):
                    self._ci.delete_versioned(handle)
        if self._cache is not None:
            self._cache.invalidate()

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    @property
    def index(self) -> ConcurrentIndex:
        """The underlying :class:`ConcurrentIndex`."""
        return self._ci

    @property
    def dim(self) -> int:
        return self._ci.dim

    @property
    def version(self) -> int:
        return self._ci.version

    def stats(self) -> dict:
        """Aggregate service counters.

        ``reads``/``writes``/``version`` from the lock layer,
        ``cache_*`` from the LRU (hits, misses, hit_ratio, ...), and the
        micro-batcher's ``batches`` / ``batched_queries`` /
        ``largest_batch`` / ``avg_batch_size``.
        """
        out = self._ci.stats()
        if self._cache is not None:
            out.update(
                {f"cache_{key}": val for key, val in self._cache.stats().items()}
            )
        if self._durable is not None:
            out.update(
                {
                    f"wal_{key}": val
                    for key, val in self._durable.wal_stats().items()
                }
            )
        with self._cond:
            batches, batched = self._batches, self._batched_queries
            out["batches"] = batches
            out["batched_queries"] = batched
            out["largest_batch"] = self._largest_batch
        out["avg_batch_size"] = batched / batches if batches else 0.0
        # Surface the kernel backend and LSM tier shape of the
        # underlying index (walk the wrapper chain:
        # ConcurrentIndex -> DurableIndex -> index).
        inner = self._ci.inner
        for _ in range(4):
            backend = getattr(inner, "kernel_backend", None)
            if backend is not None:
                out["kernel_backend"] = backend
                tier = getattr(inner, "tier_stats", None)
                if callable(tier):
                    out.update(
                        {f"tier_{key}": val for key, val in tier().items()}
                    )
                break
            nxt = getattr(inner, "inner", None)
            if nxt is None:
                break
            inner = nxt
        return out

    def _metric_families(self) -> dict:
        """Map :meth:`stats` onto registry families (collector hook).

        Only runs at snapshot time, so the cost of walking the stats
        tree is paid by scrapes, never by requests.
        """
        return families_from_stats(self.stats())

    def close(self) -> None:
        """Stop the executor thread; pending requests still complete.

        A :class:`~repro.serve.durability.wal.DurableIndex` under the
        service is fsynced on the way out, so every acknowledged write
        is durable once ``close`` returns (the wrapper itself stays
        open — the index remains usable outside the service).
        """
        with self._cond:
            if self._stop:
                return
            self._stop = True
            self._cond.notify_all()
        self._executor.join()
        if self._durable is not None:
            self._durable.sync()
        # Only drop the collector if it is still ours — a newer service
        # may have replaced it already.
        get_registry().unregister_collector("service", self._metric_families)

    def __enter__(self) -> "ANNService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Micro-batch executor
    # ------------------------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stop:
                    self._cond.wait()
                if not self._queue:  # stopped and drained
                    return
                if not self._stop and self._window > 0:
                    # Bounded wait for the batch to fill: a full batch
                    # (or close()) cuts the window short.
                    deadline = time.monotonic() + self._window
                    while len(self._queue) < self._max_batch and not self._stop:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        self._cond.wait(remaining)
                batch = self._take_group_locked()
            self._execute(batch)

    def _take_group_locked(self) -> list:
        """Pop up to ``max_batch_size`` queued requests sharing the head
        request's (k, kwargs) group; others keep their queue order."""
        group = self._queue[0].group
        batch: list = []
        rest: Deque[_Request] = deque()
        while self._queue and len(batch) < self._max_batch:
            request = self._queue.popleft()
            if request.group == group:
                batch.append(request)
            else:
                rest.append(request)
        rest.extend(self._queue)
        self._queue = rest
        return batch

    def _execute(self, batch: list) -> None:
        # Claim every future before touching the index: a request whose
        # caller already cancelled it is dropped here, and a claimed
        # (RUNNING) future can no longer be cancelled, so the
        # set_result/set_exception calls below cannot raise
        # InvalidStateError and kill the executor thread.
        batch = [
            request
            for request in batch
            if request.future.set_running_or_notify_cancel()
        ]
        if not batch:
            return
        k, kwargs = batch[0].k, batch[0].kwargs
        # Trace bookkeeping only when at least one request in the batch
        # was sampled; the untraced path takes the exact pre-obs route.
        traced = any(request.trace is not None for request in batch)
        try:
            if len(batch) < self._min_vector_batch:
                # Small batches loop the single-query path: the batch
                # engine's fixed per-call cost (lock-step bisections
                # sized for whole batches) only amortises at larger
                # sizes, and PR 1 pins both paths byte-identical.  Each
                # request carries the version of its own execution
                # instant (a write may land between loop iterations).
                rows = []
                for request in batch:
                    if traced:
                        t_start = time.perf_counter()
                        q_ids, q_dists, version, info = self._ci.query_traced(
                            request.q, k=k, **kwargs
                        )
                        info["exec_start_s"] = t_start
                        info["exec_end_s"] = time.perf_counter()
                        rows.append((q_ids, q_dists, version, info))
                    else:
                        q_ids, q_dists, version = self._ci.query_versioned(
                            request.q, k=k, **kwargs
                        )
                        rows.append((q_ids, q_dists, version, None))
            else:
                stacked = np.stack([request.q for request in batch])
                if traced:
                    t_start = time.perf_counter()
                    ids, dists, version, info = self._ci.batch_query_traced(
                        stacked, k=k, **kwargs
                    )
                    info["exec_start_s"] = t_start
                    info["exec_end_s"] = time.perf_counter()
                else:
                    ids, dists, version = self._ci.batch_query_versioned(
                        stacked, k=k, **kwargs
                    )
                    info = None
                rows = []
                for i in range(len(batch)):
                    valid = ids[i] >= 0  # strip the -1 / inf padding
                    rows.append((ids[i][valid], dists[i][valid], version, info))
        except BaseException as exc:  # propagate to every waiter
            for request in batch:
                request.future.set_exception(exc)
            return
        with self._cond:
            self._batches += 1
            self._batched_queries += len(batch)
            self._largest_batch = max(self._largest_batch, len(batch))
        for request, (row_ids, row_dists, row_version, info) in zip(batch, rows):
            if request.trace is not None and info is not None:
                self._graft_batch_spans(request, len(batch), info)
            if self._cache is not None:
                self._cache.put(
                    query_key(request.q, k, row_version, kwargs),
                    row_ids,
                    row_dists,
                )
            request.future.set_result((row_ids, row_dists))

    @staticmethod
    def _graft_batch_spans(request: _Request, batch_size: int, info: dict) -> None:
        """Attach this batch's measured intervals to a sampled request.

        The micro-batcher runs on its own thread and times things
        itself, so spans are synthesized from captured wall-clock
        intervals rather than opened live: a ``batch`` span from
        enqueue to completion, with the queue wait, the index call, the
        RW-lock wait, and the per-stage kernel timings as children.
        Kernel stages run back-to-back inside the index, so their spans
        are laid out sequentially after the lock wait.
        """
        trace = request.trace
        exec_start = info["exec_start_s"]
        exec_end = info["exec_end_s"]
        batch_span = trace.add_span(
            "batch", request.enqueue_s, exec_end,
            size=batch_size, group_k=request.k,
        )
        if exec_start > request.enqueue_s:
            trace.add_span(
                "batch.wait", request.enqueue_s, exec_start, parent=batch_span
            )
        query_span = trace.add_span(
            "index.query", exec_start, exec_end, parent=batch_span
        )
        cursor = exec_start
        lock_wait = info.get("lock_wait_s")
        if lock_wait:
            trace.add_span(
                "lock.wait", cursor, cursor + lock_wait, parent=query_span
            )
            cursor += lock_wait
        for key, name in _STAGE_ORDER:
            dur = info.get(key)
            if dur:
                trace.add_span(name, cursor, cursor + dur, parent=query_span)
                cursor += dur

"""Sharded index serving: partition, build in parallel, fan out, merge.

``ShardedIndex`` splits the dataset into ``S`` contiguous shards, builds
one inner index per shard (in a process pool by default, with thread and
serial fallbacks), fans every ``query``/``batch_query`` out to the
shards, and merges the per-shard top-k into global ids.

**Merge tie-order contract.**  Every index in this library ranks results
by ``np.lexsort((ids, dists))`` — ascending true distance, ties broken
by ascending id (PR 1's canonical order).  The shard merge applies the
*same* lexsort to the concatenated per-shard candidate pool after
mapping local ids to global ids, and local id order is monotone in
global id order within a shard (contiguous partitioning; inserts append
in global order).  Together with row-wise bit-identical distance
kernels, this makes a sharded exact (or candidate-saturated) query
byte-identical to the unsharded one — the invariant
``tests/test_sharded_equivalence.py`` pins down.

**Dynamic workloads.**  When the shard indexes support ``insert`` /
``delete`` (e.g. :class:`~repro.core.dynamic.DynamicLCCSLSH`), the
sharded index routes inserts round-robin and deletes by handle lookup,
preserving the unsharded handle sequence: the i-th insert returns handle
``n + i`` exactly like a single ``DynamicLCCSLSH`` would.

**Bundle-backed process fan-out.**  A ``ShardedIndex`` loaded from a
bundle **with** ``mmap=True`` (``load_index`` records path and mode via
:meth:`ShardedIndex.attach_bundle`) and configured with
``parallel="process"`` answers ``batch_query`` by shipping each worker
process the *bundle path and shard number* — never a pickled index.  Workers open their shard with
:func:`repro.serve.persistence.load_shard` (mmapped when the bundle was
loaded mmapped) and cache it, so the dataset exists once in the page
cache no matter how many worker processes serve it.  Any write detaches
the bundle (the on-disk copy is stale) and fan-out falls back to the
in-process thread pool, preserving correctness.

**Thread safety.**  Like every :class:`~repro.base.ANNIndex`, a
``ShardedIndex`` is a single-threaded object (``insert`` mutates the
round-robin cursor and handle maps without locks).  For concurrent
serving wrap it — ``index.concurrent()`` or
:class:`repro.serve.ANNService` — which serializes writers against the
fan-out reads.  The internal query fan-out pool is reused across calls
(thread creation off the hot path); call :meth:`ShardedIndex.close` (or
use the index as a context manager) to release its threads eagerly.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.base import ANNIndex

__all__ = ["IndexSpec", "ShardedIndex", "merge_topk"]


def merge_topk(
    ids_per_shard: Sequence[np.ndarray],
    dists_per_shard: Sequence[np.ndarray],
    k: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge per-shard ``(ids, dists)`` lists into one global top-``k``.

    Ids must already be global and unique across shards.  The result is
    ordered by ``np.lexsort((ids, dists))`` — ascending distance, ties by
    ascending id — i.e. exactly the order a single index's ``_verify``
    would produce over the concatenated candidate pool.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if len(ids_per_shard) != len(dists_per_shard):
        raise ValueError("ids and dists lists must align")
    if not ids_per_shard:
        return np.empty(0, dtype=np.int64), np.empty(0)
    ids = np.concatenate(
        [np.asarray(i, dtype=np.int64).ravel() for i in ids_per_shard]
    )
    dists = np.concatenate(
        [np.asarray(d, dtype=np.float64).ravel() for d in dists_per_shard]
    )
    if len(ids) != len(dists):
        raise ValueError("each shard's ids and dists must have equal length")
    order = np.lexsort((ids, dists))[: min(k, len(ids))]
    return ids[order], dists[order]


class IndexSpec:
    """A picklable recipe for constructing an unfitted index.

    Process-pool shard builds ship the *recipe* to workers rather than a
    closure, and bundle manifests record it as JSON, so shard indexes can
    be rebuilt anywhere.  The class may be given directly or as a
    registry name (see :mod:`repro.serve.registry`).

    Example:
        >>> spec = IndexSpec("LCCSLSH", dim=32, m=64, seed=0)
        >>> index = spec.build()
    """

    def __init__(self, index_cls: Union[str, type], **kwargs):
        from repro.serve.registry import registry_name, resolve_index_class

        if isinstance(index_cls, str):
            index_cls = resolve_index_class(index_cls)
        if not (isinstance(index_cls, type) and issubclass(index_cls, ANNIndex)):
            raise TypeError(f"{index_cls!r} is not an ANNIndex subclass")
        self.class_name = registry_name(index_cls)
        self.kwargs = dict(kwargs)

    def build(self) -> ANNIndex:
        """Construct a fresh, unfitted index from the recipe."""
        from repro.serve.registry import resolve_index_class

        return resolve_index_class(self.class_name)(**self.kwargs)

    def to_manifest(self) -> dict:
        return {"class": self.class_name, "kwargs": dict(self.kwargs)}

    @classmethod
    def from_manifest(cls, manifest: dict) -> "IndexSpec":
        return cls(manifest["class"], **manifest["kwargs"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        args = ", ".join(f"{k}={v!r}" for k, v in self.kwargs.items())
        return f"IndexSpec({self.class_name}{', ' if args else ''}{args})"


def _build_one_shard(spec: IndexSpec, chunk: np.ndarray) -> ANNIndex:
    """Worker function for parallel shard builds (must be module-level
    so process pools can pickle it)."""
    return spec.build().fit(chunk)


#: per-worker-process cache of shards opened from a bundle path, keyed
#: ``(bundle_path, shard, mmap)`` — one load per worker, reused across
#: every fan-out call routed to that worker
_WORKER_SHARDS: Dict[Tuple[str, int, bool], ANNIndex] = {}


def _query_shard_from_bundle(
    bundle_path: str,
    shard: int,
    mmap: bool,
    queries: np.ndarray,
    k: int,
    kwargs: dict,
) -> Tuple[np.ndarray, np.ndarray, dict]:
    """Process-pool fan-out worker: answer a batch from one shard.

    The shard is identified by ``(bundle_path, shard)`` rather than
    shipped as a pickled index, so the parent never serializes the
    dataset.  With an mmap-capable (v2) bundle each worker opens only
    its own shard's arrays as read-only maps — every worker on the
    machine shares the same physical page-cache copy of the index.
    Loaded shards are cached per process, so only the first call pays
    the open.
    """
    from repro.serve.persistence import load_shard

    key = (bundle_path, int(shard), bool(mmap))
    index = _WORKER_SHARDS.get(key)
    if index is None:
        index = load_shard(bundle_path, shard, mmap=mmap)
        _WORKER_SHARDS[key] = index
    ids, dists = index.batch_query(queries, k=k, **kwargs)
    return ids, dists, dict(index.last_stats)


class ShardedIndex(ANNIndex):
    """Partition data across ``num_shards`` inner indexes built from one spec.

    Args:
        spec: :class:`IndexSpec` describing the per-shard index.
        num_shards: number of shards ``S``; ``fit`` splits the rows into
            ``S`` contiguous blocks (``np.array_split`` boundaries), so
            global id = shard offset + local id.
        parallel: ``"process"`` (default; falls back automatically when a
            pool cannot be used), ``"thread"``, or ``"serial"`` — how
            shard builds and query fan-out run.
        max_workers: worker cap for the pools (default
            ``min(num_shards, cpu_count)``).

    Query-time kwargs (``num_candidates``, ``n_probes``) are forwarded
    verbatim to every shard; each shard clamps them to its own size, so
    passing ``num_candidates >= n`` makes every shard — and therefore the
    merged result — exact.
    """

    name = "Sharded"

    def __init__(
        self,
        spec: IndexSpec,
        num_shards: int,
        parallel: str = "process",
        max_workers: Optional[int] = None,
    ):
        if not isinstance(spec, IndexSpec):
            raise TypeError("spec must be an IndexSpec")
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if parallel not in ("process", "thread", "serial"):
            raise ValueError("parallel must be 'process', 'thread' or 'serial'")
        template = spec.build()  # validates the recipe, donates metadata
        super().__init__(template.dim, template.metric, template.seed)
        self.spec = spec
        self.num_shards = int(num_shards)
        self.parallel = parallel
        self.max_workers = max_workers
        self.name = f"Sharded[{template.name}]x{num_shards}"
        self.shards: List[ANNIndex] = []
        #: shard start offsets in the original row numbering
        self._offsets = np.zeros(self.num_shards, dtype=np.int64)
        #: per shard: local id -> global id (monotone increasing); the
        #: arrays over-allocate by doubling so inserts are amortised O(1)
        #: (only the first ``_global_sizes[s]`` entries are meaningful)
        self._global_ids: List[np.ndarray] = []
        self._global_sizes: List[int] = []
        #: global handle -> (shard, local handle) for post-fit inserts
        self._inserted_loc: Dict[int, Tuple[int, int]] = {}
        self._next_handle = 0
        self._next_shard = 0
        #: how the last build actually ran ("process"/"thread"/"serial")
        self.build_mode: Optional[str] = None
        #: lazily created, reused across batch_query calls (pool spin-up
        #: is milliseconds — too slow to pay per query when serving);
        #: creation guarded so parallel readers share one pool
        self._fanout_pool = None
        self._pool_lock = threading.Lock()
        #: bundle provenance (set by ``load_index`` via `attach_bundle`):
        #: with ``parallel="process"`` batch queries fan out to a process
        #: pool whose workers open their shard from this path instead of
        #: receiving a pickled index
        self._bundle_path: Optional[str] = None
        self._bundle_mmap = False
        #: writes since load invalidate the on-disk copy the workers see
        self._bundle_stale = False
        self._process_pool = None

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------

    def _workers(self) -> int:
        cores = os.cpu_count() or 1
        cap = self.max_workers if self.max_workers else min(self.num_shards, cores)
        return max(1, cap)

    def attach_bundle(self, path: str, mmap: bool = False) -> None:
        """Record the bundle this index was loaded from.

        Called by :func:`repro.serve.persistence.load_index`.  With
        ``parallel="process"`` **and** ``mmap=True`` subsequent
        ``batch_query`` calls fan out to a process pool whose workers
        open their shard straight from ``path`` as read-only maps,
        sharing page-cache pages instead of receiving a pickled copy of
        the dataset.  Eager loads keep the in-process thread fan-out
        (bundle workers would each materialise a private shard copy —
        the duplication this feature exists to avoid).  Any write
        (``fit``/``insert``/``delete``) detaches the bundle — the
        on-disk copy no longer matches — and fan-out falls back to the
        in-process thread pool.
        """
        self._bundle_path = path
        self._bundle_mmap = bool(mmap)
        self._bundle_stale = False

    def _mark_bundle_stale(self) -> None:
        if self._bundle_path is not None:
            self._bundle_stale = True

    def _fit(self, data: np.ndarray) -> None:
        self._mark_bundle_stale()
        chunks = np.array_split(data, self.num_shards)
        sizes = np.array([len(c) for c in chunks], dtype=np.int64)
        if np.any(sizes == 0):
            raise ValueError(
                f"cannot split {len(data)} rows into {self.num_shards} "
                "non-empty shards; lower num_shards"
            )
        self._offsets = np.concatenate([[0], np.cumsum(sizes)[:-1]])
        self.shards = self._build_shards(chunks)
        self._global_ids = [
            np.arange(off, off + size, dtype=np.int64)
            for off, size in zip(self._offsets, sizes)
        ]
        self._global_sizes = [int(size) for size in sizes]
        self._inserted_loc = {}
        self._next_handle = int(len(data))
        self._next_shard = 0

    def _build_shards(self, chunks: List[np.ndarray]) -> List[ANNIndex]:
        # Only *pool infrastructure* failures (unpicklable payloads,
        # sandboxed fork, broken/unavailable pools) trigger a degraded
        # retry; a genuine error raised inside a shard's fit propagates
        # with its original type instead of re-running the whole build.
        import pickle as _pickle
        from concurrent.futures.process import BrokenProcessPool

        mode = self.parallel if len(chunks) > 1 else "serial"
        if mode == "process":
            try:
                from concurrent.futures import ProcessPoolExecutor

                with ProcessPoolExecutor(max_workers=self._workers()) as pool:
                    shards = list(
                        pool.map(_build_one_shard, [self.spec] * len(chunks), chunks)
                    )
                self.build_mode = "process"
                return shards
            except (BrokenProcessPool, _pickle.PicklingError, OSError, ImportError):
                mode = "thread"
        if mode == "thread":
            try:
                from concurrent.futures import ThreadPoolExecutor

                with ThreadPoolExecutor(max_workers=self._workers()) as pool:
                    shards = list(
                        pool.map(_build_one_shard, [self.spec] * len(chunks), chunks)
                    )
                self.build_mode = "thread"
                return shards
            except RuntimeError:  # e.g. "can't start new thread"
                mode = "serial"
        self.build_mode = "serial"
        return [_build_one_shard(self.spec, chunk) for chunk in chunks]

    # ------------------------------------------------------------------
    # Queries: fan out, map to global ids, merge
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        return sum(shard.n for shard in self.shards) if self.shards else 0

    @property
    def is_fitted(self) -> bool:
        # Shards own the rows; no concatenated copy is kept (``_data``
        # holds the caller's array after ``fit`` but is absent after a
        # bundle load, where duplicating every shard would double RSS).
        return bool(self.shards)

    def _accumulate_shard_stats(self) -> None:
        for shard in self.shards:
            # best-effort under parallel readers, see ANNIndex._stats_items
            for key, val in self._stats_items(shard.last_stats):
                self.last_stats[key] = self.last_stats.get(key, 0.0) + float(val)
        self.last_stats["shards"] = float(self.num_shards)

    def _query(self, q: np.ndarray, k: int, **kwargs) -> Tuple[np.ndarray, np.ndarray]:
        per_ids: List[np.ndarray] = []
        per_dists: List[np.ndarray] = []
        for s, shard in enumerate(self.shards):
            ids, dists = shard.query(q, k=k, **kwargs)
            per_ids.append(self._global_ids[s][ids])
            per_dists.append(dists)
        self._accumulate_shard_stats()
        return merge_topk(per_ids, per_dists, k)

    def _batch_query(
        self, queries: np.ndarray, k: int, **kwargs
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Fan the whole batch out shard by shard, merge per query.

        Each shard answers through its own vectorised ``batch_query``
        engine; with ``parallel != 'serial'`` the shard calls run on a
        thread pool (numpy kernels release the GIL for large batches).
        """

        shard_results = None
        if (
            self.parallel == "process"
            and self._bundle_path is not None
            and self._bundle_mmap  # eager workers would duplicate RAM
            and not self._bundle_stale
            and len(self.shards) > 1
        ):
            shard_results = self._bundle_fanout(queries, k, kwargs)
        if shard_results is None:

            def run(args: Tuple[int, ANNIndex]) -> Tuple[np.ndarray, np.ndarray]:
                _, shard = args
                return shard.batch_query(queries, k=k, **kwargs)

            jobs = list(enumerate(self.shards))
            pool = self._query_pool() if len(jobs) > 1 else None
            if pool is not None:
                shard_results = list(pool.map(run, jobs))
            else:
                shard_results = [run(job) for job in jobs]
            self._accumulate_shard_stats()
        out: List[Tuple[np.ndarray, np.ndarray]] = []
        for qi in range(len(queries)):
            per_ids: List[np.ndarray] = []
            per_dists: List[np.ndarray] = []
            for s, (ids_mat, dists_mat) in enumerate(shard_results):
                valid = ids_mat[qi] >= 0  # strip per-shard padding
                per_ids.append(self._global_ids[s][ids_mat[qi][valid]])
                per_dists.append(dists_mat[qi][valid])
            out.append(merge_topk(per_ids, per_dists, k))
        return out

    def _bundle_fanout(
        self, queries: np.ndarray, k: int, kwargs: dict
    ) -> Optional[List[Tuple[np.ndarray, np.ndarray]]]:
        """Fan a batch out to bundle-backed worker processes.

        Workers answer from their own (cached, typically mmapped) copy
        of the shard loaded from ``self._bundle_path`` — byte-identical
        to the in-process shards by the save/load round-trip contract.
        Returns ``None`` when the pool cannot run (the caller then uses
        the in-process thread fan-out).
        """
        import pickle as _pickle
        from concurrent.futures.process import BrokenProcessPool

        from repro.serve.persistence import BundleError

        pool = self._process_fanout_pool()
        if pool is None:
            return None
        try:
            futures = [
                pool.submit(
                    _query_shard_from_bundle,
                    self._bundle_path,
                    s,
                    self._bundle_mmap,
                    queries,
                    k,
                    kwargs,
                )
                for s in range(len(self.shards))
            ]
            results = [f.result() for f in futures]
        except (BundleError, BrokenProcessPool, _pickle.PicklingError, OSError):
            # Unreadable bundle (e.g. deleted/rotated underneath us) or
            # pool infrastructure failure: detach and degrade to the
            # in-process thread fan-out for good — the parent's own
            # shards stay valid (their maps hold the old inodes open).
            self._close_process_pool()
            self._bundle_path = None
            return None
        for _, _, stats in results:
            for key, val in stats.items():
                self.last_stats[key] = self.last_stats.get(key, 0.0) + float(val)
        self.last_stats["shards"] = float(self.num_shards)
        return [(ids, dists) for ids, dists, _ in results]

    def _process_fanout_pool(self):
        """The reused bundle fan-out process pool, or ``None``."""
        with self._pool_lock:
            if self._process_pool is None:
                try:
                    from concurrent.futures import ProcessPoolExecutor

                    self._process_pool = ProcessPoolExecutor(
                        max_workers=self._workers()
                    )
                except (OSError, ImportError, RuntimeError):
                    self._bundle_path = None  # don't retry every call
                    return None
            return self._process_pool

    def _close_process_pool(self) -> None:
        with self._pool_lock:
            pool, self._process_pool = self._process_pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # Dynamic routing (shards must support insert/delete themselves)
    # ------------------------------------------------------------------

    def _require_dynamic(self) -> None:
        if not self.shards:
            raise RuntimeError("fit the index before inserting/deleting")
        for shard in self.shards:
            if not (hasattr(shard, "insert") and hasattr(shard, "delete")):
                raise TypeError(
                    f"shard index {type(shard).__name__} does not support "
                    "insert/delete; use a dynamic spec (e.g. DynamicLCCSLSH)"
                )

    def insert(self, vector: np.ndarray) -> int:
        """Insert one vector into the next shard (round-robin).

        Returns a global handle following the same sequence an unsharded
        dynamic index would produce (``n``, ``n+1``, ...).
        """
        self._require_dynamic()
        self._mark_bundle_stale()
        s = self._next_shard
        self._next_shard = (s + 1) % self.num_shards
        local = self.shards[s].insert(vector)
        handle = self._next_handle
        self._next_handle += 1
        self._append_global(s, handle)
        self._inserted_loc[handle] = (s, int(local))
        return handle

    def _append_global(self, s: int, handle: int) -> None:
        """Amortised O(1) append to the shard's local->global map."""
        size = self._global_sizes[s]
        arr = self._global_ids[s]
        if size == len(arr):
            grown = np.empty(max(4, 2 * len(arr)), dtype=np.int64)
            grown[:size] = arr[:size]
            self._global_ids[s] = arr = grown
        arr[size] = handle
        self._global_sizes[s] = size + 1

    def delete(self, handle: int) -> None:
        """Delete by global handle; raises ``KeyError`` if unknown/dead."""
        self._require_dynamic()
        self._mark_bundle_stale()
        shard, local = self._locate(int(handle))
        self.shards[shard].delete(local)

    def _locate(self, handle: int) -> Tuple[int, int]:
        if handle in self._inserted_loc:
            return self._inserted_loc[handle]
        # Handles from the initial fit resolve arithmetically: shard by
        # offset bisection, local id by offset subtraction.
        if 0 <= handle < self._next_handle:
            s = int(np.searchsorted(self._offsets, handle, side="right") - 1)
            local = handle - int(self._offsets[s])
            # Guard against handles past the initial block of shard s
            # that were not inserts (i.e. beyond the fitted rows).
            if local < self._global_sizes[s] and int(
                self._global_ids[s][local]
            ) == handle:
                return s, local
        raise KeyError(f"unknown handle {handle}")

    # ------------------------------------------------------------------

    def _query_pool(self):
        """The reused fan-out thread pool, or ``None`` for serial mode.

        Created on first use and kept for the life of the index; falls
        back to ``None`` (serial fan-out) if threads cannot be started.
        """
        if self.parallel == "serial":
            return None
        with self._pool_lock:
            if self._fanout_pool is None:
                try:
                    from concurrent.futures import ThreadPoolExecutor

                    self._fanout_pool = ThreadPoolExecutor(
                        max_workers=self._workers(),
                        thread_name_prefix="shard-fanout",
                    )
                except RuntimeError:  # e.g. "can't start new thread"
                    self.parallel = "serial"
                    return None
            return self._fanout_pool

    def close(self) -> None:
        """Shut down the reused fan-out pools (idempotent).

        The index stays usable — the next parallel ``batch_query``
        simply spins a fresh pool up.
        """
        with self._pool_lock:
            pool, self._fanout_pool = self._fanout_pool, None
            ppool, self._process_pool = self._process_pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        if ppool is not None:
            ppool.shutdown(wait=True)

    def __enter__(self) -> "ShardedIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    def index_size_bytes(self) -> int:
        return sum(shard.index_size_bytes() for shard in self.shards)

    # ------------------------------------------------------------------
    # Native persistence: spec + bookkeeping + one nested payload per
    # shard under a ``shard<i>.`` array prefix.
    # ------------------------------------------------------------------

    def _export_state(self) -> Tuple[dict, Dict[str, np.ndarray]]:
        from repro.serve.persistence import export_index, json_safe, pack_nested

        spec_manifest = self.spec.to_manifest()
        if not json_safe(spec_manifest):
            raise NotImplementedError(
                "ShardedIndex spec kwargs are not JSON-safe"
            )
        state: dict = {
            "spec": spec_manifest,
            "num_shards": self.num_shards,
            "parallel": self.parallel,
            "max_workers": self.max_workers,
            "next_handle": self._next_handle,
            "next_shard": self._next_shard,
            "inserted_loc": {
                str(h): [s, l] for h, (s, l) in self._inserted_loc.items()
            },
            "shards": [],
        }
        arrays: Dict[str, np.ndarray] = {}
        if self.shards:
            arrays["offsets"] = self._offsets
            for i, shard in enumerate(self.shards):
                manifest, shard_arrays = export_index(shard)
                state["shards"].append(manifest)
                arrays.update(pack_nested(shard_arrays, f"shard{i}"))
                arrays[f"global_ids{i}"] = self._global_ids[i][
                    : self._global_sizes[i]
                ]
        return state, arrays

    @classmethod
    def _import_state(
        cls, manifest: dict, arrays: Dict[str, np.ndarray]
    ) -> "ShardedIndex":
        from repro.serve.persistence import import_index, unpack_nested

        state = manifest["state"]
        index = cls(
            IndexSpec.from_manifest(state["spec"]),
            num_shards=int(state["num_shards"]),
            parallel=state["parallel"],
            max_workers=state["max_workers"],
        )
        shard_manifests = state["shards"]
        if shard_manifests:
            index.shards = [
                import_index(
                    m, unpack_nested(arrays, f"shard{i}"), source=f"<shard {i}>"
                )
                for i, m in enumerate(shard_manifests)
            ]
            index._offsets = np.asarray(arrays["offsets"], dtype=np.int64)
            index._global_ids = [
                np.asarray(arrays[f"global_ids{i}"], dtype=np.int64)
                for i in range(len(shard_manifests))
            ]
            index._global_sizes = [len(g) for g in index._global_ids]
        index._next_handle = int(state["next_handle"])
        index._next_shard = int(state["next_shard"])
        index._inserted_loc = {
            int(h): (int(s), int(l))
            for h, (s, l) in state["inserted_loc"].items()
        }
        return index

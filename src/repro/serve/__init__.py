"""Serving layer: durable index bundles and sharded, parallel serving.

This package turns the in-process indexes into servable artifacts:

* :mod:`repro.serve.persistence` — the ``save``/``load`` bundle format.
  A bundle is a directory of ``manifest.json`` (format version, registry
  class name, ``dim``/``metric``/``seed``, build time, work counters,
  JSON-safe native state, per-array file/shape/dtype/offset index) plus
  one raw ``.npy`` file per array (format v2; the legacy v1
  ``arrays.npz`` archive stays readable).  ``load_index(path,
  mmap=True)`` opens a v2 bundle as read-only memory maps through the
  :class:`~repro.serve.persistence.ArrayStore` abstraction — cold start
  in milliseconds, one page-cache copy of the data shared by every
  local reader, byte-identical query results.  ``LCCSLSH``,
  ``MPLCCSLSH``, ``DynamicLCCSLSH``, ``LinearScan``, ``QALSH`` and
  ``ShardedIndex`` serialize natively (no pickle anywhere; arrays are
  read with ``allow_pickle=False``); every other baseline falls back to
  the documented pickle serializer inside the same layout.  Corrupt
  manifests, wrong ``format_version`` and unknown classes raise
  :class:`~repro.serve.persistence.BundleError`.
* :mod:`repro.serve.sharding` — :class:`~repro.serve.sharding.ShardedIndex`
  partitions the rows into contiguous shards, builds them in parallel
  (process pool, with thread/serial fallbacks), fans queries out, and
  merges per-shard top-k by the canonical tie-order
  ``np.lexsort((ids, dists))``: ascending distance, ties by ascending
  global id.  Because every index ranks with the same lexsort and the
  distance kernels are row-wise bit-identical, candidate-saturated
  sharded queries are byte-identical to unsharded ones.
* :mod:`repro.serve.registry` — name -> class registry the manifests
  reference, so loading a bundle never unpickles a class reference.
* :mod:`repro.serve.concurrency` —
  :class:`~repro.serve.concurrency.ConcurrentIndex` makes any index
  safe to share across threads: parallel readers, exclusive writers
  behind a writer-preference lock, and a monotone **version** counter
  bumped on every write.
* :mod:`repro.serve.cache` — :class:`~repro.serve.cache.QueryCache`, a
  thread-safe LRU keyed on (query bytes, k, kwargs, index version), so
  a hit is always byte-identical to a fresh query at that version.
* :mod:`repro.serve.service` — :class:`~repro.serve.service.ANNService`
  composes all of the above and micro-batches concurrent single
  queries into one vectorised ``batch_query`` call.
* :mod:`repro.serve.durability` — crash durability and read scaling:
  :class:`~repro.serve.durability.DurableIndex` write-ahead-logs every
  ``fit``/``insert``/``delete`` before applying it,
  :class:`~repro.serve.durability.SnapshotManager` checkpoints the
  index as WAL-position-tagged bundles,
  :func:`~repro.serve.durability.recover` rebuilds the acknowledged
  state (snapshot + log-suffix replay, with corrupt-snapshot
  fallback), and :class:`~repro.serve.durability.ReplicaSet` serves
  round-robin reads from replicas that tail the WAL.
* :mod:`repro.serve.server` — the asyncio TCP front door:
  :class:`~repro.serve.server.AsyncANNServer` speaks the JSON-lines
  protocol over sockets with admission control (explicit overload
  shedding), per-op latency histograms
  (:mod:`repro.serve.metrics`) and graceful drain;
  :func:`~repro.serve.server.run_server` adds the prefork worker
  model (N mmap replica processes behind one SO_REUSEPORT port, a
  primary process owning the WAL).  :mod:`repro.serve.client` has
  the matching asyncio and blocking clients.
"""

from repro.serve.cache import QueryCache, freeze_kwargs, query_key
from repro.serve.concurrency import ConcurrentIndex, RWLock
from repro.serve.durability import (
    DurableIndex,
    RecoveryError,
    Replica,
    ReplicaSet,
    SnapshotManager,
    StaleReadError,
    WALError,
    WriteAheadLog,
    recover,
)
from repro.serve.persistence import (
    FORMAT_VERSION,
    ArrayStore,
    BundleError,
    export_index,
    import_index,
    load_index,
    load_shard,
    read_manifest,
    save_index,
)
from repro.serve.registry import (
    index_names,
    index_registry,
    register_index,
    registry_name,
    resolve_index_class,
)
from repro.serve.client import (
    AsyncServeClient,
    Overloaded,
    ServeClient,
    ServerError,
)
from repro.serve.metrics import LatencyHistogram, ServerMetrics
from repro.serve.server import (
    AsyncANNServer,
    ServerConfig,
    ThreadedServer,
    run_server,
)
from repro.serve.service import ANNService
from repro.serve.sharding import IndexSpec, ShardedIndex, merge_topk

__all__ = [
    "ANNService",
    "ArrayStore",
    "AsyncANNServer",
    "AsyncServeClient",
    "BundleError",
    "ConcurrentIndex",
    "DurableIndex",
    "FORMAT_VERSION",
    "IndexSpec",
    "LatencyHistogram",
    "Overloaded",
    "QueryCache",
    "RWLock",
    "RecoveryError",
    "Replica",
    "ReplicaSet",
    "ServeClient",
    "ServerConfig",
    "ServerError",
    "ServerMetrics",
    "ShardedIndex",
    "SnapshotManager",
    "StaleReadError",
    "ThreadedServer",
    "WALError",
    "WriteAheadLog",
    "freeze_kwargs",
    "query_key",
    "recover",
    "run_server",
    "export_index",
    "import_index",
    "index_names",
    "index_registry",
    "load_index",
    "load_shard",
    "merge_topk",
    "read_manifest",
    "register_index",
    "registry_name",
    "resolve_index_class",
    "save_index",
]

"""Registry of servable index classes.

The persistence layer stores a *registry name* (the class name) in every
bundle manifest instead of a pickled class reference, so bundles stay
readable across refactors and loading never imports arbitrary code.  The
registry is populated lazily from the library's own index modules; any
external :class:`~repro.base.ANNIndex` subclass can join via
:func:`register_index` and then round-trips through the same
``save``/``load`` machinery (with the pickle fallback unless it
implements the native export hooks).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.base import ANNIndex

__all__ = [
    "index_registry",
    "register_index",
    "registry_name",
    "resolve_index_class",
]

_REGISTRY: Dict[str, Type[ANNIndex]] = {}
_POPULATED = False


def _populate() -> None:
    """Import the library's index modules and register every index."""
    global _POPULATED
    if _POPULATED:
        return
    _POPULATED = True
    import repro.baselines as baselines
    import repro.core as core
    from repro.serve.sharding import ShardedIndex

    for module in (core, baselines):
        for name in module.__all__:
            obj = getattr(module, name)
            if isinstance(obj, type) and issubclass(obj, ANNIndex):
                _REGISTRY.setdefault(obj.__name__, obj)
    _REGISTRY.setdefault(ShardedIndex.__name__, ShardedIndex)


def register_index(cls: Type[ANNIndex], name: Optional[str] = None) -> Type[ANNIndex]:
    """Register ``cls`` (usable as a decorator); returns ``cls``.

    Args:
        cls: the :class:`ANNIndex` subclass to make loadable.
        name: registry name; defaults to ``cls.__name__``.
    """
    if not (isinstance(cls, type) and issubclass(cls, ANNIndex)):
        raise TypeError(f"{cls!r} is not an ANNIndex subclass")
    _populate()
    _REGISTRY[name or cls.__name__] = cls
    return cls


def registry_name(cls: Type[ANNIndex]) -> str:
    """The name recorded in bundle manifests for ``cls``."""
    _populate()
    for name, registered in _REGISTRY.items():
        if registered is cls:
            return name
    return cls.__name__


def resolve_index_class(name: str) -> Type[ANNIndex]:
    """Look up a registry name; raises ``KeyError`` with choices if unknown."""
    _populate()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown index class {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def index_registry() -> Dict[str, Type[ANNIndex]]:
    """A copy of the current name -> class mapping."""
    _populate()
    return dict(_REGISTRY)


def index_names() -> List[str]:
    """Sorted registry names (convenience for CLIs and tests)."""
    _populate()
    return sorted(_REGISTRY)

"""Index persistence: JSON-manifest bundles with raw-``.npy`` payloads.

A *bundle* is a directory.  Two on-disk layouts exist:

* **format v2** (written by :func:`save_index`)::

      <path>/
          manifest.json   # format version, registry class name, dim,
                          # metric, seed, build_time, work counters, the
                          # index's JSON-safe native state, and an
                          # ``array_index``: per array the file it lives
                          # in, its shape/dtype, and the byte offset of
                          # its data inside that file
          arrays/
              <name>.npy  # one raw npy file per numpy array

  Because every array is a plain contiguous ``.npy`` file, the whole
  bundle can be opened with ``np.load(..., mmap_mode="r")``:
  ``load_index(path, mmap=True)`` returns a servable index in
  milliseconds without reading the payload — the OS page cache holds
  the only physical copy of the data, shared by every local process
  that maps the same bundle.

* **format v1** (the legacy single-archive layout)::

      <path>/
          manifest.json
          arrays.npz      # every array in one zip archive

  v1 bundles stay fully readable.  Zip members cannot be memory-mapped,
  so ``mmap=True`` on a v1 bundle silently degrades to an eager load.

Two serializers share both layouts:

* ``native`` — the index implements the :meth:`ANNIndex._export_state` /
  :meth:`ANNIndex._import_state` hooks, splitting itself into JSON-safe
  metadata and named arrays.  Loading never unpickles anything (arrays
  are read with ``allow_pickle=False``), bundles are inspectable with a
  text editor plus ``np.load``, and they stay readable across library
  refactors as long as the hook contract holds.  ``LCCSLSH``,
  ``MPLCCSLSH``, ``DynamicLCCSLSH``, ``LinearScan``, ``ShardedIndex``,
  ``QALSH``, ``SKLSH``, ``LSBForest`` and ``SRS`` ship native
  implementations.
* ``pickle`` — the documented fallback for the remaining baselines
  (``E2LSH``/``MultiProbeLSH``/``FALCONN``/``StaticConcatIndex``,
  ``C2LSH``, ``LazyLSH``, ``LSHForest``, and the cascades): the whole
  index object is pickled into a single ``uint8`` array stored under
  the ``__pickle__`` key.  Same on-disk layout, same API, but the usual
  pickle caveats apply (trusted inputs only, and bundles are tied to
  the class layout of the writing version).  Indexes opt in simply by
  *not* overriding the export hooks.  ``mmap=True`` is ineffective for
  pickle bundles — unpickling materialises a private copy anyway.

:class:`ArrayStore` is the read-side abstraction both layouts load
through: a mapping from array name to ``np.ndarray`` whose ``mode`` is
either ``"eager"`` (private in-RAM copies) or ``"mmap"`` (read-only
memory maps opened lazily, v2 only).  Arrays served by an mmap store
are **read-only**; index classes must treat loaded state as immutable
and copy-on-write anything they need to change.

``ANNIndex.load`` also accepts a legacy single-file pickle (what
``save`` wrote before the bundle format existed) when ``path`` is a
file rather than a directory.

Errors are reported as :class:`BundleError` (corrupt or missing
manifest, wrong ``format_version``, unknown registry class, missing
arrays), so callers can distinguish bad bundles from programming errors.
"""

from __future__ import annotations

import io
import json
import os
import pickle
import re
import shutil
from typing import TYPE_CHECKING, Dict, Iterator, Mapping, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.base import ANNIndex

__all__ = [
    "ArrayStore",
    "BundleError",
    "FORMAT_VERSION",
    "READABLE_VERSIONS",
    "MANIFEST_NAME",
    "ARRAYS_NAME",
    "ARRAYS_DIR",
    "bundle_summary",
    "export_index",
    "import_index",
    "open_array_store",
    "save_index",
    "load_index",
    "load_shard",
    "read_manifest",
]

#: bump when the bundle layout changes incompatibly
FORMAT_VERSION = 2
#: every format version this library can still read
READABLE_VERSIONS = (1, 2)
MANIFEST_NAME = "manifest.json"
#: v1: the single-archive payload
ARRAYS_NAME = "arrays.npz"
#: v2: directory of one raw .npy file per array
ARRAYS_DIR = "arrays"
#: npz key holding the pickled index when the fallback serializer is used
PICKLE_KEY = "__pickle__"

_UNSAFE_FILENAME = re.compile(r"[^A-Za-z0-9._-]")


class BundleError(RuntimeError):
    """A bundle is corrupt, incomplete, or from an incompatible version."""


def json_safe(obj) -> bool:
    """Whether ``obj`` survives a JSON round trip unchanged (scalars,
    strings, None, and lists/dicts thereof)."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return True
    if isinstance(obj, (list, tuple)):
        return all(json_safe(v) for v in obj)
    if isinstance(obj, dict):
        return all(isinstance(k, str) and json_safe(v) for k, v in obj.items())
    return False


# ----------------------------------------------------------------------
# In-memory export / import (also used for nesting, e.g. shard payloads)
# ----------------------------------------------------------------------

def export_index(index: "ANNIndex") -> Tuple[dict, Dict[str, np.ndarray]]:
    """Flatten ``index`` into ``(manifest, arrays)``.

    Tries the native hooks first; on ``NotImplementedError`` falls back
    to the documented pickle serializer (the whole object as a ``uint8``
    array under ``__pickle__``).
    """
    from repro import __version__
    from repro.serve.registry import registry_name

    manifest: dict = {
        "format_version": FORMAT_VERSION,
        "library_version": __version__,
        "class": registry_name(type(index)),
        "dim": index.dim,
        "metric": index.metric,
        "seed": index.seed,
        "fitted": index.is_fitted,
        "build_time": float(index.build_time),
        "last_stats": {k: float(v) for k, v in index.last_stats.items()},
    }
    try:
        state, arrays = index._export_state()
        if not json_safe(state):
            raise NotImplementedError(
                f"{type(index).__name__}._export_state returned non-JSON-safe "
                "metadata"
            )
        manifest["serializer"] = "native"
        manifest["state"] = state
    except NotImplementedError:
        manifest["serializer"] = "pickle"
        payload = pickle.dumps(index, protocol=pickle.HIGHEST_PROTOCOL)
        arrays = {PICKLE_KEY: np.frombuffer(payload, dtype=np.uint8)}
    # Recorded so the loader can detect truncated payloads up front.
    manifest["array_names"] = sorted(arrays)
    return manifest, arrays


def import_index(
    manifest: dict, arrays: Mapping[str, np.ndarray], source: str = "<bundle>"
) -> "ANNIndex":
    """Rebuild an index from :func:`export_index` output.

    Args:
        manifest: parsed manifest dictionary.
        arrays: named arrays — a plain dict or an :class:`ArrayStore`
            (mmap stores hand out read-only maps; never unpickled here).
        source: human-readable origin used in error messages.
    """
    from repro.base import ANNIndex
    from repro.serve.registry import resolve_index_class

    if not isinstance(manifest, dict):
        raise BundleError(f"{source}: manifest must be a JSON object")
    version = manifest.get("format_version")
    if version not in READABLE_VERSIONS:
        raise BundleError(
            f"{source}: unsupported bundle format_version {version!r} "
            f"(this library reads versions {list(READABLE_VERSIONS)})"
        )
    for key in ("class", "serializer", "dim", "metric"):
        if key not in manifest:
            raise BundleError(f"{source}: manifest is missing {key!r}")
    try:
        cls = resolve_index_class(manifest["class"])
    except KeyError as exc:
        raise BundleError(f"{source}: {exc.args[0]}") from None

    expected = manifest.get("array_names")
    if expected is not None:
        missing = sorted(set(expected) - set(arrays))
        if missing:
            raise BundleError(
                f"{source}: arrays missing from payload: {missing[:5]}"
                f"{' ...' if len(missing) > 5 else ''}"
            )

    serializer = manifest["serializer"]
    if serializer == "pickle":
        if PICKLE_KEY not in arrays:
            raise BundleError(f"{source}: pickle bundle is missing its payload")
        index = pickle.loads(arrays[PICKLE_KEY].tobytes())
        if not isinstance(index, ANNIndex):
            raise BundleError(
                f"{source}: pickle payload is {type(index).__name__}, "
                "not an ANNIndex"
            )
    elif serializer == "native":
        try:
            index = cls._import_state(manifest, dict(arrays))
        except (KeyError, IndexError, ValueError) as exc:
            raise BundleError(
                f"{source}: incomplete native state for {manifest['class']}: "
                f"{exc!r}"
            ) from exc
    else:
        raise BundleError(f"{source}: unknown serializer {serializer!r}")

    if index.dim != manifest["dim"] or index.metric != manifest["metric"]:
        raise BundleError(
            f"{source}: reconstructed index (dim={index.dim}, "
            f"metric={index.metric!r}) contradicts its manifest "
            f"(dim={manifest['dim']}, metric={manifest['metric']!r})"
        )
    index.build_time = float(manifest.get("build_time", 0.0))
    index.last_stats = {
        k: float(v) for k, v in manifest.get("last_stats", {}).items()
    }
    return index


# ----------------------------------------------------------------------
# Nesting helpers (Dynamic inner index, Sharded shard payloads)
# ----------------------------------------------------------------------

def pack_nested(
    arrays: Dict[str, np.ndarray], prefix: str
) -> Dict[str, np.ndarray]:
    """Prefix a nested index's arrays so several fit in one bundle."""
    return {f"{prefix}.{key}": val for key, val in arrays.items()}


def unpack_nested(
    arrays: Mapping[str, np.ndarray], prefix: str
) -> Dict[str, np.ndarray]:
    """Invert :func:`pack_nested` for one prefix."""
    head = f"{prefix}."
    return {
        key[len(head):]: arrays[key] for key in arrays
        if key.startswith(head)
    }


# ----------------------------------------------------------------------
# ArrayStore: the read-side eager-vs-mmap abstraction
# ----------------------------------------------------------------------

class ArrayStore(Mapping):
    """A bundle's named arrays behind one mapping interface.

    ``mode == "eager"``: every array is a private in-RAM copy, loaded up
    front.  ``mode == "mmap"``: arrays are opened on first access as
    **read-only** ``np.memmap`` views of their ``.npy`` files (v2
    layouts only) and cached, so iterating names costs nothing and
    opening an array costs one header read — the payload pages fault in
    lazily and are shared with every other process mapping the bundle.

    Construct via :func:`open_array_store` (from a bundle directory) or
    :meth:`ArrayStore.eager` (from an in-memory dict).
    """

    def __init__(
        self,
        arrays: Optional[Dict[str, np.ndarray]] = None,
        *,
        path: Optional[str] = None,
        files: Optional[Dict[str, str]] = None,
        mmap: bool = False,
        source: str = "<arrays>",
    ):
        self._cache: Dict[str, np.ndarray] = dict(arrays) if arrays else {}
        self._path = path
        self._files = dict(files) if files else {}
        self._mmap = bool(mmap)
        self._source = source
        self._names = tuple(
            sorted(set(self._cache) | set(self._files))
        )

    @classmethod
    def eager(cls, arrays: Dict[str, np.ndarray]) -> "ArrayStore":
        """Wrap an already-loaded name -> array dict."""
        return cls(arrays, mmap=False)

    @property
    def mode(self) -> str:
        """``"mmap"`` or ``"eager"`` — how arrays are materialised."""
        return "mmap" if self._mmap else "eager"

    def __len__(self) -> int:
        return len(self._names)

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __contains__(self, name) -> bool:
        return name in self._cache or name in self._files

    def __getitem__(self, name: str) -> np.ndarray:
        if name in self._cache:
            return self._cache[name]
        try:
            rel = self._files[name]
        except KeyError:
            raise KeyError(name) from None
        fpath = os.path.join(self._path, rel)
        try:
            if self._mmap:
                arr = np.load(fpath, mmap_mode="r", allow_pickle=False)
            else:
                arr = np.load(fpath, allow_pickle=False)
        except FileNotFoundError:
            raise BundleError(
                f"{self._source}: missing array file {rel!r} for {name!r}"
            ) from None
        except (ValueError, OSError) as exc:
            raise BundleError(
                f"{self._source}: unreadable array {name!r}: {exc}"
            ) from None
        self._cache[name] = arr
        return arr


def _array_filenames(names) -> Dict[str, str]:
    """Deterministic, collision-free name -> filename map for v2 writes."""
    out: Dict[str, str] = {}
    used = set()
    for i, name in enumerate(sorted(names)):
        safe = _UNSAFE_FILENAME.sub("_", name)
        if not safe or safe.startswith("."):
            safe = f"array{i}"
        fname = f"{safe}.npy"
        while fname in used:  # sanitisation collision: disambiguate
            safe = f"{safe}_{i}"
            fname = f"{safe}.npy"
        used.add(fname)
        out[name] = fname
    return out


def _npy_header(fpath: str) -> Tuple[Tuple[int, ...], np.dtype, int]:
    """(shape, dtype, data offset) from a ``.npy`` file's header only."""
    with open(fpath, "rb") as f:
        version = np.lib.format.read_magic(f)
        if version == (1, 0):
            shape, _, dtype = np.lib.format.read_array_header_1_0(f)
        elif version == (2, 0):
            shape, _, dtype = np.lib.format.read_array_header_2_0(f)
        else:
            raise ValueError(f"npy format {version}")
        return shape, dtype, f.tell()


def open_array_store(
    path: str, manifest: dict, mmap: bool = False
) -> ArrayStore:
    """Open a bundle directory's arrays as an :class:`ArrayStore`.

    v2 bundles honour ``mmap`` (lazy read-only maps); v1 bundles are
    zip archives, which cannot be mapped, so ``mmap=True`` silently
    degrades to an eager load there.
    """
    array_index = manifest.get("array_index")
    if isinstance(array_index, dict):  # v2: per-array .npy files
        files = {
            name: entry["file"] for name, entry in array_index.items()
            if isinstance(entry, dict) and "file" in entry
        }
        return ArrayStore(path=path, files=files, mmap=mmap, source=path)
    # v1: one npz archive, read eagerly.
    arrays_path = os.path.join(path, ARRAYS_NAME)
    try:
        with open(arrays_path, "rb") as f:
            buffer = io.BytesIO(f.read())
    except FileNotFoundError:
        raise BundleError(f"{path}: missing {ARRAYS_NAME}") from None
    try:
        with np.load(buffer, allow_pickle=False) as npz:
            arrays = {key: npz[key] for key in npz.files}
    except (ValueError, OSError) as exc:
        raise BundleError(f"{path}: corrupt {ARRAYS_NAME}: {exc}") from None
    return ArrayStore.eager(arrays)


# ----------------------------------------------------------------------
# File I/O
# ----------------------------------------------------------------------

def _write_arrays_v2(path: str, arrays: Dict[str, np.ndarray]) -> dict:
    """Write one raw ``.npy`` per array; returns the manifest array index."""
    arrays_dir = os.path.join(path, ARRAYS_DIR)
    if os.path.isdir(arrays_dir):  # rewrite in place: drop stale members
        shutil.rmtree(arrays_dir)
    os.makedirs(arrays_dir)
    filenames = _array_filenames(arrays)
    index: dict = {}
    for name in sorted(arrays):
        arr = np.asarray(arrays[name])
        fname = filenames[name]
        fpath = os.path.join(arrays_dir, fname)
        with open(fpath, "wb") as f:
            np.lib.format.write_array(f, arr, allow_pickle=False)
        shape, dtype, offset = _npy_header(fpath)
        index[name] = {
            "file": f"{ARRAYS_DIR}/{fname}",
            "shape": [int(s) for s in shape],
            "dtype": dtype.str,
            "offset": int(offset),
            "nbytes": int(np.prod(shape, dtype=np.int64)) * dtype.itemsize,
        }
    # Switching an old v1 bundle directory to v2 in place: drop the npz
    # so the directory holds exactly one coherent layout.
    legacy = os.path.join(path, ARRAYS_NAME)
    if os.path.exists(legacy):
        os.remove(legacy)
    return index


def save_index(
    index: "ANNIndex",
    path: str,
    extra: Optional[dict] = None,
    format_version: int = FORMAT_VERSION,
) -> str:
    """Write ``index`` as a bundle directory at ``path``; returns ``path``.

    Args:
        index: any :class:`ANNIndex` (fitted or not).
        path: bundle directory (created if needed; files overwritten).
        extra: optional JSON-safe application metadata stored under the
            manifest's ``"extra"`` key (the CLI records dataset
            provenance here).
        format_version: ``2`` (default; per-``.npy`` layout, mmap-able)
            or ``1`` (legacy ``arrays.npz`` layout).  Note that v1 here
            fixes only the *layout*: indexes whose array schema evolved
            (e.g. the LCCS family now persists ``csa.*`` instead of
            ``hash_strings``) still write their current schema, so a v1
            bundle written by this version feeds this version's reader
            and the compatibility tests — not necessarily pre-v2
            library releases.
    """
    if format_version not in READABLE_VERSIONS:
        raise ValueError(
            f"cannot write format_version {format_version!r}; "
            f"supported: {list(READABLE_VERSIONS)}"
        )
    manifest, arrays = export_index(index)
    manifest["format_version"] = int(format_version)
    if extra is not None:
        if not json_safe(extra):
            raise ValueError("extra metadata must be JSON-safe")
        manifest["extra"] = extra
    if os.path.exists(path) and not os.path.isdir(path):
        raise BundleError(
            f"{path} exists and is not a directory; bundles are directories"
        )
    os.makedirs(path, exist_ok=True)
    # Write arrays first so a torn write leaves no parseable manifest —
    # including on an in-place re-save, where the *previous* manifest
    # must go before the old arrays do (a crash mid-rewrite must not
    # leave a stale manifest describing half-replaced payloads).
    stale_manifest = os.path.join(path, MANIFEST_NAME)
    if os.path.exists(stale_manifest):
        os.remove(stale_manifest)
    if format_version >= 2:
        manifest["array_index"] = _write_arrays_v2(path, arrays)
    else:
        with open(os.path.join(path, ARRAYS_NAME), "wb") as f:
            np.savez(f, **arrays)
        stale_dir = os.path.join(path, ARRAYS_DIR)
        if os.path.isdir(stale_dir):
            shutil.rmtree(stale_dir)
    blob = json.dumps(manifest, indent=2, sort_keys=True)
    with open(os.path.join(path, MANIFEST_NAME), "w", encoding="utf-8") as f:
        f.write(blob + "\n")
    return path


def read_manifest(path: str) -> dict:
    """Parse a bundle's manifest (without loading any arrays)."""
    manifest_path = os.path.join(path, MANIFEST_NAME)
    try:
        with open(manifest_path, "r", encoding="utf-8") as f:
            manifest = json.load(f)
    except (FileNotFoundError, NotADirectoryError):
        raise BundleError(f"{path}: no {MANIFEST_NAME}; not a bundle") from None
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise BundleError(f"{path}: corrupt manifest: {exc}") from None
    if not isinstance(manifest, dict):
        raise BundleError(f"{path}: manifest must be a JSON object")
    return manifest


def _summary_arrays_v2(path: str, manifest: dict) -> list:
    """Per-array summary rows from a v2 manifest (no payload I/O at all)."""
    rows = []
    for name in sorted(manifest["array_index"]):
        entry = manifest["array_index"][name]
        try:
            shape = tuple(int(s) for s in entry["shape"])
            dtype = np.dtype(entry["dtype"])
            rel = entry["file"]
        except (KeyError, TypeError, ValueError) as exc:
            raise BundleError(
                f"{path}: corrupt array_index entry {name!r}: {exc}"
            ) from None
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        try:
            stored = int(os.path.getsize(os.path.join(path, rel)))
        except OSError:
            raise BundleError(
                f"{path}: missing array file {rel!r} for {name!r}"
            ) from None
        rows.append(
            {
                "name": name,
                "shape": shape,
                "dtype": str(dtype),
                "bytes": nbytes,
                "stored_bytes": stored,
            }
        )
    return rows


def _summary_arrays_v1(path: str) -> list:
    """Per-array summary rows from a v1 npz (header reads only)."""
    import zipfile

    arrays_path = os.path.join(path, ARRAYS_NAME)
    try:
        zf = zipfile.ZipFile(arrays_path)
    except FileNotFoundError:
        raise BundleError(f"{path}: missing {ARRAYS_NAME}") from None
    except zipfile.BadZipFile as exc:
        raise BundleError(f"{path}: corrupt {ARRAYS_NAME}: {exc}") from None
    rows = []
    with zf:
        for info in sorted(zf.infolist(), key=lambda i: i.filename):
            name = info.filename
            if name.endswith(".npy"):
                name = name[: -len(".npy")]
            try:
                with zf.open(info) as member:
                    version = np.lib.format.read_magic(member)
                    if version == (1, 0):
                        shape, _, dtype = np.lib.format.read_array_header_1_0(
                            member
                        )
                    elif version == (2, 0):
                        shape, _, dtype = np.lib.format.read_array_header_2_0(
                            member
                        )
                    else:
                        raise ValueError(f"npy format {version}")
            except (ValueError, OSError) as exc:
                raise BundleError(
                    f"{path}: unreadable array {name!r}: {exc}"
                ) from None
            nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
            rows.append(
                {
                    "name": name,
                    "shape": tuple(int(s) for s in shape),
                    "dtype": str(dtype),
                    "bytes": nbytes,
                    "stored_bytes": int(info.compress_size),
                }
            )
    return rows


def bundle_summary(path: str) -> dict:
    """Describe a bundle without loading (or unpickling) any arrays.

    Understands both layouts.  For v2 bundles everything comes from the
    manifest's ``array_index`` (zero payload I/O beyond one ``stat`` per
    file); for v1 bundles only the *npy headers* inside ``arrays.npz``
    are read (a few hundred bytes per member), so inspecting a
    multi-gigabyte bundle is instant either way.  Returns::

        {
          "path", "class", "serializer", "format_version", "layout",
          "library_version", "dim", "metric", "seed", "fitted",
          "build_time", "shards",            # None unless sharded
          "extra",                           # build provenance, if any
          "arrays": [ {"name", "shape", "dtype",
                       "bytes",              # in-memory size
                       "stored_bytes"}, ...],  # on-disk size
          "total_bytes", "total_stored_bytes",
        }

    Raises :class:`BundleError` for anything that is not a readable
    bundle (the same contract as :func:`load_index`).
    """
    manifest = read_manifest(path)
    state = manifest.get("state", {})
    has_index = isinstance(manifest.get("array_index"), dict)
    summary = {
        "path": path,
        "class": manifest.get("class"),
        "serializer": manifest.get("serializer"),
        "format_version": manifest.get("format_version"),
        "layout": "npy-dir" if has_index else "npz",
        "library_version": manifest.get("library_version"),
        "dim": manifest.get("dim"),
        "metric": manifest.get("metric"),
        "seed": manifest.get("seed"),
        "fitted": manifest.get("fitted"),
        "build_time": manifest.get("build_time"),
        "shards": state.get("num_shards") if isinstance(state, dict) else None,
        "extra": manifest.get("extra"),
        "arrays": (
            _summary_arrays_v2(path, manifest)
            if has_index
            else _summary_arrays_v1(path)
        ),
    }
    summary["total_bytes"] = sum(a["bytes"] for a in summary["arrays"])
    summary["total_stored_bytes"] = sum(
        a["stored_bytes"] for a in summary["arrays"]
    )
    return summary


def load_index(path: str, mmap: bool = False) -> "ANNIndex":
    """Load a bundle directory (or a legacy single-file pickle).

    Args:
        path: bundle directory, or a pre-bundle pickle file.
        mmap: open the arrays of a v2 bundle as read-only memory maps
            instead of reading them into RAM.  The index is servable
            immediately — array pages fault in on first touch and live
            in the OS page cache, shared across every process that maps
            the same bundle.  Ignored (eager load) for v1 bundles,
            pickle-serialized bundles, and legacy pickle files.

    Directories go through the manifest protocol with
    :class:`BundleError` on any inconsistency.  A plain file is treated
    as a pre-bundle pickle for backward compatibility (``TypeError`` if
    it does not contain an index, matching the historical behaviour).

    Eager and mmap loads reconstruct byte-identical indexes: every
    query answered by an mmap-loaded index returns exactly the ids and
    distances its eager twin would.
    """
    if os.path.isfile(path):  # legacy single-file pickle
        with open(path, "rb") as f:
            index = pickle.load(f)
        from repro.base import ANNIndex

        if not isinstance(index, ANNIndex):
            raise TypeError(f"{path} does not contain an ANNIndex")
        return index
    if not os.path.isdir(path):
        raise BundleError(f"{path}: no such bundle")
    manifest = read_manifest(path)
    store = open_array_store(path, manifest, mmap=mmap)
    index = import_index(manifest, store, source=path)
    # Record provenance so downstream layers (e.g. the sharded process
    # fan-out) can re-open the same bundle in worker processes.
    attach = getattr(index, "attach_bundle", None)
    if callable(attach):
        attach(os.path.abspath(path), mmap=store.mode == "mmap")
    return index


def load_shard(path: str, shard: int, mmap: bool = False) -> "ANNIndex":
    """Load one shard of a saved :class:`~repro.serve.sharding.ShardedIndex`.

    With a v2 bundle and ``mmap=True`` only the requested shard's
    arrays are opened (as read-only maps), so a fan-out worker process
    touches none of the other shards' pages — this is what lets a
    process pool serve a sharded bundle with one physical copy of the
    dataset.  v1 bundles still work but read the whole archive.

    Args:
        path: bundle directory holding a fitted ``ShardedIndex``.
        shard: shard number in ``[0, num_shards)``.
        mmap: open arrays as read-only memory maps (v2 bundles).
    """
    manifest = read_manifest(path)
    state = manifest.get("state")
    shard_manifests = state.get("shards") if isinstance(state, dict) else None
    if not isinstance(shard_manifests, list) or not shard_manifests:
        raise BundleError(f"{path}: not a fitted ShardedIndex bundle")
    if not 0 <= shard < len(shard_manifests):
        raise BundleError(
            f"{path}: shard {shard} out of range "
            f"[0, {len(shard_manifests)})"
        )
    store = open_array_store(path, manifest, mmap=mmap)
    arrays = unpack_nested(store, f"shard{shard}")
    return import_index(
        shard_manifests[shard], arrays, source=f"{path}[shard {shard}]"
    )

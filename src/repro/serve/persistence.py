"""Index persistence: ``.npz`` + JSON-manifest bundles.

A *bundle* is a directory with exactly two files::

    <path>/
        manifest.json   # format version, registry class name, dim,
                        # metric, seed, build_time, work counters, and
                        # the index's JSON-safe native state
        arrays.npz      # every numpy array the index needs (raw data,
                        # hash strings, projections, shard payloads)

Two serializers share this layout:

* ``native`` — the index implements the :meth:`ANNIndex._export_state` /
  :meth:`ANNIndex._import_state` hooks, splitting itself into JSON-safe
  metadata and named arrays.  Loading never unpickles anything
  (``arrays.npz`` is read with ``allow_pickle=False``), bundles are
  inspectable with a text editor plus ``np.load``, and they stay
  readable across library refactors as long as the hook contract holds.
  ``LCCSLSH``, ``MPLCCSLSH``, ``DynamicLCCSLSH``, ``LinearScan``,
  ``ShardedIndex``, ``SKLSH``, ``LSBForest`` and ``SRS`` ship native
  implementations.
* ``pickle`` — the documented fallback for the remaining baselines
  (``E2LSH``/``MultiProbeLSH``/``FALCONN``/``StaticConcatIndex``,
  ``C2LSH``, ``QALSH``, ``LazyLSH``, ``LSHForest``, and the cascades): the
  whole index object is pickled into a single ``uint8`` array stored
  under the ``__pickle__`` key of ``arrays.npz``.  Same on-disk layout,
  same API, but the usual pickle caveats apply (trusted inputs only, and
  bundles are tied to the class layout of the writing version).  Indexes
  opt in simply by *not* overriding the export hooks.

``ANNIndex.load`` also accepts a legacy single-file pickle (what
``save`` wrote before the bundle format existed) when ``path`` is a
file rather than a directory.

Errors are reported as :class:`BundleError` (corrupt or missing
manifest, wrong ``format_version``, unknown registry class, missing
arrays), so callers can distinguish bad bundles from programming errors.
"""

from __future__ import annotations

import io
import json
import os
import pickle
from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.base import ANNIndex

__all__ = [
    "BundleError",
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "ARRAYS_NAME",
    "bundle_summary",
    "export_index",
    "import_index",
    "save_index",
    "load_index",
    "read_manifest",
]

#: bump when the bundle layout changes incompatibly
FORMAT_VERSION = 1
MANIFEST_NAME = "manifest.json"
ARRAYS_NAME = "arrays.npz"
#: npz key holding the pickled index when the fallback serializer is used
PICKLE_KEY = "__pickle__"


class BundleError(RuntimeError):
    """A bundle is corrupt, incomplete, or from an incompatible version."""


def json_safe(obj) -> bool:
    """Whether ``obj`` survives a JSON round trip unchanged (scalars,
    strings, None, and lists/dicts thereof)."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return True
    if isinstance(obj, (list, tuple)):
        return all(json_safe(v) for v in obj)
    if isinstance(obj, dict):
        return all(isinstance(k, str) and json_safe(v) for k, v in obj.items())
    return False


# ----------------------------------------------------------------------
# In-memory export / import (also used for nesting, e.g. shard payloads)
# ----------------------------------------------------------------------

def export_index(index: "ANNIndex") -> Tuple[dict, Dict[str, np.ndarray]]:
    """Flatten ``index`` into ``(manifest, arrays)``.

    Tries the native hooks first; on ``NotImplementedError`` falls back
    to the documented pickle serializer (the whole object as a ``uint8``
    array under ``__pickle__``).
    """
    from repro import __version__
    from repro.serve.registry import registry_name

    manifest: dict = {
        "format_version": FORMAT_VERSION,
        "library_version": __version__,
        "class": registry_name(type(index)),
        "dim": index.dim,
        "metric": index.metric,
        "seed": index.seed,
        "fitted": index.is_fitted,
        "build_time": float(index.build_time),
        "last_stats": {k: float(v) for k, v in index.last_stats.items()},
    }
    try:
        state, arrays = index._export_state()
        if not json_safe(state):
            raise NotImplementedError(
                f"{type(index).__name__}._export_state returned non-JSON-safe "
                "metadata"
            )
        manifest["serializer"] = "native"
        manifest["state"] = state
    except NotImplementedError:
        manifest["serializer"] = "pickle"
        payload = pickle.dumps(index, protocol=pickle.HIGHEST_PROTOCOL)
        arrays = {PICKLE_KEY: np.frombuffer(payload, dtype=np.uint8)}
    # Recorded so the loader can detect truncated payloads up front.
    manifest["array_names"] = sorted(arrays)
    return manifest, arrays


def import_index(
    manifest: dict, arrays: Dict[str, np.ndarray], source: str = "<bundle>"
) -> "ANNIndex":
    """Rebuild an index from :func:`export_index` output.

    Args:
        manifest: parsed manifest dictionary.
        arrays: named arrays (already loaded; never unpickled here).
        source: human-readable origin used in error messages.
    """
    from repro.base import ANNIndex
    from repro.serve.registry import resolve_index_class

    if not isinstance(manifest, dict):
        raise BundleError(f"{source}: manifest must be a JSON object")
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise BundleError(
            f"{source}: unsupported bundle format_version {version!r} "
            f"(this library reads version {FORMAT_VERSION})"
        )
    for key in ("class", "serializer", "dim", "metric"):
        if key not in manifest:
            raise BundleError(f"{source}: manifest is missing {key!r}")
    try:
        cls = resolve_index_class(manifest["class"])
    except KeyError as exc:
        raise BundleError(f"{source}: {exc.args[0]}") from None

    expected = manifest.get("array_names")
    if expected is not None:
        missing = sorted(set(expected) - set(arrays))
        if missing:
            raise BundleError(
                f"{source}: arrays missing from payload: {missing[:5]}"
                f"{' ...' if len(missing) > 5 else ''}"
            )

    serializer = manifest["serializer"]
    if serializer == "pickle":
        if PICKLE_KEY not in arrays:
            raise BundleError(f"{source}: pickle bundle is missing its payload")
        index = pickle.loads(arrays[PICKLE_KEY].tobytes())
        if not isinstance(index, ANNIndex):
            raise BundleError(
                f"{source}: pickle payload is {type(index).__name__}, "
                "not an ANNIndex"
            )
    elif serializer == "native":
        try:
            index = cls._import_state(manifest, dict(arrays))
        except (KeyError, IndexError) as exc:
            raise BundleError(
                f"{source}: incomplete native state for {manifest['class']}: "
                f"{exc!r}"
            ) from exc
    else:
        raise BundleError(f"{source}: unknown serializer {serializer!r}")

    if index.dim != manifest["dim"] or index.metric != manifest["metric"]:
        raise BundleError(
            f"{source}: reconstructed index (dim={index.dim}, "
            f"metric={index.metric!r}) contradicts its manifest "
            f"(dim={manifest['dim']}, metric={manifest['metric']!r})"
        )
    index.build_time = float(manifest.get("build_time", 0.0))
    index.last_stats = {
        k: float(v) for k, v in manifest.get("last_stats", {}).items()
    }
    return index


# ----------------------------------------------------------------------
# Nesting helpers (Dynamic inner index, Sharded shard payloads)
# ----------------------------------------------------------------------

def pack_nested(
    arrays: Dict[str, np.ndarray], prefix: str
) -> Dict[str, np.ndarray]:
    """Prefix a nested index's arrays so several fit in one ``.npz``."""
    return {f"{prefix}.{key}": val for key, val in arrays.items()}


def unpack_nested(arrays: Dict[str, np.ndarray], prefix: str) -> Dict[str, np.ndarray]:
    """Invert :func:`pack_nested` for one prefix."""
    head = f"{prefix}."
    return {
        key[len(head):]: val for key, val in arrays.items()
        if key.startswith(head)
    }


# ----------------------------------------------------------------------
# File I/O
# ----------------------------------------------------------------------

def save_index(
    index: "ANNIndex", path: str, extra: Optional[dict] = None
) -> str:
    """Write ``index`` as a bundle directory at ``path``; returns ``path``.

    Args:
        index: any :class:`ANNIndex` (fitted or not).
        path: bundle directory (created if needed; files overwritten).
        extra: optional JSON-safe application metadata stored under the
            manifest's ``"extra"`` key (the CLI records dataset
            provenance here).
    """
    manifest, arrays = export_index(index)
    if extra is not None:
        if not json_safe(extra):
            raise ValueError("extra metadata must be JSON-safe")
        manifest["extra"] = extra
    if os.path.exists(path) and not os.path.isdir(path):
        raise BundleError(
            f"{path} exists and is not a directory; bundles are directories"
        )
    os.makedirs(path, exist_ok=True)
    # Write arrays first so a torn write leaves no parseable manifest.
    with open(os.path.join(path, ARRAYS_NAME), "wb") as f:
        np.savez(f, **arrays)
    blob = json.dumps(manifest, indent=2, sort_keys=True)
    with open(os.path.join(path, MANIFEST_NAME), "w", encoding="utf-8") as f:
        f.write(blob + "\n")
    return path


def read_manifest(path: str) -> dict:
    """Parse a bundle's manifest (without loading any arrays)."""
    manifest_path = os.path.join(path, MANIFEST_NAME)
    try:
        with open(manifest_path, "r", encoding="utf-8") as f:
            manifest = json.load(f)
    except (FileNotFoundError, NotADirectoryError):
        raise BundleError(f"{path}: no {MANIFEST_NAME}; not a bundle") from None
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise BundleError(f"{path}: corrupt manifest: {exc}") from None
    if not isinstance(manifest, dict):
        raise BundleError(f"{path}: manifest must be a JSON object")
    return manifest


def bundle_summary(path: str) -> dict:
    """Describe a bundle without loading (or unpickling) any arrays.

    Reads the manifest plus only the *npy headers* inside ``arrays.npz``
    (a few hundred bytes per member), so inspecting a multi-gigabyte
    bundle is instant.  Returns::

        {
          "path", "class", "serializer", "format_version",
          "library_version", "dim", "metric", "seed", "fitted",
          "build_time", "shards",            # None unless sharded
          "extra",                           # build provenance, if any
          "arrays": [ {"name", "shape", "dtype",
                       "bytes",              # in-memory size
                       "stored_bytes"}, ...],  # compressed-in-zip size
          "total_bytes", "total_stored_bytes",
        }

    Raises :class:`BundleError` for anything that is not a readable
    bundle (the same contract as :func:`load_index`).
    """
    import zipfile

    manifest = read_manifest(path)
    state = manifest.get("state", {})
    summary = {
        "path": path,
        "class": manifest.get("class"),
        "serializer": manifest.get("serializer"),
        "format_version": manifest.get("format_version"),
        "library_version": manifest.get("library_version"),
        "dim": manifest.get("dim"),
        "metric": manifest.get("metric"),
        "seed": manifest.get("seed"),
        "fitted": manifest.get("fitted"),
        "build_time": manifest.get("build_time"),
        "shards": state.get("num_shards") if isinstance(state, dict) else None,
        "extra": manifest.get("extra"),
        "arrays": [],
    }
    arrays_path = os.path.join(path, ARRAYS_NAME)
    try:
        zf = zipfile.ZipFile(arrays_path)
    except FileNotFoundError:
        raise BundleError(f"{path}: missing {ARRAYS_NAME}") from None
    except zipfile.BadZipFile as exc:
        raise BundleError(f"{path}: corrupt {ARRAYS_NAME}: {exc}") from None
    total = total_stored = 0
    with zf:
        for info in sorted(zf.infolist(), key=lambda i: i.filename):
            name = info.filename
            if name.endswith(".npy"):
                name = name[: -len(".npy")]
            try:
                with zf.open(info) as member:
                    version = np.lib.format.read_magic(member)
                    if version == (1, 0):
                        shape, _, dtype = np.lib.format.read_array_header_1_0(
                            member
                        )
                    elif version == (2, 0):
                        shape, _, dtype = np.lib.format.read_array_header_2_0(
                            member
                        )
                    else:
                        raise ValueError(f"npy format {version}")
            except (ValueError, OSError) as exc:
                raise BundleError(
                    f"{path}: unreadable array {name!r}: {exc}"
                ) from None
            nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
            total += nbytes
            total_stored += info.compress_size
            summary["arrays"].append(
                {
                    "name": name,
                    "shape": tuple(int(s) for s in shape),
                    "dtype": str(dtype),
                    "bytes": nbytes,
                    "stored_bytes": int(info.compress_size),
                }
            )
    summary["total_bytes"] = total
    summary["total_stored_bytes"] = total_stored
    return summary


def load_index(path: str) -> "ANNIndex":
    """Load a bundle directory (or a legacy single-file pickle).

    Directories go through the manifest/npz protocol with
    :class:`BundleError` on any inconsistency.  A plain file is treated
    as a pre-bundle pickle for backward compatibility (``TypeError`` if
    it does not contain an index, matching the historical behaviour).
    """
    from repro.base import ANNIndex

    if os.path.isfile(path):  # legacy single-file pickle
        with open(path, "rb") as f:
            index = pickle.load(f)
        if not isinstance(index, ANNIndex):
            raise TypeError(f"{path} does not contain an ANNIndex")
        return index
    if not os.path.isdir(path):
        raise BundleError(f"{path}: no such bundle")
    manifest = read_manifest(path)
    arrays_path = os.path.join(path, ARRAYS_NAME)
    try:
        with open(arrays_path, "rb") as f:
            buffer = io.BytesIO(f.read())
    except FileNotFoundError:
        raise BundleError(f"{path}: missing {ARRAYS_NAME}") from None
    try:
        with np.load(buffer, allow_pickle=False) as npz:
            arrays = {key: npz[key] for key in npz.files}
    except (ValueError, OSError) as exc:
        raise BundleError(f"{path}: corrupt {ARRAYS_NAME}: {exc}") from None
    return import_index(manifest, arrays, source=path)

"""Back-compat shim: server metrics now live in :mod:`repro.obs.metrics`.

The latency histogram and per-op server metrics started life here,
private to the TCP server.  The observability plane
(:mod:`repro.obs`) promoted them to shared infrastructure — the same
histogram type now backs lock-wait and WAL-fsync timings, and
:class:`~repro.obs.metrics.ServerMetrics` publishes into the unified
:class:`~repro.obs.metrics.MetricsRegistry`.  Import from
``repro.obs.metrics`` in new code; this module re-exports the public
names so existing imports keep working.
"""

from repro.obs.metrics import (  # noqa: F401
    LatencyHistogram,
    MetricsRegistry,
    ServerMetrics,
    get_registry,
)

__all__ = ["LatencyHistogram", "ServerMetrics", "MetricsRegistry", "get_registry"]

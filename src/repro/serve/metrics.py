"""Request counters and latency histograms for the network server.

The server records one latency sample per finished request into a
:class:`LatencyHistogram` — a fixed set of geometrically spaced buckets
(1 µs .. ~100 s, 25 % growth per bucket), the classic shape used by
serving systems (HdrHistogram, Prometheus) because it keeps quantile
error bounded (< ~12 %, half the bucket ratio) with O(1) record cost
and a few hundred bytes of state.  Percentiles are interpolated inside
the covering bucket, and exact ``min``/``max``/``sum`` are kept on the
side so the tails and the mean are not quantised.

:class:`ServerMetrics` groups one histogram plus request/error/shed
counters per operation type (``query``/``insert``/``delete``/``stats``)
and renders the whole thing as a JSON-safe dict for ``stats``
responses.  Everything is guarded by a mutex so the asyncio loop and
executor threads can record concurrently; a snapshot is consistent.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional

__all__ = ["LatencyHistogram", "ServerMetrics"]

#: smallest bucketed latency (seconds); everything below lands in bucket 0
_BASE_S = 1e-6
#: geometric growth per bucket — 25 % keeps quantile error under ~12 %
_GROWTH = 1.25
#: bucket count: covers 1 µs .. ~100 s (log(1e8) / log(1.25) ≈ 83)
_BUCKETS = 84
_LOG_GROWTH = math.log(_GROWTH)


def _bucket_index(seconds: float) -> int:
    if seconds <= _BASE_S:
        return 0
    idx = int(math.log(seconds / _BASE_S) / _LOG_GROWTH) + 1
    return min(idx, _BUCKETS - 1)


def _bucket_upper_s(idx: int) -> float:
    """Upper latency bound (seconds) of bucket ``idx``."""
    return _BASE_S * _GROWTH**idx


class LatencyHistogram:
    """Fixed-size log-bucketed latency histogram with exact extremes.

    ``record`` is O(1); ``percentile`` walks the (84-entry) bucket
    array.  All methods are thread-safe.
    """

    def __init__(self) -> None:
        self._counts: List[int] = [0] * _BUCKETS
        self._n = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = 0.0
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        seconds = max(0.0, float(seconds))
        with self._lock:
            self._counts[_bucket_index(seconds)] += 1
            self._n += 1
            self._sum += seconds
            self._min = min(self._min, seconds)
            self._max = max(self._max, seconds)

    @property
    def count(self) -> int:
        return self._n

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other``'s samples into this histogram (for fan-in).

        Both locks are taken in a deterministic global order (by object
        id), so two histograms concurrently merged into each other from
        two threads cannot deadlock on the crossed acquisition.
        """
        if other is self:
            with self._lock:
                self._counts = [2 * c for c in self._counts]
                self._n *= 2
                self._sum *= 2.0
            return
        first, second = (
            (self, other) if id(self) < id(other) else (other, self)
        )
        with first._lock:
            with second._lock:
                for i, c in enumerate(other._counts):
                    self._counts[i] += c
                self._n += other._n
                self._sum += other._sum
                self._min = min(self._min, other._min)
                self._max = max(self._max, other._max)

    def percentile(self, p: float) -> Optional[float]:
        """The ``p``-th percentile latency in seconds (None if empty).

        Linear interpolation inside the covering bucket; clamped to the
        exact observed ``min``/``max`` so tails are never invented.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError("p must be in [0, 100]")
        with self._lock:
            if self._n == 0:
                return None
            rank = p / 100.0 * self._n
            seen = 0
            for idx, c in enumerate(self._counts):
                if c == 0:
                    continue
                if seen + c >= rank:
                    lower = _bucket_upper_s(idx - 1) if idx > 0 else 0.0
                    upper = _bucket_upper_s(idx)
                    frac = (rank - seen) / c
                    est = lower + frac * (upper - lower)
                    return min(max(est, self._min), self._max)
                seen += c
            return self._max  # pragma: no cover - rounding safety net

    def snapshot(self) -> dict:
        """JSON-safe summary: count, mean/min/max and p50/p95/p99 (ms)."""
        with self._lock:
            n, total = self._n, self._sum
            lo, hi = self._min, self._max
        out = {"count": n}
        if n == 0:
            return out
        out["mean_ms"] = total / n * 1e3
        out["min_ms"] = lo * 1e3
        out["max_ms"] = hi * 1e3
        for p, name in ((50, "p50_ms"), (95, "p95_ms"), (99, "p99_ms")):
            val = self.percentile(p)
            out[name] = None if val is None else val * 1e3
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LatencyHistogram(n={self._n})"


class _OpMetrics:
    __slots__ = ("requests", "errors", "shed", "latency")

    def __init__(self) -> None:
        self.requests = 0
        self.errors = 0
        self.shed = 0
        self.latency = LatencyHistogram()


class ServerMetrics:
    """Per-op request/error/shed counters + latency histograms.

    ``observe(op, seconds, error=...)`` records one *finished* request;
    ``count_shed(op)`` records one request rejected by admission
    control (shed requests are counted separately and never enter the
    latency histogram — they would drag the percentiles toward the
    trivial rejection cost).  Unknown/bad requests are tallied via
    ``count_bad()``.
    """

    #: op types with their own histograms; others fold into "other"
    OPS = ("query", "insert", "delete", "stats")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._ops: Dict[str, _OpMetrics] = {}
        self._bad = 0
        self._connections = 0

    def _op(self, op: str) -> _OpMetrics:
        if op not in self.OPS:
            op = "other"
        with self._lock:
            entry = self._ops.get(op)
            if entry is None:
                entry = self._ops[op] = _OpMetrics()
            return entry

    def observe(self, op: str, seconds: float, error: bool = False) -> None:
        entry = self._op(op)
        with self._lock:
            entry.requests += 1
            if error:
                entry.errors += 1
        entry.latency.record(seconds)

    def count_shed(self, op: str) -> None:
        entry = self._op(op)
        with self._lock:
            entry.requests += 1
            entry.shed += 1

    def count_bad(self) -> None:
        """A line that never became a request (bad JSON / unknown op)."""
        with self._lock:
            self._bad += 1

    def count_connection(self) -> None:
        with self._lock:
            self._connections += 1

    def snapshot(self) -> dict:
        """JSON-safe rollup: totals plus a per-op breakdown."""
        with self._lock:
            ops = dict(self._ops)
            bad = self._bad
            connections = self._connections
        out: dict = {
            "connections": connections,
            "bad_requests": bad,
            "requests_total": 0,
            "errors_total": 0,
            "shed_total": 0,
            "ops": {},
        }
        for name, entry in sorted(ops.items()):
            with self._lock:
                requests, errors, shed = entry.requests, entry.errors, entry.shed
            out["requests_total"] += requests
            out["errors_total"] += errors
            out["shed_total"] += shed
            op_out = {"requests": requests, "errors": errors, "shed": shed}
            op_out.update(entry.latency.snapshot())
            out["ops"][name] = op_out
        return out

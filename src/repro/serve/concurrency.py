"""Thread-safe serving primitives: a reader-writer lock and a locked facade.

The library's indexes are written for single-threaded use: ``query``
mutates ``last_stats``, ``insert``/``delete`` rewrite internal arrays,
and a :class:`~repro.core.dynamic.DynamicLCCSLSH` rebuild replaces whole
structures.  :class:`ConcurrentIndex` makes any
:class:`~repro.base.ANNIndex` safe to share across threads:

* ``query`` / ``batch_query`` take a *shared* (read) lock, so any number
  of them proceed in parallel;
* ``insert`` / ``delete`` / ``fit`` take an *exclusive* (write) lock;
* the lock is **writer-preference** (a write-intent queue): as soon as a
  writer is waiting, newly arriving readers block behind it, so a steady
  read stream cannot starve updates;
* every write bumps a monotonically increasing **version** counter, read
  under the same locks — the key the query cache uses to know a cached
  answer is still current.

Per-query ``last_stats`` on the wrapped index are *not* meaningful under
concurrent readers (every reader resets them); use
:meth:`ConcurrentIndex.stats` for exact aggregate read/write counters
instead.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator, Tuple

import numpy as np

from repro.base import ANNIndex
from repro.obs.metrics import get_registry

__all__ = ["RWLock", "ConcurrentIndex"]

#: kernel-stage timings the traced query variants lift out of the
#: wrapped index's ``last_stats`` (measured by the index itself)
_STAGE_KEYS = (
    "stage_hash_s",
    "stage_search_s",
    "stage_merge_s",
    "stage_verify_s",
)


class RWLock:
    """Reader-writer lock with writer preference.

    Any number of readers hold the lock together; a writer holds it
    alone.  While at least one writer is *waiting*, new readers queue
    behind it (the write-intent rule), so writers are never starved by a
    continuous stream of reads; once no writer is waiting, all queued
    readers are released together.

    Not reentrant: a thread holding the read lock must not acquire the
    write lock (it would deadlock with itself).
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    @contextmanager
    def read_locked_timed(self) -> Iterator[float]:
        """Like :meth:`read_locked`, but yields the acquisition wait
        (seconds) — how long this reader queued behind writers."""
        t0 = time.perf_counter()
        self.acquire_read()
        try:
            yield time.perf_counter() - t0
        finally:
            self.release_read()

    @contextmanager
    def write_locked_timed(self) -> Iterator[float]:
        """Like :meth:`write_locked`, but yields the acquisition wait
        (seconds) — how long this writer queued behind readers."""
        t0 = time.perf_counter()
        self.acquire_write()
        try:
            yield time.perf_counter() - t0
        finally:
            self.release_write()


class ConcurrentIndex:
    """Thread-safe facade over any :class:`~repro.base.ANNIndex`.

    Reads (``query``/``batch_query``) run under a shared lock and so
    proceed in parallel with each other; writes (``insert``/``delete``/
    ``fit``) run under an exclusive lock, fully serialized with every
    read and write.  The ``_versioned`` variants additionally return the
    index **version** observed *under the same lock* as the operation —
    so a reader knows exactly which write-state its answer reflects, and
    a writer knows the version its write produced.

    Thread-safety guarantees:

    * results returned by a read reflect exactly one version — no torn
      reads across a concurrent write;
    * handles returned by ``insert`` are assigned in version order
      (writes are serialized), so replaying the write log serially on a
      fresh index reproduces the final state byte-for-byte;
    * writers cannot starve (writer-preference lock).

    Args:
        index: the index to wrap (fitted or not).
    """

    def __init__(self, index: ANNIndex):
        if not isinstance(index, ANNIndex):
            raise TypeError(f"{index!r} is not an ANNIndex")
        self._index = index
        self._lock = RWLock()
        # Counters are guarded by their own tiny mutex so readers (which
        # only share the RW lock) still update them exactly.
        self._stats_lock = threading.Lock()
        self._version = 0
        self._reads = 0
        self._writes = 0
        # Process-wide lock-contention histogram (shared by every
        # ConcurrentIndex in the process; the registry dedupes by name).
        self._lock_wait = get_registry().histogram(
            "repro_lock_wait_seconds",
            "RW-lock acquisition wait by mode (seconds)",
        )

    # ------------------------------------------------------------------
    # Introspection (lock-free reads of immutable / atomic attributes)
    # ------------------------------------------------------------------

    @property
    def inner(self) -> ANNIndex:
        """The wrapped index.  Touch it directly only while no other
        thread is using this facade."""
        return self._index

    @property
    def version(self) -> int:
        """Number of completed writes (``insert``/``delete``/``fit``)."""
        return self._version

    @property
    def dim(self) -> int:
        return self._index.dim

    @property
    def metric(self) -> str:
        return self._index.metric

    @property
    def name(self) -> str:
        return f"Concurrent[{self._index.name}]"

    @property
    def n(self) -> int:
        with self._lock.read_locked():
            return self._index.n

    @property
    def is_fitted(self) -> bool:
        with self._lock.read_locked():
            return self._index.is_fitted

    # ------------------------------------------------------------------
    # Reads (shared lock)
    # ------------------------------------------------------------------

    def query(
        self, q: np.ndarray, k: int = 1, **kwargs
    ) -> Tuple[np.ndarray, np.ndarray]:
        ids, dists, _ = self.query_versioned(q, k, **kwargs)
        return ids, dists

    def query_versioned(
        self, q: np.ndarray, k: int = 1, **kwargs
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """``(ids, dists, version)`` — the version the answer reflects."""
        with self._lock.read_locked():
            ids, dists = self._index.query(q, k=k, **kwargs)
            version = self._version
        self._count_read()
        return ids, dists, version

    def batch_query(
        self, queries: np.ndarray, k: int = 1, **kwargs
    ) -> Tuple[np.ndarray, np.ndarray]:
        ids, dists, _ = self.batch_query_versioned(queries, k, **kwargs)
        return ids, dists

    def batch_query_versioned(
        self, queries: np.ndarray, k: int = 1, **kwargs
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """``(ids, dists, version)`` for a whole batch under one lock."""
        with self._lock.read_locked():
            ids, dists = self._index.batch_query(queries, k=k, **kwargs)
            version = self._version
        self._count_read()
        return ids, dists, version

    # ------------------------------------------------------------------
    # Traced reads: same semantics, plus an ``info`` dict of timings
    # ------------------------------------------------------------------

    def query_traced(
        self, q: np.ndarray, k: int = 1, **kwargs
    ) -> Tuple[np.ndarray, np.ndarray, int, dict]:
        """``(ids, dists, version, info)`` — timings for the trace plane.

        ``info`` carries ``lock_wait_s``, ``query_s`` and whatever
        ``stage_*_s`` kernel timings the wrapped index recorded in
        ``last_stats``.  The stage timings are best-effort under
        concurrent readers (readers share the lock and each resets
        ``last_stats``); the lock wait and query wall time are exact.
        """
        with self._lock.read_locked_timed() as wait_s:
            t0 = time.perf_counter()
            ids, dists = self._index.query(q, k=k, **kwargs)
            info = self._read_info(wait_s, time.perf_counter() - t0)
            version = self._version
        self._count_read()
        self._lock_wait.observe(wait_s, mode="read")
        return ids, dists, version, info

    def batch_query_traced(
        self, queries: np.ndarray, k: int = 1, **kwargs
    ) -> Tuple[np.ndarray, np.ndarray, int, dict]:
        """Traced variant of :meth:`batch_query_versioned`."""
        with self._lock.read_locked_timed() as wait_s:
            t0 = time.perf_counter()
            ids, dists = self._index.batch_query(queries, k=k, **kwargs)
            info = self._read_info(wait_s, time.perf_counter() - t0)
            version = self._version
        self._count_read()
        self._lock_wait.observe(wait_s, mode="read")
        return ids, dists, version, info

    def _read_info(self, wait_s: float, query_s: float) -> dict:
        """Called under the read lock: lift stage timings out of the
        wrapped index's ``last_stats`` while they are still ours."""
        info = {"lock_wait_s": wait_s, "query_s": query_s}
        stats = getattr(self._index, "last_stats", None)
        if stats:
            for key in _STAGE_KEYS:
                val = stats.get(key)
                if val is not None:
                    info[key] = float(val)
        return info

    # ------------------------------------------------------------------
    # Writes (exclusive lock)
    # ------------------------------------------------------------------

    def fit(self, data: np.ndarray) -> "ConcurrentIndex":
        with self._lock.write_locked():
            self._index.fit(data)
            self._bump_version()
        return self

    def insert(self, vector: np.ndarray) -> int:
        handle, _ = self.insert_versioned(vector)
        return handle

    def insert_versioned(self, vector: np.ndarray) -> Tuple[int, int]:
        """``(handle, version)`` — the version this insert produced."""
        self._require_dynamic("insert")
        with self._lock.write_locked_timed() as wait_s:
            handle = self._index.insert(vector)
            version = self._bump_version()
        self._lock_wait.observe(wait_s, mode="write")
        return int(handle), version

    def delete(self, handle: int) -> None:
        self.delete_versioned(handle)

    def delete_versioned(self, handle: int) -> int:
        """Delete ``handle``; returns the version this delete produced."""
        self._require_dynamic("delete")
        with self._lock.write_locked_timed() as wait_s:
            self._index.delete(handle)
            version = self._bump_version()
        self._lock_wait.observe(wait_s, mode="write")
        return version

    def apply_exclusive(self, fn) -> Tuple[object, int]:
        """Run ``fn(inner_index)`` under the exclusive write lock.

        Escape hatch for writes that are not plain insert/delete/fit —
        e.g. a replica applying a batch of shipped WAL records in one
        critical section.  The version is bumped exactly once (so
        version-keyed caches drop entries that predate the batch) and
        ``(fn's result, new version)`` is returned.
        """
        with self._lock.write_locked():
            result = fn(self._index)
            version = self._bump_version()
        return result, version

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Exact aggregate counters: completed reads, writes, version."""
        with self._stats_lock:
            return {
                "reads": self._reads,
                "writes": self._writes,
                "version": self._version,
            }

    def _require_dynamic(self, op: str) -> None:
        if not hasattr(self._index, op):
            raise TypeError(
                f"wrapped index {type(self._index).__name__} does not "
                f"support {op}; wrap a dynamic index (e.g. DynamicLCCSLSH)"
            )

    def _bump_version(self) -> int:
        """Called with the write lock held."""
        with self._stats_lock:
            self._version += 1
            self._writes += 1
            return self._version

    def _count_read(self) -> None:
        with self._stats_lock:
            self._reads += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConcurrentIndex({self._index!r}, version={self._version})"

"""Asyncio TCP front door: the network server for the serving stack.

Speaks the same JSON-lines protocol as ``cli serve``'s stdin mode —
one JSON object per line, newline-framed, responses in request order
per connection:

=============================  =========================================
request                        response
=============================  =========================================
``{"query": [..], "k": 10,     ``{"ids": [..], "dists": [..]}``
`` ...kwargs}``                (kwargs e.g. ``num_candidates``; a
                               ``min_version`` key makes the read
                               wait for that WAL seq — read-your-writes)
``{"insert": [..]}``           ``{"handle": h, "version": v, "seq": s}``
``{"delete": h}``              ``{"deleted": h, "version": v, "seq": s}``
``{"stats": true}``            ``{"stats": {..}}`` (service counters +
                               the server's request/latency metrics)
``{"ping": true}``             ``{"pong": true}``
anything else / bad JSON       ``{"error": "..."}``
over ``--max-inflight``        ``{"error": "overloaded", "shed": true}``
=============================  =========================================

Architecture (the "millions of users" shape from ROADMAP item 1):

* **Per worker** every connection feeds one shared
  :class:`~repro.serve.service.ANNService`, so concurrent queries from
  *different sockets* coalesce into micro-batches exactly as threads
  did in PR 3 — cross-connection batching for free.  Within one
  connection requests may be pipelined; queries execute concurrently
  and responses are written strictly in request order, while
  ``insert``/``delete``/``stats`` act as a per-connection barrier
  (they run only after every prior request on that connection has
  answered), preserving the stdin mode's serial semantics.
* **Admission control**: each worker bounds its in-flight requests
  (``max_inflight``).  Beyond the bound, requests are *shed* with an
  explicit ``{"error": "overloaded", "shed": true}`` response instead
  of buffering without bound — clients see overload immediately and
  can back off, and p99 latency stays bounded under overload.
* **Prefork workers** (``workers > 1``): N worker processes each open
  the same bundle with ``load_index(mmap=True)`` (PR 5 makes a worker
  ~11 MB private) and bind their own listening socket with
  ``SO_REUSEPORT`` so the kernel load-balances connections across
  them.  Writes route to the single **primary** process (the prefork
  parent) holding the :class:`~repro.serve.durability.DurableIndex` /
  WAL; workers are log-shipping replicas (PR 4) that tail the WAL and
  serve ``min_version`` read-your-writes.  Without ``--wal-dir`` the
  workers are read-only.
* **Graceful drain**: SIGTERM (or SIGINT) stops accepting new
  connections; existing connections keep full service until they close
  (or ``drain_timeout`` elapses), so every in-flight request is
  answered before exit.
* **Metrics**: per-op request counters and p50/p95/p99 latency
  histograms (:mod:`repro.serve.metrics`), returned under
  ``stats.server`` in every ``stats`` response.

Programmatic entry points: :class:`AsyncANNServer` (asyncio-native),
:class:`ThreadedServer` (background-thread embedding, used by tests),
and :func:`run_server` (the blocking CLI driver handling both the
single-process and prefork modes).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
import socket
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs.export import SnapshotSpool, merge_snapshots, render_prometheus
from repro.obs.metrics import ServerMetrics, get_registry
from repro.obs.tracing import Tracer, get_tracer
from repro.serve.client import AsyncServeClient

__all__ = [
    "AsyncANNServer",
    "PrimaryBackend",
    "ReplicaBackend",
    "ServerConfig",
    "ServiceBackend",
    "ThreadedServer",
    "run_server",
]

#: shed response emitted by admission control (copied per response)
SHED_RESPONSE = {"error": "overloaded", "shed": True}

#: request-line size bound (mirrors the client's response bound)
_LINE_LIMIT = 32 << 20

DEFAULT_MAX_INFLIGHT = 64


def _json_default(value):
    """Last-resort JSON coercion for numpy scalars inside stats dicts."""
    item = getattr(value, "item", None)
    if item is not None:
        return item()
    return str(value)


def _error_response(exc: BaseException) -> dict:
    return {"error": f"{type(exc).__name__}: {exc}"}


# ----------------------------------------------------------------------
# Backends: what the protocol verbs do in each process role
# ----------------------------------------------------------------------

class _QueryParser:
    """Shared request->(q, k, min_version, kwargs) unpacking."""

    def __init__(self, default_kwargs: Optional[dict], default_k: int):
        self._default_kwargs = dict(default_kwargs or {})
        self._default_k = int(default_k)

    def parse_query(self, request: dict):
        payload = dict(request)
        q = np.asarray(payload.pop("query"), dtype=np.float64)
        k = int(payload.pop("k", self._default_k))
        min_version = payload.pop("min_version", None)
        if min_version is not None:
            min_version = int(min_version)
        kwargs = {**self._default_kwargs, **payload}
        return q, k, min_version, kwargs


class ServiceBackend(_QueryParser):
    """Single-process backend: one :class:`ANNService` does everything.

    Queries go through the service's cache + micro-batcher (its
    ``concurrent.futures`` future is bridged onto the event loop);
    writes and stats run on a small thread pool so a WAL fsync never
    blocks the loop.  With ``replica_set`` reads fan out to in-process
    log-shipping replicas exactly like stdin mode's ``--replicas``.
    """

    def __init__(
        self,
        service,
        default_kwargs: Optional[dict] = None,
        default_k: int = 10,
        durable=None,
        replica_set=None,
    ):
        super().__init__(default_kwargs, default_k)
        self._service = service
        self._durable = durable
        self._replica_set = replica_set
        workers = 2
        if replica_set is not None:
            workers = max(2, len(replica_set.replicas))
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="serve-backend"
        )

    async def query(self, request: dict, trace=None) -> dict:
        q, k, min_version, kwargs = self.parse_query(request)
        loop = asyncio.get_running_loop()
        if self._replica_set is not None:
            t0 = time.perf_counter()
            ids, dists = await loop.run_in_executor(
                self._pool,
                lambda: self._replica_set.query(
                    q, k=k, min_version=min_version, **kwargs
                ),
            )
            if trace is not None:
                trace.add_span("replica.query", t0, time.perf_counter())
        else:
            # Local reads always reflect every acknowledged write, so a
            # min_version from one of our own write responses is
            # trivially satisfied; anything beyond the log is an error.
            if (
                min_version is not None
                and self._durable is not None
                and self._durable.applied_seq < min_version
            ):
                raise RuntimeError(
                    f"min_version={min_version} is ahead of the log "
                    f"(applied_seq={self._durable.applied_seq})"
                )
            fut = self._service.query_async(q, k=k, trace=trace, **kwargs)
            ids, dists = await asyncio.wrap_future(fut)
        return {"ids": ids.tolist(), "dists": dists.tolist()}

    async def insert(self, request: dict, trace=None) -> dict:
        vector = np.asarray(request["insert"], dtype=np.float64)
        loop = asyncio.get_running_loop()
        handle = await loop.run_in_executor(
            self._pool, lambda: self._service.insert(vector, trace=trace)
        )
        response = {"handle": int(handle), "version": self._service.version}
        if self._durable is not None:
            response["seq"] = int(self._durable.applied_seq)
        return response

    async def delete(self, request: dict, trace=None) -> dict:
        handle = int(request["delete"])
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            self._pool, lambda: self._service.delete(handle, trace=trace)
        )
        response = {"deleted": handle, "version": self._service.version}
        if self._durable is not None:
            response["seq"] = int(self._durable.applied_seq)
        return response

    async def stats(self, request: dict) -> dict:
        loop = asyncio.get_running_loop()
        stats = await loop.run_in_executor(self._pool, self._service.stats)
        if self._replica_set is not None:
            stats.update(self._replica_set.stats())
        stats["role"] = "single"
        stats["pid"] = os.getpid()
        if self._durable is not None:
            stats["applied_seq"] = int(self._durable.applied_seq)
        return {"stats": stats}

    async def aclose(self) -> None:
        self._pool.shutdown(wait=False)


class ReplicaBackend(_QueryParser):
    """Prefork-worker backend: mmap replica reads, forwarded writes.

    Reads go through the worker's own :class:`ANNService` (so
    cross-connection micro-batching still applies).  With a WAL the
    worker tails the shared log on a background task and applies new
    records under the :class:`ConcurrentIndex` write lock
    (``apply_exclusive``), bumping the version so cached results from
    before the catch-up become unreachable.  Writes are forwarded over
    a persistent connection to the primary process; ``min_version``
    reads wait (bounded) for the log to reach that seq.
    """

    def __init__(
        self,
        service,
        wal_dir: Optional[str] = None,
        applied_seq: Optional[int] = None,
        primary_addr: Optional[Tuple[str, int]] = None,
        default_kwargs: Optional[dict] = None,
        default_k: int = 10,
        tail_interval_s: float = 0.05,
        stale_timeout_s: float = 2.0,
    ):
        super().__init__(default_kwargs, default_k)
        self._service = service
        self._reader = None
        if wal_dir is not None:
            from repro.serve.durability.wal import WALReader

            self._reader = WALReader(wal_dir, start_seq=int(applied_seq or 0))
        self.applied_seq = None if applied_seq is None else int(applied_seq)
        self._primary_addr = primary_addr
        self._primary: Optional[AsyncServeClient] = None
        self._primary_lock: Optional[asyncio.Lock] = None
        self._tail_interval = float(tail_interval_s)
        self._stale_timeout = float(stale_timeout_s)
        self._tail_lock = threading.Lock()
        self._tail_task: Optional[asyncio.Task] = None
        self._pool = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="replica-backend"
        )

    def start(self, loop: asyncio.AbstractEventLoop) -> None:
        """Launch the background WAL tailing task (if there is a WAL)."""
        if self._reader is not None and self._tail_task is None:
            self._tail_task = loop.create_task(self._tail_loop())

    async def _tail_loop(self) -> None:
        while True:
            await asyncio.sleep(self._tail_interval)
            try:
                await self._catch_up()
            except Exception:  # transient log race; next tick retries
                continue

    async def _catch_up(self) -> None:
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(self._pool, self._poll_apply)

    def _poll_apply(self) -> None:
        from repro.serve.durability.wal import apply_op

        with self._tail_lock:
            ops = self._reader.poll()
            if not ops:
                return

            def apply_all(index):
                for _, op in ops:
                    apply_op(index, op)

            # One exclusive critical section for the whole batch: one
            # version bump, so version-keyed cache entries from before
            # the catch-up are unreachable afterwards.
            self._service.index.apply_exclusive(apply_all)
            self.applied_seq = int(ops[-1][0]) + 1

    async def _ensure_seq(self, min_version: int) -> None:
        if self.applied_seq is not None and self.applied_seq >= min_version:
            return
        if self._reader is None:
            raise RuntimeError(
                "min_version requires --wal-dir (read-only worker has no "
                "log to wait on)"
            )
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self._stale_timeout
        while True:
            await self._catch_up()
            if self.applied_seq is not None and self.applied_seq >= min_version:
                return
            if loop.time() >= deadline:
                from repro.serve.durability import StaleReadError

                raise StaleReadError(
                    f"worker replica is at seq {self.applied_seq}; the log "
                    f"does not (yet) reach min_version={min_version}"
                )
            await asyncio.sleep(0.005)

    async def query(self, request: dict, trace=None) -> dict:
        q, k, min_version, kwargs = self.parse_query(request)
        if min_version is not None:
            t0 = time.perf_counter()
            await self._ensure_seq(min_version)
            if trace is not None:
                trace.add_span(
                    "replica.catchup", t0, time.perf_counter(),
                    min_version=min_version,
                )
        fut = self._service.query_async(q, k=k, trace=trace, **kwargs)
        ids, dists = await asyncio.wrap_future(fut)
        return {"ids": ids.tolist(), "dists": dists.tolist()}

    async def insert(self, request: dict, trace=None) -> dict:
        return await self._forward(request, trace=trace)

    async def delete(self, request: dict, trace=None) -> dict:
        return await self._forward(request, trace=trace)

    async def _forward(self, request: dict, trace=None) -> dict:
        if self._primary_addr is None:
            return {
                "error": "read-only worker: writes need --wal-dir (the "
                "primary process applies them)"
            }
        if self._primary_lock is None:
            self._primary_lock = asyncio.Lock()
        t0 = time.perf_counter()
        async with self._primary_lock:
            last_exc: Optional[BaseException] = None
            for attempt in range(2):
                try:
                    if self._primary is None:
                        self._primary = await AsyncServeClient.connect(
                            *self._primary_addr
                        )
                    response = await self._primary.request(request)
                    if trace is not None:
                        trace.add_span(
                            "forward.primary", t0, time.perf_counter()
                        )
                except (ConnectionError, OSError) as exc:
                    stale, self._primary = self._primary, None
                    if stale is not None:
                        with contextlib.suppress(Exception):
                            await stale.close()
                    last_exc = exc
                    continue
                # Pull the write home eagerly so even min_version-less
                # follow-up reads usually see it without a tail tick.
                if "error" not in response and self._reader is not None:
                    with contextlib.suppress(Exception):
                        await self._catch_up()
                return response
            raise ConnectionError(
                f"cannot reach primary at {self._primary_addr}: {last_exc}"
            )

    async def stats(self, request: dict) -> dict:
        loop = asyncio.get_running_loop()
        stats = await loop.run_in_executor(self._pool, self._service.stats)
        stats["role"] = "replica" if self._reader is not None else "reader"
        stats["pid"] = os.getpid()
        if self.applied_seq is not None:
            stats["applied_seq"] = int(self.applied_seq)
        return {"stats": stats}

    async def aclose(self) -> None:
        if self._tail_task is not None:
            self._tail_task.cancel()
            with contextlib.suppress(BaseException):
                await self._tail_task
            self._tail_task = None
        if self._primary is not None:
            with contextlib.suppress(Exception):
                await self._primary.close()
            self._primary = None
        self._pool.shutdown(wait=False)


class PrimaryBackend:
    """Write-only backend for the prefork primary's internal socket.

    Workers forward ``insert``/``delete`` here; a one-thread executor
    serializes them into the :class:`DurableIndex` (log-then-apply,
    fsync per policy) without blocking the loop.  ``seq`` in the
    response is the WAL position the write produced — clients hand it
    back as ``min_version`` for read-your-writes on any worker.
    """

    def __init__(self, durable):
        self._durable = durable
        self._pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="primary-write"
        )
        get_registry().register_collector("primary", self._metric_families)

    def _metric_families(self) -> dict:
        from repro.serve.service import families_from_stats

        stats = {
            f"wal_{k}": v for k, v in self._durable.wal_stats().items()
        }
        tier = getattr(self._durable.inner, "tier_stats", None)
        if callable(tier):
            stats.update({f"tier_{k}": v for k, v in tier().items()})
        return families_from_stats(stats)

    async def query(self, request: dict, trace=None) -> dict:
        return {"error": "primary serves writes only; query a worker port"}

    def _traced_write(self, fn, trace):
        """Run ``fn`` with ``trace`` attached on the executor thread so
        the WAL's append/fsync spans nest under the request."""
        if trace is None:
            return fn
        tracer = get_tracer()

        def work():
            with tracer.attach(trace.root):
                with tracer.span("index.write"):
                    return fn()

        return work

    async def insert(self, request: dict, trace=None) -> dict:
        vector = np.asarray(request["insert"], dtype=np.float64)
        loop = asyncio.get_running_loop()
        handle = await loop.run_in_executor(
            self._pool,
            self._traced_write(lambda: self._durable.insert(vector), trace),
        )
        seq = int(self._durable.applied_seq)
        return {"handle": int(handle), "version": seq, "seq": seq}

    async def delete(self, request: dict, trace=None) -> dict:
        handle = int(request["delete"])
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            self._pool,
            self._traced_write(lambda: self._durable.delete(handle), trace),
        )
        seq = int(self._durable.applied_seq)
        return {"deleted": handle, "version": seq, "seq": seq}

    async def stats(self, request: dict) -> dict:
        stats = {
            "role": "primary",
            "pid": os.getpid(),
            "applied_seq": int(self._durable.applied_seq),
        }
        stats.update(
            {f"wal_{k}": v for k, v in self._durable.wal_stats().items()}
        )
        tier = getattr(self._durable.inner, "tier_stats", None)
        if callable(tier):
            stats.update({f"tier_{k}": v for k, v in tier().items()})
        return {"stats": stats}

    async def aclose(self) -> None:
        self._pool.shutdown(wait=False)


# ----------------------------------------------------------------------
# The server
# ----------------------------------------------------------------------

def _consume_exception(task: asyncio.Task) -> None:
    """Mark a task's exception retrieved (the writer also awaits it)."""
    if not task.cancelled():
        task.exception()


class AsyncANNServer:
    """JSON-lines TCP server: admission control, metrics, graceful drain.

    Protocol handling, per-connection ordering, shedding and latency
    accounting live here; what the verbs *do* is delegated to a backend
    (:class:`ServiceBackend` / :class:`ReplicaBackend` /
    :class:`PrimaryBackend`).

    Args:
        backend: object with async ``query``/``insert``/``delete``/
            ``stats`` methods taking the raw request dict.
        host / port: listening address (``port=0`` picks one), or pass
            a pre-bound ``sock`` (the prefork workers' SO_REUSEPORT
            sockets come in this way).
        max_inflight: admission bound — requests admitted but not yet
            answered; beyond it new requests get the shed response.
        drain_timeout: after ``begin_drain``, how long existing
            connections may keep the server alive before force-close.
    """

    def __init__(
        self,
        backend,
        host: str = "127.0.0.1",
        port: int = 0,
        sock: Optional[socket.socket] = None,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        drain_timeout: float = 10.0,
        metrics: Optional[ServerMetrics] = None,
        name: str = "server",
        tracer: Optional[Tracer] = None,
        obs_spool: Optional[SnapshotSpool] = None,
    ):
        if max_inflight <= 0:
            raise ValueError("max_inflight must be positive")
        self._backend = backend
        self._host = host
        self._port = port
        self._sock = sock
        self._max_inflight = int(max_inflight)
        self._drain_timeout = float(drain_timeout)
        self.metrics = metrics or ServerMetrics()
        self.name = name
        #: request tracer (default: the process-wide one; sample=0 means
        #: the fast path never allocates a trace)
        self.tracer = tracer or get_tracer()
        #: prefork fan-in spool: when set, this server periodically
        #: dumps its registry snapshot and ``metrics`` requests merge
        #: every peer's latest dump
        self._spool = obs_spool
        self._spool_task: Optional[asyncio.Task] = None
        self._inflight = 0
        self._conn_tasks: set = set()
        self._draining = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._closed: Optional[asyncio.Event] = None
        # Publish this server's request metrics into the unified
        # registry (keyed by role name so a prefork parent's primary
        # server and a test's transient servers replace cleanly).
        get_registry().register_collector(
            f"server-{self.name}", self.metrics.families
        )
        get_registry().register_collector(
            f"tracer-{self.name}", self._tracer_families
        )

    def _tracer_families(self) -> dict:
        stats = self.tracer.stats()
        return {
            "repro_trace_sampled_total": {
                "kind": "counter",
                "help": "requests that carried a sampled trace",
                "samples": [
                    {"labels": {}, "value": stats["sampled_total"]}
                ],
            },
            "repro_trace_slow_total": {
                "kind": "counter",
                "help": "requests that entered the slow-query log",
                "samples": [{"labels": {}, "value": stats["slow_total"]}],
            },
        }

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> None:
        self._closed = asyncio.Event()
        if self._sock is not None:
            self._server = await asyncio.start_server(
                self._handle, sock=self._sock, limit=_LINE_LIMIT
            )
        else:
            self._server = await asyncio.start_server(
                self._handle, self._host, self._port, limit=_LINE_LIMIT
            )
        if self._spool is not None:
            self._spool_task = asyncio.ensure_future(self._spool_loop())

    async def _spool_loop(self) -> None:
        """Periodically dump this process's snapshot for peer fan-in."""
        while True:
            with contextlib.suppress(Exception):
                self._spool.dump(get_registry().snapshot())
            await asyncio.sleep(1.0)

    @property
    def port(self) -> int:
        return self._server.sockets[0].getsockname()[1]

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Stop accepting; let live connections finish, then close.

        Callable from the event-loop thread (signal handlers land
        here).  Idempotent.
        """
        if self._draining:
            return
        self._draining = True
        self._server.close()
        asyncio.ensure_future(self._finish_drain())

    async def _finish_drain(self) -> None:
        await self._server.wait_closed()
        if self._conn_tasks:
            _, pending = await asyncio.wait(
                set(self._conn_tasks), timeout=self._drain_timeout
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.wait(pending, timeout=1.0)
        if self._spool_task is not None:
            self._spool_task.cancel()
            with contextlib.suppress(BaseException):
                await self._spool_task
            # One last dump so peers still see this process's final
            # counters while the file ages out.
            with contextlib.suppress(Exception):
                self._spool.dump(get_registry().snapshot())
        self._closed.set()

    async def wait_closed(self) -> None:
        """Resolve once a drain has fully completed."""
        await self._closed.wait()

    def server_stats(self) -> dict:
        snap = self.metrics.snapshot()
        snap["inflight"] = self._inflight
        snap["max_inflight"] = self._max_inflight
        snap["draining"] = self._draining
        snap["tracer"] = self.tracer.stats()
        return snap

    # -- observability ops --------------------------------------------

    def _trace_response(self, request: dict) -> dict:
        """Handle ``{"trace": ...}``: recent sampled traces + slow log.

        ``{"trace": N}`` bounds both lists to N entries; ``true`` uses
        the retention bounds.
        """
        arg = request.get("trace")
        n = int(arg) if isinstance(arg, (int, float)) and arg is not True else None
        return {
            "traces": self.tracer.recent(n),
            "slow": self.tracer.slow_log(n),
            "tracer": self.tracer.stats(),
        }

    def _metrics_response(self, request: dict) -> dict:
        """Handle ``{"metrics": ...}``: the merged registry snapshot.

        With a spool (prefork), this worker dumps its own snapshot and
        merges every peer's latest dump, so one scrape on any worker
        covers the whole fleet.  ``{"metrics": "prometheus"}`` returns
        the text exposition under ``"prometheus"``; anything else
        returns the JSON snapshot tree under ``"metrics"``.
        """
        local = get_registry().snapshot()
        if self._spool is not None:
            with contextlib.suppress(Exception):
                self._spool.dump(local)
            snapshots = self._spool.read_all()
            # Peers' files plus our in-memory snapshot; drop our own
            # (possibly stale) file to avoid double counting.
            pid = os.getpid()
            snapshots = [s for s in snapshots if s.get("pid") != pid]
            snapshots.append(local)
        else:
            snapshots = [local]
        merged = merge_snapshots(snapshots)
        if request.get("metrics") == "prometheus":
            return {"prometheus": render_prometheus(merged)}
        return {"metrics": merged}

    # -- connection handling ------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self.metrics.count_connection()
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            pass  # drain timeout force-close
        except Exception:
            pass  # one broken connection never kills the server
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _serve_connection(self, reader, writer) -> None:
        out_q: asyncio.Queue = asyncio.Queue()
        writer_task = asyncio.create_task(self._write_loop(writer, out_q))
        try:
            await self._read_loop(reader, out_q)
            out_q.put_nowait(None)
            await writer_task
        except BaseException:
            writer_task.cancel()
            with contextlib.suppress(BaseException):
                await writer_task
            raise

    async def _read_loop(self, reader, out_q: asyncio.Queue) -> None:
        while True:
            try:
                line = await reader.readline()
            except ValueError as exc:  # request line over the limit
                self.metrics.count_bad()
                out_q.put_nowait(("dict", _error_response(exc)))
                return
            if not line:
                return  # client closed
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ValueError("request must be a JSON object")
            except ValueError as exc:
                self.metrics.count_bad()
                out_q.put_nowait(("dict", {"error": f"bad request: {exc}"}))
                continue
            if "ping" in request:
                out_q.put_nowait(("dict", {"pong": True}))
                continue
            if "query" in request:
                op = "query"
            elif "insert" in request:
                op = "insert"
            elif "delete" in request:
                op = "delete"
            elif "stats" in request:
                op = "stats"
            elif "trace" in request:
                op = "trace"
            elif "metrics" in request:
                op = "metrics"
            else:
                self.metrics.count_bad()
                out_q.put_nowait(
                    ("dict", {
                        "error": "unknown request (want query/insert/"
                        "delete/stats/trace/metrics)"
                    })
                )
                continue
            # Admission control: past the bound, shed loudly instead of
            # queueing without bound.  The shed response keeps its slot
            # in the per-connection response order.
            if self._inflight >= self._max_inflight:
                self.metrics.count_shed(op)
                out_q.put_nowait(("dict", dict(SHED_RESPONSE)))
                continue
            self._inflight += 1
            if op == "query":
                # Dispatch immediately: concurrent queries from every
                # connection meet inside the service's micro-batcher.
                # start_trace is None unless this request is sampled.
                started = time.perf_counter()
                trace = self.tracer.start_trace(op, op=op)
                if trace is not None:
                    # Root actually began at parse; re-pin its start so
                    # child spans can never precede it.
                    trace.root.start_s = started
                    trace.add_span("admission", started, time.perf_counter())
                qtask = asyncio.create_task(
                    self._backend.query(request, trace=trace)
                )
                qtask.add_done_callback(_consume_exception)
                out_q.put_nowait(("task", op, qtask, started, trace))
            else:
                # Writes/stats defer to the write loop: by the time the
                # loop reaches this item, every earlier request on the
                # connection has answered — the stdin barrier semantics.
                out_q.put_nowait(("deferred", op, request))

    async def _write_loop(self, writer, out_q: asyncio.Queue) -> None:
        broken = False
        while True:
            item = await out_q.get()
            if item is None:
                return
            if item[0] == "dict":
                response = item[1]
            elif item[0] == "task":
                _, op, qtask, started, trace = item
                try:
                    response = await qtask
                except Exception as exc:
                    response = _error_response(exc)
                elapsed = time.perf_counter() - started
                error = "error" in response
                if trace is not None:
                    trace.root.annotate(error=error)
                    trace.finish()
                self.metrics.observe(op, elapsed, error=error)
                self.tracer.observe_request(
                    op, elapsed, trace=trace, error=error
                )
                self._inflight -= 1
            else:
                _, op, request = item
                started = time.perf_counter()
                trace = None
                if op in ("insert", "delete"):
                    trace = self.tracer.start_trace(op, op=op)
                try:
                    if op == "trace":
                        response = self._trace_response(request)
                    elif op == "metrics":
                        response = self._metrics_response(request)
                    elif trace is not None:
                        handler = getattr(self._backend, op)
                        response = await handler(request, trace=trace)
                    else:
                        handler = getattr(self._backend, op)
                        response = await handler(request)
                except Exception as exc:
                    response = _error_response(exc)
                if op == "stats" and isinstance(response.get("stats"), dict):
                    response["stats"]["server"] = self.server_stats()
                elapsed = time.perf_counter() - started
                error = "error" in response
                if trace is not None:
                    trace.root.annotate(error=error)
                    trace.finish()
                self.metrics.observe(op, elapsed, error=error)
                self.tracer.observe_request(
                    op, elapsed, trace=trace, error=error
                )
                self._inflight -= 1
            if broken:
                continue  # keep accounting; peer is gone
            try:
                writer.write(
                    json.dumps(response, default=_json_default).encode("utf-8")
                    + b"\n"
                )
                await writer.drain()
            except (ConnectionError, OSError):
                broken = True


class ThreadedServer:
    """Run an :class:`AsyncANNServer` on a background thread.

    For tests and embedding: the caller stays synchronous, the server
    gets its own event loop.  ``stop()`` performs a graceful drain.

    >>> with ThreadedServer(ServiceBackend(service)) as ts:
    ...     client = ServeClient("127.0.0.1", ts.port)
    """

    def __init__(self, backend, host: str = "127.0.0.1", port: int = 0,
                 **server_kwargs):
        self._backend = backend
        self._host = host
        self._port = port
        self._kwargs = server_kwargs
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._error: Optional[BaseException] = None
        self.server: Optional[AsyncANNServer] = None
        self.port: Optional[int] = None

    def start(self) -> "ThreadedServer":
        started = threading.Event()

        def run() -> None:
            async def main() -> None:
                server = AsyncANNServer(
                    self._backend, host=self._host, port=self._port,
                    **self._kwargs,
                )
                await server.start()
                self.server = server
                self.port = server.port
                self._loop = asyncio.get_running_loop()
                start = getattr(self._backend, "start", None)
                if start is not None:
                    start(self._loop)
                started.set()
                await server.wait_closed()
                aclose = getattr(self._backend, "aclose", None)
                if aclose is not None:
                    await aclose()

            try:
                asyncio.run(main())
            except BaseException as exc:  # surface to the caller
                self._error = exc
                started.set()

        self._thread = threading.Thread(
            target=run, name="threaded-ann-server", daemon=True
        )
        self._thread.start()
        started.wait(timeout=30)
        if self._error is not None:
            raise RuntimeError("server failed to start") from self._error
        if self.server is None:
            raise RuntimeError("server did not start within 30s")
        return self

    def drain(self) -> None:
        """Begin a graceful drain without waiting for exit."""
        if self._loop is not None and self.server is not None:
            self._loop.call_soon_threadsafe(self.server.begin_drain)

    def stop(self, timeout: float = 30.0) -> None:
        self.drain()
        if self._thread is not None:
            self._thread.join(timeout)
            if self._thread.is_alive():
                raise RuntimeError("server thread did not stop")

    def __enter__(self) -> "ThreadedServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


# ----------------------------------------------------------------------
# CLI driver: single-process and prefork modes
# ----------------------------------------------------------------------

@dataclass
class ServerConfig:
    """Everything ``cli serve --tcp`` hands to :func:`run_server`."""

    bundle: str
    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 1
    max_inflight: int = DEFAULT_MAX_INFLIGHT
    drain_timeout: float = 10.0
    k: int = 10
    cache_size: int = 1024
    batch_window_ms: float = 2.0
    max_batch: int = 64
    mmap: bool = False
    wal_dir: Optional[str] = None
    fsync: str = "always"
    snapshot_every: int = 500
    snapshot_keep: int = 3
    replicas: int = 0
    tail_interval_ms: float = 50.0
    extra_manifest_kwargs: dict = field(default_factory=dict)
    #: trace 1 in N requests (0 disables tracing; 1 traces everything)
    trace_sample: int = 0
    #: slow-query threshold (ms): requests at least this slow always
    #: enter the bounded slow-query log, sampled or not
    slow_ms: float = 100.0
    #: where to JSON-lines-dump the slow-query log on drain (optional)
    slow_log_path: Optional[str] = None
    #: shared directory for prefork metric-snapshot fan-in; derived
    #: automatically in prefork mode when unset
    obs_dir: Optional[str] = None


def _configure_obs(config: "ServerConfig") -> Optional[SnapshotSpool]:
    """Apply the config's tracing knobs to the process tracer and open
    the snapshot spool (when fan-in is wanted)."""
    get_tracer().configure(
        sample=config.trace_sample,
        slow_threshold_s=config.slow_ms / 1e3,
    )
    if config.obs_dir:
        return SnapshotSpool(config.obs_dir)
    return None


def _dump_slow_log(config: "ServerConfig") -> None:
    if not config.slow_log_path:
        return
    try:
        n = get_tracer().dump_slow_log(config.slow_log_path)
        _log(f"slow-query log: {n} entries -> {config.slow_log_path}")
    except OSError as exc:  # pragma: no cover - disk full etc.
        _log(f"slow-query log dump failed: {exc}")


def _default_query_kwargs(bundle: str) -> dict:
    from repro.serve.persistence import read_manifest

    manifest = read_manifest(bundle)
    return dict(manifest.get("extra", {}).get("query_kwargs", {}))


def _open_primary_index(config: ServerConfig):
    """(index, recovered?) for the process that owns writes.

    Existing WAL state supersedes the bundle payload, exactly like
    stdin mode: a restart resumes from the acknowledged truth.
    """
    from repro.serve.durability import list_snapshots, recover
    from repro.serve.durability.wal import list_segments
    from repro.serve.persistence import load_index

    if config.wal_dir and os.path.isdir(config.wal_dir) and (
        list_segments(config.wal_dir) or list_snapshots(config.wal_dir)
    ):
        result = recover(config.wal_dir, mmap=config.mmap)
        return result.index, True
    return load_index(config.bundle, mmap=config.mmap), False


def _wrap_durable(index, config: ServerConfig):
    from repro.serve.durability import DurableIndex, SnapshotManager

    snapshots = SnapshotManager(
        config.wal_dir,
        keep=config.snapshot_keep,
        every_ops=config.snapshot_every if config.snapshot_every > 0 else None,
    )
    return DurableIndex(
        index, config.wal_dir, fsync=config.fsync, snapshots=snapshots
    )


def _log(message: str) -> None:
    print(message, file=sys.stderr, flush=True)


def _make_listen_socket(
    host: str, port: int, reuse_port: bool
) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    if reuse_port:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    sock.bind((host, port))
    return sock


def run_server(config: ServerConfig) -> int:
    """Blocking driver for ``cli serve --tcp``; returns an exit code."""
    if config.workers <= 1:
        return _run_single(config)
    return _run_prefork(config)


# -- single process ----------------------------------------------------

def _run_single(config: ServerConfig) -> int:
    from repro.serve.durability import ReplicaSet
    from repro.serve.service import ANNService

    default_kwargs = _default_query_kwargs(config.bundle)
    obs_spool = _configure_obs(config)
    index, recovered = _open_primary_index(config)
    durable = None
    replica_set = None
    if config.wal_dir:
        durable = _wrap_durable(index, config)
        index = durable
        if recovered:
            _log(f"recovered WAL state: seq={durable.applied_seq}")
        if config.replicas > 0:
            replica_set = ReplicaSet(
                durable, num_replicas=config.replicas, mmap=config.mmap
            )
            replica_set.start_tailing(config.tail_interval_ms / 1e3)
    elif config.replicas > 0:
        _log("--replicas requires --wal-dir (replicas tail the WAL)")
        return 2

    service = ANNService(
        index,
        cache_size=config.cache_size,
        batch_window_ms=config.batch_window_ms,
        max_batch_size=config.max_batch,
    )
    backend = ServiceBackend(
        service,
        default_kwargs=default_kwargs,
        default_k=config.k,
        durable=durable,
        replica_set=replica_set,
    )

    async def main() -> int:
        server = AsyncANNServer(
            backend,
            host=config.host,
            port=config.port,
            max_inflight=config.max_inflight,
            drain_timeout=config.drain_timeout,
            name="single",
            obs_spool=obs_spool,
        )
        await server.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(
                ValueError, NotImplementedError, RuntimeError
            ):
                loop.add_signal_handler(sig, server.begin_drain)
        _log(
            f"listening on {config.host}:{server.port} workers=1 "
            f"max_inflight={config.max_inflight} pid={os.getpid()}"
        )
        await server.wait_closed()
        snap = server.metrics.snapshot()
        _log(
            f"drained: served {snap['requests_total']} requests "
            f"({snap['shed_total']} shed, {snap['errors_total']} errors)"
        )
        await backend.aclose()
        return 0

    try:
        rc = asyncio.run(main())
    finally:
        _dump_slow_log(config)
        service.close()
        if replica_set is not None:
            replica_set.close()
        if durable is not None:
            durable.close()
            _log(f"WAL at {config.wal_dir}: seq={durable.applied_seq}")
    return rc


# -- prefork -----------------------------------------------------------

def _close_inherited(socks: List[Optional[socket.socket]]) -> None:
    for sock in socks:
        if sock is not None:
            with contextlib.suppress(OSError):
                sock.close()


def _worker_entry(
    config: ServerConfig,
    worker_id: int,
    host: str,
    port: int,
    write_port: Optional[int],
    ready,
    shared_sock: Optional[socket.socket],
    inherited: List[Optional[socket.socket]],
) -> None:
    _close_inherited(inherited)
    try:
        asyncio.run(
            _worker_async(
                config, worker_id, host, port, write_port, ready, shared_sock
            )
        )
    except KeyboardInterrupt:  # pragma: no cover - terminal Ctrl-C
        pass


async def _worker_async(
    config: ServerConfig,
    worker_id: int,
    host: str,
    port: int,
    write_port: Optional[int],
    ready,
    shared_sock: Optional[socket.socket],
) -> None:
    from repro.serve.persistence import load_index
    from repro.serve.service import ANNService

    default_kwargs = _default_query_kwargs(config.bundle)
    obs_spool = _configure_obs(config)
    applied_seq = None
    if config.wal_dir:
        from repro.serve.durability import recover

        # Bootstrap as a log-shipping replica: the primary's baseline
        # snapshot (taken before the fork) plus a log-suffix replay.
        # mmap=True keeps the snapshot's arrays one physical copy
        # shared by every worker on the machine.
        result = recover(config.wal_dir, mmap=config.mmap)
        index = result.index
        applied_seq = int(result.applied_seq)
    else:
        index = load_index(config.bundle, mmap=config.mmap)
    service = ANNService(
        index,
        cache_size=config.cache_size,
        batch_window_ms=config.batch_window_ms,
        max_batch_size=config.max_batch,
    )
    backend = ReplicaBackend(
        service,
        wal_dir=config.wal_dir,
        applied_seq=applied_seq,
        primary_addr=(
            None if write_port is None else ("127.0.0.1", write_port)
        ),
        default_kwargs=default_kwargs,
        default_k=config.k,
        tail_interval_s=config.tail_interval_ms / 1e3,
    )
    sock = shared_sock
    if sock is None:
        sock = _make_listen_socket(host, port, reuse_port=True)
    server = AsyncANNServer(
        backend,
        sock=sock,
        max_inflight=config.max_inflight,
        drain_timeout=config.drain_timeout,
        name=f"worker-{worker_id}",
        obs_spool=obs_spool,
    )
    await server.start()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(ValueError, NotImplementedError, RuntimeError):
            loop.add_signal_handler(sig, server.begin_drain)
    backend.start(loop)
    ready.set()
    await server.wait_closed()
    if worker_id == 0:
        # One worker dumps the fleet-local slow log; per-worker files
        # would race over the same path.
        _dump_slow_log(config)
    await backend.aclose()
    service.close()


def _primary_writer_thread(
    write_sock: socket.socket,
    durable,
    stop_event: threading.Event,
    started_event: threading.Event,
    errors: Dict[str, BaseException],
    obs_spool: Optional[SnapshotSpool] = None,
) -> None:
    """The prefork parent's internal write server (its own loop)."""

    async def main() -> None:
        backend = PrimaryBackend(durable)
        server = AsyncANNServer(
            backend,
            sock=write_sock,
            max_inflight=1 << 20,  # workers self-limit; never shed writes
            drain_timeout=5.0,
            name="primary",
            obs_spool=obs_spool,
        )
        await server.start()
        started_event.set()
        while not stop_event.is_set():
            await asyncio.sleep(0.05)
        server.begin_drain()
        await server.wait_closed()
        await backend.aclose()

    try:
        asyncio.run(main())
    except BaseException as exc:  # pragma: no cover - startup failure
        errors["primary"] = exc
        started_event.set()


def _run_prefork(config: ServerConfig) -> int:
    import multiprocessing

    if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX
        _log("--workers > 1 requires a POSIX platform (fork)")
        return 2
    have_reuseport = hasattr(socket, "SO_REUSEPORT")
    _default_query_kwargs(config.bundle)  # validate the bundle early

    # Pick the shared snapshot-spool directory *before* forking so every
    # worker (and the parent's primary write server) fans into one place.
    if not config.obs_dir:
        if config.wal_dir:
            config.obs_dir = os.path.join(config.wal_dir, "obs")
        else:
            config.obs_dir = tempfile.mkdtemp(prefix="repro-obs-")
    obs_spool = _configure_obs(config)

    host, port = config.host, config.port
    placeholder = None
    shared_sock = None
    if have_reuseport:
        if port == 0:
            # Reserve an ephemeral port all workers can bind: a bound,
            # never-listening SO_REUSEPORT socket holds the number
            # without receiving connections.
            placeholder = _make_listen_socket(host, 0, reuse_port=True)
            port = placeholder.getsockname()[1]
    else:  # pragma: no cover - platforms without SO_REUSEPORT
        # Fall back to one listening socket shared by every forked
        # worker (kernel wakes one accepter per connection).
        shared_sock = _make_listen_socket(host, port, reuse_port=False)
        port = shared_sock.getsockname()[1]

    durable = None
    write_sock = None
    write_port = None
    if config.wal_dir:
        index, recovered = _open_primary_index(config)
        durable = _wrap_durable(index, config)
        if recovered:
            _log(f"recovered WAL state: seq={durable.applied_seq}")
        # The baseline snapshot exists now (DurableIndex takes it when
        # wrapping a fitted index over an empty log), so workers forked
        # below can bootstrap from it.
        write_sock = _make_listen_socket("127.0.0.1", 0, reuse_port=False)
        write_port = write_sock.getsockname()[1]

    ctx = multiprocessing.get_context("fork")
    inherited = [placeholder, write_sock]
    ready_events = [ctx.Event() for _ in range(config.workers)]
    procs = []
    for worker_id in range(config.workers):
        proc = ctx.Process(
            target=_worker_entry,
            args=(
                config, worker_id, host, port, write_port,
                ready_events[worker_id], shared_sock, inherited,
            ),
            name=f"ann-worker-{worker_id}",
        )
        proc.start()
        procs.append(proc)
    if shared_sock is not None:  # pragma: no cover - no-SO_REUSEPORT path
        shared_sock.close()  # workers hold their inherited copies

    def _terminate_all() -> None:
        for proc in procs:
            if proc.is_alive():
                with contextlib.suppress(OSError):
                    proc.terminate()  # SIGTERM -> worker graceful drain

    # Primary write server (only with a WAL).
    stop_primary = threading.Event()
    primary_errors: Dict[str, BaseException] = {}
    primary_thread = None
    if durable is not None:
        primary_started = threading.Event()
        primary_thread = threading.Thread(
            target=_primary_writer_thread,
            args=(
                write_sock, durable, stop_primary, primary_started,
                primary_errors, obs_spool,
            ),
            name="ann-primary",
            daemon=True,
        )
        primary_thread.start()
        primary_started.wait(timeout=30)
        if "primary" in primary_errors:
            _log(f"primary write server failed: {primary_errors['primary']}")
            _terminate_all()
            for proc in procs:
                proc.join(timeout=10)
            return 1

    for worker_id, event in enumerate(ready_events):
        if not event.wait(timeout=60):
            _log(f"worker {worker_id} failed to start; aborting")
            _terminate_all()
            for proc in procs:
                proc.join(timeout=10)
            return 1
    roles = "replicas" if config.wal_dir else "read-only"
    _log(
        f"listening on {host}:{port} workers={config.workers} ({roles}) "
        f"max_inflight={config.max_inflight} "
        f"pids={[proc.pid for proc in procs]}"
    )

    # Forward SIGTERM/SIGINT to the workers; they drain gracefully and
    # exit, which unblocks the joins below.
    signal.signal(signal.SIGTERM, lambda *_: _terminate_all())
    signal.signal(signal.SIGINT, lambda *_: _terminate_all())

    rc = 0
    try:
        for proc in procs:
            proc.join()
            if proc.exitcode not in (0, -signal.SIGTERM):
                rc = 1
                _log(f"worker {proc.name} exited with {proc.exitcode}")
    except KeyboardInterrupt:  # pragma: no cover - terminal Ctrl-C
        _terminate_all()
        for proc in procs:
            proc.join(timeout=config.drain_timeout + 5)
    finally:
        stop_primary.set()
        if primary_thread is not None:
            primary_thread.join(timeout=15)
        if durable is not None:
            durable.close()
            _log(f"WAL at {config.wal_dir}: seq={durable.applied_seq}")
        _close_inherited([placeholder, write_sock])
    _log("all workers drained")
    return rc

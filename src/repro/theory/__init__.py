"""Theoretical models: collision probabilities, LCCS length law, Table 1."""

from repro.theory.collision import (
    bit_sampling_collision_probability,
    cauchy_collision_probability,
    cp_collision_probability,
    cp_rho,
    hyperplane_collision_probability,
    minhash_collision_probability,
    rho,
    rp_collision_probability,
)
from repro.theory.complexity import (
    ComplexityRow,
    lccs_lambda_for_alpha,
    lccs_m_for_alpha,
    table1_rows,
)
from repro.theory.recall_model import RecallModel, predicted_recall, suggest_lambda
from repro.theory.lccs_distribution import (
    approx_cdf,
    exact_cdf,
    exact_pmf,
    median_length,
    quantile_length,
    simulate_lccs_lengths,
    theorem51_lambda,
)

__all__ = [
    "ComplexityRow",
    "RecallModel",
    "approx_cdf",
    "bit_sampling_collision_probability",
    "cauchy_collision_probability",
    "cp_collision_probability",
    "cp_rho",
    "exact_cdf",
    "exact_pmf",
    "hyperplane_collision_probability",
    "lccs_lambda_for_alpha",
    "lccs_m_for_alpha",
    "median_length",
    "minhash_collision_probability",
    "quantile_length",
    "rho",
    "rp_collision_probability",
    "predicted_recall",
    "simulate_lccs_lengths",
    "suggest_lambda",
    "table1_rows",
    "theorem51_lambda",
]

"""Analytical recall model for LCCS-LSH parameter tuning.

Combines the two halves of the paper's theory into a practical advisor:

* the LSH family gives the per-position match probability ``p(dist)``
  (paper Eq. 2/4), and
* the LCCS length law ``F_{m,p}`` (paper §5.1) gives the distribution of
  ``|LCCS(H(o), H(q))|`` for a point at distance ``dist``.

A point is returned by a ``lambda``-candidate query iff its LCCS length
ranks in the top ``lambda`` among all points.  Modelling the ranks with
the independence assumption of Theorem 5.1, we can *predict* recall for
a given ``(m, lambda)`` from a sample of NN and background distances,
and invert the prediction to suggest the cheapest ``lambda`` hitting a
recall target.  The benchmark compares predicted vs measured recall
(model-vs-measurement is itself a reproduction artefact of §5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.hashes.base import HashFamily
from repro.theory.lccs_distribution import exact_cdf

__all__ = ["RecallModel", "predicted_recall", "suggest_lambda"]


@dataclass(frozen=True)
class RecallModel:
    """Distributions needed to predict LCCS-LSH recall.

    Attributes:
        m: hash-string length.
        nn_match_probs: per-position match probabilities for the true
            neighbours (one entry per sampled NN distance).
        bg_match_probs: match probabilities for background (non-NN)
            points.
        n_background: how many background points each query competes
            against.
    """

    m: int
    nn_match_probs: np.ndarray
    bg_match_probs: np.ndarray
    n_background: int

    @classmethod
    def from_family(
        cls,
        family: HashFamily,
        nn_distances: Sequence[float],
        background_distances: Sequence[float],
        n_background: int,
        m: Optional[int] = None,
    ) -> "RecallModel":
        """Build the model from sampled distances via the family's p(dist)."""
        nn = np.array(
            [family.collision_probability(float(d)) for d in nn_distances]
        )
        bg = np.array(
            [family.collision_probability(float(d)) for d in background_distances]
        )
        if len(nn) == 0 or len(bg) == 0:
            raise ValueError("need at least one NN and one background distance")
        return cls(
            m=int(m if m is not None else family.m),
            nn_match_probs=nn,
            bg_match_probs=bg,
            n_background=int(n_background),
        )

    # ------------------------------------------------------------------

    def _clip(self, p: float) -> float:
        return float(min(max(p, 1e-6), 1.0 - 1e-6))

    def background_threshold(self, lam: int) -> int:
        """Smallest LCCS length ``x`` such that, in expectation, fewer
        than ``lam`` background points reach length ``> x``.

        The background is a *mixture* over the sampled match
        probabilities (quantised to limit DP evaluations): real datasets
        have a heavy tail of closer-than-average non-NN points (cluster
        members), and a single mean probability underestimates how many
        of them out-rank the true neighbours.
        """
        if lam <= 0:
            raise ValueError("lambda must be positive")
        probs = np.array([self._clip(p) for p in self.bg_match_probs])
        # Quantise to two decimals; keep weights.
        quantised = np.round(probs, 2)
        values, counts = np.unique(quantised, return_counts=True)
        weights = counts / counts.sum()
        for x in range(self.m + 1):
            tail = sum(
                wt * (1.0 - exact_cdf(self.m, self._clip(float(p)), x))
                for p, wt in zip(values, weights)
            )
            if self.n_background * tail < lam:
                return x
        return self.m

    def predicted_recall(self, lam: int) -> float:
        """Probability that a true NN out-ranks the background cutoff.

        A neighbour with match probability ``p1`` is found if its LCCS
        length exceeds the background threshold ``x*`` (the length rank
        at which ``lambda`` candidates are exhausted).
        """
        x_star = self.background_threshold(lam)
        probs = [
            1.0 - exact_cdf(self.m, self._clip(p1), x_star - 1)
            for p1 in self.nn_match_probs
        ]
        return float(np.mean(probs))

    def suggest_lambda(
        self, target_recall: float, max_lambda: Optional[int] = None
    ) -> Optional[int]:
        """Smallest ``lambda`` whose predicted recall meets the target.

        Returns None if the target is unreachable below ``max_lambda``
        (callers should then increase ``m`` instead — the paper's other
        knob).
        """
        if not 0.0 < target_recall <= 1.0:
            raise ValueError("target_recall must be in (0, 1]")
        cap = max_lambda if max_lambda is not None else self.n_background
        lam = 1
        while lam <= cap:
            if self.predicted_recall(lam) >= target_recall:
                return lam
            lam *= 2
        return None


def predicted_recall(
    family: HashFamily,
    nn_distances: Sequence[float],
    background_distances: Sequence[float],
    n_background: int,
    lam: int,
) -> float:
    """One-shot convenience wrapper around :class:`RecallModel`."""
    model = RecallModel.from_family(
        family, nn_distances, background_distances, n_background
    )
    return model.predicted_recall(lam)


def suggest_lambda(
    family: HashFamily,
    nn_distances: Sequence[float],
    background_distances: Sequence[float],
    n_background: int,
    target_recall: float,
) -> Optional[int]:
    """One-shot convenience wrapper around :class:`RecallModel`."""
    model = RecallModel.from_family(
        family, nn_distances, background_distances, n_background
    )
    return model.suggest_lambda(target_recall)

"""Analytical space/time complexity models (paper Table 1).

Table 1 of the paper compares E2LSH, C2LSH, and LCCS-LSH under three
settings of the knob ``alpha`` that controls the hash-string length
``m = O(n^(alpha * rho))``.  These models return *estimated operation
counts* (up to constant factors) so the benchmark can print the table and
check empirical scaling against it.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ComplexityRow", "table1_rows", "lccs_m_for_alpha", "lccs_lambda_for_alpha"]


@dataclass(frozen=True)
class ComplexityRow:
    """One row of paper Table 1, both symbolic and evaluated."""

    method: str
    alpha: str
    m: str
    lam: str
    space: str
    indexing_time: str
    query_time: str

    def as_tuple(self):
        return (
            self.method,
            self.alpha,
            self.m,
            self.lam,
            self.space,
            self.indexing_time,
            self.query_time,
        )


def table1_rows() -> tuple:
    """The symbolic rows of paper Table 1."""
    return (
        ComplexityRow(
            "E2LSH", "-", "-", "-",
            "O(n^(1+rho))", "O(n^(1+rho) eta(d) log n)",
            "O(n^rho (eta(d) log n + d))",
        ),
        ComplexityRow(
            "C2LSH", "-", "-", "-",
            "O(n log n)", "O(n log n (eta(d) + log n))", "O(n log n)",
        ),
        ComplexityRow(
            "LCCS-LSH", "0", "O(1)", "O(n)",
            "O(n)", "O(n (eta(d) + log n))", "O(n d)",
        ),
        ComplexityRow(
            "LCCS-LSH", "1", "O(n^rho)", "O(n^rho)",
            "O(n^(1+rho))", "O(n^(1+rho) (eta(d) + log n))",
            "O(n^rho (eta(d) + d + log n))",
        ),
        ComplexityRow(
            "LCCS-LSH", "1/(1-rho)", "O(n^(rho/(1-rho)))", "O(1)",
            "O(n^(1/(1-rho)))", "O(n^(1/(1-rho)) (eta(d) + log n))",
            "O(n^(rho/(1-rho)) (eta(d) + log n) + d)",
        ),
    )


def lccs_m_for_alpha(n: int, rho: float, alpha: float, scale: float = 1.0) -> int:
    """Hash-string length ``m = scale * n^(alpha * rho)`` (Corollary 5.1).

    ``alpha`` must lie in ``[0, 1/(1-rho)]``; at ``alpha = 0`` the
    exponent vanishes and ``m`` is a constant.
    """
    if n <= 1:
        raise ValueError("n must exceed 1")
    if not 0.0 < rho < 1.0:
        raise ValueError("rho must be in (0, 1)")
    if not 0.0 <= alpha <= 1.0 / (1.0 - rho) + 1e-12:
        raise ValueError("alpha must be in [0, 1/(1-rho)]")
    m = scale * (n ** (alpha * rho))
    return max(2, int(round(m)))


def lccs_lambda_for_alpha(n: int, rho: float, alpha: float, scale: float = 1.0) -> int:
    """Candidate budget ``lambda = scale * m^(1-1/rho) * n`` for a given alpha.

    Substituting ``m = n^(alpha*rho)`` gives ``lambda = n^(1+alpha(rho-1))``:
    ``O(n)`` at ``alpha=0``, ``O(n^rho)`` at ``alpha=1``, ``O(1)`` at
    ``alpha = 1/(1-rho)``.
    """
    if n <= 1:
        raise ValueError("n must exceed 1")
    if not 0.0 < rho < 1.0:
        raise ValueError("rho must be in (0, 1)")
    lam = scale * (n ** (1.0 + alpha * (rho - 1.0)))
    return max(1, int(round(lam)))

"""The distribution of the LCCS length between random hash strings.

For two length-``m`` strings whose characters match independently with
probability ``p``, the LCCS length is the longest *circular* run of
matches among ``m`` Bernoulli(p) trials.  The paper works with the CDF
``F_{m,p}(x) = Pr[|LCCS| <= x]`` and approximates it for large ``m`` by
an extreme-value (Gumbel-like) law (Lemma 5.2):

    ``F_{m,p}(x) ~ exp(-m * (1 - p) * p^x)``

We provide the *exact* CDF via dynamic programming (used as the oracle in
tests and for tight parameter selection), the paper's approximation, the
quantile formulas (Eq. 6-7), and the candidate budget ``lambda`` of
Theorem 5.1.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Union

import numpy as np

__all__ = [
    "exact_cdf",
    "exact_pmf",
    "approx_cdf",
    "median_length",
    "quantile_length",
    "theorem51_lambda",
    "simulate_lccs_lengths",
]


def _validate_mp(m: int, p: float) -> None:
    if m <= 0:
        raise ValueError("string length m must be positive")
    if not 0.0 < p < 1.0:
        raise ValueError("match probability p must be in (0, 1)")


@lru_cache(maxsize=4096)
def _exact_cdf_cached(m: int, p: float, x: int) -> float:
    """Pr[longest circular run of 1s among m Bernoulli(p) trials <= x]."""
    if x < 0:
        return 0.0
    if x >= m:
        return 1.0
    q = 1.0 - p
    # Condition on J = number of leading ones (position of first zero).
    # Given J = j <= x, the remaining r = m - 1 - j trials form a linear
    # sequence; the circular longest run is
    #   max(maxrun(suffix), trailing_run(suffix) + j).
    # g[t] = Pr[linear sequence so far has maxrun <= x and trailing run t].
    # We need, for each j in 0..x, the suffix length r_j = m - 1 - j with
    # the trailing run restricted to <= x - j.
    # Iterate r upward once, capturing the needed sums on the way.
    needed = {m - 1 - j: j for j in range(0, min(x, m - 1) + 1)}
    g = np.zeros(x + 1, dtype=np.float64)
    g[0] = 1.0
    total = 0.0
    if 0 in needed:  # j = m - 1: suffix empty; trailing run 0 <= x - j needed
        j = needed[0]
        if x - j >= 0:
            total += (p ** j) * q  # g sum with t <= x - j is 1 (t = 0)
    for r in range(1, m):
        new = np.empty_like(g)
        new[0] = q * g.sum()
        if x >= 1:
            new[1:] = p * g[:-1]
        g = new
        if r in needed:
            j = needed[r]
            t_cap = x - j
            if t_cap >= 0:
                total += (p ** j) * q * g[: t_cap + 1].sum()
    # The all-ones circle has run m > x and contributes nothing.
    return float(min(max(total, 0.0), 1.0))


def exact_cdf(m: int, p: float, x: Union[int, float]) -> float:
    """Exact ``F_{m,p}(x) = Pr[|LCCS| <= x]`` via dynamic programming."""
    _validate_mp(m, p)
    return _exact_cdf_cached(m, float(p), int(math.floor(x)))


def exact_pmf(m: int, p: float) -> np.ndarray:
    """Exact probability mass function of the LCCS length, length ``m+1``."""
    _validate_mp(m, p)
    cdf = np.array([exact_cdf(m, p, x) for x in range(-1, m + 1)])
    return np.diff(cdf)


def approx_cdf(m: int, p: float, x: Union[int, float]) -> float:
    """The paper's extreme-value approximation (Lemma 5.2).

    ``F_hat(x) = exp(-p^(x - log_{1/p}(m(1-p)))) = exp(-m(1-p)p^x)``.
    """
    _validate_mp(m, p)
    return float(math.exp(-m * (1.0 - p) * (p ** float(x))))


def median_length(m: int, p: float) -> float:
    """Median of the approximate LCCS length distribution (paper Eq. 6).

    ``x_{1/2,p} = log_p(ln 2) + log_{1/p}(m (1 - p))``.
    """
    _validate_mp(m, p)
    return math.log(math.log(2.0), p) + math.log(m * (1.0 - p), 1.0 / p)


def quantile_length(m: int, p: float, quantile: float) -> float:
    """The ``quantile``-level point of the approximate distribution.

    For ``quantile = 1 - k/n`` this is the paper's Eq. 7:
    ``x_{1-k/n,p} = log_p(-ln(1 - k/n)) + log_{1/p}(m(1-p))``.
    """
    _validate_mp(m, p)
    if not 0.0 < quantile < 1.0:
        raise ValueError("quantile must be in (0, 1)")
    return math.log(-math.log(quantile), p) + math.log(m * (1.0 - p), 1.0 / p)


def theorem51_lambda(m: int, n: int, p1: float, p2: float) -> float:
    """Candidate budget ``lambda`` from Theorem 5.1.

    ``lambda = m^{1-1/rho} * n * (1-p1)^{-1/rho} * (1-p2) * (ln 2)^{1/rho} / p2``
    with ``rho = ln(1/p1)/ln(1/p2)``.  This is the budget for which the
    (R, c)-NNS succeeds with probability >= 1/4.
    """
    _validate_mp(m, p1)
    if not 0.0 < p2 < p1 < 1.0:
        raise ValueError("need 0 < p2 < p1 < 1")
    if n <= 0:
        raise ValueError("n must be positive")
    rho = math.log(1.0 / p1) / math.log(1.0 / p2)
    lam = (
        (m ** (1.0 - 1.0 / rho))
        * n
        * ((1.0 - p1) ** (-1.0 / rho))
        * (1.0 - p2)
        * (math.log(2.0) ** (1.0 / rho))
        / p2
    )
    return float(lam)


def simulate_lccs_lengths(
    m: int, p: float, n_samples: int, seed: int = 0
) -> np.ndarray:
    """Monte Carlo samples of the LCCS length (circular longest match run).

    Used by the tests to validate :func:`exact_cdf` and the paper's
    approximation.
    """
    _validate_mp(m, p)
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    rng = np.random.default_rng(seed)
    matches = rng.random(size=(n_samples, m)) < p
    doubled = np.concatenate([matches, matches], axis=1)
    out = np.zeros(n_samples, dtype=np.int64)
    # Longest run in the doubled sequence, capped at m, equals the
    # longest circular run.
    for i in range(n_samples):
        row = doubled[i]
        best = run = 0
        for v in row:
            run = run + 1 if v else 0
            if run > best:
                best = run
        out[i] = min(best, m)
    return out

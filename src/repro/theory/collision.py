"""Closed-form collision probabilities and hash quality (paper §2.2).

These formulas drive parameter selection (Theorem 5.1's ``lambda``) and
are validated against Monte Carlo estimates in the test suite.
"""

from __future__ import annotations

import math

from scipy.stats import norm

__all__ = [
    "rp_collision_probability",
    "cauchy_collision_probability",
    "cp_collision_probability",
    "cp_rho",
    "hyperplane_collision_probability",
    "bit_sampling_collision_probability",
    "minhash_collision_probability",
    "rho",
]


def rp_collision_probability(tau: float, w: float) -> float:
    """Random projection family collision probability (paper Eq. 2).

    ``p(tau) = 1 - 2*Phi(-w/tau) - 2/(sqrt(2*pi)*(w/tau)) * (1 - exp(-(w/tau)^2/2))``

    Args:
        tau: Euclidean distance between the two points (``tau > 0``; at
            ``tau == 0`` the collision probability is 1).
        w: bucket width of the family (``w > 0``).
    """
    if w <= 0.0:
        raise ValueError("bucket width w must be positive")
    if tau < 0.0:
        raise ValueError("distance tau must be non-negative")
    if tau == 0.0:
        return 1.0
    r = w / tau
    p = 1.0 - 2.0 * norm.cdf(-r) - (2.0 / (math.sqrt(2.0 * math.pi) * r)) * (
        1.0 - math.exp(-(r * r) / 2.0)
    )
    return float(min(max(p, 0.0), 1.0))


def cauchy_collision_probability(tau: float, w: float) -> float:
    """Cauchy (1-stable) projection collision probability for l1 distance.

    Datar et al. extend the paper's Eq. 1 family to any ``l_p`` with
    ``0 < p <= 2``; for ``p = 1`` the projection vector is Cauchy and

    ``p(tau) = 2*atan(w/tau)/pi - ln(1 + (w/tau)^2) / (pi * (w/tau))``.
    """
    if w <= 0.0:
        raise ValueError("bucket width w must be positive")
    if tau < 0.0:
        raise ValueError("distance tau must be non-negative")
    if tau == 0.0:
        return 1.0
    r = w / tau
    p = 2.0 * math.atan(r) / math.pi - math.log1p(r * r) / (math.pi * r)
    return float(min(max(p, 0.0), 1.0))


def cp_collision_probability(tau: float, d: int) -> float:
    """Cross-polytope family collision probability estimate (paper Eq. 4).

    ``ln(1/p) = tau^2 / (4 - tau^2) * ln d + O_tau(ln ln d)``; we use the
    leading term.  ``tau`` is the Euclidean distance between unit vectors,
    so ``0 <= tau < 2``.
    """
    if d < 2:
        raise ValueError("dimension d must be >= 2")
    if not 0.0 <= tau < 2.0:
        raise ValueError("tau must be in [0, 2) for points on the unit sphere")
    if tau == 0.0:
        return 1.0
    ln_inv_p = (tau * tau) / (4.0 - tau * tau) * math.log(d)
    return float(math.exp(-ln_inv_p))


def cp_rho(c: float, R: float) -> float:
    """Asymptotic hash quality of the cross-polytope family (paper Eq. 5).

    ``rho = (1/c^2) * (4 - c^2 R^2) / (4 - R^2)`` (the ``o(1)`` term is
    dropped).  Requires ``c > 1`` and ``0 < cR < 2``.
    """
    if c <= 1.0:
        raise ValueError("approximation ratio c must exceed 1")
    if not (0.0 < R and c * R < 2.0):
        raise ValueError("need 0 < R and cR < 2 on the unit sphere")
    return (1.0 / (c * c)) * (4.0 - c * c * R * R) / (4.0 - R * R)


def hyperplane_collision_probability(theta: float) -> float:
    """Sign-random-projection collision probability ``1 - theta/pi``."""
    if not 0.0 <= theta <= math.pi:
        raise ValueError("theta must be an angle in [0, pi]")
    return 1.0 - theta / math.pi


def bit_sampling_collision_probability(dist: float, d: int) -> float:
    """Bit sampling family: ``p = 1 - dist/d`` for Hamming distance."""
    if d <= 0:
        raise ValueError("dimension d must be positive")
    if not 0.0 <= dist <= d:
        raise ValueError("Hamming distance must be in [0, d]")
    return 1.0 - dist / d


def minhash_collision_probability(jaccard_dist: float) -> float:
    """MinHash family: ``p = 1 - jaccard_dist`` (= Jaccard similarity)."""
    if not 0.0 <= jaccard_dist <= 1.0:
        raise ValueError("Jaccard distance must be in [0, 1]")
    return 1.0 - jaccard_dist


def rho(p1: float, p2: float) -> float:
    """Hash quality ``rho = ln(1/p1) / ln(1/p2)``; needs ``0<p2<p1<1``."""
    if not 0.0 < p2 < p1 < 1.0:
        raise ValueError("need 0 < p2 < p1 < 1")
    return math.log(1.0 / p1) / math.log(1.0 / p2)

"""MinHash LSH family for Jaccard distance (Broder).

``h_pi(S) = min_{x in S} pi(x)`` for a random permutation ``pi`` of the
universe; ``Pr[h(A) = h(B)] = Jaccard similarity``.

The permutation surrogate is a per-function 64-bit avalanche mixer
(splitmix64 finaliser keyed by a random seed), *not* the textbook
``(a*x + b) mod P``: 2-universal linear hashing is not min-wise
independent, and on structured sets (e.g. overlapping index intervals)
its collision rate is measurably biased away from the Jaccard
similarity — our statistical tests caught a 5-sigma deviation.  The
avalanche mixer behaves like a random permutation for this purpose.

Included to demonstrate the LSH-family-independence of LCCS-LSH on set
data (paper §2.1 "supports the distance metrics iff there exist LSH
families for them").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.hashes.base import HashFamily
from repro.theory.collision import minhash_collision_probability

__all__ = ["MinHashFamily"]

#: value reserved for the empty set (real hashes hit it w.p. ~2^-64)
EMPTY_SENTINEL = np.iinfo(np.int64).max


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """SplitMix64 finaliser over a uint64 array (wrapping arithmetic)."""
    x = (x + np.uint64(0x9E3779B97F4A7C15)).astype(np.uint64)
    x ^= x >> np.uint64(30)
    x *= np.uint64(0xBF58476D1CE4E5B9)
    x ^= x >> np.uint64(27)
    x *= np.uint64(0x94D049BB133111EB)
    x ^= x >> np.uint64(31)
    return x


class MinHashFamily(HashFamily):
    """``m`` MinHash functions over indicator vectors of a universe.

    Inputs are ``(n, dim)`` arrays whose nonzero entries mark set
    membership.  Empty sets hash to a reserved sentinel, so two empty
    sets always collide.
    """

    metric = "jaccard"
    supports_probing = False

    def __init__(self, dim: int, m: int, seed: Optional[int] = None):
        super().__init__(dim, m, seed)
        self.seeds = self.rng.integers(
            0, np.iinfo(np.uint64).max, size=m, dtype=np.uint64
        )

    def _hash_batch(self, data: np.ndarray) -> np.ndarray:
        n = len(data)
        out = np.full((n, self.m), EMPTY_SENTINEL, dtype=np.int64)
        with np.errstate(over="ignore"):
            for i in range(n):
                items = np.flatnonzero(data[i]).astype(np.uint64)
                if len(items) == 0:
                    continue
                vals = _splitmix64(items[None, :] ^ self.seeds[:, None])
                # Shift into non-negative int64 so codes sort sanely.
                out[i] = (vals.min(axis=1) >> np.uint64(1)).astype(np.int64)
        return out

    def collision_probability(self, dist: float) -> float:
        return minhash_collision_probability(dist)

    def size_bytes(self) -> int:
        return int(self.seeds.nbytes)

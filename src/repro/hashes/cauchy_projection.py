"""Cauchy (1-stable) projection LSH family for Manhattan (l1) distance.

Datar et al.'s p-stable construction (the paper's Eq. 1) instantiated at
``p = 1``: the projection vector is drawn from the standard Cauchy
distribution, making ``a . (o - q)`` Cauchy with scale ``|o - q|_1``,
so the collision probability depends only on the l1 distance
(:func:`repro.theory.cauchy_collision_probability`).

Included as an extension beyond the paper's two showcased metrics: the
LCCS framework is family-independent, so dropping this family in gives
l1 c-ANNS for free — which the tests demonstrate end-to-end.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.hashes.base import HashFamily, PositionAlternatives
from repro.theory.collision import cauchy_collision_probability

__all__ = ["CauchyProjectionFamily"]


class CauchyProjectionFamily(HashFamily):
    """``m`` i.i.d. 1-stable LSH functions for Manhattan distance.

    Args:
        dim: input dimensionality.
        m: number of hash functions.
        w: bucket width.
        seed: RNG seed.
    """

    metric = "manhattan"
    supports_probing = True

    def __init__(self, dim: int, m: int, w: float = 4.0, seed: Optional[int] = None):
        super().__init__(dim, m, seed)
        if w <= 0.0:
            raise ValueError("bucket width w must be positive")
        self.w = float(w)
        self.proj = self.rng.standard_cauchy(size=(dim, m))
        self.offset = self.rng.uniform(0.0, self.w, size=m)

    def _hash_batch(self, data: np.ndarray) -> np.ndarray:
        raw = data @ self.proj + self.offset
        return np.floor(raw / self.w).astype(np.int64)

    def query_alternatives(
        self, q: np.ndarray, max_alternatives: int = 8
    ) -> Tuple[np.ndarray, List[PositionAlternatives]]:
        q = np.asarray(q, dtype=np.float64)
        if q.shape != (self.dim,):
            raise ValueError(f"query must have shape ({self.dim},), got {q.shape}")
        raw = q @ self.proj + self.offset
        codes = np.floor(raw / self.w).astype(np.int64)
        frac = raw - codes * self.w
        half = max(1, (max_alternatives + 1) // 2)
        deltas = np.concatenate([np.arange(1, half + 1), -np.arange(1, half + 1)])
        alts: List[PositionAlternatives] = []
        for i in range(self.m):
            scores = np.where(
                deltas > 0,
                (deltas * self.w - frac[i]) ** 2,
                (frac[i] + (np.abs(deltas) - 1) * self.w) ** 2,
            )
            order = np.argsort(scores, kind="stable")[:max_alternatives]
            alts.append(((codes[i] + deltas[order]).astype(np.int64), scores[order]))
        return codes, alts

    def collision_probability(self, dist: float) -> float:
        return cauchy_collision_probability(dist, self.w)

    def size_bytes(self) -> int:
        return int(self.proj.nbytes + self.offset.nbytes)

"""Hyperplane (sign random projection) LSH family for Angular distance.

Charikar's SRP: ``h_a(o) = sign(a . o)`` with ``a ~ N(0, I)``; collision
probability ``1 - theta/pi``.  The paper cites this family as the one the
cross-polytope family supersedes; we include it both as a baseline family
and because its exact closed-form collision probability makes it ideal
for statistical tests of the LCCS machinery.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.hashes.base import HashFamily, PositionAlternatives
from repro.theory.collision import hyperplane_collision_probability

__all__ = ["HyperplaneFamily"]


class HyperplaneFamily(HashFamily):
    """``m`` sign-random-projection functions; codes are 0/1."""

    metric = "angular"
    supports_probing = True

    def __init__(self, dim: int, m: int, seed: Optional[int] = None):
        super().__init__(dim, m, seed)
        self.proj = self.rng.normal(0.0, 1.0, size=(dim, m))

    def _hash_batch(self, data: np.ndarray) -> np.ndarray:
        return (data @ self.proj >= 0.0).astype(np.int64)

    def query_alternatives(
        self, q: np.ndarray, max_alternatives: int = 8
    ) -> Tuple[np.ndarray, List[PositionAlternatives]]:
        q = np.asarray(q, dtype=np.float64)
        if q.shape != (self.dim,):
            raise ValueError(f"query must have shape ({self.dim},), got {q.shape}")
        raw = q @ self.proj
        codes = (raw >= 0.0).astype(np.int64)
        alts: List[PositionAlternatives] = []
        for i in range(self.m):
            # Single alternative: flip the bit; cost = squared margin.
            alts.append(
                (
                    np.array([1 - codes[i]], dtype=np.int64),
                    np.array([raw[i] * raw[i]]),
                )
            )
        return codes, alts

    def collision_probability(self, dist: float) -> float:
        """``dist`` is angular distance (radians)."""
        return hyperplane_collision_probability(dist)

    def size_bytes(self) -> int:
        return int(self.proj.nbytes)

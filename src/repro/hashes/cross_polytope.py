"""Cross-polytope LSH family for Angular distance.

Paper §2.2, Eq. 3: rotate the unit vector by a random matrix and snap to
the nearest vertex of the cross-polytope ``{+-e_i}``.  The collision
probability follows Eq. 4 and the hash quality Eq. 5.

**Substitution note (DESIGN.md §4):** the paper's family uses a full
``d x d`` Gaussian rotation per hash function; storing ``m`` of those for
``d = 960`` costs gigabytes.  Like FALCONN's "last CP dimension" option,
we compose a Gaussian projection into ``cp_dim`` dimensions with the
vertex snap.  This is still a valid cross-polytope family member (the
projected vector is again isotropic Gaussian conditioned on the data),
with ``cp_dim`` playing the role of ``d`` in Eq. 4, and it keeps the
memory at ``O(m * d * cp_dim)``.

Multi-probe alternatives follow FALCONN: the candidate vertices of one
rotation are ranked by their distance to the rotated query,
``|y - (+-e_j)|^2 = 2 - 2*(+-y_j)``, so the score of vertex ``(j, sign)``
is ``-sign * y_j`` (the chosen vertex has the minimum).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.hashes.base import HashFamily, PositionAlternatives
from repro.theory.collision import cp_collision_probability

__all__ = ["CrossPolytopeFamily"]


class CrossPolytopeFamily(HashFamily):
    """``m`` cross-polytope LSH functions on the unit sphere.

    Hash codes lie in ``{0, ..., 2*cp_dim - 1}``: code ``2j`` is vertex
    ``+e_j`` and ``2j + 1`` is ``-e_j``.

    Args:
        dim: input dimensionality (inputs are l2-normalised internally).
        m: number of hash functions.
        cp_dim: dimensionality of the cross-polytope (see module docs).
        seed: RNG seed.
    """

    metric = "angular"
    supports_probing = True

    def __init__(
        self,
        dim: int,
        m: int,
        cp_dim: int = 32,
        seed: Optional[int] = None,
    ):
        super().__init__(dim, m, seed)
        if cp_dim < 1:
            raise ValueError("cp_dim must be >= 1")
        self.cp_dim = int(cp_dim)
        # One (dim, cp_dim) Gaussian block per hash function, stored stacked
        # so hashing a batch is a single matmul.
        self.proj = self.rng.normal(0.0, 1.0, size=(dim, m * cp_dim))

    # ------------------------------------------------------------------

    def _rotate(self, data: np.ndarray) -> np.ndarray:
        """Normalised inputs -> ``(n, m, cp_dim)`` rotated vectors."""
        norms = np.linalg.norm(data, axis=1, keepdims=True)
        if np.any(norms == 0.0):
            raise ValueError("cross-polytope hashing requires nonzero vectors")
        z = (data / norms) @ self.proj
        return z.reshape(len(data), self.m, self.cp_dim)

    def _hash_batch(self, data: np.ndarray) -> np.ndarray:
        z = self._rotate(data)
        j = np.argmax(np.abs(z), axis=2)
        signs = np.take_along_axis(z, j[:, :, None], axis=2)[:, :, 0] < 0.0
        return (2 * j + signs).astype(np.int64)

    def query_alternatives(
        self, q: np.ndarray, max_alternatives: int = 8
    ) -> Tuple[np.ndarray, List[PositionAlternatives]]:
        q = np.asarray(q, dtype=np.float64)
        z = self._rotate(q[None, :])[0]  # (m, cp_dim)
        # Scores of all 2*cp_dim vertices: score(2j) = -y_j, score(2j+1) = +y_j.
        all_scores = np.empty((self.m, 2 * self.cp_dim))
        all_scores[:, 0::2] = -z
        all_scores[:, 1::2] = z
        codes = np.argmin(all_scores, axis=1).astype(np.int64)
        # Normalise to incremental costs >= 0 relative to the chosen vertex
        # (the interface convention; see HashFamily.query_alternatives).
        all_scores = all_scores - all_scores.min(axis=1, keepdims=True)
        alts: List[PositionAlternatives] = []
        n_alt = min(max_alternatives, 2 * self.cp_dim - 1)
        for i in range(self.m):
            order = np.argsort(all_scores[i], kind="stable")
            # order[0] is the chosen vertex; alternatives start at 1.
            chosen = order[1 : 1 + n_alt]
            alts.append(
                (chosen.astype(np.int64), all_scores[i][chosen])
            )
        return codes, alts

    def collision_probability(self, dist: float) -> float:
        """Eq. 4 estimate; ``dist`` is *angular* distance in radians."""
        # Convert the angle to chordal (Euclidean-on-sphere) distance.
        tau = float(2.0 * np.sin(dist / 2.0))
        return cp_collision_probability(tau, self.cp_dim)

    def size_bytes(self) -> int:
        return int(self.proj.nbytes)

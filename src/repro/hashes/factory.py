"""Construct the default LSH family for a metric.

The paper pairs Euclidean distance with the random projection family and
Angular distance with the cross-polytope family; Hamming gets bit
sampling and Jaccard gets MinHash.  ``make_family`` is the single place
indexes go through, so schemes stay family-independent.
"""

from __future__ import annotations

from typing import Optional

from repro.hashes.base import HashFamily
from repro.hashes.bit_sampling import BitSamplingFamily
from repro.hashes.cauchy_projection import CauchyProjectionFamily
from repro.hashes.cross_polytope import CrossPolytopeFamily
from repro.hashes.hyperplane import HyperplaneFamily
from repro.hashes.minhash import MinHashFamily
from repro.hashes.random_projection import RandomProjectionFamily

__all__ = ["make_family"]


def make_family(
    metric: str,
    dim: int,
    m: int,
    seed: Optional[int] = None,
    w: float = 4.0,
    cp_dim: int = 32,
    angular_family: str = "cross_polytope",
) -> HashFamily:
    """Default family for ``metric`` with ``m`` hash functions.

    Args:
        metric: ``euclidean`` | ``angular`` | ``hamming`` | ``jaccard``.
        dim: input dimensionality.
        m: number of hash functions.
        seed: RNG seed.
        w: bucket width for the random projection family (Euclidean).
        cp_dim: cross-polytope dimension (Angular).
        angular_family: ``cross_polytope`` (paper default) or
            ``hyperplane``.
    """
    metric = metric.lower()
    if metric == "euclidean":
        return RandomProjectionFamily(dim, m, w=w, seed=seed)
    if metric == "manhattan":
        return CauchyProjectionFamily(dim, m, w=w, seed=seed)
    if metric == "angular":
        if angular_family == "cross_polytope":
            return CrossPolytopeFamily(dim, m, cp_dim=cp_dim, seed=seed)
        if angular_family == "hyperplane":
            return HyperplaneFamily(dim, m, seed=seed)
        raise ValueError(
            f"unknown angular family {angular_family!r}; "
            "use 'cross_polytope' or 'hyperplane'"
        )
    if metric == "hamming":
        return BitSamplingFamily(dim, m, seed=seed)
    if metric == "jaccard":
        return MinHashFamily(dim, m, seed=seed)
    raise ValueError(
        f"no LSH family for metric {metric!r}; "
        "supported: euclidean, manhattan, angular, hamming, jaccard"
    )

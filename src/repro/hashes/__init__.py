"""LSH families: random projection, cross-polytope, hyperplane, bit sampling, MinHash."""

from repro.hashes.base import HashFamily, PositionAlternatives
from repro.hashes.bit_sampling import BitSamplingFamily
from repro.hashes.cauchy_projection import CauchyProjectionFamily
from repro.hashes.cross_polytope import CrossPolytopeFamily
from repro.hashes.factory import make_family
from repro.hashes.hyperplane import HyperplaneFamily
from repro.hashes.minhash import MinHashFamily
from repro.hashes.random_projection import RandomProjectionFamily

__all__ = [
    "BitSamplingFamily",
    "CauchyProjectionFamily",
    "CrossPolytopeFamily",
    "HashFamily",
    "HyperplaneFamily",
    "MinHashFamily",
    "PositionAlternatives",
    "RandomProjectionFamily",
    "make_family",
]

"""Abstract LSH family interface.

The LCCS framework is LSH-family-independent (paper §1): it only needs a
family that maps a vector to ``m`` integer hash values (one hash string)
and, for multi-probe schemes, per-position *alternative* hash values with
scores (lower score = more promising perturbation, as in Multi-Probe LSH
and FALCONN).
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["HashFamily", "PositionAlternatives"]

#: attributes handled explicitly by ``export_state`` / ``from_state``
_STATE_SPECIAL = ("dim", "m", "seed", "rng")

#: alternatives of one position: parallel (codes, scores), sorted by score
PositionAlternatives = Tuple[np.ndarray, np.ndarray]


class HashFamily(abc.ABC):
    """A collection of ``m`` i.i.d. LSH functions ``h_1..h_m``.

    Args:
        dim: input dimensionality.
        m: number of hash functions (= hash-string length).
        seed: RNG seed; the family is deterministic given the seed.
    """

    #: metric this family is locality-sensitive for
    metric: str = "euclidean"
    #: whether :meth:`query_alternatives` is implemented
    supports_probing: bool = False

    def __init__(self, dim: int, m: int, seed: Optional[int] = None):
        if dim <= 0:
            raise ValueError("dim must be positive")
        if m <= 0:
            raise ValueError("m must be positive")
        self.dim = int(dim)
        self.m = int(m)
        self.seed = seed
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------

    def hash(self, data: np.ndarray) -> np.ndarray:
        """Hash strings for ``data``.

        Accepts ``(n, dim)`` (returns ``(n, m)`` int64) or a single
        ``(dim,)`` vector (returns ``(m,)``).
        """
        data = np.asarray(data, dtype=np.float64)
        single = data.ndim == 1
        if single:
            data = data[None, :]
        if data.ndim != 2 or data.shape[1] != self.dim:
            raise ValueError(
                f"data shape {data.shape} incompatible with dim={self.dim}"
            )
        codes = self._hash_batch(data)
        return codes[0] if single else codes

    def query_alternatives(
        self, q: np.ndarray, max_alternatives: int = 8
    ) -> Tuple[np.ndarray, List[PositionAlternatives]]:
        """Hash string of ``q`` plus scored alternatives per position.

        Returns ``(codes, alts)`` where ``alts[i]`` is a pair of parallel
        arrays ``(alt_codes, alt_scores)`` for position ``i``, sorted by
        ascending score (the best perturbation first).  Scores are
        *incremental costs*: non-negative, relative to the unperturbed
        hash value, and additive across positions — the conventions the
        probing-sequence generators rely on.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support multi-probe alternatives"
        )

    def collision_probability(self, dist: float) -> float:
        """Closed-form ``Pr[h(o) = h(q)]`` at distance ``dist`` (if known)."""
        raise NotImplementedError(
            f"{type(self).__name__} has no closed-form collision probability"
        )

    # ------------------------------------------------------------------

    def export_state(self) -> Tuple[dict, Dict[str, np.ndarray]]:
        """Split the family into a JSON-safe meta dict and named arrays.

        Used by the native index persistence protocol
        (:mod:`repro.serve.persistence`): scalar parameters and the RNG
        state go into the manifest, drawn parameters (projections,
        offsets, seeds tables) into the ``.npz`` payload.  Families whose
        state is exactly "ndarray attributes + scalar attributes" — all
        of the built-in ones — need no per-class code.

        Raises ``NotImplementedError`` for families carrying state this
        generic split cannot represent, which makes the owning index fall
        back to the pickle serializer.
        """
        meta: dict = {
            "family": type(self).__name__,
            "dim": self.dim,
            "m": self.m,
            "seed": self.seed,
            "rng_state": self.rng.bit_generator.state,
            "params": {},
        }
        arrays: Dict[str, np.ndarray] = {}
        for key, val in self.__dict__.items():
            if key in _STATE_SPECIAL:
                continue
            if isinstance(val, np.ndarray):
                arrays[key] = val
            elif isinstance(val, (bool, int, float, str)) or val is None:
                meta["params"][key] = val
            else:
                raise NotImplementedError(
                    f"{type(self).__name__}.{key} ({type(val).__name__}) is "
                    "not expressible in the npz/JSON bundle format"
                )
        return meta, arrays

    @staticmethod
    def from_state(meta: dict, arrays: Dict[str, np.ndarray]) -> "HashFamily":
        """Rebuild a family from :meth:`export_state` output.

        Dispatches on ``meta['family']`` over the classes exported by
        :mod:`repro.hashes`; construction bypasses ``__init__`` (the
        drawn parameters are restored verbatim, not re-drawn).
        """
        import repro.hashes as _hashes

        name = meta.get("family")
        cls = getattr(_hashes, str(name), None)
        if not (isinstance(cls, type) and issubclass(cls, HashFamily)):
            raise ValueError(f"unknown hash family {name!r}")
        fam = cls.__new__(cls)
        fam.dim = int(meta["dim"])
        fam.m = int(meta["m"])
        fam.seed = meta["seed"]
        fam.rng = np.random.default_rng(fam.seed)
        rng_state = meta.get("rng_state")
        if rng_state is not None:
            fam.rng.bit_generator.state = rng_state
        for key, val in meta.get("params", {}).items():
            setattr(fam, key, val)
        for key, val in arrays.items():
            setattr(fam, key, val)
        return fam

    @abc.abstractmethod
    def _hash_batch(self, data: np.ndarray) -> np.ndarray:
        """Hash a validated ``(n, dim)`` float batch into ``(n, m)`` int64."""

    def size_bytes(self) -> int:
        """Memory held by the family's parameters (projections etc.)."""
        return 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(dim={self.dim}, m={self.m}, seed={self.seed})"

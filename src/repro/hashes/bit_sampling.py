"""Bit sampling LSH family for Hamming distance (Indyk & Motwani).

``h_i(o) = o[c_i]`` for a random coordinate ``c_i``; collision
probability ``1 - Hamming(o, q)/d``.  The paper highlights this family as
the extreme where hashing costs ``eta(d) = O(1)``, which motivates the
``alpha = 1/(1-rho)`` setting of LCCS-LSH (verify O(1) candidates).

Works for any discrete alphabet, not just bits: the sampled coordinate's
value is the hash code.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.hashes.base import HashFamily, PositionAlternatives
from repro.theory.collision import bit_sampling_collision_probability

__all__ = ["BitSamplingFamily"]


class BitSamplingFamily(HashFamily):
    """``m`` random-coordinate samplers; codes are the coordinate values."""

    metric = "hamming"
    supports_probing = True

    def __init__(self, dim: int, m: int, seed: Optional[int] = None):
        super().__init__(dim, m, seed)
        # Sampling WITH replacement keeps the functions i.i.d., as the
        # theory (and the paper's independence assumption) requires.
        self.coords = self.rng.integers(0, dim, size=m)

    def _hash_batch(self, data: np.ndarray) -> np.ndarray:
        return data[:, self.coords].astype(np.int64)

    def query_alternatives(
        self, q: np.ndarray, max_alternatives: int = 8
    ) -> Tuple[np.ndarray, List[PositionAlternatives]]:
        q = np.asarray(q)
        if q.shape != (self.dim,):
            raise ValueError(f"query must have shape ({self.dim},), got {q.shape}")
        codes = q[self.coords].astype(np.int64)
        if not np.isin(np.unique(q), (0, 1)).all():
            raise ValueError(
                "bit-sampling alternatives are only defined for binary data"
            )
        alts: List[PositionAlternatives] = []
        for i in range(self.m):
            # The only alternative for a bit is its flip; unit score.
            alts.append(
                (np.array([1 - codes[i]], dtype=np.int64), np.array([1.0]))
            )
        return codes, alts

    def collision_probability(self, dist: float) -> float:
        return bit_sampling_collision_probability(dist, self.dim)

    def size_bytes(self) -> int:
        return int(self.coords.nbytes)

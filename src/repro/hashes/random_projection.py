"""Random projection (p-stable) LSH family for Euclidean distance.

Paper §2.2, Eq. 1:  ``h_{a,b}(o) = floor((a . o + b) / w)`` with
``a ~ N(0, I)`` and ``b ~ U[0, w)``.  The collision probability is the
paper's Eq. 2 (:func:`repro.theory.rp_collision_probability`).

Multi-probe alternatives follow Lv et al. (Multi-Probe LSH): at position
``i`` the query's projection sits ``f_i`` inside its bucket of width
``w``; perturbing the bucket by ``delta`` costs

    ``score = (delta*w - f_i)^2``  for ``delta >= 1``
    ``score = (f_i + (|delta|-1)*w)^2``  for ``delta <= -1``

i.e. the squared distance from the projection to the nearest edge of the
probed bucket.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.hashes.base import HashFamily, PositionAlternatives
from repro.theory.collision import rp_collision_probability

__all__ = ["RandomProjectionFamily"]


class RandomProjectionFamily(HashFamily):
    """``m`` i.i.d. p-stable LSH functions for Euclidean distance.

    Args:
        dim: input dimensionality.
        m: number of hash functions.
        w: bucket width (paper fine-tunes this per dataset).
        seed: RNG seed.
    """

    metric = "euclidean"
    supports_probing = True

    def __init__(self, dim: int, m: int, w: float = 4.0, seed: Optional[int] = None):
        super().__init__(dim, m, seed)
        if w <= 0.0:
            raise ValueError("bucket width w must be positive")
        self.w = float(w)
        self.proj = self.rng.normal(0.0, 1.0, size=(dim, m))
        self.offset = self.rng.uniform(0.0, self.w, size=m)

    def _hash_batch(self, data: np.ndarray) -> np.ndarray:
        raw = data @ self.proj + self.offset
        return np.floor(raw / self.w).astype(np.int64)

    def project(self, q: np.ndarray) -> np.ndarray:
        """Raw projections ``a_i . q + b_i`` (used by C2LSH/QALSH-style code)."""
        q = np.asarray(q, dtype=np.float64)
        if q.shape != (self.dim,):
            raise ValueError(f"query must have shape ({self.dim},), got {q.shape}")
        return q @ self.proj + self.offset

    def query_alternatives(
        self, q: np.ndarray, max_alternatives: int = 8
    ) -> Tuple[np.ndarray, List[PositionAlternatives]]:
        raw = self.project(np.asarray(q, dtype=np.float64))
        codes = np.floor(raw / self.w).astype(np.int64)
        frac = raw - codes * self.w  # in [0, w)
        half = max(1, (max_alternatives + 1) // 2)
        deltas = np.concatenate(
            [np.arange(1, half + 1), -np.arange(1, half + 1)]
        )
        alts: List[PositionAlternatives] = []
        for i in range(self.m):
            scores = np.where(
                deltas > 0,
                (deltas * self.w - frac[i]) ** 2,
                (frac[i] + (np.abs(deltas) - 1) * self.w) ** 2,
            )
            order = np.argsort(scores, kind="stable")[:max_alternatives]
            alts.append(
                ((codes[i] + deltas[order]).astype(np.int64), scores[order])
            )
        return codes, alts

    def collision_probability(self, dist: float) -> float:
        return rp_collision_probability(dist, self.w)

    def size_bytes(self) -> int:
        return int(self.proj.nbytes + self.offset.nbytes)

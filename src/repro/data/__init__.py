"""Synthetic workloads, dataset registry, and exact ground truth."""

from repro.data.datasets import DATASET_SPECS, Dataset, dataset_names, load_dataset
from repro.data.ground_truth import GroundTruth, compute_ground_truth, exact_knn
from repro.data.io import (
    read_bvecs,
    read_fvecs,
    read_ivecs,
    write_bvecs,
    write_fvecs,
    write_ivecs,
)
from repro.data.synthetic import (
    binary_strings,
    embedding_like,
    gaussian_clusters,
    rng_from_seed,
    sift_like,
    sparse_sets,
    split_queries,
    uniform_hypercube,
)

__all__ = [
    "DATASET_SPECS",
    "Dataset",
    "GroundTruth",
    "binary_strings",
    "compute_ground_truth",
    "dataset_names",
    "embedding_like",
    "exact_knn",
    "gaussian_clusters",
    "load_dataset",
    "read_bvecs",
    "read_fvecs",
    "read_ivecs",
    "write_bvecs",
    "write_fvecs",
    "write_ivecs",
    "rng_from_seed",
    "sift_like",
    "sparse_sets",
    "split_queries",
    "uniform_hypercube",
]

"""Readers/writers for the .fvecs / .ivecs / .bvecs vector formats.

The paper's real corpora (Sift, Gist from corpus-texmex.irisa.fr, and
most ANN benchmark releases) ship in the TexMex vector formats: each
vector is stored as a little-endian ``int32`` dimensionality ``d``
followed by ``d`` components (``float32`` / ``int32`` / ``uint8``).

The offline benchmarks use synthetic stand-ins (DESIGN.md §4), but with
these functions a user who *does* have the real files can run every
experiment on them unchanged::

    from repro.data.io import read_fvecs
    base = read_fvecs("sift_base.fvecs")
    queries = read_fvecs("sift_query.fvecs")
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

import numpy as np

__all__ = [
    "read_fvecs",
    "read_ivecs",
    "read_bvecs",
    "write_fvecs",
    "write_ivecs",
    "write_bvecs",
]

PathLike = Union[str, Path]


def _read_vecs(
    path: PathLike,
    component_dtype: np.dtype,
    max_vectors: Optional[int],
) -> np.ndarray:
    raw = np.fromfile(str(path), dtype=np.uint8)
    if raw.size == 0:
        raise ValueError(f"{path} is empty")
    if raw.size < 4:
        raise ValueError(f"{path} is truncated (no header)")
    d = int(np.frombuffer(raw[:4].tobytes(), dtype="<i4")[0])
    if d <= 0:
        raise ValueError(f"{path} has invalid dimensionality {d}")
    comp_size = np.dtype(component_dtype).itemsize
    record = 4 + d * comp_size
    if raw.size % record != 0:
        raise ValueError(
            f"{path}: size {raw.size} is not a multiple of the record "
            f"size {record} (d={d})"
        )
    n = raw.size // record
    if max_vectors is not None:
        n = min(n, max_vectors)
    body = raw[: n * record].reshape(n, record)
    dims = body[:, :4].copy().view("<i4").ravel()
    if not (dims == d).all():
        raise ValueError(f"{path}: inconsistent per-vector dimensionalities")
    comps = body[:, 4:].copy().view(np.dtype(component_dtype).newbyteorder("<"))
    return comps.reshape(n, d).astype(component_dtype)


def read_fvecs(path: PathLike, max_vectors: Optional[int] = None) -> np.ndarray:
    """Read an ``.fvecs`` file into ``(n, d)`` float32."""
    return _read_vecs(path, np.float32, max_vectors)


def read_ivecs(path: PathLike, max_vectors: Optional[int] = None) -> np.ndarray:
    """Read an ``.ivecs`` file (e.g. ground-truth ids) into ``(n, d)`` int32."""
    return _read_vecs(path, np.int32, max_vectors)


def read_bvecs(path: PathLike, max_vectors: Optional[int] = None) -> np.ndarray:
    """Read a ``.bvecs`` file into ``(n, d)`` uint8."""
    return _read_vecs(path, np.uint8, max_vectors)


def _write_vecs(
    path: PathLike, data: np.ndarray, component_dtype: np.dtype
) -> None:
    data = np.asarray(data)
    if data.ndim != 2 or data.shape[0] == 0 or data.shape[1] == 0:
        raise ValueError("data must be a non-empty (n, d) array")
    n, d = data.shape
    comps = data.astype(np.dtype(component_dtype).newbyteorder("<"))
    header = np.full(n, d, dtype="<i4")
    with open(str(path), "wb") as f:
        for i in range(n):
            f.write(header[i : i + 1].tobytes())
            f.write(comps[i].tobytes())


def write_fvecs(path: PathLike, data: np.ndarray) -> None:
    """Write ``(n, d)`` floats as ``.fvecs``."""
    _write_vecs(path, data, np.float32)


def write_ivecs(path: PathLike, data: np.ndarray) -> None:
    """Write ``(n, d)`` ints as ``.ivecs``."""
    _write_vecs(path, data, np.int32)


def write_bvecs(path: PathLike, data: np.ndarray) -> None:
    """Write ``(n, d)`` bytes as ``.bvecs``."""
    _write_vecs(path, data, np.uint8)

"""Registry of the five benchmark datasets from the paper (simulated).

Paper Table 2:

    Dataset  #Objects   d    Type
    Msong     992,272  420   Audio
    Sift    1,000,000  128   Image
    Gist    1,000,000  960   Image
    GloVe   1,183,514  100   Text
    Deep    1,000,000  256   Deep

The real corpora are unavailable offline, so ``load_dataset`` generates a
seeded synthetic stand-in with the same dimensionality and data-type
flavour, scaled down in cardinality (see DESIGN.md §4).  Every dataset is
returned with a held-out query set and carries the metric(s) the paper
evaluates it under.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from repro.data import synthetic

__all__ = ["Dataset", "DATASET_SPECS", "load_dataset", "dataset_names"]


@dataclass(frozen=True)
class Dataset:
    """A benchmark dataset: base vectors, queries, and metadata."""

    name: str
    data: np.ndarray
    queries: np.ndarray
    metrics: Tuple[str, ...]
    description: str = ""

    @property
    def n(self) -> int:
        return len(self.data)

    @property
    def dim(self) -> int:
        return self.data.shape[1]

    @property
    def n_queries(self) -> int:
        return len(self.queries)

    def size_bytes(self) -> int:
        return int(self.data.nbytes + self.queries.nbytes)


def _gen_msong(n: int, rng: np.random.Generator) -> np.ndarray:
    # Audio features: dense real-valued, strongly clustered, mixed scales.
    return synthetic.gaussian_clusters(
        n, 420, n_clusters=40, cluster_std=0.12, center_scale=10.0, seed=rng
    )


def _gen_sift(n: int, rng: np.random.Generator) -> np.ndarray:
    return synthetic.sift_like(n, 128, n_clusters=50, seed=rng)


def _gen_gist(n: int, rng: np.random.Generator) -> np.ndarray:
    # GIST: dense, small-magnitude global image descriptors.
    raw = synthetic.gaussian_clusters(
        n, 960, n_clusters=30, cluster_std=0.2, center_scale=0.1, seed=rng
    )
    return np.abs(raw)


def _gen_glove(n: int, rng: np.random.Generator) -> np.ndarray:
    return synthetic.embedding_like(n, 100, n_clusters=60, seed=rng, normalize=False)


def _gen_deep(n: int, rng: np.random.Generator) -> np.ndarray:
    return synthetic.embedding_like(n, 256, n_clusters=40, seed=rng, normalize=True)


_GeneratorFn = Callable[[int, np.random.Generator], np.ndarray]


@dataclass(frozen=True)
class _Spec:
    dim: int
    metrics: Tuple[str, ...]
    generator: _GeneratorFn
    description: str
    paper_n: int = 1_000_000


DATASET_SPECS: Dict[str, _Spec] = {
    "msong": _Spec(420, ("euclidean", "angular"), _gen_msong,
                   "audio features (simulated Msong)", 992_272),
    "sift": _Spec(128, ("euclidean", "angular"), _gen_sift,
                  "SIFT image descriptors (simulated Sift)", 1_000_000),
    "gist": _Spec(960, ("euclidean", "angular"), _gen_gist,
                  "GIST image descriptors (simulated Gist)", 1_000_000),
    "glove": _Spec(100, ("euclidean", "angular"), _gen_glove,
                   "text embeddings (simulated GloVe)", 1_183_514),
    "deep": _Spec(256, ("euclidean", "angular"), _gen_deep,
                  "deep neural codes (simulated Deep)", 1_000_000),
}


def dataset_names() -> Tuple[str, ...]:
    """Names of the five paper datasets, in the paper's order."""
    return tuple(DATASET_SPECS)


def load_dataset(
    name: str,
    n: int = 10_000,
    n_queries: int = 100,
    seed: int = 42,
) -> Dataset:
    """Generate a simulated version of a paper dataset.

    Args:
        name: one of ``dataset_names()`` (case-insensitive).
        n: number of base points (paper uses ~1M; default scaled down).
        n_queries: held-out queries, as in the paper's 100-query protocol.
        seed: RNG seed; the same ``(name, n, n_queries, seed)`` always
            yields the same dataset.
    """
    key = name.lower()
    if key not in DATASET_SPECS:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(DATASET_SPECS)}")
    if n_queries <= 0:
        raise ValueError("n_queries must be positive")
    spec = DATASET_SPECS[key]
    rng = np.random.default_rng(seed)
    raw = spec.generator(n + n_queries, rng)
    base, queries = synthetic.split_queries(raw, n_queries, seed=rng)
    return Dataset(
        name=key,
        data=base,
        queries=queries,
        metrics=spec.metrics,
        description=spec.description,
    )

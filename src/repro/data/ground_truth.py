"""Exact k-nearest-neighbour ground truth, computed by chunked linear scan.

Used both as the evaluation oracle (recall/ratio need the true top-k) and
as the reference implementation every ANN index is tested against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.distances import pairwise

__all__ = ["GroundTruth", "exact_knn", "compute_ground_truth"]


def exact_knn(
    data: np.ndarray, q: np.ndarray, k: int, metric: str = "euclidean"
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact top-``k`` neighbours of ``q`` in ``data``.

    Returns ``(indices, distances)`` sorted by ascending distance, ties
    broken by index for determinism.  ``k`` is clamped to ``len(data)``.
    """
    data = np.asarray(data)
    if len(data) == 0:
        raise ValueError("cannot search an empty dataset")
    if k <= 0:
        raise ValueError("k must be positive")
    k = min(k, len(data))
    dists = pairwise(data, np.asarray(q), metric)
    # Stable ordering: sort by (distance, index).
    order = np.lexsort((np.arange(len(data)), dists))[:k]
    return order, dists[order]


@dataclass(frozen=True)
class GroundTruth:
    """Exact neighbours for a batch of queries.

    Attributes:
        indices: ``(n_queries, k)`` int array of true neighbour ids.
        distances: ``(n_queries, k)`` float array of true distances.
        metric: metric name used.
    """

    indices: np.ndarray
    distances: np.ndarray
    metric: str

    @property
    def k(self) -> int:
        return self.indices.shape[1]

    def __len__(self) -> int:
        return self.indices.shape[0]


def compute_ground_truth(
    data: np.ndarray,
    queries: np.ndarray,
    k: int,
    metric: str = "euclidean",
) -> GroundTruth:
    """Exact top-``k`` for every query row, via linear scans."""
    queries = np.asarray(queries)
    if queries.ndim != 2:
        raise ValueError("queries must be a 2-d array")
    all_idx = np.empty((len(queries), min(k, len(data))), dtype=np.int64)
    all_dist = np.empty_like(all_idx, dtype=np.float64)
    for i, q in enumerate(queries):
        idx, dist = exact_knn(data, q, k, metric)
        all_idx[i], all_dist[i] = idx, dist
    return GroundTruth(indices=all_idx, distances=all_dist, metric=metric)

"""Synthetic workload generators.

The paper evaluates on five real 1M-point datasets (Msong, Sift, Gist,
GloVe, Deep).  Those corpora are not available offline, so we generate
seeded synthetic data with the same dimensionalities and, crucially, the
same *distance profile* structure: a modest number of clusters so that
every query has genuinely near neighbours plus a long tail of far
points.  This is the property LSH trade-off curves are sensitive to; see
DESIGN.md §4 for the substitution rationale.

All generators take a ``numpy.random.Generator`` or integer seed and are
fully deterministic for a given seed.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

__all__ = [
    "rng_from_seed",
    "gaussian_clusters",
    "uniform_hypercube",
    "sift_like",
    "embedding_like",
    "binary_strings",
    "sparse_sets",
    "split_queries",
]

SeedLike = Union[int, np.random.Generator, None]


def rng_from_seed(seed: SeedLike) -> np.random.Generator:
    """Coerce an int / Generator / None into a ``numpy.random.Generator``."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def gaussian_clusters(
    n: int,
    d: int,
    n_clusters: int = 20,
    cluster_std: float = 0.15,
    center_scale: float = 1.0,
    seed: SeedLike = None,
) -> np.ndarray:
    """Mixture of isotropic Gaussians: the generic clustered workload.

    Cluster centres are drawn from ``N(0, center_scale^2 I)`` and points
    from ``N(center, (cluster_std * center_scale)^2 I)``.  With
    ``cluster_std << 1`` near-neighbour distances are well separated from
    the bulk, mimicking real feature datasets.
    """
    if n <= 0 or d <= 0:
        raise ValueError("n and d must be positive")
    if n_clusters <= 0:
        raise ValueError("n_clusters must be positive")
    rng = rng_from_seed(seed)
    centers = rng.normal(0.0, center_scale, size=(n_clusters, d))
    labels = rng.integers(0, n_clusters, size=n)
    noise = rng.normal(0.0, cluster_std * center_scale, size=(n, d))
    return centers[labels] + noise


def uniform_hypercube(
    n: int, d: int, low: float = 0.0, high: float = 1.0, seed: SeedLike = None
) -> np.ndarray:
    """Uniform points in ``[low, high]^d`` — the unstructured stress case."""
    if n <= 0 or d <= 0:
        raise ValueError("n and d must be positive")
    rng = rng_from_seed(seed)
    return rng.uniform(low, high, size=(n, d))


def sift_like(
    n: int,
    d: int = 128,
    n_clusters: int = 50,
    seed: SeedLike = None,
) -> np.ndarray:
    """Non-negative, clipped, integer-valued vectors mimicking SIFT.

    SIFT descriptors are histograms of gradient orientations: dense,
    non-negative, bounded (0..218 in the original corpus), heavily
    clustered.  We emulate with clipped scaled Gaussians rounded to
    integers (stored as float64 for uniformity).
    """
    rng = rng_from_seed(seed)
    raw = gaussian_clusters(
        n, d, n_clusters=n_clusters, cluster_std=0.2, center_scale=40.0, seed=rng
    )
    return np.clip(np.rint(np.abs(raw)), 0, 255).astype(np.float64)


def embedding_like(
    n: int,
    d: int,
    n_clusters: int = 30,
    seed: SeedLike = None,
    normalize: bool = True,
) -> np.ndarray:
    """Dense embedding vectors (GloVe / deep-feature flavour).

    Heavy-ish tails via a Student-t component; optionally row-normalised
    so the angular and Euclidean geometries coincide, as for the paper's
    Deep dataset.
    """
    rng = rng_from_seed(seed)
    base = gaussian_clusters(
        n, d, n_clusters=n_clusters, cluster_std=0.25, center_scale=1.0, seed=rng
    )
    tails = rng.standard_t(df=4, size=(n, d)) * 0.05
    out = base + tails
    if normalize:
        norms = np.linalg.norm(out, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        out = out / norms
    return out


def binary_strings(
    n: int,
    d: int,
    n_clusters: int = 10,
    flip_prob: float = 0.05,
    seed: SeedLike = None,
) -> np.ndarray:
    """Clustered binary vectors for Hamming-space experiments.

    Each cluster has a random binary centre; members flip each bit with
    probability ``flip_prob``.
    """
    if not 0.0 <= flip_prob <= 1.0:
        raise ValueError("flip_prob must be in [0, 1]")
    rng = rng_from_seed(seed)
    centers = rng.integers(0, 2, size=(n_clusters, d))
    labels = rng.integers(0, n_clusters, size=n)
    flips = rng.random(size=(n, d)) < flip_prob
    return np.bitwise_xor(centers[labels], flips.astype(np.int64)).astype(np.int64)


def sparse_sets(
    n: int,
    universe: int,
    avg_size: int = 32,
    n_clusters: int = 10,
    overlap: float = 0.7,
    seed: SeedLike = None,
) -> np.ndarray:
    """Clustered sparse indicator vectors for Jaccard experiments.

    Each cluster owns a pool of ``avg_size / overlap`` items; a member
    draws ``~avg_size`` items mostly from the pool, with the rest sampled
    from the whole universe.
    """
    if not 0.0 < overlap <= 1.0:
        raise ValueError("overlap must be in (0, 1]")
    rng = rng_from_seed(seed)
    pool_size = max(1, int(avg_size / overlap))
    pools = [rng.choice(universe, size=min(pool_size, universe), replace=False)
             for _ in range(n_clusters)]
    out = np.zeros((n, universe), dtype=np.int64)
    labels = rng.integers(0, n_clusters, size=n)
    for i in range(n):
        pool = pools[labels[i]]
        n_from_pool = min(len(pool), max(1, int(round(avg_size * overlap))))
        chosen = rng.choice(pool, size=n_from_pool, replace=False)
        n_noise = max(0, avg_size - n_from_pool)
        if n_noise:
            noise = rng.integers(0, universe, size=n_noise)
            chosen = np.concatenate([chosen, noise])
        out[i, chosen] = 1
    return out


def split_queries(
    data: np.ndarray, n_queries: int, seed: SeedLike = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Split ``data`` into (base, queries) by sampling rows without replacement.

    Mirrors the paper's protocol of drawing queries from the test split of
    each corpus: queries are held out of the indexed set.
    """
    data = np.asarray(data)
    n = len(data)
    if not 0 < n_queries < n:
        raise ValueError(f"n_queries must be in (0, {n}), got {n_queries}")
    rng = rng_from_seed(seed)
    idx = rng.permutation(n)
    q_idx, base_idx = idx[:n_queries], idx[n_queries:]
    return data[base_idx], data[q_idx]

"""Common interface shared by LCCS-LSH and every baseline index.

All approximate (and exact) nearest-neighbour indexes in this library
implement :class:`ANNIndex`: ``fit(data)`` then ``query(q, k)`` returning
``(ids, distances)`` sorted by ascending true distance.  The base class
owns input validation, candidate verification against the raw vectors,
wall-clock accounting, and machine-independent work counters (candidates
verified, hash evaluations) that the benchmark harness reports alongside
times.

**Thread safety:** indexes are single-threaded objects — ``query``
mutates ``last_stats`` and dynamic indexes rewrite internal structures.
To share one across threads, wrap it via :meth:`ANNIndex.concurrent`
(many parallel readers, exclusive writers, no writer starvation) or
serve it through :class:`repro.serve.ANNService` (adds a version-keyed
query cache and micro-batching on top of the locks).
"""

from __future__ import annotations

import abc
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.distances import pairwise, pairwise_rows

__all__ = ["ANNIndex"]


class ANNIndex(abc.ABC):
    """Abstract nearest-neighbour index.

    Subclasses implement ``_fit`` and ``_query``; the public ``fit`` /
    ``query`` wrappers validate inputs, keep the raw data for candidate
    verification, and record ``build_time`` and per-query statistics in
    ``last_stats``.

    Args:
        dim: vector dimensionality the index accepts.
        metric: distance metric name (see :mod:`repro.distances`).
        seed: RNG seed for any randomised components.
    """

    #: human-readable method name, overridden by subclasses
    name: str = "ann-index"

    def __init__(self, dim: int, metric: str = "euclidean", seed: Optional[int] = None):
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = int(dim)
        self.metric = metric
        self.seed = seed
        self.build_time: float = 0.0
        self.last_stats: Dict[str, float] = {}
        self._data: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of indexed points (0 before ``fit``)."""
        return 0 if self._data is None else len(self._data)

    @property
    def is_fitted(self) -> bool:
        return self._data is not None

    def fit(self, data: np.ndarray) -> "ANNIndex":
        """Build the index over ``data`` of shape ``(n, dim)``."""
        data = np.asarray(data)
        if data.ndim != 2:
            raise ValueError(f"data must be 2-d, got shape {data.shape}")
        if data.shape[0] == 0:
            raise ValueError("cannot index an empty dataset")
        if data.shape[1] != self.dim:
            raise ValueError(
                f"data has dim {data.shape[1]}, index expects {self.dim}"
            )
        self._data = data
        start = time.perf_counter()
        self._fit(data)
        self.build_time = time.perf_counter() - start
        return self

    def query(
        self, q: np.ndarray, k: int = 1, **kwargs
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Approximate top-``k``: returns ``(ids, distances)``.

        Both arrays are sorted by ascending distance and may be shorter
        than ``k`` if the index surfaced fewer candidates.
        """
        if not self.is_fitted:
            raise RuntimeError("index must be fitted before querying")
        q = np.asarray(q)
        if q.shape != (self.dim,):
            raise ValueError(f"query must have shape ({self.dim},), got {q.shape}")
        if k <= 0:
            raise ValueError("k must be positive")
        self.last_stats = {}
        return self._query(q, k, **kwargs)

    def batch_query(
        self, queries: np.ndarray, k: int = 1, **kwargs
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Query every row; results padded with ``-1`` / ``inf`` to ``k``.

        Dispatches to the subclass :meth:`_batch_query` hook — vectorised
        top-to-bottom for the LCCS family, a per-query loop elsewhere —
        and always returns the same ids and distances as calling
        :meth:`query` row by row.  After the call ``last_stats`` holds
        work counters summed over the whole batch.
        """
        if not self.is_fitted:
            raise RuntimeError("index must be fitted before querying")
        queries = np.asarray(queries)
        if queries.ndim != 2:
            raise ValueError("queries must be 2-d")
        if queries.shape[1] != self.dim:
            raise ValueError(
                f"queries have dim {queries.shape[1]}, index expects {self.dim}"
            )
        if k <= 0:
            raise ValueError("k must be positive")
        self.last_stats = {}
        results = self._batch_query(queries, k, **kwargs)
        ids = np.full((len(queries), k), -1, dtype=np.int64)
        dists = np.full((len(queries), k), np.inf)
        for i, (qi, qd) in enumerate(results):
            ids[i, : len(qi)] = qi
            dists[i, : len(qd)] = qd
        return ids, dists

    def index_size_bytes(self) -> int:
        """Memory used by the *index structures* (excludes the raw data)."""
        return 0

    def save(self, path: str) -> None:
        """Persist the index (including the raw data) as a bundle at ``path``.

        The bundle is a directory holding ``manifest.json`` plus one raw
        ``.npy`` file per array (format v2; see
        :mod:`repro.serve.persistence`), so it can be reopened with
        ``load(path, mmap=True)`` without reading the payload.  Indexes
        implementing the :meth:`_export_state` / :meth:`_import_state`
        hooks are written natively (no pickle anywhere); the rest go
        through the documented pickle fallback inside the same bundle
        layout.
        """
        from repro.serve.persistence import save_index

        save_index(self, path)

    @staticmethod
    def load(path: str, mmap: bool = False) -> "ANNIndex":
        """Load an index previously written by :meth:`save`.

        Accepts a bundle directory (raising
        :class:`repro.serve.persistence.BundleError` on corrupt or
        wrong-version bundles) or, for backward compatibility, a legacy
        single-file pickle.  With ``mmap=True`` a format-v2 bundle opens
        as read-only memory maps — servable in milliseconds, with the
        OS page cache holding the only copy of the arrays — and answers
        queries byte-identically to an eager load.
        """
        from repro.serve.persistence import load_index

        return load_index(path, mmap=mmap)

    def concurrent(self) -> "repro.serve.concurrency.ConcurrentIndex":
        """Wrap this index in a thread-safe reader-writer facade.

        The returned :class:`~repro.serve.concurrency.ConcurrentIndex`
        runs ``query``/``batch_query`` under a shared lock (parallel
        readers) and ``insert``/``delete``/``fit`` under an exclusive
        lock with writer preference, and versions every write.  Use the
        wrapper exclusively afterwards — touching this index directly
        from another thread bypasses the locks.
        """
        from repro.serve.concurrency import ConcurrentIndex

        return ConcurrentIndex(self)

    # ------------------------------------------------------------------
    # Hooks and helpers for subclasses
    # ------------------------------------------------------------------

    def _export_state(self) -> Tuple[dict, Dict[str, np.ndarray]]:
        """Split the index into JSON-safe metadata and named arrays.

        Native-persistence hook: return ``(state, arrays)`` where
        ``state`` survives a JSON round trip and ``arrays`` maps names to
        numpy arrays; common fields (``dim``, ``metric``, ``seed``,
        ``build_time``, ``last_stats``) are recorded by the caller and
        must not be duplicated here.  The default raises
        ``NotImplementedError``, which makes ``save`` fall back to the
        documented pickle serializer.
        """
        raise NotImplementedError

    @classmethod
    def _import_state(
        cls, manifest: dict, arrays: Dict[str, np.ndarray]
    ) -> "ANNIndex":
        """Rebuild an index from a bundle's manifest and arrays.

        Counterpart of :meth:`_export_state`; ``manifest["state"]`` holds
        the subclass metadata and ``manifest`` itself the common fields.
        Implementations must reproduce an index whose queries are
        byte-identical to the saved one's.
        """
        raise NotImplementedError

    @abc.abstractmethod
    def _fit(self, data: np.ndarray) -> None:
        """Build index structures; ``data`` is already validated."""

    @abc.abstractmethod
    def _query(
        self, q: np.ndarray, k: int, **kwargs
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Answer one validated query."""

    @staticmethod
    def _stats_items(stats: Dict[str, float]) -> List[Tuple[str, float]]:
        """Best-effort snapshot of a possibly-racing ``last_stats`` dict.

        ``last_stats`` is per-query scratch and inherently racy under
        parallel readers (e.g. behind
        :class:`~repro.serve.concurrency.ConcurrentIndex`); a concurrent
        reset mid-iteration must degrade the *counters*, never fail the
        query.  Exact aggregate counters for concurrent serving live in
        ``ConcurrentIndex.stats()``.
        """
        try:
            return list(stats.items())
        except RuntimeError:  # dict mutated by a parallel reader
            return []

    def _batch_query(
        self, queries: np.ndarray, k: int, **kwargs
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Answer a validated query batch: one ``(ids, dists)`` per row.

        The default loops :meth:`_query`; indexes with a vectorised path
        override it.  Implementations must return exactly what the
        single-query path would (the equivalence the test suite pins
        down) and accumulate work counters into ``last_stats`` as batch
        totals.
        """
        out: List[Tuple[np.ndarray, np.ndarray]] = []
        acc: Dict[str, float] = {}
        for q in queries:
            # Single-query implementations overwrite last_stats per call;
            # reset before each and sum after so the batch contract
            # (counters are batch totals) holds for every index.
            self.last_stats = {}
            out.append(self._query(np.asarray(q), k, **kwargs))
            for key, val in self._stats_items(self.last_stats):
                acc[key] = acc.get(key, 0.0) + float(val)
        self.last_stats = acc
        return out

    def _verify(
        self, candidate_ids: np.ndarray, q: np.ndarray, k: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Rank candidates by true distance and keep the best ``k``.

        Updates ``last_stats['candidates']``; deduplicates ids; ties are
        broken by id for determinism.
        """
        candidate_ids = np.unique(np.asarray(candidate_ids, dtype=np.int64))
        self.last_stats["candidates"] = self.last_stats.get("candidates", 0.0) + len(
            candidate_ids
        )
        if len(candidate_ids) == 0:
            return np.empty(0, dtype=np.int64), np.empty(0)
        dists = pairwise(self._data[candidate_ids], q, self.metric)
        order = np.lexsort((candidate_ids, dists))[: min(k, len(candidate_ids))]
        return candidate_ids[order], dists[order]

    def _verify_batch(
        self,
        candidate_ids_per_query: Sequence[np.ndarray],
        queries: np.ndarray,
        k: int,
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Rank every query's candidates with one fused distance kernel.

        The candidates of all queries are gathered into a single matrix
        and ranked via one :func:`pairwise_rows` call per batch instead
        of one :func:`pairwise` call per query.  Per query the output
        (ids, distances, tie-breaks) is identical to :meth:`_verify`.
        """
        uniq = [
            np.unique(np.asarray(c, dtype=np.int64))
            for c in candidate_ids_per_query
        ]
        counts = np.array([len(u) for u in uniq], dtype=np.int64)
        self.last_stats["candidates"] = self.last_stats.get(
            "candidates", 0.0
        ) + float(counts.sum())
        empty = (np.empty(0, dtype=np.int64), np.empty(0))
        if counts.sum() == 0:
            return [empty for _ in uniq]
        flat_ids = np.concatenate(uniq)
        rep_queries = np.repeat(np.asarray(queries), counts, axis=0)
        flat_dists = pairwise_rows(
            self._data[flat_ids], rep_queries, self.metric
        )
        offsets = np.concatenate([[0], np.cumsum(counts)])
        out: List[Tuple[np.ndarray, np.ndarray]] = []
        for i, u in enumerate(uniq):
            if len(u) == 0:
                out.append(empty)
                continue
            d = flat_dists[offsets[i] : offsets[i + 1]]
            order = np.lexsort((u, d))[: min(k, len(u))]
            out.append((u[order], d[order]))
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = f"n={self.n}" if self.is_fitted else "unfitted"
        return f"{type(self).__name__}(dim={self.dim}, metric={self.metric!r}, {state})"

"""Common interface shared by LCCS-LSH and every baseline index.

All approximate (and exact) nearest-neighbour indexes in this library
implement :class:`ANNIndex`: ``fit(data)`` then ``query(q, k)`` returning
``(ids, distances)`` sorted by ascending true distance.  The base class
owns input validation, candidate verification against the raw vectors,
wall-clock accounting, and machine-independent work counters (candidates
verified, hash evaluations) that the benchmark harness reports alongside
times.
"""

from __future__ import annotations

import abc
import pickle
import time
from typing import Dict, Optional, Tuple

import numpy as np

from repro.distances import pairwise

__all__ = ["ANNIndex"]


class ANNIndex(abc.ABC):
    """Abstract nearest-neighbour index.

    Subclasses implement ``_fit`` and ``_query``; the public ``fit`` /
    ``query`` wrappers validate inputs, keep the raw data for candidate
    verification, and record ``build_time`` and per-query statistics in
    ``last_stats``.

    Args:
        dim: vector dimensionality the index accepts.
        metric: distance metric name (see :mod:`repro.distances`).
        seed: RNG seed for any randomised components.
    """

    #: human-readable method name, overridden by subclasses
    name: str = "ann-index"

    def __init__(self, dim: int, metric: str = "euclidean", seed: Optional[int] = None):
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = int(dim)
        self.metric = metric
        self.seed = seed
        self.build_time: float = 0.0
        self.last_stats: Dict[str, float] = {}
        self._data: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of indexed points (0 before ``fit``)."""
        return 0 if self._data is None else len(self._data)

    @property
    def is_fitted(self) -> bool:
        return self._data is not None

    def fit(self, data: np.ndarray) -> "ANNIndex":
        """Build the index over ``data`` of shape ``(n, dim)``."""
        data = np.asarray(data)
        if data.ndim != 2:
            raise ValueError(f"data must be 2-d, got shape {data.shape}")
        if data.shape[0] == 0:
            raise ValueError("cannot index an empty dataset")
        if data.shape[1] != self.dim:
            raise ValueError(
                f"data has dim {data.shape[1]}, index expects {self.dim}"
            )
        self._data = data
        start = time.perf_counter()
        self._fit(data)
        self.build_time = time.perf_counter() - start
        return self

    def query(
        self, q: np.ndarray, k: int = 1, **kwargs
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Approximate top-``k``: returns ``(ids, distances)``.

        Both arrays are sorted by ascending distance and may be shorter
        than ``k`` if the index surfaced fewer candidates.
        """
        if self._data is None:
            raise RuntimeError("index must be fitted before querying")
        q = np.asarray(q)
        if q.shape != (self.dim,):
            raise ValueError(f"query must have shape ({self.dim},), got {q.shape}")
        if k <= 0:
            raise ValueError("k must be positive")
        self.last_stats = {}
        return self._query(q, k, **kwargs)

    def batch_query(
        self, queries: np.ndarray, k: int = 1, **kwargs
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Query every row; results padded with ``-1`` / ``inf`` to ``k``."""
        queries = np.asarray(queries)
        if queries.ndim != 2:
            raise ValueError("queries must be 2-d")
        ids = np.full((len(queries), k), -1, dtype=np.int64)
        dists = np.full((len(queries), k), np.inf)
        for i, q in enumerate(queries):
            qi, qd = self.query(q, k, **kwargs)
            ids[i, : len(qi)] = qi
            dists[i, : len(qd)] = qd
        return ids, dists

    def index_size_bytes(self) -> int:
        """Memory used by the *index structures* (excludes the raw data)."""
        return 0

    def save(self, path: str) -> None:
        """Persist the fitted index (including the raw data) to ``path``."""
        with open(path, "wb") as f:
            pickle.dump(self, f, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def load(path: str) -> "ANNIndex":
        """Load an index previously written by :meth:`save`."""
        with open(path, "rb") as f:
            index = pickle.load(f)
        if not isinstance(index, ANNIndex):
            raise TypeError(f"{path} does not contain an ANNIndex")
        return index

    # ------------------------------------------------------------------
    # Hooks and helpers for subclasses
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def _fit(self, data: np.ndarray) -> None:
        """Build index structures; ``data`` is already validated."""

    @abc.abstractmethod
    def _query(
        self, q: np.ndarray, k: int, **kwargs
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Answer one validated query."""

    def _verify(
        self, candidate_ids: np.ndarray, q: np.ndarray, k: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Rank candidates by true distance and keep the best ``k``.

        Updates ``last_stats['candidates']``; deduplicates ids; ties are
        broken by id for determinism.
        """
        candidate_ids = np.unique(np.asarray(candidate_ids, dtype=np.int64))
        self.last_stats["candidates"] = self.last_stats.get("candidates", 0.0) + len(
            candidate_ids
        )
        if len(candidate_ids) == 0:
            return np.empty(0, dtype=np.int64), np.empty(0)
        dists = pairwise(self._data[candidate_ids], q, self.metric)
        order = np.lexsort((candidate_ids, dists))[: min(k, len(candidate_ids))]
        return candidate_ids[order], dists[order]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = f"n={self.n}" if self.is_fitted else "unfitted"
        return f"{type(self).__name__}(dim={self.dim}, metric={self.metric!r}, {state})"

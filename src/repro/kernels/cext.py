"""C kernel backend: compiled on first use, loaded through ``ctypes``.

Same algorithms as :mod:`repro.kernels.reference` expressed as plain
C99 loops.  The source below is compiled once per machine with the
system C compiler (``cc``/``gcc``/``clang``, whichever answers) into a
shared object cached under ``~/.cache/repro-kernels/`` keyed by a hash
of the source, so subsequent imports pay only a ``dlopen``.  No build
step, no new dependency: when no compiler is present the backend
reports itself unavailable and the registry falls back to NumPy.

Byte-identity notes (why the C loops cannot diverge):

* the CSA kernels compare and copy **int64 hash characters** only —
  integer comparisons have one answer on every platform;
* the merge orders walks by the same packed ``(-lcp, sid, shift,
  rank)`` int64 keys the reference builds, decoded back from the key;
* verification never re-computes float distances: ``gather_diff`` only
  performs the IEEE-exact elementwise subtraction (the reduction stays
  on the shared NumPy ``einsum``), ``topk_select`` only *compares*
  float64 values produced by the shared kernels, and the popcount path
  is integer-exact.  The whole file is compiled without
  ``-ffast-math``; there is no floating-point arithmetic to contract.

All entry points are pure functions over caller-owned buffers (the
only scratch is a per-call heap), so parallel readers behind
``ConcurrentIndex`` can run them concurrently — ``ctypes`` drops the
GIL for the duration of each call.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["make_cext_backend", "CExtBackend"]

_C_SOURCE = r"""
#include <stdint.h>

static int64_t clip64(int64_t v, int64_t lo, int64_t hi) {
    return v < lo ? lo : (v > hi ? hi : v);
}

/* Lexicographic compare of a stored rotation against a rotated query.
   Returns -1/0/+1; *lcp gets the first-mismatch index (m when equal). */
static int cmp_rot(const int64_t *row, const int64_t *q, int64_t m,
                   int64_t *lcp) {
    int64_t j;
    for (j = 0; j < m; j++) {
        if (row[j] != q[j]) {
            if (lcp) *lcp = j;
            return row[j] < q[j] ? -1 : 1;
        }
    }
    if (lcp) *lcp = m;
    return 0;
}

static void search_one(const int64_t *doubled, const int64_t *idxs,
                       int64_t n, int64_t m, int64_t s, const int64_t *q,
                       int64_t lo, int64_t hi, int64_t *pl, int64_t *pu,
                       int64_t *ll, int64_t *lu) {
    int64_t two_m = 2 * m;
    while (lo < hi) {
        int64_t mid = (lo + hi) >> 1;
        const int64_t *row = doubled + idxs[mid] * two_m + s;
        if (cmp_rot(row, q, m, 0) <= 0) lo = mid + 1; else hi = mid;
    }
    *pu = lo;
    *pl = lo - 1;
    *ll = 0;
    *lu = 0;
    if (*pl >= 0)
        cmp_rot(doubled + idxs[*pl] * two_m + s, q, m, ll);
    if (*pu < n)
        cmp_rot(doubled + idxs[*pu] * two_m + s, q, m, lu);
}

/* Kernel 1a: independent windowed bisections (the multi-probe lanes). */
void repro_search_lanes(const int64_t *doubled, const int64_t *sorted_idx,
                        int64_t n, int64_t m, int64_t B,
                        const int64_t *shifts, const int64_t *q_rots,
                        const int64_t *lo_in, const int64_t *hi_in,
                        int64_t *pos_lower, int64_t *pos_upper,
                        int64_t *len_lower, int64_t *len_upper) {
    int64_t b;
    for (b = 0; b < B; b++) {
        int64_t s = shifts[b];
        search_one(doubled, sorted_idx + s * n, n, m, s, q_rots + b * m,
                   lo_in[b], hi_in[b], pos_lower + b, pos_upper + b,
                   len_lower + b, len_upper + b);
    }
}

/* Kernel 1b: phase 1 of Algorithm 2 for a whole batch, with Lemma 3.1
   windowing through the next links. */
void repro_search_all(const int64_t *doubled, const int64_t *sorted_idx,
                      const int64_t *next_link, int64_t n, int64_t m,
                      int64_t Q, const int64_t *qds, int64_t *pos_lower,
                      int64_t *pos_upper, int64_t *len_lower,
                      int64_t *len_upper) {
    int64_t qi, s;
    for (qi = 0; qi < Q; qi++) {
        const int64_t *qd = qds + qi * 2 * m;
        int64_t *pl = pos_lower + qi * m;
        int64_t *pu = pos_upper + qi * m;
        int64_t *ll = len_lower + qi * m;
        int64_t *lu = len_upper + qi * m;
        for (s = 0; s < m; s++) {
            int64_t lo = 0, hi = n;
            if (s > 0 && ll[s - 1] >= 1 && lu[s - 1] >= 1) {
                const int64_t *nl = next_link + (s - 1) * n;
                int64_t wlo = nl[clip64(pl[s - 1], 0, n - 1)];
                int64_t whi = nl[clip64(pu[s - 1], 0, n - 1)];
                if (wlo > whi) { wlo = 0; whi = n - 1; } /* defensive */
                lo = wlo;
                hi = whi + 1;
            }
            search_one(doubled, sorted_idx + s * n, n, m, s, qd + s, lo, hi,
                       pl + s, pu + s, ll + s, lu + s);
        }
    }
}

static void sift_down(uint64_t *hkey, int32_t *hdir, int64_t hs, int64_t i) {
    for (;;) {
        int64_t l = 2 * i + 1, r = l + 1, sm = i;
        if (l < hs && hkey[l] < hkey[sm]) sm = l;
        if (r < hs && hkey[r] < hkey[sm]) sm = r;
        if (sm == i) return;
        uint64_t tk = hkey[i]; hkey[i] = hkey[sm]; hkey[sm] = tk;
        int32_t td = hdir[i]; hdir[i] = hdir[sm]; hdir[sm] = td;
        i = sm;
    }
}

static void sift_up(uint64_t *hkey, int32_t *hdir, int64_t i) {
    while (i > 0) {
        int64_t p = (i - 1) / 2;
        if (hkey[p] <= hkey[i]) return;
        uint64_t tk = hkey[i]; hkey[i] = hkey[p]; hkey[p] = tk;
        int32_t td = hdir[i]; hdir[i] = hdir[p]; hdir[p] = td;
        i = p;
    }
}

/* Kernel 2: walk-tournament merge with packed (-lcp, sid, shift, rank)
   keys.  hkey/hdir are caller scratch of size 2m; seen_epoch is a
   caller-zeroed int32[n].  All fields decode back from the key, so the
   heap carries only (key, direction). */
void repro_merge_tournament(const int64_t *doubled, const int64_t *sorted_idx,
                            int64_t n, int64_t m, int64_t Q, int64_t k,
                            const int64_t *qd_table, const int64_t *pos_lower,
                            const int64_t *pos_upper, const int64_t *len_lower,
                            const int64_t *len_upper, int64_t sh_shift,
                            int64_t sh_sid, int64_t sh_len, int64_t *out_ids,
                            int64_t *out_lens, int64_t *out_cnt,
                            uint64_t *hkey, int32_t *hdir,
                            int32_t *seen_epoch) {
    int64_t kcap = k < n ? k : n;
    uint64_t mask_pos = (((uint64_t)1) << sh_shift) - 1;
    uint64_t mask_shift = (((uint64_t)1) << (sh_sid - sh_shift)) - 1;
    uint64_t mask_sid = (((uint64_t)1) << (sh_len - sh_sid)) - 1;
    int64_t two_m = 2 * m;
    int64_t qi, s;
    for (qi = 0; qi < Q; qi++) {
        const int64_t *qd = qd_table + qi * two_m;
        int64_t hs = 0;
        for (s = 0; s < m; s++) {
            int64_t pl = pos_lower[qi * m + s];
            int64_t pu = pos_upper[qi * m + s];
            if (pl >= 0) {
                uint64_t sid = (uint64_t)sorted_idx[s * n + pl];
                uint64_t key = ((uint64_t)(m - len_lower[qi * m + s]) << sh_len)
                             | (sid << sh_sid)
                             | ((uint64_t)s << sh_shift) | (uint64_t)pl;
                hkey[hs] = key; hdir[hs] = -1; sift_up(hkey, hdir, hs); hs++;
            }
            if (pu < n) {
                uint64_t sid = (uint64_t)sorted_idx[s * n + pu];
                uint64_t key = ((uint64_t)(m - len_upper[qi * m + s]) << sh_len)
                             | (sid << sh_sid)
                             | ((uint64_t)s << sh_shift) | (uint64_t)pu;
                hkey[hs] = key; hdir[hs] = 1; sift_up(hkey, hdir, hs); hs++;
            }
        }
        int32_t epoch = (int32_t)(qi + 1);
        int64_t cnt = 0;
        while (hs > 0 && cnt < kcap) {
            uint64_t key = hkey[0];
            int32_t dir = hdir[0];
            int64_t pos = (int64_t)(key & mask_pos);
            int64_t sh = (int64_t)((key >> sh_shift) & mask_shift);
            int64_t sid = (int64_t)((key >> sh_sid) & mask_sid);
            int64_t len = m - (int64_t)(key >> sh_len);
            if (seen_epoch[sid] != epoch) {
                seen_epoch[sid] = epoch;
                out_ids[qi * kcap + cnt] = sid;
                out_lens[qi * kcap + cnt] = len;
                cnt++;
            }
            int64_t npos = pos + dir;
            if (npos >= 0 && npos < n) {
                int64_t nsid = sorted_idx[sh * n + npos];
                const int64_t *row = doubled + nsid * two_m + sh;
                const int64_t *q = qd + sh;
                int64_t nlen = m, j;
                for (j = 0; j < m; j++) {
                    if (row[j] != q[j]) { nlen = j; break; }
                }
                hkey[0] = ((uint64_t)(m - nlen) << sh_len)
                        | ((uint64_t)nsid << sh_sid)
                        | ((uint64_t)sh << sh_shift) | (uint64_t)npos;
                /* dir unchanged */
                sift_down(hkey, hdir, hs, 0);
            } else {
                hs--;
                hkey[0] = hkey[hs];
                hdir[0] = hdir[hs];
                if (hs > 0) sift_down(hkey, hdir, hs, 0);
            }
        }
        out_cnt[qi] = cnt;
    }
}

/* Kernel 3a: fused gather-and-subtract for float64 verification.
   out[r,:] = data[ids[r],:] - queries[owner[r],:] — elementwise IEEE
   subtraction only; the reduction stays on the shared NumPy einsum. */
void repro_gather_diff(const double *data, int64_t d, const int64_t *ids,
                       const int64_t *owner, int64_t rows,
                       const double *queries, double *out) {
    int64_t r, j;
    for (r = 0; r < rows; r++) {
        const double *a = data + ids[r] * d;
        const double *b = queries + owner[r] * d;
        double *o = out + r * d;
        for (j = 0; j < d; j++) o[j] = a[j] - b[j];
    }
}

/* Kernel 3b: row-wise Hamming distance over bit-packed uint64 words. */
void repro_hamming_packed(const uint64_t *a, const uint64_t *b, int64_t rows,
                          int64_t words, double *out) {
    int64_t r, w;
    for (r = 0; r < rows; r++) {
        uint64_t c = 0;
        for (w = 0; w < words; w++)
            c += (uint64_t)__builtin_popcountll(a[r * words + w]
                                                ^ b[r * words + w]);
        out[r] = (double)c;
    }
}

/* Kernel 3c: per-segment top-k selection by ascending (dist, id) —
   the order np.lexsort((ids, dists)) produces for distinct pairs. */
void repro_topk_select(const double *dists, const int64_t *ids,
                       const int64_t *offsets, int64_t Q, int64_t k,
                       int64_t *out_ids, double *out_dists,
                       int64_t *out_cnt) {
    int64_t qi, i, j;
    for (qi = 0; qi < Q; qi++) {
        int64_t lo = offsets[qi], hi = offsets[qi + 1], cnt = 0;
        double *bd = out_dists + qi * k;
        int64_t *bi = out_ids + qi * k;
        for (i = lo; i < hi; i++) {
            double d = dists[i];
            int64_t id = ids[i];
            if (cnt == k) {
                double ld = bd[k - 1];
                if (!(d < ld || (d == ld && id < bi[k - 1]))) continue;
                cnt--;
            }
            j = cnt;
            while (j > 0 && (d < bd[j - 1]
                             || (d == bd[j - 1] && id < bi[j - 1]))) {
                bd[j] = bd[j - 1];
                bi[j] = bi[j - 1];
                j--;
            }
            bd[j] = d;
            bi[j] = id;
            cnt++;
        }
        out_cnt[qi] = cnt;
    }
}
"""

_I64 = ctypes.POINTER(ctypes.c_int64)
_U64 = ctypes.POINTER(ctypes.c_uint64)
_I32 = ctypes.POINTER(ctypes.c_int32)
_F64 = ctypes.POINTER(ctypes.c_double)
_L = ctypes.c_int64


def _ptr(arr: np.ndarray, ctype):
    return arr.ctypes.data_as(ctype)


def _cache_dir() -> str:
    root = os.environ.get("REPRO_KERNEL_CACHE")
    if not root:
        root = os.path.join(
            os.environ.get("XDG_CACHE_HOME")
            or os.path.join(os.path.expanduser("~"), ".cache"),
            "repro-kernels",
        )
    return root


def _compile_library() -> str:
    """Compile (or reuse) the shared object; returns its path."""
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    cache = _cache_dir()
    lib_path = os.path.join(cache, f"repro_kernels_{digest}.so")
    if os.path.exists(lib_path):
        return lib_path
    compiler = (
        os.environ.get("CC")
        or shutil.which("cc")
        or shutil.which("gcc")
        or shutil.which("clang")
    )
    if compiler is None:
        raise RuntimeError("no C compiler found (cc/gcc/clang)")
    os.makedirs(cache, exist_ok=True)
    with tempfile.TemporaryDirectory(dir=cache) as tmp:
        src = os.path.join(tmp, "repro_kernels.c")
        with open(src, "w") as f:
            f.write(_C_SOURCE)
        out = os.path.join(tmp, "repro_kernels.so")
        base = [compiler, "-O3", "-fPIC", "-shared", "-std=c99", src, "-o", out]
        # -march=native helps popcount; retry without it for compilers
        # or targets that reject the flag.
        for cmd in (base[:1] + ["-march=native"] + base[1:], base):
            proc = subprocess.run(cmd, capture_output=True, text=True)
            if proc.returncode == 0:
                break
        else:
            raise RuntimeError(
                f"kernel compilation failed: {proc.stderr.strip()[:500]}"
            )
        # Atomic publish: another process racing to the same path sees
        # either nothing or a complete library.
        os.replace(out, lib_path)
    return lib_path


def _load_library() -> ctypes.CDLL:
    lib = ctypes.CDLL(_compile_library())
    lib.repro_search_lanes.restype = None
    lib.repro_search_lanes.argtypes = [
        _I64, _I64, _L, _L, _L, _I64, _I64, _I64, _I64, _I64, _I64, _I64, _I64,
    ]
    lib.repro_search_all.restype = None
    lib.repro_search_all.argtypes = [
        _I64, _I64, _I64, _L, _L, _L, _I64, _I64, _I64, _I64, _I64,
    ]
    lib.repro_merge_tournament.restype = None
    lib.repro_merge_tournament.argtypes = [
        _I64, _I64, _L, _L, _L, _L, _I64, _I64, _I64, _I64, _I64,
        _L, _L, _L, _I64, _I64, _I64, _U64, _I32, _I32,
    ]
    lib.repro_gather_diff.restype = None
    lib.repro_gather_diff.argtypes = [_F64, _L, _I64, _I64, _L, _F64, _F64]
    lib.repro_hamming_packed.restype = None
    lib.repro_hamming_packed.argtypes = [_U64, _U64, _L, _L, _F64]
    lib.repro_topk_select.restype = None
    lib.repro_topk_select.argtypes = [_F64, _I64, _I64, _L, _L, _I64, _F64, _I64]
    return lib


class CExtBackend:
    """ctypes facade over the compiled kernels."""

    name = "cext"
    compiled = True

    def __init__(self, lib: ctypes.CDLL):
        self._lib = lib

    # -- CSA kernels ---------------------------------------------------

    def search_lanes(
        self,
        csa,
        shifts: np.ndarray,
        q_rots: np.ndarray,
        lo: Optional[np.ndarray] = None,
        hi: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        doubled, sorted_idx, _ = csa._kernel_arrays()
        B = len(shifts)
        n = csa.n
        shifts = np.ascontiguousarray(shifts, dtype=np.int64)
        q_rots = np.ascontiguousarray(q_rots, dtype=np.int64)
        lo = (
            np.zeros(B, dtype=np.int64)
            if lo is None
            else np.ascontiguousarray(lo, dtype=np.int64)
        )
        hi = (
            np.full(B, n, dtype=np.int64)
            if hi is None
            else np.ascontiguousarray(hi, dtype=np.int64)
        )
        pl = np.empty(B, dtype=np.int64)
        pu = np.empty(B, dtype=np.int64)
        ll = np.empty(B, dtype=np.int64)
        lu = np.empty(B, dtype=np.int64)
        self._lib.repro_search_lanes(
            _ptr(doubled, _I64), _ptr(sorted_idx, _I64), n, csa.m, B,
            _ptr(shifts, _I64), _ptr(q_rots, _I64), _ptr(lo, _I64),
            _ptr(hi, _I64), _ptr(pl, _I64), _ptr(pu, _I64), _ptr(ll, _I64),
            _ptr(lu, _I64),
        )
        return pl, pu, ll, lu

    def search_all(
        self, csa, qds: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        doubled, sorted_idx, next_link = csa._kernel_arrays()
        Q = len(qds)
        n, m = csa.n, csa.m
        qds = np.ascontiguousarray(qds, dtype=np.int64)
        pl = np.empty((Q, m), dtype=np.int64)
        pu = np.empty((Q, m), dtype=np.int64)
        ll = np.empty((Q, m), dtype=np.int64)
        lu = np.empty((Q, m), dtype=np.int64)
        self._lib.repro_search_all(
            _ptr(doubled, _I64), _ptr(sorted_idx, _I64), _ptr(next_link, _I64),
            n, m, Q, _ptr(qds, _I64), _ptr(pl, _I64), _ptr(pu, _I64),
            _ptr(ll, _I64), _ptr(lu, _I64),
        )
        return pl, pu, ll, lu

    def merge_tournament(
        self,
        csa,
        qd_table: np.ndarray,
        bounds_arrays: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        k: int,
        key_shifts: Tuple[int, int, int],
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        doubled, sorted_idx, _ = csa._kernel_arrays()
        pos_lower, pos_upper, len_lower, len_upper = (
            np.ascontiguousarray(a, dtype=np.int64) for a in bounds_arrays
        )
        Q = len(pos_lower)
        n, m = csa.n, csa.m
        if Q == 0:
            return []
        sh_shift, sh_sid, sh_len = key_shifts
        qd_table = np.ascontiguousarray(qd_table[:Q], dtype=np.int64)
        kcap = min(k, n)
        out_ids = np.empty((Q, kcap), dtype=np.int64)
        out_lens = np.empty((Q, kcap), dtype=np.int64)
        out_cnt = np.empty(Q, dtype=np.int64)
        # Per-call scratch keeps the kernel reentrant under parallel
        # readers (ctypes releases the GIL for the call's duration).
        hkey = np.empty(2 * m, dtype=np.uint64)
        hdir = np.empty(2 * m, dtype=np.int32)
        seen = np.zeros(n, dtype=np.int32)
        self._lib.repro_merge_tournament(
            _ptr(doubled, _I64), _ptr(sorted_idx, _I64), n, m, Q, k,
            _ptr(qd_table, _I64), _ptr(pos_lower, _I64), _ptr(pos_upper, _I64),
            _ptr(len_lower, _I64), _ptr(len_upper, _I64),
            sh_shift, sh_sid, sh_len,
            _ptr(out_ids, _I64), _ptr(out_lens, _I64), _ptr(out_cnt, _I64),
            _ptr(hkey, _U64), _ptr(hdir, _I32), _ptr(seen, _I32),
        )
        return [
            (out_ids[qi, : out_cnt[qi]].copy(), out_lens[qi, : out_cnt[qi]].copy())
            for qi in range(Q)
        ]

    # -- verification kernels ------------------------------------------

    def gather_diff(
        self,
        data: np.ndarray,
        flat_ids: np.ndarray,
        owner: np.ndarray,
        queries: np.ndarray,
    ) -> np.ndarray:
        """``data[flat_ids] - queries[owner]`` without the NumPy temps."""
        rows = len(flat_ids)
        out = np.empty((rows, data.shape[1]), dtype=np.float64)
        self._lib.repro_gather_diff(
            _ptr(data, _F64), data.shape[1], _ptr(flat_ids, _I64),
            _ptr(owner, _I64), rows, _ptr(queries, _F64), _ptr(out, _F64),
        )
        return out

    def hamming_packed(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.ascontiguousarray(a, dtype=np.uint64)
        b = np.ascontiguousarray(b, dtype=np.uint64)
        out = np.empty(len(a), dtype=np.float64)
        self._lib.repro_hamming_packed(
            _ptr(a, _U64), _ptr(b, _U64), len(a), a.shape[1], _ptr(out, _F64)
        )
        return out

    def topk_select(
        self,
        flat_ids: np.ndarray,
        flat_dists: np.ndarray,
        offsets: np.ndarray,
        k: int,
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        Q = len(offsets) - 1
        flat_ids = np.ascontiguousarray(flat_ids, dtype=np.int64)
        flat_dists = np.ascontiguousarray(flat_dists, dtype=np.float64)
        offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        out_ids = np.empty((Q, k), dtype=np.int64)
        out_dists = np.empty((Q, k), dtype=np.float64)
        out_cnt = np.empty(Q, dtype=np.int64)
        self._lib.repro_topk_select(
            _ptr(flat_dists, _F64), _ptr(flat_ids, _I64), _ptr(offsets, _I64),
            Q, k, _ptr(out_ids, _I64), _ptr(out_dists, _F64),
            _ptr(out_cnt, _I64),
        )
        return [
            (out_ids[qi, : out_cnt[qi]].copy(), out_dists[qi, : out_cnt[qi]].copy())
            for qi in range(Q)
        ]


def make_cext_backend(reasons: Dict[str, str]) -> Optional[CExtBackend]:
    """Build (compile + dlopen) the backend; None and a reason on failure."""
    try:
        return CExtBackend(_load_library())
    except Exception as exc:  # compiler missing, compile error, bad dlopen
        reasons["cext"] = f"{type(exc).__name__}: {exc}"
        return None

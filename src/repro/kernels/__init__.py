"""Pluggable compiled kernels for the LCCS-LSH hot path.

The three query-time kernels — lock-step CSA bisection, the
walk-tournament merge, and fused candidate verification — are pure
NumPy since PR 1 but remain Python-orchestrated.  This package turns
each into a *backend* behind a tiny registry:

* ``numpy`` — the reference implementation (the exact code the CSA ran
  before this package existed), always available;
* ``numba`` — ``@njit``/``prange`` ports of the same loops, used when
  numba is importable and silently skipped otherwise;
* ``cext`` — the same loops as a small C extension compiled on first
  use with the system C compiler (no build step, no new dependency)
  and loaded through ``ctypes``; silently skipped when no compiler is
  present.

Every backend is **byte-identical to the reference**: identical ids,
identical LCCS lengths, identical distances, identical tie-breaks.
The property tests in ``tests/test_kernel_equivalence.py`` pin this
down, and it is what lets compiled read kernels coexist with the
NumPy paths that writes, rebuilds and persistence keep using.

Selection precedence (first hit wins):

1. explicit ``backend=`` kwarg (``LCCSLSH(..., backend="numba")``);
2. a process-wide default installed by :func:`set_default_backend`
   (what the CLI ``--backend`` flag calls);
3. the ``REPRO_BACKEND`` environment variable;
4. ``"numpy"``.

A *known but unavailable* backend (numba not installed, no C compiler)
falls back to NumPy silently — the documented behavior that keeps
bundles and scripts portable across machines.  An *unknown* name
raises ``ValueError`` when requested explicitly; coming from the
environment it is ignored (a typo in a login profile must not break
every import).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

__all__ = [
    "BACKEND_ENV_VAR",
    "KNOWN_BACKENDS",
    "available_backends",
    "get_backend",
    "resolve_backend",
    "set_default_backend",
]

BACKEND_ENV_VAR = "REPRO_BACKEND"

#: registry order is also the documentation order
KNOWN_BACKENDS = ("numpy", "numba", "cext")

_instances: Dict[str, object] = {}
_unavailable: Dict[str, str] = {}
_default_override: Optional[str] = None


def _make(name: str):
    """Instantiate a backend, returning None (with a reason) if unavailable."""
    if name == "numpy":
        from repro.kernels.reference import NumpyBackend

        return NumpyBackend()
    if name == "numba":
        from repro.kernels.numba_backend import make_numba_backend

        return make_numba_backend(_unavailable)
    if name == "cext":
        from repro.kernels.cext import make_cext_backend

        return make_cext_backend(_unavailable)
    raise ValueError(
        f"unknown kernel backend {name!r}; known: {list(KNOWN_BACKENDS)}"
    )


def get_backend(name: str):
    """The backend instance for ``name``, or ``None`` if unavailable.

    Raises ``ValueError`` for names outside :data:`KNOWN_BACKENDS`.
    """
    if name not in KNOWN_BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r}; known: {list(KNOWN_BACKENDS)}"
        )
    if name not in _instances:
        _instances[name] = _make(name)
    return _instances[name]


def available_backends() -> List[str]:
    """Names of the backends usable in this process, registry order."""
    return [name for name in KNOWN_BACKENDS if get_backend(name) is not None]


def unavailable_reason(name: str) -> Optional[str]:
    """Why ``name`` is unavailable (import/compile error), or None."""
    get_backend(name)
    return _unavailable.get(name)


def set_default_backend(name: Optional[str]) -> str:
    """Install a process-wide default (the CLI ``--backend`` hook).

    ``None`` clears the override.  Returns the name the default
    *resolves* to right now (e.g. ``"numpy"`` when numba was requested
    but is not importable).
    """
    global _default_override
    if name is not None and name not in KNOWN_BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r}; known: {list(KNOWN_BACKENDS)}"
        )
    _default_override = name
    return resolve_backend(None).name


def resolve_backend(name: Optional[str] = None):
    """Resolve a backend request into a live backend instance.

    ``name=None`` applies the precedence chain (CLI default, then
    ``REPRO_BACKEND``, then numpy).  Explicit unknown names raise;
    unknown names from the environment are ignored; known-but-
    unavailable backends fall back to NumPy silently.
    """
    if name is None:
        name = _default_override
    if name is None:
        env = os.environ.get(BACKEND_ENV_VAR, "").strip()
        if env in KNOWN_BACKENDS:
            name = env
    if name is None:
        name = "numpy"
    backend = get_backend(name)
    if backend is None:  # known but unavailable: documented silent fallback
        backend = get_backend("numpy")
    return backend

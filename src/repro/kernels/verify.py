"""Fused candidate verification for the kernel backends.

:func:`verify_batch` replaces :meth:`repro.base.ANNIndex._verify_batch`
for the LCCS family.  Its contract is strict: per query the returned
``(ids, distances)`` are **byte-identical** to the base implementation
for every backend and every eligible fast path.  Three facts make the
fast paths safe:

* candidate lists coming out of the CSA merges are duplicate-free (the
  tournament/heap dedupe against a seen-set), so re-running
  ``np.unique`` only re-sorts — and top-k selection by ascending
  ``(distance, id)`` is independent of input order for distinct pairs;
* the float64 distance *values* always come from the same elementwise
  operations and reduction as :func:`repro.distances.pairwise_rows`
  (the C/numba ``gather_diff`` only fuses the IEEE-exact gather and
  subtraction; the einsum reduction is shared), so bits cannot drift;
* integer metrics are exactly representable: XOR-plus-popcount over
  bit-packed rows equals the unpacked Hamming count whenever both
  sides are binary, which eligibility checks enforce.

The float32 path is the one *opt-in approximation*
(``verify_dtype="float32"``): candidate distances are computed in
float32, a top-``k + max(16, 2k)`` margin survives, and that shortlist
is re-ranked with the exact float64 kernel.  Results match the default
path whenever the true top-k lies inside the margin — the intended
trade, tested for exactness of the re-rank itself.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.distances import pairwise_rows
from repro.distances.metrics import pack_bits

__all__ = ["verify_batch"]

#: metrics whose row-distance factors into (elementwise diff, reduction)
_GATHER_METRICS = ("euclidean", "squared_euclidean", "manhattan")


def _is_binary(arr: np.ndarray) -> bool:
    return bool(((arr == 0) | (arr == 1)).all())


def _reduce_diff(diff: np.ndarray, metric: str) -> np.ndarray:
    """The reduction half of the ``pairwise_rows`` kernels (same bits)."""
    if metric == "euclidean":
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))
    if metric == "squared_euclidean":
        return np.einsum("ij,ij->i", diff, diff)
    return np.sum(np.abs(diff), axis=1)


def _get_packed_data(index) -> Optional[np.ndarray]:
    """Bit-packed ``index._data`` if it is binary, cached per data array."""
    data = index._data
    cached = getattr(index, "_kv_packed", None)
    if cached is not None and cached[0] is data:
        return cached[1]
    packed = pack_bits(data) if _is_binary(data) else None
    index._kv_packed = (data, packed)
    return packed


def _get_data32(index) -> np.ndarray:
    """float32 copy of ``index._data``, cached per data array."""
    data = index._data
    cached = getattr(index, "_kv_data32", None)
    if cached is not None and cached[0] is data:
        return cached[1]
    data32 = np.ascontiguousarray(data, dtype=np.float32)
    index._kv_data32 = (data, data32)
    return data32


def _select(
    backend,
    flat_ids: np.ndarray,
    flat_dists: np.ndarray,
    offsets: np.ndarray,
    k: int,
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Per-segment top-k by ascending ``(distance, id)``.

    Matches ``np.lexsort((ids, dists))[:k]`` — ids are unique per
    segment, so every (distance, id) pair is distinct and the result
    does not depend on input order.
    """
    if backend is not None and getattr(backend, "topk_select", None) is not None:
        return backend.topk_select(flat_ids, flat_dists, offsets, k)
    out: List[Tuple[np.ndarray, np.ndarray]] = []
    for i in range(len(offsets) - 1):
        u = flat_ids[offsets[i] : offsets[i + 1]]
        d = flat_dists[offsets[i] : offsets[i + 1]]
        order = np.lexsort((u, d))[: min(k, len(u))]
        out.append((u[order], d[order]))
    return out


def _can_gather(backend, data: np.ndarray, metric: str) -> bool:
    return (
        backend is not None
        and getattr(backend, "gather_diff", None) is not None
        and metric in _GATHER_METRICS
        and data.dtype == np.float64
        and data.flags["C_CONTIGUOUS"]
    )


def _verify_float32(
    index,
    backend,
    queries: np.ndarray,
    flat_ids: np.ndarray,
    owner: np.ndarray,
    offsets: np.ndarray,
    k: int,
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Reduced-precision screen, exact float64 re-rank of the margin."""
    data = index._data
    metric = index.metric
    Q = len(offsets) - 1
    data32 = _get_data32(index)
    q32 = np.ascontiguousarray(queries, dtype=np.float32)
    diff32 = data32[flat_ids] - q32[owner]
    if metric == "euclidean":
        d32 = np.sqrt(np.einsum("ij,ij->i", diff32, diff32))
    elif metric == "squared_euclidean":
        d32 = np.einsum("ij,ij->i", diff32, diff32)
    else:
        d32 = np.sum(np.abs(diff32), axis=1)
    margin = k + max(16, 2 * k)
    short = _select(backend, flat_ids, d32.astype(np.float64), offsets, margin)
    sl_counts = np.array([len(ids) for ids, _ in short], dtype=np.int64)
    sl_ids = np.ascontiguousarray(
        np.concatenate([ids for ids, _ in short])
    ).astype(np.int64, copy=False)
    sl_owner = np.repeat(np.arange(Q, dtype=np.int64), sl_counts)
    sl_offsets = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(sl_counts, dtype=np.int64)]
    )
    q64 = np.ascontiguousarray(queries, dtype=np.float64)
    if _can_gather(backend, data, metric):
        d64 = _reduce_diff(backend.gather_diff(data, sl_ids, sl_owner, q64), metric)
    else:
        d64 = pairwise_rows(data[sl_ids], q64[sl_owner], metric)
    return _select(backend, sl_ids, d64, sl_offsets, k)


def verify_batch(
    index,
    backend,
    candidate_ids_per_query: Sequence[np.ndarray],
    queries: np.ndarray,
    k: int,
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Rank every query's candidates; drop-in for ``_verify_batch``.

    ``candidate_ids_per_query`` must be duplicate-free per query (the
    CSA merges guarantee this); ``index`` supplies data, metric, the
    ``last_stats`` accumulator and the ``verify_dtype`` switch;
    ``backend`` supplies the optional compiled hooks.
    """
    data = index._data
    metric = index.metric
    uniq = [np.asarray(c, dtype=np.int64) for c in candidate_ids_per_query]
    counts = np.array([len(u) for u in uniq], dtype=np.int64)
    index.last_stats["candidates"] = index.last_stats.get(
        "candidates", 0.0
    ) + float(counts.sum())
    empty = (np.empty(0, dtype=np.int64), np.empty(0))
    if counts.sum() == 0:
        return [empty for _ in uniq]
    Q = len(uniq)
    flat_ids = np.ascontiguousarray(np.concatenate(uniq))
    owner = np.repeat(np.arange(Q, dtype=np.int64), counts)
    offsets = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64)]
    )
    queries = np.asarray(queries)
    compiled = backend is not None and getattr(backend, "compiled", False)
    sel_backend = backend if compiled else None

    if (
        getattr(index, "verify_dtype", "float64") == "float32"
        and metric in _GATHER_METRICS
        and data.dtype == np.float64
    ):
        return _verify_float32(
            index, sel_backend, queries, flat_ids, owner, offsets, k
        )

    if (
        metric == "hamming"
        and compiled
        and getattr(backend, "hamming_packed", None) is not None
    ):
        packed = _get_packed_data(index)
        if packed is not None and _is_binary(queries):
            q_packed = pack_bits(queries)
            dists = backend.hamming_packed(packed[flat_ids], q_packed[owner])
            return _select(sel_backend, flat_ids, dists, offsets, k)

    if _can_gather(sel_backend, data, metric):
        q64 = np.ascontiguousarray(queries, dtype=np.float64)
        diff = backend.gather_diff(data, flat_ids, owner, q64)
        dists = _reduce_diff(diff, metric)
        return _select(sel_backend, flat_ids, dists, offsets, k)

    # Reference path: exactly what ANNIndex._verify_batch computes.
    rep_queries = np.repeat(queries, counts, axis=0)
    dists = pairwise_rows(data[flat_ids], rep_queries, metric)
    return _select(sel_backend, flat_ids, dists, offsets, k)

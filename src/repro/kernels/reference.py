"""Reference (NumPy) kernel backend.

This is the exact vectorised code the :class:`~repro.core.csa.
CircularShiftArray` ran before the kernel registry existed, moved here
unchanged so every compiled backend has a bit-for-bit oracle to match.
The CSA methods are now thin dispatchers onto whichever backend the
index resolved; this class is the one that is always available.

The verification-side hooks (``topk_select``, ``hamming_packed``,
``gather_diff``) are ``None`` here: the NumPy backend verifies through
the shared :mod:`repro.distances` kernels and the per-query
``lexsort`` loop in :mod:`repro.kernels.verify`, exactly as PR 1 did.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

__all__ = ["NumpyBackend"]


class NumpyBackend:
    """Pure-NumPy kernels; the byte-identity reference for all others."""

    name = "numpy"
    #: compiled backends additionally accelerate candidate verification
    compiled = False

    # verification hooks (compiled backends override with callables)
    topk_select = None
    hamming_packed = None
    gather_diff = None

    # ------------------------------------------------------------------
    # Kernel 1: lock-step batched binary search
    # ------------------------------------------------------------------

    def search_lanes(
        self,
        csa,
        shifts: np.ndarray,
        q_rots: np.ndarray,
        lo: Optional[np.ndarray] = None,
        hi: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Many independent bisections advanced in lock-step.

        ``shifts[b]`` selects the sorted index and ``q_rots[b]`` is the
        (already rotated) query for lane ``b``; optional ``lo``/``hi``
        window each lane (Corollary 3.2).  Returns four int64 arrays
        ``(pos_lower, pos_upper, len_lower, len_upper)`` of length B.
        """
        B = len(shifts)
        n, m = csa.n, csa.m
        doubled = csa._doubled
        sorted_idx = csa.sorted_idx
        offsets = np.arange(m, dtype=np.int64)
        lo = np.zeros(B, dtype=np.int64) if lo is None else np.array(lo, dtype=np.int64)
        hi = np.full(B, n, dtype=np.int64) if hi is None else np.array(hi, dtype=np.int64)
        # Two-stage lexicographic compare: most rotations differ within
        # the first few characters, so each bisection step gathers a
        # short prefix for every lane and touches the tail only for the
        # few lanes whose prefix matches the query exactly.
        pref = min(8, m)
        while True:
            active = lo < hi
            if not active.any():
                break
            mid = (lo + hi) // 2
            act_idx = np.flatnonzero(active)
            ids = sorted_idx[shifts[act_idx], mid[act_idx]].astype(np.int64)
            sh = shifts[act_idx]
            rows_p = doubled[ids[:, None], sh[:, None] + offsets[:pref]]
            qr_p = q_rots[act_idx[:, None], offsets[:pref]]
            neq_p = rows_p != qr_p
            has_p = neq_p.any(axis=1)
            first_p = np.argmax(neq_p, axis=1)
            take = np.arange(len(ids))
            # row <= query  <=>  equal or first differing char smaller
            le = np.empty(len(ids), dtype=bool)
            le[has_p] = (
                rows_p[take[has_p], first_p[has_p]]
                < qr_p[take[has_p], first_p[has_p]]
            )
            eq_p = ~has_p
            if eq_p.any():
                if pref < m:
                    sub = np.flatnonzero(eq_p)
                    rows_t = doubled[
                        ids[sub][:, None], sh[sub][:, None] + offsets[pref:]
                    ]
                    qr_t = q_rots[act_idx[sub][:, None], offsets[pref:]]
                    neq_t = rows_t != qr_t
                    has_t = neq_t.any(axis=1)
                    first_t = np.argmax(neq_t, axis=1)
                    tk = np.arange(len(sub))
                    le[sub] = ~has_t | (rows_t[tk, first_t] < qr_t[tk, first_t])
                else:
                    le[eq_p] = True
            lo[act_idx[le]] = mid[act_idx[le]] + 1
            hi[act_idx[~le]] = mid[act_idx[~le]]
        pos_upper = lo
        pos_lower = lo - 1
        len_lower = np.zeros(B, dtype=np.int64)
        len_upper = np.zeros(B, dtype=np.int64)
        for which, pos, out in (
            ("lower", pos_lower, len_lower),
            ("upper", pos_upper, len_upper),
        ):
            valid = (pos >= 0) & (pos < n)
            if valid.any():
                ids = sorted_idx[shifts[valid], pos[valid]].astype(np.int64)
                rows = doubled[ids[:, None], shifts[valid][:, None] + offsets]
                neq = rows != q_rots[valid]
                has_neq = neq.any(axis=1)
                first = np.argmax(neq, axis=1)
                out[valid] = np.where(has_neq, first, m)
        return pos_lower, pos_upper, len_lower, len_upper

    def search_all(
        self, csa, qds: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Phase 1 of Algorithm 2 for a whole batch: ``(Q, m)`` bounds.

        Per shift one lock-step bisection of width Q, with each query's
        window narrowed through the next links whenever both of its LCP
        lengths at the previous shift are >= 1 (Lemma 3.1).
        """
        Q = len(qds)
        n, m = csa.n, csa.m
        pos_lower = np.empty((Q, m), dtype=np.int64)
        pos_upper = np.empty((Q, m), dtype=np.int64)
        len_lower = np.empty((Q, m), dtype=np.int64)
        len_upper = np.empty((Q, m), dtype=np.int64)
        for s in range(m):
            if s == 0 or Q == 0:
                lo = hi = None
            else:
                windowed = (len_lower[:, s - 1] >= 1) & (len_upper[:, s - 1] >= 1)
                nl = csa.next_link[s - 1]
                # Clip guards the gather where a bound does not exist;
                # those lanes are masked out below anyway.
                window_lo = nl[np.clip(pos_lower[:, s - 1], 0, n - 1)].astype(np.int64)
                window_hi = nl[np.clip(pos_upper[:, s - 1], 0, n - 1)].astype(np.int64)
                bad = window_lo > window_hi  # defensive; cannot happen per Lemma 3.1
                window_lo = np.where(bad, 0, window_lo)
                window_hi = np.where(bad, n - 1, window_hi)
                lo = np.where(windowed, window_lo, 0)
                hi = np.where(windowed, window_hi + 1, n)
            pl, pu, ll, lu = self.search_lanes(
                csa, np.full(Q, s, dtype=np.int64), qds[:, s : s + m], lo=lo, hi=hi
            )
            pos_lower[:, s] = pl
            pos_upper[:, s] = pu
            len_lower[:, s] = ll
            len_upper[:, s] = lu
        return pos_lower, pos_upper, len_lower, len_upper

    # ------------------------------------------------------------------
    # Kernel 2: walk-tournament merge
    # ------------------------------------------------------------------

    def merge_tournament(
        self,
        csa,
        qd_table: np.ndarray,
        bounds_arrays: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        k: int,
        key_shifts: Tuple[int, int, int],
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Fully vectorised merge for the no-extras (single-probe) case.

        Each round picks, per query, the walk whose frontier has the
        lexicographically smallest ``(-lcp, string_id, shift, rank)``
        key (one ``argmin`` over packed int64 keys across the batch),
        emits its string if unseen, and advances that walk one rank.
        ``key_shifts`` is the shared ``(sh_shift, sh_sid, sh_len)``
        packed-key layout computed by the CSA (callers already verified
        it fits 62 bits).  Per query the output is identical to
        ``CircularShiftArray.merge_candidates``.
        """
        pos_lower, pos_upper, len_lower, len_upper = bounds_arrays
        Q = len(pos_lower)
        m, n = csa.m, csa.n
        if Q == 0:
            return []
        # Bound the dedupe bitmap to ~64 MB by splitting huge batches.
        max_q = max(1, (1 << 26) // max(1, n))
        if Q > max_q:
            out: List[Tuple[np.ndarray, np.ndarray]] = []
            for start in range(0, Q, max_q):
                stop = min(Q, start + max_q)
                out.extend(
                    self.merge_tournament(
                        csa,
                        qd_table[start:stop],
                        tuple(a[start:stop] for a in bounds_arrays),
                        k,
                        key_shifts,
                    )
                )
            return out
        sh_shift, sh_sid, sh_len = key_shifts
        dead = np.iinfo(np.int64).max
        sorted_idx = csa.sorted_idx
        doubled = csa._doubled
        offsets = np.arange(m, dtype=np.int64)
        # Walk state, interleaved (lower, upper) per shift: (Q, 2m).
        wpos = np.empty((Q, 2 * m), dtype=np.int64)
        wpos[:, 0::2] = pos_lower
        wpos[:, 1::2] = pos_upper
        wlen = np.empty((Q, 2 * m), dtype=np.int64)
        wlen[:, 0::2] = len_lower
        wlen[:, 1::2] = len_upper
        alive = np.empty((Q, 2 * m), dtype=bool)
        alive[:, 0::2] = pos_lower >= 0
        alive[:, 1::2] = pos_upper < n
        wshift = np.repeat(np.arange(m, dtype=np.int64), 2)
        wdir = np.tile(np.array([-1, 1], dtype=np.int64), m)
        wsid = sorted_idx[
            wshift[None, :], np.clip(wpos, 0, n - 1)
        ].astype(np.int64)
        keys = (
            ((m - wlen) << sh_len)
            | (wsid << sh_sid)
            | (wshift[None, :] << sh_shift)
            | np.clip(wpos, 0, n - 1)
        )
        keys[~alive] = dead
        seen = np.zeros((Q, n), dtype=bool)
        out_ids = np.empty((Q, min(k, n)), dtype=np.int64)
        out_lens = np.empty((Q, min(k, n)), dtype=np.int64)
        cnt = np.zeros(Q, dtype=np.int64)
        act = np.flatnonzero(alive.any(axis=1))
        while len(act):
            sub = keys[act]
            best = np.argmin(sub, axis=1)
            live = sub[np.arange(len(act)), best] != dead
            act = act[live]
            best = best[live]
            if not len(act):
                break
            s = wshift[best]
            d = wdir[best]
            pos = wpos[act, best]
            ln = wlen[act, best]
            sid = wsid[act, best]
            fresh = ~seen[act, sid]
            seen[act, sid] = True
            emit_q = act[fresh]
            out_ids[emit_q, cnt[emit_q]] = sid[fresh]
            out_lens[emit_q, cnt[emit_q]] = ln[fresh]
            cnt[emit_q] += 1
            npos = pos + d
            inb = (npos >= 0) & (npos < n)
            keys[act[~inb], best[~inb]] = dead
            adv_q = act[inb]
            if len(adv_q):
                adv_w = best[inb]
                a_pos = npos[inb]
                a_s = s[inb]
                nsid = sorted_idx[a_s, a_pos].astype(np.int64)
                windows = a_s[:, None] + offsets
                rows = doubled[nsid[:, None], windows]
                neq = rows != qd_table[adv_q[:, None], windows]
                has_neq = neq.any(axis=1)
                nlen = np.where(has_neq, np.argmax(neq, axis=1), m)
                wpos[adv_q, adv_w] = a_pos
                wlen[adv_q, adv_w] = nlen
                wsid[adv_q, adv_w] = nsid
                keys[adv_q, adv_w] = (
                    ((m - nlen) << sh_len)
                    | (nsid << sh_sid)
                    | (a_s << sh_shift)
                    | a_pos
                )
            act = act[cnt[act] < k]
        return [
            (out_ids[qi, : cnt[qi]].copy(), out_lens[qi, : cnt[qi]].copy())
            for qi in range(Q)
        ]

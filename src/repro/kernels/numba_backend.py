"""Numba kernel backend: ``@njit`` ports of the reference loops.

Importing this module is safe without numba — the jitted kernels are
only defined when ``import numba`` succeeds, and
:func:`make_numba_backend` returns ``None`` (recording the reason) so
the registry falls back to NumPy silently.

The ports follow the C backend (:mod:`repro.kernels.cext`) rather than
the vectorised reference: per-lane scalar bisection, a per-query binary
heap for the merge, insertion-sort top-k selection.  All comparisons
are over int64 hash characters or float64 distances produced by the
shared kernels, so results are byte-identical to the reference (the
equivalence suite enforces this).

Numba-specific choices:

* packed merge keys are **int64**, as in the reference — uint64 would
  silently promote mixed arithmetic to float64 in nopython mode;
* popcount uses a 256-entry lookup table over a uint8 view — portable
  and fast, with no reliance on intrinsics;
* ``prange`` parallelises over queries/lanes for the three batch
  kernels, with all per-query scratch allocated inside the loop body
  (no shared mutable state), and ``nogil=True`` keeps concurrent
  readers honest under :class:`~repro.serve.concurrency.ConcurrentIndex`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["make_numba_backend", "NumbaBackend"]

try:  # pragma: no cover - exercised only where numba is installed
    import numba
    from numba import njit, prange

    _NUMBA_IMPORT_ERROR: Optional[str] = None
except Exception as exc:  # ImportError, or a broken install
    numba = None
    _NUMBA_IMPORT_ERROR = f"{type(exc).__name__}: {exc}"

#: bits set per byte value — the popcount lookup table
_POP8 = np.array([bin(v).count("1") for v in range(256)], dtype=np.int64)


if numba is not None:  # pragma: no cover - exercised only with numba

    @njit(cache=True, nogil=True)
    def _search_one(doubled, sorted_idx_s, n, m, s, qd, qoff, lo, hi):
        """One windowed bisection; returns (pos_lower, pos_upper, lcp_lo, lcp_up)."""
        while lo < hi:
            mid = (lo + hi) >> 1
            sid = sorted_idx_s[mid]
            le = True
            for j in range(m):
                c = doubled[sid, s + j]
                q = qd[qoff + j]
                if c != q:
                    le = c < q
                    break
            if le:
                lo = mid + 1
            else:
                hi = mid
        pu = lo
        pl = lo - 1
        ll = np.int64(0)
        lu = np.int64(0)
        if pl >= 0:
            sid = sorted_idx_s[pl]
            ll = np.int64(m)
            for j in range(m):
                if doubled[sid, s + j] != qd[qoff + j]:
                    ll = np.int64(j)
                    break
        if pu < n:
            sid = sorted_idx_s[pu]
            lu = np.int64(m)
            for j in range(m):
                if doubled[sid, s + j] != qd[qoff + j]:
                    lu = np.int64(j)
                    break
        return pl, pu, ll, lu

    @njit(cache=True, nogil=True, parallel=True)
    def _k_search_lanes(
        doubled, sorted_idx, n, m, shifts, q_rots, lo_in, hi_in, pl, pu, ll, lu
    ):
        for b in prange(shifts.shape[0]):
            s = shifts[b]
            a, c, e, f = _search_one(
                doubled, sorted_idx[s], n, m, s, q_rots[b], 0, lo_in[b], hi_in[b]
            )
            pl[b] = a
            pu[b] = c
            ll[b] = e
            lu[b] = f

    @njit(cache=True, nogil=True, parallel=True)
    def _k_search_all(doubled, sorted_idx, next_link, n, m, qds, pl, pu, ll, lu):
        for qi in prange(qds.shape[0]):
            for s in range(m):
                lo = np.int64(0)
                hi = np.int64(n)
                if s > 0 and ll[qi, s - 1] >= 1 and lu[qi, s - 1] >= 1:
                    p = pl[qi, s - 1]
                    if p < 0:
                        p = 0
                    elif p > n - 1:
                        p = n - 1
                    wlo = next_link[s - 1, p]
                    p = pu[qi, s - 1]
                    if p < 0:
                        p = 0
                    elif p > n - 1:
                        p = n - 1
                    whi = next_link[s - 1, p]
                    if wlo > whi:  # defensive; cannot happen per Lemma 3.1
                        wlo = 0
                        whi = n - 1
                    lo = wlo
                    hi = whi + 1
                a, c, e, f = _search_one(
                    doubled, sorted_idx[s], n, m, s, qds[qi], s, lo, hi
                )
                pl[qi, s] = a
                pu[qi, s] = c
                ll[qi, s] = e
                lu[qi, s] = f

    @njit(cache=True, nogil=True, parallel=True)
    def _k_merge(
        doubled,
        sorted_idx,
        n,
        m,
        k,
        qd_table,
        pos_lower,
        pos_upper,
        len_lower,
        len_upper,
        sh_shift,
        sh_sid,
        sh_len,
        out_ids,
        out_lens,
        out_cnt,
    ):
        Q = pos_lower.shape[0]
        kcap = min(k, n)
        mask_pos = (np.int64(1) << sh_shift) - 1
        mask_shift = (np.int64(1) << (sh_sid - sh_shift)) - 1
        mask_sid = (np.int64(1) << (sh_len - sh_sid)) - 1
        for qi in prange(Q):
            hkey = np.empty(2 * m, dtype=np.int64)
            hdir = np.empty(2 * m, dtype=np.int64)
            seen = np.zeros(n, dtype=np.bool_)
            hs = 0
            for s in range(m):
                for side in range(2):
                    if side == 0:
                        p = pos_lower[qi, s]
                        if p < 0:
                            continue
                        ln = len_lower[qi, s]
                        dr = np.int64(-1)
                    else:
                        p = pos_upper[qi, s]
                        if p >= n:
                            continue
                        ln = len_upper[qi, s]
                        dr = np.int64(1)
                    sid = sorted_idx[s, p]
                    key = (
                        ((m - ln) << sh_len)
                        | (sid << sh_sid)
                        | (np.int64(s) << sh_shift)
                        | p
                    )
                    hkey[hs] = key
                    hdir[hs] = dr
                    i = hs
                    while i > 0:
                        par = (i - 1) // 2
                        if hkey[par] <= hkey[i]:
                            break
                        tk = hkey[par]
                        hkey[par] = hkey[i]
                        hkey[i] = tk
                        td = hdir[par]
                        hdir[par] = hdir[i]
                        hdir[i] = td
                        i = par
                    hs += 1
            cnt = 0
            while hs > 0 and cnt < kcap:
                key = hkey[0]
                dr = hdir[0]
                pos = key & mask_pos
                sh = (key >> sh_shift) & mask_shift
                sid = (key >> sh_sid) & mask_sid
                ln = m - (key >> sh_len)
                if not seen[sid]:
                    seen[sid] = True
                    out_ids[qi, cnt] = sid
                    out_lens[qi, cnt] = ln
                    cnt += 1
                npos = pos + dr
                if 0 <= npos < n:
                    nsid = sorted_idx[sh, npos]
                    nlen = np.int64(m)
                    for j in range(m):
                        if doubled[nsid, sh + j] != qd_table[qi, sh + j]:
                            nlen = np.int64(j)
                            break
                    hkey[0] = (
                        ((m - nlen) << sh_len)
                        | (nsid << sh_sid)
                        | (sh << sh_shift)
                        | npos
                    )
                    # dir unchanged
                else:
                    hs -= 1
                    hkey[0] = hkey[hs]
                    hdir[0] = hdir[hs]
                i = 0
                while True:
                    left = 2 * i + 1
                    right = left + 1
                    sm = i
                    if left < hs and hkey[left] < hkey[sm]:
                        sm = left
                    if right < hs and hkey[right] < hkey[sm]:
                        sm = right
                    if sm == i:
                        break
                    tk = hkey[sm]
                    hkey[sm] = hkey[i]
                    hkey[i] = tk
                    td = hdir[sm]
                    hdir[sm] = hdir[i]
                    hdir[i] = td
                    i = sm
            out_cnt[qi] = cnt

    @njit(cache=True, nogil=True, parallel=True)
    def _k_gather_diff(data, ids, owner, queries, out):
        d = out.shape[1]
        for r in prange(out.shape[0]):
            i = ids[r]
            o = owner[r]
            for j in range(d):
                out[r, j] = data[i, j] - queries[o, j]

    @njit(cache=True, nogil=True)
    def _k_hamming_u8(a8, b8, lut, out):
        rows = a8.shape[0]
        nbytes = a8.shape[1]
        for r in range(rows):
            c = np.int64(0)
            for j in range(nbytes):
                c += lut[a8[r, j] ^ b8[r, j]]
            out[r] = np.float64(c)

    @njit(cache=True, nogil=True)
    def _k_topk_select(dists, ids, offsets, k, out_ids, out_dists, out_cnt):
        Q = offsets.shape[0] - 1
        for qi in range(Q):
            cnt = 0
            for i in range(offsets[qi], offsets[qi + 1]):
                d = dists[i]
                sid = ids[i]
                if cnt == k:
                    ld = out_dists[qi, k - 1]
                    if not (
                        d < ld or (d == ld and sid < out_ids[qi, k - 1])
                    ):
                        continue
                    cnt -= 1
                j = cnt
                while j > 0 and (
                    d < out_dists[qi, j - 1]
                    or (d == out_dists[qi, j - 1] and sid < out_ids[qi, j - 1])
                ):
                    out_dists[qi, j] = out_dists[qi, j - 1]
                    out_ids[qi, j] = out_ids[qi, j - 1]
                    j -= 1
                out_dists[qi, j] = d
                out_ids[qi, j] = sid
                cnt += 1
            out_cnt[qi] = cnt


class NumbaBackend:
    """njit/prange kernels; byte-identical to the NumPy reference."""

    name = "numba"
    compiled = True

    # -- CSA kernels ---------------------------------------------------

    def search_lanes(
        self,
        csa,
        shifts: np.ndarray,
        q_rots: np.ndarray,
        lo: Optional[np.ndarray] = None,
        hi: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        doubled, sorted_idx, _ = csa._kernel_arrays()
        B = len(shifts)
        n = csa.n
        shifts = np.ascontiguousarray(shifts, dtype=np.int64)
        q_rots = np.ascontiguousarray(q_rots, dtype=np.int64)
        lo = (
            np.zeros(B, dtype=np.int64)
            if lo is None
            else np.ascontiguousarray(lo, dtype=np.int64)
        )
        hi = (
            np.full(B, n, dtype=np.int64)
            if hi is None
            else np.ascontiguousarray(hi, dtype=np.int64)
        )
        pl = np.empty(B, dtype=np.int64)
        pu = np.empty(B, dtype=np.int64)
        ll = np.empty(B, dtype=np.int64)
        lu = np.empty(B, dtype=np.int64)
        _k_search_lanes(
            doubled, sorted_idx, n, csa.m, shifts, q_rots, lo, hi, pl, pu, ll, lu
        )
        return pl, pu, ll, lu

    def search_all(
        self, csa, qds: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        doubled, sorted_idx, next_link = csa._kernel_arrays()
        Q = len(qds)
        n, m = csa.n, csa.m
        qds = np.ascontiguousarray(qds, dtype=np.int64)
        pl = np.empty((Q, m), dtype=np.int64)
        pu = np.empty((Q, m), dtype=np.int64)
        ll = np.empty((Q, m), dtype=np.int64)
        lu = np.empty((Q, m), dtype=np.int64)
        if Q:
            _k_search_all(doubled, sorted_idx, next_link, n, m, qds, pl, pu, ll, lu)
        return pl, pu, ll, lu

    def merge_tournament(
        self,
        csa,
        qd_table: np.ndarray,
        bounds_arrays: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        k: int,
        key_shifts: Tuple[int, int, int],
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        doubled, sorted_idx, _ = csa._kernel_arrays()
        pos_lower, pos_upper, len_lower, len_upper = (
            np.ascontiguousarray(a, dtype=np.int64) for a in bounds_arrays
        )
        Q = len(pos_lower)
        n, m = csa.n, csa.m
        if Q == 0:
            return []
        sh_shift, sh_sid, sh_len = key_shifts
        qd_table = np.ascontiguousarray(qd_table[:Q], dtype=np.int64)
        kcap = min(k, n)
        out_ids = np.empty((Q, kcap), dtype=np.int64)
        out_lens = np.empty((Q, kcap), dtype=np.int64)
        out_cnt = np.empty(Q, dtype=np.int64)
        _k_merge(
            doubled,
            sorted_idx,
            n,
            m,
            k,
            qd_table,
            pos_lower,
            pos_upper,
            len_lower,
            len_upper,
            sh_shift,
            sh_sid,
            sh_len,
            out_ids,
            out_lens,
            out_cnt,
        )
        return [
            (out_ids[qi, : out_cnt[qi]].copy(), out_lens[qi, : out_cnt[qi]].copy())
            for qi in range(Q)
        ]

    # -- verification kernels ------------------------------------------

    def gather_diff(
        self,
        data: np.ndarray,
        flat_ids: np.ndarray,
        owner: np.ndarray,
        queries: np.ndarray,
    ) -> np.ndarray:
        out = np.empty((len(flat_ids), data.shape[1]), dtype=np.float64)
        _k_gather_diff(data, flat_ids, owner, queries, out)
        return out

    def hamming_packed(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.ascontiguousarray(a, dtype=np.uint64)
        b = np.ascontiguousarray(b, dtype=np.uint64)
        out = np.empty(len(a), dtype=np.float64)
        _k_hamming_u8(
            a.view(np.uint8).reshape(len(a), -1),
            b.view(np.uint8).reshape(len(b), -1),
            _POP8,
            out,
        )
        return out

    def topk_select(
        self,
        flat_ids: np.ndarray,
        flat_dists: np.ndarray,
        offsets: np.ndarray,
        k: int,
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        Q = len(offsets) - 1
        flat_ids = np.ascontiguousarray(flat_ids, dtype=np.int64)
        flat_dists = np.ascontiguousarray(flat_dists, dtype=np.float64)
        offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        out_ids = np.empty((Q, k), dtype=np.int64)
        out_dists = np.empty((Q, k), dtype=np.float64)
        out_cnt = np.empty(Q, dtype=np.int64)
        _k_topk_select(flat_dists, flat_ids, offsets, k, out_ids, out_dists, out_cnt)
        return [
            (out_ids[qi, : out_cnt[qi]].copy(), out_dists[qi, : out_cnt[qi]].copy())
            for qi in range(Q)
        ]


def make_numba_backend(reasons: Dict[str, str]) -> Optional[NumbaBackend]:
    """Build the backend, or record why it is unavailable and return None."""
    if numba is None:
        reasons["numba"] = f"numba not importable ({_NUMBA_IMPORT_ERROR})"
        return None
    return NumbaBackend()

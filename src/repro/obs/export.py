"""Snapshot export: Prometheus text, cross-process merge, worker spool.

A registry snapshot (:meth:`repro.obs.metrics.MetricsRegistry.snapshot`)
is a JSON-safe tree of metric families.  This module turns those trees
into things operators consume:

* :func:`render_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, cumulative ``_bucket{le=...}``
  samples for histograms).
* :func:`merge_snapshots` — fold per-process snapshots into one:
  counters and histogram buckets sum, gauges combine by their declared
  merge mode (``sum`` / ``max`` / ``last``).  Histograms merge as raw
  bucket arrays — percentiles do not compose, bucket counts do.
* :class:`SnapshotSpool` — the prefork fan-in mechanism.  Every worker
  periodically dumps its snapshot to ``obs-<pid>.json`` in a shared
  directory (atomic tmp+rename); whichever worker receives a
  ``metrics`` request reads all peers' files and serves the merged
  view.  File-based on purpose: workers share no memory, the spool
  directory already exists for the WAL, and a scrape tolerates a
  snapshot a second old.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional

from .metrics import bucket_upper_bounds

__all__ = [
    "render_prometheus",
    "merge_snapshots",
    "SnapshotSpool",
]

_SANITIZE = str.maketrans({c: "_" for c in " .-/"})


def _metric_name(name: str) -> str:
    return name.translate(_SANITIZE)


def _label_str(labels: dict, extra: Optional[dict] = None) -> str:
    items = dict(labels or {})
    if extra:
        items.update(extra)
    if not items:
        return ""
    body = ",".join(
        f'{k}="{str(v)}"' for k, v in sorted(items.items())
    )
    return "{" + body + "}"


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    f = float(value)
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def render_prometheus(snapshot: dict) -> str:
    """Render one snapshot tree as Prometheus text exposition.

    Counters render with their name as-is (the registry already uses
    ``_total`` suffixes), gauges as single samples, histograms as
    cumulative ``_bucket{le=...}`` series plus ``_sum`` and ``_count``.
    """
    uppers = bucket_upper_bounds()
    lines: List[str] = []
    families = snapshot.get("families", {})
    for name in sorted(families):
        family = families[name]
        kind = family.get("kind", "gauge")
        metric = _metric_name(name)
        help_text = family.get("help", "")
        if help_text:
            lines.append(f"# HELP {metric} {help_text}")
        lines.append(
            f"# TYPE {metric} "
            f"{'histogram' if kind == 'histogram' else kind}"
        )
        for sample in family.get("samples", []):
            labels = sample.get("labels", {})
            if kind == "histogram":
                cumulative = 0
                for upper, count in zip(uppers, sample.get("buckets", [])):
                    cumulative += int(count)
                    lines.append(
                        f"{metric}_bucket"
                        f"{_label_str(labels, {'le': _fmt(upper)})}"
                        f" {cumulative}"
                    )
                lines.append(
                    f"{metric}_bucket{_label_str(labels, {'le': '+Inf'})}"
                    f" {int(sample.get('count', cumulative))}"
                )
                lines.append(
                    f"{metric}_sum{_label_str(labels)}"
                    f" {_fmt(sample.get('sum', 0.0))}"
                )
                lines.append(
                    f"{metric}_count{_label_str(labels)}"
                    f" {int(sample.get('count', 0))}"
                )
            else:
                lines.append(
                    f"{metric}{_label_str(labels)}"
                    f" {_fmt(sample.get('value', 0.0))}"
                )
    return "\n".join(lines) + "\n"


def _merge_histogram_samples(into: dict, sample: dict) -> None:
    buckets = into.setdefault("buckets", [])
    other = sample.get("buckets", [])
    if len(buckets) < len(other):
        buckets.extend([0] * (len(other) - len(buckets)))
    for i, c in enumerate(other):
        buckets[i] += int(c)
    into["count"] = int(into.get("count", 0)) + int(sample.get("count", 0))
    into["sum"] = float(into.get("sum", 0.0)) + float(sample.get("sum", 0.0))
    for key, pick in (("min", min), ("max", max)):
        val = sample.get(key)
        if val is None:
            continue
        cur = into.get(key)
        into[key] = val if cur is None else pick(cur, val)


def merge_snapshots(snapshots: List[dict]) -> dict:
    """Fold per-process snapshot trees into one combined tree.

    Counters and histogram states are additive.  Gauges follow the
    family's declared ``merge`` mode: ``sum`` (default — sizes and
    totals add across workers), ``max`` (high-water marks like applied
    WAL sequence), or ``last`` (config echoes, identical everywhere).
    """
    merged_families: Dict[str, dict] = {}
    pids: List[int] = []
    for snap in snapshots:
        if not snap:
            continue
        if snap.get("pid") is not None:
            pids.append(snap["pid"])
        for name, family in snap.get("families", {}).items():
            out = merged_families.get(name)
            if out is None:
                out = merged_families[name] = {
                    "kind": family.get("kind", "gauge"),
                    "help": family.get("help", ""),
                    "samples": {},
                }
                if "merge" in family:
                    out["merge"] = family["merge"]
            kind = out["kind"]
            mode = out.get("merge", "sum")
            for sample in family.get("samples", []):
                key = tuple(sorted((sample.get("labels") or {}).items()))
                slot = out["samples"].get(key)
                if kind == "histogram":
                    if slot is None:
                        slot = out["samples"][key] = {
                            "labels": dict(key),
                            "buckets": [], "count": 0, "sum": 0.0,
                            "min": None, "max": None,
                        }
                    _merge_histogram_samples(slot, sample)
                else:
                    value = float(sample.get("value", 0.0))
                    if slot is None:
                        out["samples"][key] = {
                            "labels": dict(key), "value": value,
                        }
                    elif kind == "counter" or mode == "sum":
                        slot["value"] += value
                    elif mode == "max":
                        slot["value"] = max(slot["value"], value)
                    else:  # "last"
                        slot["value"] = value
    families = {
        name: {**fam, "samples": list(fam["samples"].values())}
        for name, fam in merged_families.items()
    }
    return {"pids": sorted(pids), "families": families}


class SnapshotSpool:
    """Shared-directory snapshot exchange between prefork workers.

    Each process calls :meth:`dump` (typically on a ~1 s timer and
    right before serving a scrape); any process calls :meth:`read_all`
    to collect every peer's latest snapshot.  Writes are atomic
    (``.tmp`` + ``os.replace``) so readers never see a torn file, and
    stale files (dead workers) age out via ``max_age_s``.
    """

    def __init__(self, directory: str, max_age_s: float = 30.0):
        self.directory = directory
        self.max_age_s = float(max_age_s)
        os.makedirs(directory, exist_ok=True)

    def _path(self, pid: Optional[int] = None) -> str:
        pid = os.getpid() if pid is None else pid
        return os.path.join(self.directory, f"obs-{pid}.json")

    def dump(self, snapshot: dict) -> str:
        path = self._path()
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(snapshot, f)
        os.replace(tmp, path)
        return path

    def read_all(self, exclude_self: bool = False) -> List[dict]:
        """Every live peer's snapshot (optionally excluding this pid)."""
        out: List[dict] = []
        now = time.time()
        own = self._path()
        try:
            names = os.listdir(self.directory)
        except OSError:
            return out
        for name in sorted(names):
            if not (name.startswith("obs-") and name.endswith(".json")):
                continue
            path = os.path.join(self.directory, name)
            if exclude_self and path == own:
                continue
            try:
                if now - os.path.getmtime(path) > self.max_age_s:
                    continue
                with open(path, "r", encoding="utf-8") as f:
                    out.append(json.load(f))
            except (OSError, ValueError):
                continue  # torn/vanished file: skip, next dump heals it
        return out

    def clear(self) -> None:
        try:
            names = os.listdir(self.directory)
        except OSError:
            return
        for name in names:
            if name.startswith("obs-") and name.endswith(".json"):
                try:
                    os.unlink(os.path.join(self.directory, name))
                except OSError:
                    pass

"""Per-request tracing: spans, propagation tokens, sampling, slow log.

One *trace* is the story of one request: a tree of *spans*, each a
named ``[start, end]`` interval with attributes.  The serve stack hops
threads (asyncio loop -> micro-batch executor -> WAL thread pool) and
processes (prefork workers), so the API offers both an implicit
thread-local "current span" (cheap nesting within one thread) and an
explicit propagation token — a :class:`Span` is its own token: carry it
across a thread hop and :meth:`Tracer.attach` it on the other side.

Overhead discipline
-------------------

Tracing must cost ~nothing on the hot path when a request is not
sampled.  The contract:

* :meth:`Tracer.start_trace` returns ``None`` unless the 1-in-N
  sampling counter fires — the caller keeps its own wall-clock timing
  (it already does, for metrics) and passes it to
  :meth:`Tracer.observe_request` at the end.
* :func:`span` / :meth:`Tracer.span` are no-ops (a shared, reusable
  null context manager) whenever no sampled span is active on the
  current thread, so instrumented layers (WAL, LSM) can call them
  unconditionally.
* The **slow-query log is always on**: ``observe_request`` compares one
  float against the threshold; only genuinely slow requests pay for an
  entry.  A slow *sampled* request carries its full span tree into the
  log; a slow unsampled one still records ``(op, duration)``.

The :meth:`Tracer.on_span` callback hook fires for every finished span
of a sampled trace — the substrate ROADMAP item 4's history
recorder/consistency checker subscribes to (a recorded client history
is exactly the stream of request root spans).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from typing import Callable, Dict, List, Optional

__all__ = [
    "Span",
    "Trace",
    "Tracer",
    "get_tracer",
    "span",
    "render_trace",
]

_ids = itertools.count(1)
# The pid prefix is cached (os.getpid() is a syscall, ids are minted on
# every span) and refreshed in forked children so prefork workers mint
# globally unique ids.
_id_prefix = f"{os.getpid():x}-"


def _refresh_id_prefix() -> None:
    global _id_prefix
    _id_prefix = f"{os.getpid():x}-"


if hasattr(os, "register_at_fork"):  # pragma: no branch
    os.register_at_fork(after_in_child=_refresh_id_prefix)


def _next_id() -> str:
    return "%s%x" % (_id_prefix, next(_ids))


class Span:
    """One named interval inside a trace.

    A Span doubles as the **propagation token**: pass it to another
    thread and open child spans under it with ``tracer.attach(span)``
    or ``tracer.span(name, parent=span)``.
    """

    __slots__ = (
        "trace", "name", "span_id", "parent_id", "start_s", "end_s", "attrs",
    )

    def __init__(
        self,
        trace: "Trace",
        name: str,
        parent_id: Optional[str],
        start_s: Optional[float] = None,
        attrs: Optional[dict] = None,
    ):
        self.trace = trace
        self.name = name
        self.span_id = _next_id()
        self.parent_id = parent_id
        self.start_s = time.perf_counter() if start_s is None else start_s
        self.end_s: Optional[float] = None
        self.attrs: dict = attrs or {}

    @property
    def duration_s(self) -> Optional[float]:
        if self.end_s is None:
            return None
        return self.end_s - self.start_s

    def annotate(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def finish(self, end_s: Optional[float] = None) -> "Span":
        if self.end_s is None:
            self.end_s = time.perf_counter() if end_s is None else end_s
            trace = self.trace
            if trace is not None:  # None after the owning trace finished
                trace._finished(self)
        return self

    def to_dict(self) -> dict:
        trace = self.trace
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": trace.trace_id if trace is not None else None,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        dur = self.duration_s
        dur_txt = "open" if dur is None else f"{dur * 1e3:.3f}ms"
        return f"Span({self.name!r}, {dur_txt})"


class Trace:
    """One request's span tree.  Created via :meth:`Tracer.start_trace`."""

    __slots__ = ("tracer", "trace_id", "root", "spans", "_lock", "_payload")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self.tracer = tracer
        self.spans: List[Span] = []
        self._lock = threading.Lock()
        self._payload: Optional[dict] = None
        self.root = Span(self, name, parent_id=None, attrs=attrs)
        # the root span *is* the trace: share its id
        self.trace_id = self.root.span_id

    def _finished(self, span: Span) -> None:
        with self._lock:
            self.spans.append(span)
        for cb in self.tracer._on_span:
            try:
                cb(span)
            except Exception:  # a broken subscriber never breaks serving
                pass

    def add_span(
        self,
        name: str,
        start_s: float,
        end_s: float,
        parent: Optional[Span] = None,
        **attrs,
    ) -> Span:
        """Record an already-measured interval as a finished span.

        Used for timings captured outside the tracing machinery — e.g.
        the micro-batcher grafting per-stage kernel timings (measured by
        the index itself) under a request's batch span.
        """
        sp = Span(
            self, name,
            parent_id=(parent or self.root).span_id,
            start_s=start_s, attrs=attrs,
        )
        sp.finish(end_s)
        self._payload = None  # grafted after finish: rebuild on demand
        return sp

    def finish(self, end_s: Optional[float] = None) -> "Trace":
        """Finish the root span and hand the trace to the tracer."""
        if self.root.end_s is None:
            self.root.finish(end_s)
            self._payload = self.to_dict()
            self.tracer._completed(self)
            # span.trace <-> trace.spans is a reference cycle: drop the
            # back-references so finished traces die by refcount instead
            # of lingering for the cyclic GC (measurable pressure at
            # high QPS).  The payload above is cached, so to_dict()
            # keeps working.
            with self._lock:
                spans = list(self.spans)
            for sp in spans:
                sp.trace = None
        return self

    @property
    def duration_s(self) -> Optional[float]:
        return self.root.duration_s

    def to_dict(self) -> dict:
        if self._payload is not None:
            return self._payload
        with self._lock:
            spans = list(self.spans)
        if self.root.end_s is None and self.root not in spans:
            spans = spans + [self.root]
        spans.sort(key=lambda s: s.start_s)
        payloads = [s.to_dict() for s in spans]
        for p in payloads:  # spans detached post-finish lose the back-ref
            p["trace_id"] = self.trace_id
        return {
            "trace_id": self.trace_id,
            "name": self.root.name,
            "duration_s": self.duration_s,
            "spans": payloads,
        }


class _NullSpan:
    """Reusable no-op context manager for the unsampled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def annotate(self, **attrs) -> "_NullSpan":
        return self

    def finish(self, end_s=None) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager that finishes a real span and pops thread-local."""

    __slots__ = ("_tracer", "_span", "_prev")

    def __init__(self, tracer: "Tracer", span: Span, prev):
        self._tracer = tracer
        self._span = span
        self._prev = prev

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc) -> None:
        self._span.finish()
        self._tracer._tls.current = self._prev

    def annotate(self, **attrs) -> "_ActiveSpan":
        self._span.annotate(**attrs)
        return self


class _Attach:
    """Context manager making ``token`` the current span on this thread."""

    __slots__ = ("_tracer", "_token", "_prev")

    def __init__(self, tracer: "Tracer", token: Optional[Span]):
        self._tracer = tracer
        self._token = token
        self._prev = None

    def __enter__(self) -> Optional[Span]:
        self._prev = getattr(self._tracer._tls, "current", None)
        self._tracer._tls.current = self._token
        return self._token

    def __exit__(self, *exc) -> None:
        self._tracer._tls.current = self._prev


class Tracer:
    """Sampling tracer + bounded slow-query log + recent-trace ring.

    Args:
        sample: trace 1 in every ``sample`` requests (``0`` disables
            tracing entirely; ``1`` traces everything).
        slow_threshold_s: requests at least this slow always land in the
            slow-query log, sampled or not.
        slow_log_size: how many slowest requests to retain (top-N by
            duration).
        recent_size: how many completed sampled traces the in-memory
            ring keeps for the ``trace`` protocol op.
    """

    def __init__(
        self,
        sample: int = 0,
        slow_threshold_s: float = 0.1,
        slow_log_size: int = 32,
        recent_size: int = 64,
    ):
        self.configure(
            sample=sample,
            slow_threshold_s=slow_threshold_s,
            slow_log_size=slow_log_size,
            recent_size=recent_size,
        )
        self._tls = threading.local()
        self._lock = threading.Lock()
        self._recent: List[dict] = []
        self._slow: List[dict] = []
        self._sampled_total = 0
        self._slow_total = 0
        self._on_span: List[Callable[[Span], None]] = []
        self._on_trace: List[Callable[[Trace], None]] = []

    # -- configuration -------------------------------------------------

    def configure(
        self,
        sample: Optional[int] = None,
        slow_threshold_s: Optional[float] = None,
        slow_log_size: Optional[int] = None,
        recent_size: Optional[int] = None,
    ) -> "Tracer":
        if sample is not None:
            if sample < 0:
                raise ValueError("sample must be >= 0 (0 disables tracing)")
            self.sample = int(sample)
            # countdown sampler: 0 means disabled, 1 means "next request
            # is traced"; decrement-and-test beats increment+modulo on
            # the per-request fast path
            self._countdown = self.sample
        if slow_threshold_s is not None:
            self.slow_threshold_s = float(slow_threshold_s)
        if slow_log_size is not None:
            self.slow_log_size = max(1, int(slow_log_size))
        if recent_size is not None:
            self.recent_size = max(1, int(recent_size))
        return self

    # -- recorder hooks ------------------------------------------------

    def on_span(self, callback: Callable[[Span], None]) -> None:
        """Subscribe to every finished span of sampled traces.

        This is the history-recorder hook: a consistency checker (see
        ROADMAP item 4) receives each request's spans as they complete
        and can reconstruct the concurrent client history offline.
        """
        self._on_span.append(callback)

    def on_trace(self, callback: Callable[[Trace], None]) -> None:
        """Subscribe to completed sampled traces."""
        self._on_trace.append(callback)

    def remove_on_span(self, callback) -> None:
        if callback in self._on_span:
            self._on_span.remove(callback)

    def remove_on_trace(self, callback) -> None:
        if callback in self._on_trace:
            self._on_trace.remove(callback)

    # -- trace lifecycle -----------------------------------------------

    def start_trace(self, name: str, **attrs) -> Optional[Trace]:
        """A new sampled :class:`Trace`, or ``None`` (not sampled).

        The 1-in-N countdown is intentionally racy-tolerant (no lock):
        under the GIL decrements are close enough to exact, and a
        slightly off sampling phase is harmless.
        """
        n = self._countdown
        if n != 1:  # 0 = disabled, >1 = not this request's turn
            if n > 1:
                self._countdown = n - 1
            return None
        self._countdown = self.sample
        return Trace(self, name, attrs)

    def attach(self, token: Optional[Span]) -> _Attach:
        """Make ``token`` the current span for the enclosed block.

        The cross-thread half of propagation: the thread that owns the
        request passes the span; the worker thread attaches it so
        nested :meth:`span` calls land in the right tree.  ``None`` is
        accepted (and attaches nothing) so call sites stay branch-free.
        """
        return _Attach(self, token)

    def current(self) -> Optional[Span]:
        return getattr(self._tls, "current", None)

    def span(self, name: str, parent: Optional[Span] = None, **attrs):
        """Open a child span under ``parent`` or the thread's current
        span; a shared no-op when neither exists (the fast path)."""
        if parent is None:
            parent = getattr(self._tls, "current", None)
            if parent is None:
                return _NULL_SPAN
        sp = Span(parent.trace, name, parent_id=parent.span_id, attrs=attrs)
        prev = getattr(self._tls, "current", None)
        self._tls.current = sp
        return _ActiveSpan(self, sp, prev)

    def _completed(self, trace: Trace) -> None:
        payload = trace.to_dict()
        with self._lock:
            self._sampled_total += 1
            self._recent.append(payload)
            if len(self._recent) > self.recent_size:
                del self._recent[: len(self._recent) - self.recent_size]
        for cb in self._on_trace:
            try:
                cb(trace)
            except Exception:
                pass

    # -- request accounting / slow log ---------------------------------

    def observe_request(
        self,
        op: str,
        duration_s: float,
        trace: Optional[Trace] = None,
        error: bool = False,
    ) -> None:
        """Feed one finished request into the always-on slow-query log.

        Cheap by design: one comparison unless the request was slow.
        ``trace`` (if the request was sampled) rides into the log entry
        so "why was this slow" has the span tree attached.
        """
        if duration_s < self.slow_threshold_s:
            return
        entry = {
            "op": op,
            "duration_s": float(duration_s),
            "ts": time.time(),
            "error": bool(error),
        }
        if trace is not None:
            entry["trace"] = trace.to_dict()
        with self._lock:
            self._slow_total += 1
            self._slow.append(entry)
            # Top-N by duration: sort-and-trim is fine at these sizes
            # (the log only grows on requests already >= threshold).
            if len(self._slow) > self.slow_log_size:
                self._slow.sort(key=lambda e: e["duration_s"], reverse=True)
                del self._slow[self.slow_log_size:]

    # -- inspection ----------------------------------------------------

    def recent(self, n: Optional[int] = None) -> List[dict]:
        """The most recently completed sampled traces, newest last."""
        with self._lock:
            out = list(self._recent)
        if n is not None:
            out = out[-int(n):]
        return out

    def slow_log(self, n: Optional[int] = None) -> List[dict]:
        """The slowest retained requests, slowest first."""
        with self._lock:
            out = sorted(
                self._slow, key=lambda e: e["duration_s"], reverse=True
            )
        if n is not None:
            out = out[: int(n)]
        return out

    def dump_slow_log(self, path: str) -> int:
        """Write the slow-query log as JSON-lines; returns entry count."""
        entries = self.slow_log()
        with open(path, "w", encoding="utf-8") as f:
            for entry in entries:
                f.write(json.dumps(entry) + "\n")
        return len(entries)

    def stats(self) -> Dict[str, float]:
        with self._lock:
            return {
                "sample": float(self.sample),
                "slow_threshold_s": float(self.slow_threshold_s),
                "sampled_total": float(self._sampled_total),
                "slow_total": float(self._slow_total),
                "recent": float(len(self._recent)),
                "slow_retained": float(len(self._slow)),
            }

    def reset(self) -> None:
        """Drop retained traces and counters (tests / live reconfig)."""
        with self._lock:
            self._recent.clear()
            self._slow.clear()
            self._sampled_total = 0
            self._slow_total = 0


#: process-wide default tracer; disabled until configured (sample=0)
TRACER = Tracer()


def get_tracer() -> Tracer:
    return TRACER


def span(name: str, **attrs):
    """Module-level child-span helper on the default tracer.

    Instrumented layers (WAL append/fsync, LSM compaction) call this
    unconditionally; it is a shared no-op unless a sampled span is
    active on the current thread.
    """
    return TRACER.span(name, **attrs)


def render_trace(payload: dict, width: int = 72) -> str:
    """ASCII span tree for one ``Trace.to_dict()`` payload.

    Indentation follows parentage; each line shows the span name, its
    offset from the root start, and its duration.
    """
    spans = payload.get("spans", [])
    if not spans:
        return f"trace {payload.get('trace_id')} (no spans)"
    by_parent: Dict[Optional[str], List[dict]] = {}
    by_id = {s["span_id"]: s for s in spans}
    for s in spans:
        parent = s["parent_id"]
        if parent is not None and parent not in by_id:
            parent = None  # orphan: show at the root level
        by_parent.setdefault(parent, []).append(s)
    for children in by_parent.values():
        children.sort(key=lambda s: s["start_s"])
    roots = by_parent.get(None, [])
    t0 = min(s["start_s"] for s in spans)
    lines = [
        f"trace {payload['trace_id']} "
        f"({(payload.get('duration_s') or 0.0) * 1e3:.3f} ms)"
    ]

    def emit(s: dict, depth: int) -> None:
        dur = s.get("duration_s")
        dur_txt = "open" if dur is None else f"{dur * 1e3:.3f} ms"
        offset = (s["start_s"] - t0) * 1e3
        attrs = s.get("attrs") or {}
        attr_txt = (
            " " + " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            if attrs
            else ""
        )
        name = ("  " * depth) + s["name"]
        lines.append(f"{name:<{width - 28}} +{offset:8.3f} ms {dur_txt:>12}{attr_txt}")
        for child in by_parent.get(s["span_id"], []):
            emit(child, depth + 1)

    for root in roots:
        emit(root, 0)
    return "\n".join(lines)

"""Unified metrics plane: histograms, counters, gauges, one registry.

This module is the metrics half of :mod:`repro.obs`.  It hosts the
latency histogram and per-op server metrics that previously lived in
``repro.serve.metrics`` (which now re-exports them for back-compat),
plus a process-wide :class:`MetricsRegistry` that every serving layer
publishes into:

* the TCP server registers its :class:`ServerMetrics` (requests,
  errors, sheds, per-op latency),
* :class:`~repro.serve.service.ANNService` registers a collector
  mapping its ``stats()`` (cache, micro-batcher, index, LSM tier, WAL
  counters) onto well-named families,
* :class:`~repro.serve.concurrency.ConcurrentIndex` records lock-wait
  latency histograms,
* the LSM index and the WAL contribute compaction / fsync timings.

``registry.snapshot()`` returns one JSON-safe tree; rendering it as
Prometheus text and merging snapshots across prefork workers live in
:mod:`repro.obs.export`.

Histogram shape
---------------

:class:`LatencyHistogram` uses a fixed set of geometrically spaced
buckets (1 µs .. ~100 s, 25 % growth per bucket), the classic shape
used by serving systems (HdrHistogram, Prometheus) because it keeps
quantile error bounded (< ~12.5 %, half the bucket ratio) with O(1)
record cost and a few hundred bytes of state.  Percentiles are
interpolated inside the covering bucket, and exact ``min``/``max``/
``sum`` are kept on the side so the tails and the mean are not
quantised.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "LatencyHistogram",
    "ServerMetrics",
    "Counter",
    "Gauge",
    "HistogramMetric",
    "MetricsRegistry",
    "get_registry",
    "bucket_upper_bounds",
]

#: smallest bucketed latency (seconds); everything below lands in bucket 0
_BASE_S = 1e-6
#: geometric growth per bucket — 25 % keeps quantile error under ~12.5 %
_GROWTH = 1.25
#: bucket count: covers 1 µs .. ~100 s (log(1e8) / log(1.25) ≈ 83)
_BUCKETS = 84
_LOG_GROWTH = math.log(_GROWTH)

#: documented relative quantile-error bound: half the bucket growth
#: ratio (pinned by tests/test_metrics_properties.py)
QUANTILE_ERROR_BOUND = (_GROWTH - 1.0) / 2.0


def _bucket_index(seconds: float) -> int:
    if seconds <= _BASE_S:
        return 0
    idx = int(math.log(seconds / _BASE_S) / _LOG_GROWTH) + 1
    return min(idx, _BUCKETS - 1)


def _bucket_upper_s(idx: int) -> float:
    """Upper latency bound (seconds) of bucket ``idx``."""
    return _BASE_S * _GROWTH**idx


def bucket_upper_bounds() -> List[float]:
    """Upper bound (seconds) of every bucket, for Prometheus ``le=``."""
    return [_bucket_upper_s(i) for i in range(_BUCKETS)]


class LatencyHistogram:
    """Fixed-size log-bucketed latency histogram with exact extremes.

    ``record`` is O(1); ``percentile`` walks the (84-entry) bucket
    array.  All methods are thread-safe.
    """

    def __init__(self) -> None:
        self._counts: List[int] = [0] * _BUCKETS
        self._n = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = 0.0
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        seconds = max(0.0, float(seconds))
        with self._lock:
            self._record_locked(seconds)

    def _record_locked(self, seconds: float) -> None:
        """Record without taking the lock (caller holds it, or holds an
        enclosing lock that already serializes every mutator)."""
        self._counts[_bucket_index(seconds)] += 1
        self._n += 1
        self._sum += seconds
        self._min = min(self._min, seconds)
        self._max = max(self._max, seconds)

    @property
    def count(self) -> int:
        return self._n

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other``'s samples into this histogram (for fan-in).

        Merging a histogram into **itself** is a no-op: the fan-in loops
        this method serves ("merge every worker's histogram into the
        first") naturally revisit the accumulator, and the old behaviour
        — doubling the counts while leaving ``min``/``max`` untouched —
        silently corrupted the totals.  Both locks are taken in a
        deterministic global order (by object id), so two histograms
        concurrently merged into each other from two threads cannot
        deadlock on the crossed acquisition.
        """
        if other is self:
            return
        first, second = (
            (self, other) if id(self) < id(other) else (other, self)
        )
        with first._lock:
            with second._lock:
                for i, c in enumerate(other._counts):
                    self._counts[i] += c
                self._n += other._n
                self._sum += other._sum
                self._min = min(self._min, other._min)
                self._max = max(self._max, other._max)

    def percentile(self, p: float) -> Optional[float]:
        """The ``p``-th percentile latency in seconds (None if empty).

        Linear interpolation inside the covering bucket; clamped to the
        exact observed ``min``/``max`` so tails are never invented.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError("p must be in [0, 100]")
        with self._lock:
            if self._n == 0:
                return None
            rank = p / 100.0 * self._n
            seen = 0
            for idx, c in enumerate(self._counts):
                if c == 0:
                    continue
                if seen + c >= rank:
                    lower = _bucket_upper_s(idx - 1) if idx > 0 else 0.0
                    upper = _bucket_upper_s(idx)
                    frac = (rank - seen) / c
                    est = lower + frac * (upper - lower)
                    return min(max(est, self._min), self._max)
                seen += c
            return self._max  # pragma: no cover - rounding safety net

    def state(self) -> dict:
        """Raw mergeable state: bucket counts plus exact extremes.

        This is what registry snapshots carry, so fan-in across prefork
        workers merges full distributions (not just pre-computed
        percentiles, which do not compose).
        """
        with self._lock:
            return {
                "buckets": list(self._counts),
                "count": self._n,
                "sum": self._sum,
                "min": None if self._n == 0 else self._min,
                "max": None if self._n == 0 else self._max,
            }

    def merge_state(self, state: dict) -> None:
        """Fold a :meth:`state` dict (e.g. from another process) in."""
        with self._lock:
            for i, c in enumerate(state["buckets"][:_BUCKETS]):
                self._counts[i] += int(c)
            self._n += int(state["count"])
            self._sum += float(state["sum"])
            if state.get("min") is not None:
                self._min = min(self._min, float(state["min"]))
            if state.get("max") is not None:
                self._max = max(self._max, float(state["max"]))

    def snapshot(self) -> dict:
        """JSON-safe summary: count, mean/min/max and p50/p95/p99 (ms)."""
        with self._lock:
            n, total = self._n, self._sum
            lo, hi = self._min, self._max
        out = {"count": n}
        if n == 0:
            return out
        out["mean_ms"] = total / n * 1e3
        out["min_ms"] = lo * 1e3
        out["max_ms"] = hi * 1e3
        for p, name in ((50, "p50_ms"), (95, "p95_ms"), (99, "p99_ms")):
            val = self.percentile(p)
            out[name] = None if val is None else val * 1e3
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LatencyHistogram(n={self._n})"


class _OpMetrics:
    __slots__ = ("requests", "errors", "shed", "latency")

    def __init__(self) -> None:
        self.requests = 0
        self.errors = 0
        self.shed = 0
        self.latency = LatencyHistogram()


class ServerMetrics:
    """Per-op request/error/shed counters + latency histograms.

    ``observe(op, seconds, error=...)`` records one *finished* request;
    ``count_shed(op)`` records one request rejected by admission
    control (shed requests are counted separately and never enter the
    latency histogram — they would drag the percentiles toward the
    trivial rejection cost).  Unknown/bad requests are tallied via
    ``count_bad()``.

    **Consistency**: every mutation happens under one instance-wide
    lock, and ``observe`` bumps the request counter and records the
    latency sample inside the same critical section, so a ``snapshot``
    (which holds the same lock across the whole rollup) can never show
    ``requests`` disagreeing with the histogram ``count``.
    """

    #: op types with their own histograms; others fold into "other"
    OPS = ("query", "insert", "delete", "stats", "trace", "metrics")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._ops: Dict[str, _OpMetrics] = {}
        self._bad = 0
        self._connections = 0

    def _op_locked(self, op: str) -> _OpMetrics:
        if op not in self.OPS:
            op = "other"
        entry = self._ops.get(op)
        if entry is None:
            entry = self._ops[op] = _OpMetrics()
        return entry

    def observe(self, op: str, seconds: float, error: bool = False) -> None:
        seconds = max(0.0, float(seconds))
        with self._lock:
            entry = self._op_locked(op)
            entry.requests += 1
            if error:
                entry.errors += 1
            # Inside the same critical section as the counter bump:
            # requests == latency.count holds at every instant a
            # snapshot can observe.  (The histogram's own lock is not
            # taken — this lock already serializes every mutator.)
            entry.latency._record_locked(seconds)

    def count_shed(self, op: str) -> None:
        with self._lock:
            entry = self._op_locked(op)
            entry.requests += 1
            entry.shed += 1

    def count_bad(self) -> None:
        """A line that never became a request (bad JSON / unknown op)."""
        with self._lock:
            self._bad += 1

    def count_connection(self) -> None:
        with self._lock:
            self._connections += 1

    def snapshot(self) -> dict:
        """JSON-safe rollup: totals plus a per-op breakdown.

        The whole rollup is built under the instance lock, so the
        counters and every histogram summary describe one instant.
        """
        with self._lock:
            out: dict = {
                "connections": self._connections,
                "bad_requests": self._bad,
                "requests_total": 0,
                "errors_total": 0,
                "shed_total": 0,
                "ops": {},
            }
            for name, entry in sorted(self._ops.items()):
                out["requests_total"] += entry.requests
                out["errors_total"] += entry.errors
                out["shed_total"] += entry.shed
                op_out = {
                    "requests": entry.requests,
                    "errors": entry.errors,
                    "shed": entry.shed,
                }
                op_out.update(entry.latency.snapshot())
                out["ops"][name] = op_out
        return out

    def families(self, prefix: str = "repro_server") -> dict:
        """Metric families for the registry (one consistent snapshot)."""
        with self._lock:
            ops = {
                name: (
                    entry.requests, entry.errors, entry.shed,
                    entry.latency.state(),
                )
                for name, entry in self._ops.items()
            }
            bad = self._bad
            connections = self._connections
        requests = _family("counter", "requests handled per op")
        errors = _family("counter", "error responses per op")
        shed = _family("counter", "requests shed by admission control")
        latency = _family("histogram", "request latency per op (seconds)")
        for name in sorted(ops):
            req, err, sh, state = ops[name]
            labels = {"op": name}
            requests["samples"].append({"labels": labels, "value": req})
            errors["samples"].append({"labels": labels, "value": err})
            shed["samples"].append({"labels": labels, "value": sh})
            latency["samples"].append({"labels": labels, **state})
        return {
            f"{prefix}_requests_total": requests,
            f"{prefix}_errors_total": errors,
            f"{prefix}_shed_total": shed,
            f"{prefix}_request_latency_seconds": latency,
            f"{prefix}_bad_requests_total": _family(
                "counter", "lines that never became a request",
                [{"labels": {}, "value": bad}],
            ),
            f"{prefix}_connections_total": _family(
                "counter", "accepted connections",
                [{"labels": {}, "value": connections}],
            ),
        }


# ----------------------------------------------------------------------
# Registry: named counters / gauges / histograms + pluggable collectors
# ----------------------------------------------------------------------

def _family(kind: str, help_text: str, samples: Optional[list] = None,
            merge: Optional[str] = None) -> dict:
    fam = {"kind": kind, "help": help_text, "samples": samples or []}
    if merge is not None:
        fam["merge"] = merge
    return fam


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class Counter:
    """Monotonic counter family, optionally labelled."""

    def __init__(self, name: str, help_text: str):
        self.name = name
        self.help = help_text
        self._values: Dict[tuple, float] = {}
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def family(self) -> dict:
        with self._lock:
            samples = [
                {"labels": dict(key), "value": val}
                for key, val in sorted(self._values.items())
            ]
        return _family("counter", self.help, samples)


class Gauge:
    """Point-in-time value; set directly or sampled from a callback.

    ``merge`` declares how prefork fan-in combines per-process values:
    ``"sum"`` (sizes, totals — the default), ``"max"`` (sequence
    numbers, high-water marks) or ``"last"``.
    """

    def __init__(self, name: str, help_text: str, merge: str = "sum",
                 fn: Optional[Callable[[], float]] = None):
        self.name = name
        self.help = help_text
        self.merge = merge
        self._fn = fn
        self._values: Dict[tuple, float] = {}
        self._lock = threading.Lock()

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def family(self) -> dict:
        if self._fn is not None:
            try:
                samples = [{"labels": {}, "value": float(self._fn())}]
            except Exception:
                samples = []
        else:
            with self._lock:
                samples = [
                    {"labels": dict(key), "value": val}
                    for key, val in sorted(self._values.items())
                ]
        return _family("gauge", self.help, samples, merge=self.merge)


class HistogramMetric:
    """Named family of :class:`LatencyHistogram` per label set."""

    def __init__(self, name: str, help_text: str):
        self.name = name
        self.help = help_text
        self._hists: Dict[tuple, LatencyHistogram] = {}
        self._lock = threading.Lock()

    def observe(self, seconds: float, **labels) -> None:
        key = _label_key(labels)
        hist = self._hists.get(key)
        if hist is None:
            with self._lock:
                hist = self._hists.setdefault(key, LatencyHistogram())
        hist.record(seconds)

    def get(self, **labels) -> Optional[LatencyHistogram]:
        return self._hists.get(_label_key(labels))

    def family(self) -> dict:
        with self._lock:
            items = list(self._hists.items())
        samples = [
            {"labels": dict(key), **hist.state()}
            for key, hist in sorted(items, key=lambda kv: kv[0])
        ]
        return _family("histogram", self.help, samples)


class MetricsRegistry:
    """Name -> metric registry with pluggable snapshot collectors.

    ``counter``/``gauge``/``histogram`` create (or return the existing)
    named metric — idempotent, so layers can declare their metrics at
    construction without coordinating.  ``register_collector`` plugs a
    whole component in (e.g. an ``ANNService``): the callback returns a
    dict of families at snapshot time.  Re-registering a collector key
    replaces it — the newest service/server instance in a process wins,
    matching one-serving-process-one-stack reality (and keeping tests
    that build many short-lived services leak-free).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, object] = {}
        self._collectors: Dict[str, Callable[[], dict]] = {}

    def _declare(self, name: str, factory, kind) -> object:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}"
                    )
                return existing
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._declare(name, lambda: Counter(name, help_text), Counter)

    def gauge(self, name: str, help_text: str = "", merge: str = "sum",
              fn: Optional[Callable[[], float]] = None) -> Gauge:
        return self._declare(
            name, lambda: Gauge(name, help_text, merge=merge, fn=fn), Gauge
        )

    def histogram(self, name: str, help_text: str = "") -> HistogramMetric:
        return self._declare(
            name, lambda: HistogramMetric(name, help_text), HistogramMetric
        )

    def register_collector(self, key: str, fn: Callable[[], dict]) -> None:
        with self._lock:
            self._collectors[key] = fn

    def unregister_collector(self, key: str, fn=None) -> None:
        """Remove collector ``key``; if ``fn`` is given, only when it is
        still the registered callback (a newer registrant wins)."""
        with self._lock:
            if fn is None or self._collectors.get(key) is fn:
                self._collectors.pop(key, None)

    def snapshot(self) -> dict:
        """One JSON-safe tree of every family this process publishes."""
        with self._lock:
            metrics = list(self._metrics.values())
            collectors = list(self._collectors.items())
        families: Dict[str, dict] = {}
        for metric in metrics:
            families[metric.name] = metric.family()
        for _, fn in collectors:
            try:
                for name, family in fn().items():
                    families[name] = family
            except Exception:  # a broken collector never breaks a scrape
                continue
        import os as _os

        return {"pid": _os.getpid(), "families": families}

    def clear(self) -> None:
        """Drop every metric and collector (tests only)."""
        with self._lock:
            self._metrics.clear()
            self._collectors.clear()


#: process-wide default registry: serving layers publish here unless
#: handed an explicit registry
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY

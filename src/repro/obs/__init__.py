"""repro.obs — unified observability plane for the serve stack.

Three pieces, importable without pulling in any serving code (this
package must stay import-cycle-free: ``repro.serve`` imports us, never
the reverse):

* :mod:`repro.obs.tracing` — per-request span trees with 1-in-N
  sampling, explicit cross-thread propagation tokens, an always-on
  bounded slow-query log, and ``on_span``/``on_trace`` recorder hooks.
* :mod:`repro.obs.metrics` — log-bucketed latency histograms, per-op
  server metrics, and a process-wide named-metric registry every layer
  (server, service, cache, index, LSM tiers, WAL, replicas) publishes
  into.
* :mod:`repro.obs.export` — Prometheus text rendering, cross-process
  snapshot merging, and the file spool prefork workers use to fan
  their snapshots in.
"""

from .metrics import (
    Counter,
    Gauge,
    HistogramMetric,
    LatencyHistogram,
    MetricsRegistry,
    ServerMetrics,
    get_registry,
)
from .export import SnapshotSpool, merge_snapshots, render_prometheus
from .tracing import Span, Trace, Tracer, get_tracer, render_trace, span

__all__ = [
    "Counter",
    "Gauge",
    "HistogramMetric",
    "LatencyHistogram",
    "MetricsRegistry",
    "ServerMetrics",
    "get_registry",
    "SnapshotSpool",
    "merge_snapshots",
    "render_prometheus",
    "Span",
    "Trace",
    "Tracer",
    "get_tracer",
    "render_trace",
    "span",
]

"""Command-line interface: quick experiments without writing code.

Subcommands:

* ``datasets`` — print the (simulated) paper Table 2 statistics.
* ``compare`` — evaluate a set of methods on one dataset and print the
  recall / ratio / time / size table.
* ``build`` — fit an index (optionally sharded) and save it as a
  reusable bundle directory.
* ``query`` — load a saved bundle and evaluate it on a query workload.
* ``inspect`` — print a bundle's manifest and array shapes/sizes
  without loading (or unpickling) any payload; understands both the
  v1 (``arrays.npz``) and v2 (per-``.npy``) layouts.
* ``build``/``query``/``serve``/``recover`` accept ``--mmap`` to open
  bundles (and snapshots) as read-only memory maps: cold starts take
  milliseconds and every local process shares one physical copy of
  the index.
* ``serve`` — load a bundle behind :class:`repro.serve.ANNService` and
  answer JSON-lines requests from stdin (queries, inserts, deletes,
  stats) with ``--threads`` concurrent clients and a result cache.
  With ``--wal-dir`` every write is write-ahead-logged (and
  periodically snapshotted via ``--snapshot-every``) so the served
  state survives a crash; ``--replicas N`` serves reads from N
  log-shipping replicas instead of the primary.
* ``recover`` — rebuild the acknowledged index state from a WAL
  directory (snapshot + log replay) and optionally save it as a bundle.
* ``stats`` — scrape a running ``serve --tcp`` server: stats JSON, a
  ``--watch`` ticker line, or ``--prometheus`` text (merged across
  prefork workers).
* ``trace`` — fetch sampled span trees (``serve --trace-sample N``)
  or the slow-query log from a running server and render them as
  ASCII trees.
* ``theory`` — collision probabilities and Theorem 5.1's lambda for a
  parameter setting.
* ``compare``/``build``/``query``/``serve``/``profile`` accept
  ``--backend {numpy,numba,cext}`` to select the compiled kernel
  backend for CSA search/merge/verify (defaults to the
  ``REPRO_BACKEND`` environment variable, then numpy; an unavailable
  backend silently falls back to numpy).

Examples::

    python -m repro.cli datasets --n 2000
    python -m repro.cli compare --dataset sift --n 3000 --metric euclidean
    python -m repro.cli compare --dataset sift --n 3000 --batch --backend cext
    python -m repro.cli build --dataset sift --n 20000 --method lccs \\
        --shards 4 --out sift.bundle
    python -m repro.cli query sift.bundle --queries 100 --k 10 --batch --mmap
    python -m repro.cli inspect sift.bundle
    echo '{"query": [0.1, ...], "k": 5}' | \\
        python -m repro.cli serve sift.bundle --threads 4 --cache-size 1024
    python -m repro.cli serve sift.bundle \\
        --wal-dir sift.wal --snapshot-every 500 --replicas 2
    python -m repro.cli recover sift.wal --out recovered.bundle
    python -m repro.cli serve sift.bundle --tcp :9300 --workers 4 \\
        --wal-dir sift.wal --trace-sample 100 --slow-ms 50
    python -m repro.cli stats 127.0.0.1:9300 --watch
    python -m repro.cli trace 127.0.0.1:9300 -n 5
    python -m repro.cli theory --m 64 --n 100000 --p1 0.9 --p2 0.5
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]


def _cmd_datasets(args: argparse.Namespace) -> int:
    from repro.data import DATASET_SPECS, load_dataset
    from repro.eval import format_table

    rows = []
    for name, spec in DATASET_SPECS.items():
        ds = load_dataset(name, n=args.n, n_queries=args.queries, seed=args.seed)
        rows.append(
            (
                name, ds.n, ds.n_queries, ds.dim,
                f"{ds.size_bytes() / 2**20:.1f} MB",
                spec.description,
            )
        )
    print(
        format_table(
            ("Dataset", "#Objects", "#Queries", "d", "Data Size", "Type"), rows
        )
    )
    return 0


_METHOD_CHOICES = (
    "lccs", "mp-lccs", "dynamic", "e2lsh", "multiprobe", "falconn", "c2lsh",
    "qalsh", "srs", "scan",
)


def _method_spec(name: str, dim: int, metric: str, w: float, seed: int):
    """(IndexSpec, default query kwargs) for a CLI method name.

    Specs (rather than constructed indexes) keep the recipes picklable,
    which is what lets ``--shards`` build shard indexes in a process
    pool and record the recipe in the bundle manifest.
    """
    from repro.serve import IndexSpec

    angular = metric == "angular"
    if name == "lccs":
        spec = (
            IndexSpec("LCCSLSH", dim=dim, m=64, metric="angular", cp_dim=16,
                      seed=seed)
            if angular
            else IndexSpec("LCCSLSH", dim=dim, m=64, w=w, seed=seed)
        )
        return spec, {"num_candidates": 200}
    if name == "mp-lccs":
        spec = (
            IndexSpec("MPLCCSLSH", dim=dim, m=32, metric="angular", cp_dim=16,
                      seed=seed, n_probes=33)
            if angular
            else IndexSpec("MPLCCSLSH", dim=dim, m=32, w=w, seed=seed,
                           n_probes=33)
        )
        return spec, {"num_candidates": 200}
    if name == "dynamic":
        spec = (
            IndexSpec("DynamicLCCSLSH", dim=dim, m=64, metric="angular",
                      cp_dim=16, seed=seed)
            if angular
            else IndexSpec("DynamicLCCSLSH", dim=dim, m=64, w=w, seed=seed)
        )
        return spec, {"num_candidates": 200}
    if name == "e2lsh":
        spec = (
            IndexSpec("E2LSH", dim=dim, K=1, L=32, metric="angular",
                      cp_dim=16, seed=seed)
            if angular
            else IndexSpec("E2LSH", dim=dim, K=4, L=32, w=w, seed=seed)
        )
        return spec, {}
    if name == "multiprobe":
        return (
            IndexSpec("MultiProbeLSH", dim=dim, K=8, L=8, w=w, n_probes=64,
                      seed=seed),
            {},
        )
    if name == "falconn":
        return (
            IndexSpec("FALCONN", dim=dim, K=1, L=16, cp_dim=16, n_probes=64,
                      seed=seed),
            {},
        )
    if name == "c2lsh":
        spec = (
            IndexSpec("C2LSH", dim=dim, m=32, l=3, metric="angular",
                      cp_dim=16, beta=0.05, seed=seed)
            if angular
            else IndexSpec("C2LSH", dim=dim, m=32, l=6, w=w / 2, beta=0.05,
                           seed=seed)
        )
        return spec, {}
    if name == "qalsh":
        return (
            IndexSpec("QALSH", dim=dim, m=32, l=6, w=1.0, beta=0.05,
                      seed=seed),
            {},
        )
    if name == "srs":
        return (
            IndexSpec("SRS", dim=dim, d_proj=6, c=2.0, max_fraction=0.05,
                      seed=seed),
            {},
        )
    if name == "scan":
        return IndexSpec("LinearScan", dim=dim, metric=metric), {}
    raise ValueError(f"unknown method {name!r}")


def _build_method(name: str, dim: int, metric: str, w: float, seed: int):
    spec, query_kwargs = _method_spec(name, dim, metric, w, seed)
    return spec.build(), query_kwargs


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.data import compute_ground_truth, load_dataset
    from repro.distances import normalize_rows
    from repro.eval import evaluate, format_results

    ds = load_dataset(args.dataset, n=args.n, n_queries=args.queries, seed=args.seed)
    data, queries = ds.data, ds.queries
    if args.metric == "angular":
        data = normalize_rows(data)
        queries = normalize_rows(queries)
    gt = compute_ground_truth(data, queries, k=args.k, metric=args.metric)
    w = 2.0 * float(np.mean(gt.distances))
    methods = args.methods.split(",")
    invalid = [m for m in methods if m not in _METHOD_CHOICES]
    if invalid:
        print(
            f"unknown methods: {invalid}; choices: {list(_METHOD_CHOICES)}",
            file=sys.stderr,
        )
        return 2
    if args.metric == "angular":
        unsupported = {"multiprobe", "qalsh", "srs"}
        bad = [m for m in methods if m in unsupported]
        if bad:
            print(
                f"{bad} support Euclidean only; pick other methods",
                file=sys.stderr,
            )
            return 2
    results = []
    for name in methods:
        index, query_kwargs = _build_method(
            name, ds.dim, args.metric, w, args.seed
        )
        results.append(
            evaluate(
                index, data, queries, gt, k=args.k,
                query_kwargs=query_kwargs, params={"method": name},
                batch=args.batch,
            )
        )
    mode = "batched" if args.batch else "per-query"
    print(f"dataset={args.dataset} n={len(data)} d={ds.dim} "
          f"metric={args.metric} k={args.k} mode={mode}\n")
    print(format_results(results))
    return 0


def _estimate_w(args: argparse.Namespace, data, queries, metric: str) -> float:
    from repro.data import compute_ground_truth

    gt = compute_ground_truth(data, queries, k=args.k, metric=metric)
    return 2.0 * float(np.mean(gt.distances))


def _cmd_build(args: argparse.Namespace) -> int:
    from repro.data import load_dataset
    from repro.distances import normalize_rows
    from repro.serve import ShardedIndex, save_index

    ds = load_dataset(args.dataset, n=args.n, n_queries=args.queries,
                      seed=args.seed)
    data, queries = ds.data, ds.queries
    if args.metric == "angular":
        data = normalize_rows(data)
        queries = normalize_rows(queries)
    w = _estimate_w(args, data, queries, args.metric)
    try:
        spec, query_kwargs = _method_spec(
            args.method, ds.dim, args.metric, w, args.seed
        )
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    lsm_knobs = {
        "memtable_size": args.memtable_size,
        "max_segments": args.max_segments,
        "compaction": args.compaction,
    }
    lsm_knobs = {k: v for k, v in lsm_knobs.items() if v is not None}
    if lsm_knobs:
        if args.method != "dynamic":
            print(
                "--memtable-size/--max-segments/--compaction apply to "
                "--method dynamic only",
                file=sys.stderr,
            )
            return 2
        # The knobs ride in the spec's kwargs, so they reach process-pool
        # shard builds and are recorded in the bundle manifest.
        spec.kwargs.update(lsm_knobs)
    if args.shards > 1:
        index = ShardedIndex(
            spec, num_shards=args.shards, parallel=args.parallel
        )
    else:
        index = spec.build()
    index.fit(data)
    extra = {
        "dataset": args.dataset,
        "n": int(len(data)),
        "queries": int(args.queries),
        "seed": int(args.seed),
        "metric": args.metric,
        "method": args.method,
        "shards": int(args.shards),
        "query_kwargs": query_kwargs,
    }
    save_index(index, args.out, extra=extra)
    mode = getattr(index, "build_mode", None)
    shard_note = (
        f" shards={args.shards} build_mode={mode}" if args.shards > 1 else ""
    )
    print(
        f"built {index.name} on {args.dataset} n={len(data)} d={ds.dim} "
        f"in {index.build_time:.2f}s{shard_note}\nsaved bundle to {args.out}"
    )
    if args.mmap:
        # Prove the bundle cold-opens mmapped and report the latency.
        import time

        from repro.serve import load_index

        start = time.perf_counter()
        reopened = load_index(args.out, mmap=True)
        elapsed_ms = (time.perf_counter() - start) * 1e3
        print(
            f"mmap cold-open check: {reopened.name} servable in "
            f"{elapsed_ms:.1f} ms"
        )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.data import compute_ground_truth, load_dataset
    from repro.distances import normalize_rows
    from repro.eval import evaluate, format_results
    from repro.serve import BundleError, load_index, read_manifest

    try:
        manifest = read_manifest(args.bundle)
        index = load_index(args.bundle, mmap=args.mmap)
    except BundleError as exc:
        print(f"cannot load bundle: {exc}", file=sys.stderr)
        return 2
    extra = manifest.get("extra", {})
    dataset = args.dataset or extra.get("dataset", "sift")
    n = args.n or extra.get("n", 3000)
    seed = args.seed if args.seed is not None else extra.get("seed", 42)
    # The query split must match the build split exactly (the dataset is
    # regenerated deterministically), so the recorded count wins unless
    # explicitly overridden.
    n_queries = (
        args.queries if args.queries is not None else extra.get("queries", 15)
    )
    metric = extra.get("metric", index.metric)
    if extra:
        recorded = (
            extra.get("dataset"), extra.get("n"), extra.get("queries"),
            extra.get("seed"),
        )
        if recorded != (dataset, n, n_queries, seed):
            print(
                "warning: dataset/n/queries/seed differ from the values "
                "recorded at build time; the regenerated split is not the "
                "data this index was built on, so recall/ratio are not "
                "meaningful",
                file=sys.stderr,
            )
    ds = load_dataset(dataset, n=n, n_queries=n_queries, seed=seed)
    data, queries = ds.data, ds.queries
    if metric == "angular":
        data = normalize_rows(data)
        queries = normalize_rows(queries)
    gt = compute_ground_truth(data, queries, k=args.k, metric=metric)
    query_kwargs = dict(extra.get("query_kwargs", {}))
    result = evaluate(
        index, data, queries, gt, k=args.k, query_kwargs=query_kwargs,
        params={"bundle": args.bundle}, batch=args.batch,
    )
    mode = "batched" if args.batch else "per-query"
    print(
        f"bundle={args.bundle} class={manifest.get('class')} "
        f"dataset={dataset} n={len(data)} k={args.k} mode={mode}\n"
    )
    print(format_results([result]))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Answer JSON-lines requests from stdin through an ANNService.

    Request protocol (one JSON object per line; responses come back in
    request order, one JSON object per line):

    * ``{"query": [..], "k": 10, "num_candidates": 200}`` ->
      ``{"ids": [..], "dists": [..]}`` (``k`` defaults to ``--k``;
      other keys are forwarded as query kwargs)
    * ``{"insert": [..]}`` -> ``{"handle": h, "version": v}``
    * ``{"delete": h}`` -> ``{"deleted": h, "version": v}``
    * ``{"stats": true}`` -> ``{"stats": {..}}``
    * ``{"trace": n}`` -> the ``n`` most recent sampled span trees
      plus the slow-query log (``--trace-sample`` / ``--slow-ms``)
    * ``{"metrics": true | "prometheus"}`` -> this process's metric
      families as a snapshot tree or Prometheus text

    Queries are issued by ``--threads`` concurrent client workers, so
    adjacent query requests coalesce into micro-batches inside the
    service; a printer thread emits each answer as soon as it (and all
    its predecessors) completes, so interactive clients are never left
    waiting on a response that is already computed.  A write (or stats)
    request first drains every pending query, preserving the stream's
    serial read/write semantics.

    With ``--wal-dir`` the index is wrapped in a
    :class:`~repro.serve.durability.DurableIndex`: every accepted write
    is on disk before it is acknowledged (fsync per ``--fsync``), a
    baseline snapshot captures the bundle's state, and further
    snapshots are taken every ``--snapshot-every`` writes.  If the WAL
    directory already holds state from a previous run, serving resumes
    from its *recovered* state (the bundle only provides defaults).
    With ``--replicas N`` queries are answered by N log-shipping
    replicas (round-robin; a query request may carry ``min_version`` to
    read its own writes — write responses include ``seq``).

    With ``--tcp HOST:PORT`` the same protocol is served over TCP by
    the asyncio front door (:mod:`repro.serve.server`) instead of
    stdin: ``--workers N`` preforks N mmap worker processes behind one
    SO_REUSEPORT port (writes route to a primary holding the WAL),
    ``--max-inflight`` bounds per-worker admission (excess requests get
    an explicit ``{"error": "overloaded", "shed": true}``), and SIGTERM
    drains gracefully.
    """
    if args.tcp:
        return _cmd_serve_tcp(args)
    if args.workers != 1:
        print("--workers requires --tcp", file=sys.stderr)
        return 2
    import json
    import queue
    import threading
    import time
    from concurrent.futures import ThreadPoolExecutor

    from repro.obs.export import render_prometheus
    from repro.obs.metrics import get_registry
    from repro.obs.tracing import get_tracer
    from repro.serve import BundleError, load_index, read_manifest
    from repro.serve.durability import (
        DurableIndex,
        RecoveryError,
        ReplicaSet,
        SnapshotManager,
        list_snapshots,
        recover,
    )
    from repro.serve.durability.wal import list_segments
    from repro.serve.service import ANNService

    # Manifest first: it supplies the default query kwargs either way,
    # and when a WAL directory already holds recovered state the bundle
    # payload is never needed — skip the (possibly huge) load entirely.
    try:
        manifest = read_manifest(args.bundle)
    except BundleError as exc:
        print(f"cannot load bundle: {exc}", file=sys.stderr)
        return 2

    replica_set = None
    index = None
    if args.wal_dir:
        import os

        has_state = bool(
            os.path.isdir(args.wal_dir)
            and (list_segments(args.wal_dir) or list_snapshots(args.wal_dir))
        )
        if has_state:
            # A previous serve run left durable state: it, not the
            # bundle, is the acknowledged truth.
            try:
                result = recover(args.wal_dir, mmap=args.mmap)
            except RecoveryError as exc:
                print(f"cannot recover WAL state: {exc}", file=sys.stderr)
                return 2
            index = result.index
            print(
                f"recovered WAL state: seq={result.applied_seq} "
                f"(snapshot={result.snapshot_seq}, "
                f"replayed={result.replayed} records)",
                file=sys.stderr,
            )
    if index is None:
        try:
            index = load_index(args.bundle, mmap=args.mmap)
        except BundleError as exc:
            print(f"cannot load bundle: {exc}", file=sys.stderr)
            return 2
    if args.wal_dir:
        snapshots = SnapshotManager(
            args.wal_dir,
            keep=args.snapshot_keep,
            every_ops=args.snapshot_every if args.snapshot_every > 0 else None,
        )
        index = DurableIndex(
            index, args.wal_dir, fsync=args.fsync, snapshots=snapshots
        )
        if args.replicas > 0:
            replica_set = ReplicaSet(
                index, num_replicas=args.replicas, mmap=args.mmap
            )
            replica_set.start_tailing(args.tail_interval_ms / 1e3)
    elif args.replicas > 0:
        print("--replicas requires --wal-dir (replicas tail the WAL)",
              file=sys.stderr)
        return 2
    default_kwargs = dict(manifest.get("extra", {}).get("query_kwargs", {}))
    tracer = get_tracer()
    tracer.configure(
        sample=args.trace_sample, slow_threshold_s=args.slow_ms / 1e3
    )
    try:
        source = open(args.requests) if args.requests else sys.stdin
    except OSError as exc:
        print(f"cannot open requests file: {exc}", file=sys.stderr)
        return 2
    emitted = 0

    def run_query(payload: dict) -> dict:
        trace = tracer.start_trace("query", op="query")
        start = time.perf_counter()
        error = False
        try:
            q = np.asarray(payload.pop("query"), dtype=np.float64)
            k = int(payload.pop("k", args.k))
            min_version = payload.pop("min_version", None)
            kwargs = {**default_kwargs, **payload}
            if replica_set is not None:
                ids, dists = replica_set.query(
                    q, k=k,
                    min_version=None if min_version is None else int(min_version),
                    **kwargs,
                )
            else:
                ids, dists = service.query(q, k=k, trace=trace, **kwargs)
            return {"ids": ids.tolist(), "dists": dists.tolist()}
        except Exception as exc:  # keep serving after a bad request
            error = True
            return {"error": f"{type(exc).__name__}: {exc}"}
        finally:
            elapsed = time.perf_counter() - start
            if trace is not None:
                trace.root.annotate(error=error)
                trace.finish()
            tracer.observe_request("query", elapsed, trace=trace, error=error)

    with ANNService(
        index,
        cache_size=args.cache_size,
        batch_window_ms=args.batch_window_ms,
        max_batch_size=args.max_batch,
    ) as service, ThreadPoolExecutor(max_workers=args.threads) as clients:
        # Responses flow through a bounded queue (query futures and
        # ready dicts alike) to a printer thread, which emits each
        # answer in request order the moment it resolves — interactive
        # clients get responses without waiting for more input, memory
        # stays bounded on long query-only streams, and because the
        # printer is the *only* thread writing responses, output lines
        # can never interleave mid-line.
        out_queue: "queue.Queue" = queue.Queue(maxsize=4 * args.threads)
        counter_lock = threading.Lock()

        def count_one() -> None:
            nonlocal emitted
            with counter_lock:
                emitted += 1

        def printer() -> None:
            while True:
                item = out_queue.get()
                try:
                    if item is None:
                        return
                    if isinstance(item, dict):
                        response = item
                    else:
                        # A raising future must become an error *line*,
                        # not kill this thread: a dead printer leaves
                        # flush()'s join() deadlocked forever on the
                        # next write/stats request.  BaseException on
                        # purpose — the executor captures those into
                        # futures too (e.g. a KeyboardInterrupt raised
                        # mid-query).
                        try:
                            response = item.result()
                        except BaseException as exc:
                            response = {
                                "error": f"{type(exc).__name__}: {exc}"
                            }
                    try:
                        line = json.dumps(response)
                    except (TypeError, ValueError) as exc:
                        line = json.dumps(
                            {"error": f"unserializable response: {exc}"}
                        )
                    print(line, flush=True)
                    count_one()
                finally:
                    out_queue.task_done()

        printer_thread = threading.Thread(target=printer, daemon=True)
        printer_thread.start()

        def flush() -> None:
            out_queue.join()  # every queued answer is printed

        try:
            for line in source:
                line = line.strip()
                if not line:
                    continue
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError("request must be a JSON object")
                except ValueError as exc:
                    # Through the queue like every other response: the
                    # printer is the single writer, so this error line
                    # cannot interleave with an in-flight query answer
                    # (and queue order keeps it in request order).
                    out_queue.put({"error": f"bad request: {exc}"})
                    continue
                if "query" in request:
                    out_queue.put(clients.submit(run_query, request))
                    continue
                flush()  # writes/stats see every prior query completed
                try:
                    if "insert" in request:
                        vector = np.asarray(request["insert"], dtype=np.float64)
                        wtrace = tracer.start_trace("insert", op="insert")
                        wstart = time.perf_counter()
                        handle = service.insert(vector, trace=wtrace)
                        if wtrace is not None:
                            wtrace.finish()
                        tracer.observe_request(
                            "insert", time.perf_counter() - wstart,
                            trace=wtrace,
                        )
                        response = {"handle": handle,
                                    "version": service.version}
                        if args.wal_dir:
                            response["seq"] = index.applied_seq
                    elif "delete" in request:
                        wtrace = tracer.start_trace("delete", op="delete")
                        wstart = time.perf_counter()
                        service.delete(int(request["delete"]), trace=wtrace)
                        if wtrace is not None:
                            wtrace.finish()
                        tracer.observe_request(
                            "delete", time.perf_counter() - wstart,
                            trace=wtrace,
                        )
                        response = {"deleted": int(request["delete"]),
                                    "version": service.version}
                        if args.wal_dir:
                            response["seq"] = index.applied_seq
                    elif "stats" in request:
                        stats = service.stats()
                        if replica_set is not None:
                            stats.update(replica_set.stats())
                        stats["tracer"] = tracer.stats()
                        response = {"stats": stats}
                    elif "trace" in request:
                        want = request["trace"]
                        n = (
                            int(want)
                            if isinstance(want, (int, float))
                            and not isinstance(want, bool) and want > 0
                            else 20
                        )
                        response = {
                            "traces": tracer.recent(n),
                            "slow": tracer.slow_log(n),
                            "tracer": tracer.stats(),
                        }
                    elif "metrics" in request:
                        snap = get_registry().snapshot()
                        if request["metrics"] == "prometheus":
                            response = {
                                "prometheus": render_prometheus(snap)
                            }
                        else:
                            response = {"metrics": snap}
                    else:
                        response = {
                            "error": "unknown request (want query/insert/"
                            "delete/stats/trace/metrics)"
                        }
                except Exception as exc:
                    response = {"error": f"{type(exc).__name__}: {exc}"}
                out_queue.put(response)
            flush()
        finally:
            out_queue.put(None)
            printer_thread.join()
            if source is not sys.stdin:
                source.close()
    if replica_set is not None:
        replica_set.close()
    if args.wal_dir:
        index.close()  # flush + fsync the WAL
        print(
            f"WAL at {args.wal_dir}: seq={index.applied_seq}",
            file=sys.stderr,
        )
    if args.slow_log:
        try:
            n = tracer.dump_slow_log(args.slow_log)
            print(
                f"slow-query log: {n} entries -> {args.slow_log}",
                file=sys.stderr,
            )
        except OSError as exc:
            print(f"slow-query log dump failed: {exc}", file=sys.stderr)
    print(f"served {emitted} responses", file=sys.stderr)
    return 0


def _parse_hostport(spec: str) -> "tuple[str, int]":
    """``HOST:PORT`` / ``:PORT`` / ``PORT`` -> (host, port)."""
    host, sep, port = spec.rpartition(":")
    if not sep:
        host, port = "", spec
    if not host:
        host = "127.0.0.1"
    return host, int(port)


def _cmd_serve_tcp(args: argparse.Namespace) -> int:
    """The ``serve --tcp`` path: hand off to repro.serve.server."""
    from repro.serve import BundleError
    from repro.serve.durability import RecoveryError
    from repro.serve.server import ServerConfig, run_server

    if args.requests:
        print("--requests is stdin mode only (drive --tcp over a socket)",
              file=sys.stderr)
        return 2
    if args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2
    if args.workers > 1 and args.replicas:
        print("--replicas is a single-process option; prefork workers "
              "already serve as replicas", file=sys.stderr)
        return 2
    try:
        host, port = _parse_hostport(args.tcp)
    except ValueError:
        print(f"--tcp wants HOST:PORT, got {args.tcp!r}", file=sys.stderr)
        return 2
    config = ServerConfig(
        bundle=args.bundle,
        host=host,
        port=port,
        workers=args.workers,
        max_inflight=args.max_inflight,
        drain_timeout=args.drain_timeout,
        k=args.k,
        cache_size=args.cache_size,
        batch_window_ms=args.batch_window_ms,
        max_batch=args.max_batch,
        mmap=args.mmap,
        wal_dir=args.wal_dir,
        fsync=args.fsync,
        snapshot_every=args.snapshot_every,
        snapshot_keep=args.snapshot_keep,
        replicas=args.replicas,
        tail_interval_ms=args.tail_interval_ms,
        trace_sample=args.trace_sample,
        slow_ms=args.slow_ms,
        slow_log_path=args.slow_log,
        obs_dir=args.obs_dir,
    )
    try:
        return run_server(config)
    except (BundleError, RecoveryError) as exc:
        print(f"cannot serve: {exc}", file=sys.stderr)
        return 2


def _stats_line(stats: dict) -> str:
    """One compact human line from a ``stats`` response dict."""
    server = stats.get("server") or {}
    q = (server.get("ops") or {}).get("query") or {}
    parts = [
        f"req={server.get('requests_total', 0)}",
        f"err={server.get('errors_total', 0)}",
        f"shed={server.get('shed_total', 0)}",
    ]
    for key, label in (("p50_ms", "p50"), ("p95_ms", "p95"), ("p99_ms", "p99")):
        val = q.get(key)
        if val is not None:
            parts.append(f"query_{label}={val:.2f}ms")
    ratio = stats.get("cache_hit_ratio")
    if ratio is not None:
        parts.append(f"cache_hit={ratio:.2f}")
    version = stats.get("version")
    if version is not None:
        parts.append(f"version={version}")
    tracer = stats.get("tracer") or server.get("tracer") or {}
    if tracer.get("sample"):
        parts.append(
            f"traced={int(tracer.get('sampled_total', 0))}"
            f" slow={int(tracer.get('slow_total', 0))}"
        )
    return "  ".join(parts)


def _cmd_stats(args: argparse.Namespace) -> int:
    """Scrape a running ``serve --tcp`` server: stats or Prometheus text."""
    import json
    import time

    from repro.serve.client import ServeClient

    try:
        host, port = _parse_hostport(args.addr)
    except ValueError:
        print(f"ADDR wants HOST:PORT, got {args.addr!r}", file=sys.stderr)
        return 2

    def scrape(client: "ServeClient") -> int:
        if args.prometheus:
            response = client.request({"metrics": "prometheus"})
            if "error" in response:
                print(f"server error: {response['error']}", file=sys.stderr)
                return 1
            print(response["prometheus"], end="")
            return 0
        response = client.request({"stats": True})
        if "error" in response:
            print(f"server error: {response['error']}", file=sys.stderr)
            return 1
        stats = response["stats"]
        if args.watch:
            print(_stats_line(stats), flush=True)
        else:
            print(json.dumps(stats, indent=2, sort_keys=True, default=str))
        return 0

    try:
        with ServeClient(host, port) as client:
            if not args.watch:
                return scrape(client)
            while True:
                rc = scrape(client)
                if rc:
                    return rc
                time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    except OSError as exc:
        print(f"cannot reach {host}:{port}: {exc}", file=sys.stderr)
        return 1


def _cmd_trace(args: argparse.Namespace) -> int:
    """Fetch and render recent traces / the slow log from a server."""
    from repro.obs.tracing import render_trace
    from repro.serve.client import ServeClient

    try:
        host, port = _parse_hostport(args.addr)
    except ValueError:
        print(f"ADDR wants HOST:PORT, got {args.addr!r}", file=sys.stderr)
        return 2
    try:
        with ServeClient(host, port) as client:
            response = client.request({"trace": args.n})
    except OSError as exc:
        print(f"cannot reach {host}:{port}: {exc}", file=sys.stderr)
        return 1
    if "error" in response:
        print(f"server error: {response['error']}", file=sys.stderr)
        return 1
    tstats = response.get("tracer", {})
    print(
        f"tracer: sample=1/{int(tstats.get('sample', 0)) or 'off'} "
        f"sampled={int(tstats.get('sampled_total', 0))} "
        f"slow={int(tstats.get('slow_total', 0))} "
        f"(threshold {float(tstats.get('slow_threshold_s', 0)) * 1e3:.0f} ms)",
        file=sys.stderr,
    )
    if args.slow:
        entries = response.get("slow", [])
        if not entries:
            print("slow-query log is empty", file=sys.stderr)
            return 0
        for entry in entries:
            line = (
                f"{entry['op']}: {entry['duration_s'] * 1e3:.3f} ms "
                f"error={entry.get('error', False)}"
            )
            print(line)
            if "trace" in entry:
                print(render_trace(entry["trace"]))
            print()
        return 0
    traces = response.get("traces", [])
    if not traces:
        print(
            "no sampled traces retained (is the server running with "
            "--trace-sample > 0?)",
            file=sys.stderr,
        )
        return 0
    for payload in traces:
        print(render_trace(payload))
        print()
    return 0


def _fmt_bytes(n: int) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if n < 1024 or unit == "GB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n} B"
        n /= 1024
    return f"{n} B"  # pragma: no cover - unreachable


def _cmd_inspect(args: argparse.Namespace) -> int:
    """Print a bundle's manifest and array inventory without loading it."""
    import json

    from repro.eval import format_table
    from repro.serve import BundleError
    from repro.serve.persistence import bundle_summary

    try:
        summary = bundle_summary(args.bundle)
    except BundleError as exc:
        print(f"cannot inspect bundle: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True, default=str))
        return 0
    rows = [
        ("class", summary["class"]),
        ("serializer", summary["serializer"]),
        ("format_version", summary["format_version"]),
        ("layout", summary["layout"]),
        ("library_version", summary["library_version"]),
        ("dim", summary["dim"]),
        ("metric", summary["metric"]),
        ("seed", summary["seed"]),
        ("fitted", summary["fitted"]),
        ("build_time", f"{summary['build_time']:.3f}s"
         if summary["build_time"] is not None else "-"),
    ]
    if summary["shards"] is not None:
        rows.append(("shards", summary["shards"]))
    for key, val in (summary["extra"] or {}).items():
        rows.append((f"extra.{key}", val))
    print(f"bundle: {summary['path']}\n")
    print(format_table(("field", "value"), rows))
    array_rows = [
        (
            a["name"],
            "x".join(str(s) for s in a["shape"]) or "scalar",
            a["dtype"],
            _fmt_bytes(a["bytes"]),
            _fmt_bytes(a["stored_bytes"]),
        )
        for a in summary["arrays"]
    ]
    print()
    print(format_table(
        ("array", "shape", "dtype", "bytes", "stored"), array_rows
    ))
    print(
        f"\n{len(summary['arrays'])} arrays, "
        f"{_fmt_bytes(summary['total_bytes'])} in memory, "
        f"{_fmt_bytes(summary['total_stored_bytes'])} on disk"
    )
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    """Rebuild acknowledged state from a WAL directory; optionally save."""
    from repro.serve import save_index
    from repro.serve.durability import RecoveryError, recover

    try:
        result = recover(args.wal_dir, mmap=args.mmap)
    except RecoveryError as exc:
        print(f"recovery failed: {exc}", file=sys.stderr)
        return 2
    index = result.index
    source = (
        "full-log replay"
        if result.snapshot_seq is None
        else f"snapshot at seq {result.snapshot_seq}"
    )
    print(
        f"recovered {index.name} from {args.wal_dir}\n"
        f"  source: {source} + {result.replayed} replayed records\n"
        f"  applied_seq: {result.applied_seq}\n"
        f"  n: {index.n}"
    )
    live = getattr(index, "live_count", None)
    if live is not None:
        print(f"  live_count: {live}")
    for path, error in result.corrupt:
        print(f"  skipped corrupt snapshot {path}: {error}", file=sys.stderr)
    if args.out:
        save_index(index, args.out, extra={"wal_seq": int(result.applied_seq)})
        print(f"saved recovered bundle to {args.out}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro import LCCSLSH
    from repro.data import compute_ground_truth, load_dataset
    from repro.eval import format_table
    from repro.eval.profiler import profile_batch_query, profile_query

    ds = load_dataset(args.dataset, n=args.n, n_queries=args.queries, seed=args.seed)
    gt = compute_ground_truth(ds.data, ds.queries, k=10, metric="euclidean")
    w = 2.0 * float(np.mean(gt.distances))
    index = LCCSLSH(dim=ds.dim, m=args.m, w=w, seed=args.seed).fit(ds.data)
    if args.batch:
        rows = []
        for lam in args.candidates:
            prof = profile_batch_query(
                index, ds.queries, k=10, num_candidates=lam
            )
            rows.append(
                (
                    lam,
                    f"{prof.hash_s * 1e3:.2f}",
                    f"{prof.search_s * 1e3:.2f}",
                    f"{prof.merge_s * 1e3:.2f}",
                    f"{prof.verify_s * 1e3:.2f}",
                    f"{prof.total_s * 1e3:.2f}",
                    f"{prof.qps:.0f}",
                )
            )
        print(
            f"dataset={args.dataset} n={ds.n} d={ds.dim} m={args.m} "
            f"backend={index.kernel_backend} batch={ds.n_queries}\n"
        )
        print(
            format_table(
                ("lambda", "hash(ms)", "search(ms)", "merge(ms)",
                 "verify(ms)", "total(ms)", "QPS"),
                rows,
            )
        )
        return 0
    rows = []
    for lam in args.candidates:
        profs = [
            profile_query(index, q, k=10, num_candidates=lam)
            for q in ds.queries
        ]
        rows.append(
            (
                lam,
                float(np.mean([p.hash_ms for p in profs])),
                float(np.mean([p.search_ms for p in profs])),
                float(np.mean([p.merge_ms for p in profs])),
                float(np.mean([p.verify_ms for p in profs])),
                float(np.mean([p.total_ms for p in profs])),
            )
        )
    print(f"dataset={args.dataset} n={ds.n} d={ds.dim} m={args.m}\n")
    print(
        format_table(
            ("lambda", "hash(ms)", "search(ms)", "merge(ms)",
             "verify(ms)", "total(ms)"),
            rows,
        )
    )
    return 0


def _cmd_theory(args: argparse.Namespace) -> int:
    from repro.eval import format_table
    from repro.theory import (
        exact_cdf, median_length, rho, theorem51_lambda,
    )

    r = rho(args.p1, args.p2)
    lam = theorem51_lambda(args.m, args.n, args.p1, args.p2)
    med1 = median_length(args.m, args.p1)
    med2 = median_length(args.m, args.p2)
    print(
        format_table(
            ("quantity", "value"),
            [
                ("rho = ln(1/p1)/ln(1/p2)", f"{r:.4f}"),
                ("Theorem 5.1 lambda", f"{lam:.1f}"),
                ("median |LCCS| at p1 (approx)", f"{med1:.2f}"),
                ("median |LCCS| at p2 (approx)", f"{med2:.2f}"),
                ("exact P(|LCCS| <= median_p1) at p1",
                 f"{exact_cdf(args.m, args.p1, int(med1)):.4f}"),
            ],
        )
    )
    return 0


def _add_backend_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--backend", choices=("numpy", "numba", "cext"), default=None,
        help="kernel backend for CSA search/merge/verify (default: the "
        "REPRO_BACKEND env var, then numpy; an unavailable backend "
        "silently falls back to numpy)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="LCCS-LSH reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("datasets", help="print simulated Table 2 statistics")
    p.add_argument("--n", type=int, default=2000)
    p.add_argument("--queries", type=int, default=20)
    p.add_argument("--seed", type=int, default=42)
    p.set_defaults(func=_cmd_datasets)

    p = sub.add_parser("compare", help="evaluate methods on a dataset")
    p.add_argument("--dataset", default="sift")
    p.add_argument("--n", type=int, default=3000)
    p.add_argument("--queries", type=int, default=15)
    p.add_argument("--k", type=int, default=10)
    p.add_argument("--metric", choices=("euclidean", "angular"), default="euclidean")
    p.add_argument(
        "--methods",
        default="lccs,mp-lccs,e2lsh",
        help=f"comma list from {','.join(_METHOD_CHOICES)}",
    )
    p.add_argument(
        "--batch",
        action="store_true",
        help="answer all queries through the vectorised batch engine "
        "(reports throughput as QPS)",
    )
    p.add_argument("--seed", type=int, default=42)
    _add_backend_arg(p)
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser(
        "build", help="fit an index (optionally sharded) and save a bundle"
    )
    p.add_argument("--dataset", default="sift")
    p.add_argument("--n", type=int, default=3000)
    p.add_argument("--queries", type=int, default=15)
    p.add_argument("--k", type=int, default=10)
    p.add_argument("--metric", choices=("euclidean", "angular"), default="euclidean")
    p.add_argument("--method", default="lccs", choices=_METHOD_CHOICES)
    p.add_argument(
        "--shards", type=int, default=1,
        help="partition the data across this many shard indexes (>1 "
        "enables the sharded fan-out/merge engine)",
    )
    p.add_argument(
        "--parallel", choices=("process", "thread", "serial"),
        default="process", help="how shard builds and fan-out run",
    )
    p.add_argument("--out", required=True, help="bundle directory to write")
    p.add_argument(
        "--mmap", action="store_true",
        help="after saving, verify the bundle cold-opens memory-mapped "
        "and report the open latency",
    )
    p.add_argument(
        "--memtable-size", type=int, default=None,
        help="(--method dynamic) absolute memtable row budget before a "
        "seal; replaces the relative rebuild-threshold rule",
    )
    p.add_argument(
        "--max-segments", type=int, default=None,
        help="(--method dynamic) compact once the sealed segment count "
        "exceeds this (default 4)",
    )
    p.add_argument(
        "--compaction", choices=("inline", "background", "rebuild"),
        default=None,
        help="(--method dynamic) segment merge strategy: inline "
        "(deterministic, default), background (off the write path), or "
        "rebuild (legacy full O(n) rebuild per seal)",
    )
    p.add_argument("--seed", type=int, default=42)
    _add_backend_arg(p)
    p.set_defaults(func=_cmd_build)

    p = sub.add_parser(
        "query", help="load a saved bundle and evaluate it on queries"
    )
    p.add_argument("bundle", help="bundle directory written by `build`")
    p.add_argument(
        "--dataset", default=None,
        help="override the dataset recorded in the bundle",
    )
    p.add_argument("--n", type=int, default=None)
    p.add_argument(
        "--queries", type=int, default=None,
        help="query count; defaults to the count recorded at build time "
        "(changing it regenerates a different data/query split)",
    )
    p.add_argument("--k", type=int, default=10)
    p.add_argument(
        "--batch", action="store_true",
        help="answer all queries through the vectorised batch engine",
    )
    p.add_argument(
        "--mmap", action="store_true",
        help="open the bundle as read-only memory maps instead of "
        "reading it into RAM (v2 bundles)",
    )
    p.add_argument("--seed", type=int, default=None)
    _add_backend_arg(p)
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser(
        "inspect",
        help="print a bundle's manifest and array inventory without "
        "loading it",
    )
    p.add_argument("bundle", help="bundle directory to describe")
    p.add_argument(
        "--json", action="store_true",
        help="emit the summary as JSON instead of tables",
    )
    p.set_defaults(func=_cmd_inspect)

    p = sub.add_parser(
        "serve",
        help="serve a bundle: JSON-lines requests on stdin or --tcp",
    )
    p.add_argument("bundle", help="bundle directory written by `build`")
    p.add_argument(
        "--tcp", default=None, metavar="HOST:PORT",
        help="serve the JSON-lines protocol over TCP on this address "
        "(port 0 picks one; the chosen port is announced on stderr) "
        "instead of stdin",
    )
    p.add_argument(
        "--workers", type=int, default=1,
        help="prefork this many mmap worker processes sharing the --tcp "
        "port via SO_REUSEPORT (writes route to a single primary; "
        "requires --wal-dir for writes)",
    )
    p.add_argument(
        "--max-inflight", type=int, default=64,
        help="per-worker admission bound: requests beyond it are shed "
        "with an explicit overloaded error (--tcp mode)",
    )
    p.add_argument(
        "--drain-timeout", type=float, default=10.0,
        help="on SIGTERM, how long existing connections may linger "
        "before being force-closed (--tcp mode)",
    )
    p.add_argument(
        "--threads", type=int, default=4,
        help="concurrent client workers issuing queries (adjacent "
        "queries coalesce into micro-batches)",
    )
    p.add_argument(
        "--cache-size", type=int, default=1024,
        help="LRU query-result cache capacity (0 disables caching)",
    )
    p.add_argument(
        "--batch-window-ms", type=float, default=2.0,
        help="how long a lone query waits for company before executing",
    )
    p.add_argument("--max-batch", type=int, default=64,
                   help="micro-batch size cap")
    p.add_argument("--k", type=int, default=10,
                   help="default k for requests that omit it")
    p.add_argument(
        "--requests", default=None,
        help="read JSON-lines requests from this file instead of stdin",
    )
    p.add_argument(
        "--wal-dir", default=None,
        help="write-ahead-log every write here (and recover from it on "
        "restart); enables crash durability",
    )
    p.add_argument(
        "--fsync", choices=("always", "interval", "off"), default="always",
        help="WAL fsync policy: per-write, time-bounded, or OS-decided",
    )
    p.add_argument(
        "--snapshot-every", type=int, default=500,
        help="checkpoint the index every N writes (0 disables periodic "
        "snapshots; a baseline snapshot is always taken)",
    )
    p.add_argument(
        "--snapshot-keep", type=int, default=3,
        help="how many snapshots to retain",
    )
    p.add_argument(
        "--replicas", type=int, default=0,
        help="serve queries from this many log-shipping read replicas "
        "(requires --wal-dir; write responses carry a 'seq' usable as "
        "min_version for read-your-writes)",
    )
    p.add_argument(
        "--tail-interval-ms", type=float, default=50.0,
        help="how often replicas poll the WAL for new records",
    )
    p.add_argument(
        "--mmap", action="store_true",
        help="serve from read-only memory maps: the bundle (or the "
        "recovered snapshot, and replica bootstraps) opens without "
        "copying arrays into RAM",
    )
    p.add_argument(
        "--trace-sample", type=int, default=0, metavar="N",
        help="record a full span tree for 1 in N requests (0 disables "
        "tracing, 1 traces everything); retrieve them with the "
        "{\"trace\": n} request or `repro trace ADDR`",
    )
    p.add_argument(
        "--slow-ms", type=float, default=100.0,
        help="requests at least this slow always enter the bounded "
        "slow-query log, sampled or not",
    )
    p.add_argument(
        "--slow-log", default=None, metavar="PATH",
        help="dump the slow-query log as JSON lines here on shutdown",
    )
    p.add_argument(
        "--obs-dir", default=None, metavar="DIR",
        help="shared directory for prefork metric-snapshot fan-in "
        "(default: <wal-dir>/obs, else a temp dir; single-process "
        "mode needs no spool)",
    )
    _add_backend_arg(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "stats",
        help="scrape a running serve --tcp server: stats JSON, a "
        "--watch ticker, or --prometheus text",
    )
    p.add_argument("addr", metavar="ADDR", help="HOST:PORT of the server")
    p.add_argument(
        "--watch", action="store_true",
        help="print one compact stats line every --interval seconds",
    )
    p.add_argument(
        "--interval", type=float, default=2.0,
        help="--watch refresh period in seconds",
    )
    p.add_argument(
        "--prometheus", action="store_true",
        help="print the Prometheus text exposition (merged across "
        "prefork workers) instead of stats JSON",
    )
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser(
        "trace",
        help="fetch and render sampled span trees (or the slow-query "
        "log) from a running serve --tcp server",
    )
    p.add_argument("addr", metavar="ADDR", help="HOST:PORT of the server")
    p.add_argument(
        "-n", type=int, default=10,
        help="how many recent traces (or slow-log entries) to fetch",
    )
    p.add_argument(
        "--slow", action="store_true",
        help="show the slow-query log instead of recent sampled traces",
    )
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "recover",
        help="rebuild acknowledged state from a WAL directory "
        "(snapshot + log replay)",
    )
    p.add_argument("wal_dir", help="WAL directory written by a durable serve")
    p.add_argument(
        "--out", default=None,
        help="save the recovered index as a bundle directory",
    )
    p.add_argument(
        "--mmap", action="store_true",
        help="open the snapshot as read-only memory maps (recovery "
        "time stops scaling with snapshot size)",
    )
    p.set_defaults(func=_cmd_recover)

    p = sub.add_parser("profile", help="per-phase query time breakdown")
    p.add_argument("--dataset", default="sift")
    p.add_argument("--n", type=int, default=3000)
    p.add_argument("--queries", type=int, default=10)
    p.add_argument("--m", type=int, default=32)
    p.add_argument(
        "--candidates", type=int, nargs="+", default=[25, 100, 400]
    )
    p.add_argument(
        "--batch", action="store_true",
        help="profile the vectorised batch path via the engine's own "
        "per-stage instrumentation (reports the kernel backend and QPS)",
    )
    p.add_argument("--seed", type=int, default=42)
    _add_backend_arg(p)
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("theory", help="collision/lambda calculations")
    p.add_argument("--m", type=int, default=64)
    p.add_argument("--n", type=int, default=100_000)
    p.add_argument("--p1", type=float, default=0.9)
    p.add_argument("--p2", type=float, default=0.5)
    p.set_defaults(func=_cmd_theory)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "backend", None):
        from repro import kernels

        kernels.set_default_backend(args.backend)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Command-line interface: quick experiments without writing code.

Subcommands:

* ``datasets`` — print the (simulated) paper Table 2 statistics.
* ``compare`` — evaluate a set of methods on one dataset and print the
  recall / ratio / time / size table.
* ``theory`` — collision probabilities and Theorem 5.1's lambda for a
  parameter setting.

Examples::

    python -m repro.cli datasets --n 2000
    python -m repro.cli compare --dataset sift --n 3000 --metric euclidean
    python -m repro.cli compare --dataset sift --n 3000 --batch
    python -m repro.cli theory --m 64 --n 100000 --p1 0.9 --p2 0.5
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]


def _cmd_datasets(args: argparse.Namespace) -> int:
    from repro.data import DATASET_SPECS, load_dataset
    from repro.eval import format_table

    rows = []
    for name, spec in DATASET_SPECS.items():
        ds = load_dataset(name, n=args.n, n_queries=args.queries, seed=args.seed)
        rows.append(
            (
                name, ds.n, ds.n_queries, ds.dim,
                f"{ds.size_bytes() / 2**20:.1f} MB",
                spec.description,
            )
        )
    print(
        format_table(
            ("Dataset", "#Objects", "#Queries", "d", "Data Size", "Type"), rows
        )
    )
    return 0


_METHOD_CHOICES = (
    "lccs", "mp-lccs", "e2lsh", "multiprobe", "falconn", "c2lsh",
    "qalsh", "srs", "scan",
)


def _build_method(name: str, dim: int, metric: str, w: float, seed: int):
    from repro import LCCSLSH, MPLCCSLSH
    from repro.baselines import (
        C2LSH, E2LSH, FALCONN, LinearScan, MultiProbeLSH, QALSH, SRS,
    )

    angular = metric == "angular"
    if name == "lccs":
        index = (
            LCCSLSH(dim=dim, m=64, metric="angular", cp_dim=16, seed=seed)
            if angular
            else LCCSLSH(dim=dim, m=64, w=w, seed=seed)
        )
        return index, {"num_candidates": 200}
    if name == "mp-lccs":
        index = (
            MPLCCSLSH(
                dim=dim, m=32, metric="angular", cp_dim=16, seed=seed,
                n_probes=33,
            )
            if angular
            else MPLCCSLSH(dim=dim, m=32, w=w, seed=seed, n_probes=33)
        )
        return index, {"num_candidates": 200}
    if name == "e2lsh":
        index = (
            E2LSH(dim=dim, K=1, L=32, metric="angular", cp_dim=16, seed=seed)
            if angular
            else E2LSH(dim=dim, K=4, L=32, w=w, seed=seed)
        )
        return index, {}
    if name == "multiprobe":
        return (
            MultiProbeLSH(dim=dim, K=8, L=8, w=w, n_probes=64, seed=seed),
            {},
        )
    if name == "falconn":
        return FALCONN(dim=dim, K=1, L=16, cp_dim=16, n_probes=64, seed=seed), {}
    if name == "c2lsh":
        index = (
            C2LSH(dim=dim, m=32, l=3, metric="angular", cp_dim=16,
                  beta=0.05, seed=seed)
            if angular
            else C2LSH(dim=dim, m=32, l=6, w=w / 2, beta=0.05, seed=seed)
        )
        return index, {}
    if name == "qalsh":
        return QALSH(dim=dim, m=32, l=6, w=1.0, beta=0.05, seed=seed), {}
    if name == "srs":
        return SRS(dim=dim, d_proj=6, c=2.0, max_fraction=0.05, seed=seed), {}
    if name == "scan":
        return LinearScan(dim=dim, metric=metric), {}
    raise ValueError(f"unknown method {name!r}")


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.data import compute_ground_truth, load_dataset
    from repro.distances import normalize_rows
    from repro.eval import evaluate, format_results

    ds = load_dataset(args.dataset, n=args.n, n_queries=args.queries, seed=args.seed)
    data, queries = ds.data, ds.queries
    if args.metric == "angular":
        data = normalize_rows(data)
        queries = normalize_rows(queries)
    gt = compute_ground_truth(data, queries, k=args.k, metric=args.metric)
    w = 2.0 * float(np.mean(gt.distances))
    methods = args.methods.split(",")
    invalid = [m for m in methods if m not in _METHOD_CHOICES]
    if invalid:
        print(
            f"unknown methods: {invalid}; choices: {list(_METHOD_CHOICES)}",
            file=sys.stderr,
        )
        return 2
    if args.metric == "angular":
        unsupported = {"multiprobe", "qalsh", "srs"}
        bad = [m for m in methods if m in unsupported]
        if bad:
            print(
                f"{bad} support Euclidean only; pick other methods",
                file=sys.stderr,
            )
            return 2
    results = []
    for name in methods:
        index, query_kwargs = _build_method(
            name, ds.dim, args.metric, w, args.seed
        )
        results.append(
            evaluate(
                index, data, queries, gt, k=args.k,
                query_kwargs=query_kwargs, params={"method": name},
                batch=args.batch,
            )
        )
    mode = "batched" if args.batch else "per-query"
    print(f"dataset={args.dataset} n={len(data)} d={ds.dim} "
          f"metric={args.metric} k={args.k} mode={mode}\n")
    print(format_results(results))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro import LCCSLSH
    from repro.data import compute_ground_truth, load_dataset
    from repro.eval import format_table
    from repro.eval.profiler import profile_query

    ds = load_dataset(args.dataset, n=args.n, n_queries=args.queries, seed=args.seed)
    gt = compute_ground_truth(ds.data, ds.queries, k=10, metric="euclidean")
    w = 2.0 * float(np.mean(gt.distances))
    index = LCCSLSH(dim=ds.dim, m=args.m, w=w, seed=args.seed).fit(ds.data)
    rows = []
    for lam in args.candidates:
        profs = [
            profile_query(index, q, k=10, num_candidates=lam)
            for q in ds.queries
        ]
        rows.append(
            (
                lam,
                float(np.mean([p.hash_ms for p in profs])),
                float(np.mean([p.search_ms for p in profs])),
                float(np.mean([p.merge_ms for p in profs])),
                float(np.mean([p.verify_ms for p in profs])),
                float(np.mean([p.total_ms for p in profs])),
            )
        )
    print(f"dataset={args.dataset} n={ds.n} d={ds.dim} m={args.m}\n")
    print(
        format_table(
            ("lambda", "hash(ms)", "search(ms)", "merge(ms)",
             "verify(ms)", "total(ms)"),
            rows,
        )
    )
    return 0


def _cmd_theory(args: argparse.Namespace) -> int:
    from repro.eval import format_table
    from repro.theory import (
        exact_cdf, median_length, rho, theorem51_lambda,
    )

    r = rho(args.p1, args.p2)
    lam = theorem51_lambda(args.m, args.n, args.p1, args.p2)
    med1 = median_length(args.m, args.p1)
    med2 = median_length(args.m, args.p2)
    print(
        format_table(
            ("quantity", "value"),
            [
                ("rho = ln(1/p1)/ln(1/p2)", f"{r:.4f}"),
                ("Theorem 5.1 lambda", f"{lam:.1f}"),
                ("median |LCCS| at p1 (approx)", f"{med1:.2f}"),
                ("median |LCCS| at p2 (approx)", f"{med2:.2f}"),
                ("exact P(|LCCS| <= median_p1) at p1",
                 f"{exact_cdf(args.m, args.p1, int(med1)):.4f}"),
            ],
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="LCCS-LSH reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("datasets", help="print simulated Table 2 statistics")
    p.add_argument("--n", type=int, default=2000)
    p.add_argument("--queries", type=int, default=20)
    p.add_argument("--seed", type=int, default=42)
    p.set_defaults(func=_cmd_datasets)

    p = sub.add_parser("compare", help="evaluate methods on a dataset")
    p.add_argument("--dataset", default="sift")
    p.add_argument("--n", type=int, default=3000)
    p.add_argument("--queries", type=int, default=15)
    p.add_argument("--k", type=int, default=10)
    p.add_argument("--metric", choices=("euclidean", "angular"), default="euclidean")
    p.add_argument(
        "--methods",
        default="lccs,mp-lccs,e2lsh",
        help=f"comma list from {','.join(_METHOD_CHOICES)}",
    )
    p.add_argument(
        "--batch",
        action="store_true",
        help="answer all queries through the vectorised batch engine "
        "(reports throughput as QPS)",
    )
    p.add_argument("--seed", type=int, default=42)
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("profile", help="per-phase query time breakdown")
    p.add_argument("--dataset", default="sift")
    p.add_argument("--n", type=int, default=3000)
    p.add_argument("--queries", type=int, default=10)
    p.add_argument("--m", type=int, default=32)
    p.add_argument(
        "--candidates", type=int, nargs="+", default=[25, 100, 400]
    )
    p.add_argument("--seed", type=int, default=42)
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("theory", help="collision/lambda calculations")
    p.add_argument("--m", type=int, default=64)
    p.add_argument("--n", type=int, default=100_000)
    p.add_argument("--p1", type=float, default=0.9)
    p.add_argument("--p2", type=float, default=0.5)
    p.set_defaults(func=_cmd_theory)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Distance metrics (Euclidean, angular, Hamming, Jaccard, ...)."""

from repro.distances.metrics import (
    METRICS,
    angular,
    cosine,
    euclidean,
    get_metric,
    hamming,
    jaccard,
    manhattan,
    normalize_rows,
    pairwise,
    pairwise_cross,
    pairwise_rows,
    squared_euclidean,
)

__all__ = [
    "METRICS",
    "angular",
    "cosine",
    "euclidean",
    "get_metric",
    "hamming",
    "jaccard",
    "manhattan",
    "normalize_rows",
    "pairwise",
    "pairwise_cross",
    "pairwise_rows",
    "squared_euclidean",
]

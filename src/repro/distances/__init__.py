"""Distance metrics (Euclidean, angular, Hamming, Jaccard, ...)."""

from repro.distances.metrics import (
    METRICS,
    angular,
    cosine,
    euclidean,
    get_metric,
    hamming,
    hamming_packed,
    jaccard,
    manhattan,
    normalize_rows,
    pack_bits,
    pairwise,
    pairwise_cross,
    pairwise_rows,
    squared_euclidean,
)

__all__ = [
    "METRICS",
    "angular",
    "cosine",
    "euclidean",
    "get_metric",
    "hamming",
    "hamming_packed",
    "jaccard",
    "manhattan",
    "normalize_rows",
    "pack_bits",
    "pairwise",
    "pairwise_cross",
    "pairwise_rows",
    "squared_euclidean",
]

"""Distance metrics used throughout the library.

The paper evaluates LCCS-LSH under Euclidean distance and Angular
distance, and notes the framework supports any metric admitting an LSH
family.  We provide those two plus Hamming and Jaccard (for the bit
sampling and MinHash families) and cosine distance as a convenience.

Two calling conventions are supported by every metric:

* ``metric(o, q)`` with two 1-d vectors returns a scalar, and
* ``pairwise(data, q, metric)`` with a 2-d ``(n, d)`` matrix and a 1-d
  query returns the length-``n`` vector of distances, computed with
  vectorised numpy kernels.

The batched query engine adds two more conventions:

* ``pairwise_rows(a, b, metric)`` with two equal-shape ``(n, d)``
  matrices returns the length-``n`` vector of row-wise distances
  ``dist(a[i], b[i])`` — one fused kernel call verifies the candidates
  of a whole query batch; and
* ``pairwise_cross(data, queries, metric)`` returns the full
  ``(nq, n)`` cross-distance matrix in one call (for bulk scans that
  do not need bit-exact agreement with the single-query kernels).

Row-wise kernels apply the same elementwise operations and reduction
order as ``pairwise``, so their outputs are bit-identical per row.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

__all__ = [
    "euclidean",
    "squared_euclidean",
    "manhattan",
    "angular",
    "cosine",
    "hamming",
    "jaccard",
    "pairwise",
    "pairwise_rows",
    "pairwise_cross",
    "get_metric",
    "METRICS",
    "normalize_rows",
    "pack_bits",
    "hamming_packed",
]


def euclidean(o: np.ndarray, q: np.ndarray) -> float:
    """Euclidean (l2) distance between two vectors."""
    o = np.asarray(o, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    return float(np.sqrt(np.sum((o - q) ** 2)))


def squared_euclidean(o: np.ndarray, q: np.ndarray) -> float:
    """Squared Euclidean distance (cheaper; same ordering as l2)."""
    o = np.asarray(o, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    return float(np.sum((o - q) ** 2))


def manhattan(o: np.ndarray, q: np.ndarray) -> float:
    """Manhattan (l1) distance; served by the Cauchy projection family."""
    o = np.asarray(o, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    return float(np.sum(np.abs(o - q)))


def angular(o: np.ndarray, q: np.ndarray) -> float:
    """Angular distance ``theta(o, q) = arccos(o.q / (|o||q|))`` in radians.

    Raises ``ValueError`` for zero vectors, for which the angle is
    undefined.
    """
    o = np.asarray(o, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    no = np.linalg.norm(o)
    nq = np.linalg.norm(q)
    if no == 0.0 or nq == 0.0:
        raise ValueError("angular distance is undefined for zero vectors")
    cos = np.clip(np.dot(o, q) / (no * nq), -1.0, 1.0)
    return float(np.arccos(cos))


def cosine(o: np.ndarray, q: np.ndarray) -> float:
    """Cosine distance ``1 - cos(o, q)``; monotone in angular distance."""
    o = np.asarray(o, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    no = np.linalg.norm(o)
    nq = np.linalg.norm(q)
    if no == 0.0 or nq == 0.0:
        raise ValueError("cosine distance is undefined for zero vectors")
    return float(1.0 - np.clip(np.dot(o, q) / (no * nq), -1.0, 1.0))


def hamming(o: np.ndarray, q: np.ndarray) -> float:
    """Hamming distance: number of positions on which the vectors differ."""
    o = np.asarray(o)
    q = np.asarray(q)
    return float(np.count_nonzero(o != q))


def jaccard(o: np.ndarray, q: np.ndarray) -> float:
    """Jaccard distance ``1 - |o & q| / |o | q|`` between binary vectors.

    Inputs are interpreted as indicator vectors (nonzero = member).  The
    distance between two empty sets is defined as 0.
    """
    o = np.asarray(o) != 0
    q = np.asarray(q) != 0
    union = np.count_nonzero(o | q)
    if union == 0:
        return 0.0
    inter = np.count_nonzero(o & q)
    return float(1.0 - inter / union)


def _pairwise_euclidean(data: np.ndarray, q: np.ndarray) -> np.ndarray:
    diff = data - q[None, :]
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))


def _pairwise_squared_euclidean(data: np.ndarray, q: np.ndarray) -> np.ndarray:
    diff = data - q[None, :]
    return np.einsum("ij,ij->i", diff, diff)


def _pairwise_manhattan(data: np.ndarray, q: np.ndarray) -> np.ndarray:
    return np.sum(np.abs(data - q[None, :]), axis=1)


def _pairwise_angular(data: np.ndarray, q: np.ndarray) -> np.ndarray:
    # Delegates to the row-wise kernel (query broadcast across rows) so
    # the dot products use the same einsum reduction as the batched
    # verification path — bit-identical results, not just close ones.
    # einsum takes the stride-0 view directly; no copy is needed.
    return _rows_angular(data, np.broadcast_to(q, data.shape))


def _pairwise_cosine(data: np.ndarray, q: np.ndarray) -> np.ndarray:
    return _rows_cosine(data, np.broadcast_to(q, data.shape))


def _pairwise_hamming(data: np.ndarray, q: np.ndarray) -> np.ndarray:
    return np.count_nonzero(data != q[None, :], axis=1).astype(np.float64)


def _pairwise_jaccard(data: np.ndarray, q: np.ndarray) -> np.ndarray:
    d = data != 0
    qb = q != 0
    inter = np.count_nonzero(d & qb[None, :], axis=1).astype(np.float64)
    union = np.count_nonzero(d | qb[None, :], axis=1).astype(np.float64)
    out = np.ones(len(data))
    nonempty = union > 0
    out[nonempty] = 1.0 - inter[nonempty] / union[nonempty]
    out[~nonempty] = 0.0
    return out


METRICS: Dict[str, Callable[[np.ndarray, np.ndarray], float]] = {
    "euclidean": euclidean,
    "squared_euclidean": squared_euclidean,
    "manhattan": manhattan,
    "angular": angular,
    "cosine": cosine,
    "hamming": hamming,
    "jaccard": jaccard,
}

_PAIRWISE: Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "euclidean": _pairwise_euclidean,
    "squared_euclidean": _pairwise_squared_euclidean,
    "manhattan": _pairwise_manhattan,
    "angular": _pairwise_angular,
    "cosine": _pairwise_cosine,
    "hamming": _pairwise_hamming,
    "jaccard": _pairwise_jaccard,
}


def get_metric(name: str) -> Callable[[np.ndarray, np.ndarray], float]:
    """Look up a scalar metric by name; raises ``KeyError`` with options."""
    try:
        return METRICS[name]
    except KeyError:
        raise KeyError(
            f"unknown metric {name!r}; available: {sorted(METRICS)}"
        ) from None


def pairwise(data: np.ndarray, q: np.ndarray, metric: str) -> np.ndarray:
    """Distances from every row of ``data`` to the query ``q``.

    ``data`` has shape ``(n, d)``, ``q`` has shape ``(d,)``; the result is
    a float64 vector of length ``n``.
    """
    data = np.asarray(data)
    q = np.asarray(q)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-d, got shape {data.shape}")
    if q.ndim != 1 or q.shape[0] != data.shape[1]:
        raise ValueError(
            f"query shape {q.shape} incompatible with data shape {data.shape}"
        )
    try:
        kernel = _PAIRWISE[metric]
    except KeyError:
        raise KeyError(
            f"unknown metric {metric!r}; available: {sorted(_PAIRWISE)}"
        ) from None
    return kernel(data, q)


def _rows_euclidean(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    diff = a - b
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))


def _rows_squared_euclidean(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    diff = a - b
    return np.einsum("ij,ij->i", diff, diff)


def _rows_manhattan(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.sum(np.abs(a - b), axis=1)


def _rows_angular(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    na = np.linalg.norm(a, axis=1)
    nb = np.linalg.norm(b, axis=1)
    if np.any(na == 0.0) or np.any(nb == 0.0):
        raise ValueError("angular distance is undefined for zero vectors")
    cos = np.clip(np.einsum("ij,ij->i", a, b) / (na * nb), -1.0, 1.0)
    return np.arccos(cos)


def _rows_cosine(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    na = np.linalg.norm(a, axis=1)
    nb = np.linalg.norm(b, axis=1)
    if np.any(na == 0.0) or np.any(nb == 0.0):
        raise ValueError("cosine distance is undefined for zero vectors")
    return 1.0 - np.clip(np.einsum("ij,ij->i", a, b) / (na * nb), -1.0, 1.0)


def _rows_hamming(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.count_nonzero(a != b, axis=1).astype(np.float64)


def _rows_jaccard(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    ab = a != 0
    bb = b != 0
    inter = np.count_nonzero(ab & bb, axis=1).astype(np.float64)
    union = np.count_nonzero(ab | bb, axis=1).astype(np.float64)
    out = np.ones(len(a))
    nonempty = union > 0
    out[nonempty] = 1.0 - inter[nonempty] / union[nonempty]
    out[~nonempty] = 0.0
    return out


_ROWS: Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "euclidean": _rows_euclidean,
    "squared_euclidean": _rows_squared_euclidean,
    "manhattan": _rows_manhattan,
    "angular": _rows_angular,
    "cosine": _rows_cosine,
    "hamming": _rows_hamming,
    "jaccard": _rows_jaccard,
}


def pairwise_rows(a: np.ndarray, b: np.ndarray, metric: str) -> np.ndarray:
    """Row-wise distances ``dist(a[i], b[i])`` between equal-shape matrices.

    The workhorse of batched candidate verification: the candidates of
    every query in a batch are gathered into ``a``, the owning queries
    repeated into ``b``, and all distances come from one kernel call.
    Per row the result is bit-identical to :func:`pairwise`.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or a.shape != b.shape:
        raise ValueError(
            f"a and b must be equal-shape 2-d arrays, got {a.shape} vs {b.shape}"
        )
    try:
        kernel = _ROWS[metric]
    except KeyError:
        raise KeyError(
            f"unknown metric {metric!r}; available: {sorted(_ROWS)}"
        ) from None
    return kernel(a, b)


def _cross_euclidean(data: np.ndarray, queries: np.ndarray) -> np.ndarray:
    diff = data[None, :, :] - queries[:, None, :]
    return np.sqrt(np.einsum("qnd,qnd->qn", diff, diff))


def _cross_squared_euclidean(data: np.ndarray, queries: np.ndarray) -> np.ndarray:
    diff = data[None, :, :] - queries[:, None, :]
    return np.einsum("qnd,qnd->qn", diff, diff)


def _cross_manhattan(data: np.ndarray, queries: np.ndarray) -> np.ndarray:
    return np.sum(np.abs(data[None, :, :] - queries[:, None, :]), axis=2)


def _cross_angular(data: np.ndarray, queries: np.ndarray) -> np.ndarray:
    nd = np.linalg.norm(data, axis=1)
    nq = np.linalg.norm(queries, axis=1)
    if np.any(nd == 0.0) or np.any(nq == 0.0):
        raise ValueError("angular distance is undefined for zero vectors")
    cos = np.clip(
        np.einsum("qd,nd->qn", queries, data) / (nq[:, None] * nd[None, :]),
        -1.0, 1.0,
    )
    return np.arccos(cos)


def _cross_cosine(data: np.ndarray, queries: np.ndarray) -> np.ndarray:
    nd = np.linalg.norm(data, axis=1)
    nq = np.linalg.norm(queries, axis=1)
    if np.any(nd == 0.0) or np.any(nq == 0.0):
        raise ValueError("cosine distance is undefined for zero vectors")
    return 1.0 - np.clip(
        np.einsum("qd,nd->qn", queries, data) / (nq[:, None] * nd[None, :]),
        -1.0, 1.0,
    )


def _cross_hamming(data: np.ndarray, queries: np.ndarray) -> np.ndarray:
    return np.count_nonzero(
        data[None, :, :] != queries[:, None, :], axis=2
    ).astype(np.float64)


def _cross_jaccard(data: np.ndarray, queries: np.ndarray) -> np.ndarray:
    d = data != 0
    q = queries != 0
    inter = np.count_nonzero(d[None, :, :] & q[:, None, :], axis=2).astype(np.float64)
    union = np.count_nonzero(d[None, :, :] | q[:, None, :], axis=2).astype(np.float64)
    out = np.ones(inter.shape)
    nonempty = union > 0
    out[nonempty] = 1.0 - inter[nonempty] / union[nonempty]
    out[~nonempty] = 0.0
    return out


_CROSS: Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "euclidean": _cross_euclidean,
    "squared_euclidean": _cross_squared_euclidean,
    "manhattan": _cross_manhattan,
    "angular": _cross_angular,
    "cosine": _cross_cosine,
    "hamming": _cross_hamming,
    "jaccard": _cross_jaccard,
}


def pairwise_cross(data: np.ndarray, queries: np.ndarray, metric: str) -> np.ndarray:
    """Full cross-distance matrix ``out[i, j] = dist(queries[i], data[j])``.

    One call covers every (query, point) pair.  For the elementwise
    metrics (euclidean, manhattan, hamming, jaccard) results are
    bit-identical per row to :func:`pairwise`; the dot-product metrics
    (angular, cosine) may differ in the last ulp because the reduction
    runs through a matrix product.  Callers that need exact agreement
    with the single-query path (e.g. batched verification) should use
    :func:`pairwise_rows` instead.
    """
    data = np.asarray(data)
    queries = np.asarray(queries)
    if data.ndim != 2 or queries.ndim != 2 or data.shape[1] != queries.shape[1]:
        raise ValueError(
            f"data {data.shape} and queries {queries.shape} must be 2-d "
            "with matching dimensionality"
        )
    try:
        kernel = _CROSS[metric]
    except KeyError:
        raise KeyError(
            f"unknown metric {metric!r}; available: {sorted(_CROSS)}"
        ) from None
    return kernel(data, queries)


#: bits set per byte value, for the vectorised packed-Hamming kernel
_POPCOUNT8 = np.array([bin(v).count("1") for v in range(256)], dtype=np.uint16)


def pack_bits(data: np.ndarray) -> np.ndarray:
    """Pack binary ``{0, 1}`` rows into uint64 words (little-endian bits).

    ``data`` has shape ``(n, d)`` with values in ``{0, 1}`` (any dtype);
    the result has shape ``(n, ceil(d / 64))`` and dtype uint64, zero-
    padded past ``d``.  XOR-plus-popcount over packed rows then equals
    the Hamming distance over the original rows, which is what the
    compiled verification kernels exploit (64 coordinates per word
    instead of one comparison per coordinate).
    """
    data = np.asarray(data)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-d, got shape {data.shape}")
    n, d = data.shape
    words = max(1, (d + 63) // 64)
    packed8 = np.packbits(
        data.astype(np.uint8, copy=False), axis=1, bitorder="little"
    )
    if packed8.shape[1] < words * 8:
        pad = np.zeros((n, words * 8 - packed8.shape[1]), dtype=np.uint8)
        packed8 = np.concatenate([packed8, pad], axis=1)
    return np.ascontiguousarray(packed8).view(np.uint64)


def hamming_packed(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise Hamming distance between bit-packed uint64 matrices.

    ``a`` and ``b`` are equal-shape outputs of :func:`pack_bits`; the
    result equals ``pairwise_rows(orig_a, orig_b, "hamming")`` on the
    original binary rows (integer counts are exact, so this is the rare
    distance kernel where a different implementation is still
    bit-identical).
    """
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    if a.ndim != 2 or a.shape != b.shape:
        raise ValueError(
            f"a and b must be equal-shape 2-d arrays, got {a.shape} vs {b.shape}"
        )
    x = np.ascontiguousarray(a ^ b).view(np.uint8)
    return _POPCOUNT8[x].sum(axis=1).astype(np.float64)


def normalize_rows(data: np.ndarray) -> np.ndarray:
    """Return ``data`` with every row scaled to unit l2 norm.

    Rows with zero norm raise ``ValueError`` (they cannot live on the
    unit sphere, which the cross-polytope family requires).
    """
    data = np.asarray(data, dtype=np.float64)
    single = data.ndim == 1
    if single:
        data = data[None, :]
    norms = np.linalg.norm(data, axis=1)
    if np.any(norms == 0.0):
        raise ValueError("cannot normalise zero vectors onto the unit sphere")
    out = data / norms[:, None]
    return out[0] if single else out

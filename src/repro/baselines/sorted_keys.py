"""SK-LSH and a simplified LSB-Forest — related-work baselines (paper §7).

Both methods linearise compound LSH keys into a *sorted order* and probe
entries adjacent to the query's position:

* **SK-LSH** (Liu et al., VLDB'14) sorts the length-``K`` compound keys
  lexicographically ("alphabetical order") and scans outward from the
  query's insertion point in each of ``L`` lists.
* **LSB-Forest** (Tao et al., SIGMOD'09) maps the ``K`` hash values to a
  Z-order (Morton) value and keeps it sorted (the original uses a
  B-tree; a sorted array is the in-memory equivalent), again probing
  around the query's position in each of ``L`` trees.

The paper's §7 argument — that the CSA "carries more information than
sequence and curves" because every position starts a usable order — is
exactly the contrast with these two schemes, which fix one linear order
per tree.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Tuple

import numpy as np

from repro.base import ANNIndex
from repro.hashes import HashFamily, make_family

__all__ = ["SKLSH", "LSBForest", "zorder_interleave"]


def zorder_interleave(coords: np.ndarray, bits_per_dim: int = 16) -> np.ndarray:
    """Morton / Z-order values of integer coordinate rows.

    ``coords`` is ``(n, K)`` of non-negative ints; each value's low
    ``bits_per_dim`` bits are bit-interleaved (dimension-major) into one
    Python integer per row (arbitrary precision, so ``K * bits_per_dim``
    may exceed 64).
    """
    coords = np.asarray(coords)
    if coords.ndim != 2:
        raise ValueError("coords must be 2-d")
    if bits_per_dim <= 0:
        raise ValueError("bits_per_dim must be positive")
    if (coords < 0).any():
        raise ValueError("z-order requires non-negative coordinates")
    n, K = coords.shape
    out = []
    for i in range(n):
        z = 0
        row = [int(v) for v in coords[i]]
        for bit in range(bits_per_dim - 1, -1, -1):
            for d in range(K):
                z = (z << 1) | ((row[d] >> bit) & 1)
        out.append(z)
    return np.array(out, dtype=object)


class _SortedKeyIndex(ANNIndex):
    """Shared machinery: ``L`` sorted key lists probed around the query.

    Subclasses define how a ``(n, K)`` block of hash codes becomes
    sortable keys (``_keys_for_table``) and how a query block becomes a
    probe key (``_query_key``); everything else — sorting, insertion-
    point location, bidirectional scan, verification — is shared.
    """

    def __init__(
        self,
        dim: int,
        K: int = 8,
        L: int = 8,
        metric: str = "euclidean",
        family: Optional[HashFamily] = None,
        w: float = 4.0,
        cp_dim: int = 32,
        seed: Optional[int] = None,
    ):
        super().__init__(dim, metric, seed)
        if K <= 0 or L <= 0:
            raise ValueError("K and L must be positive")
        self.K = int(K)
        self.L = int(L)
        if family is not None:
            if family.m != K * L:
                raise ValueError(f"family must provide m=K*L={K * L} functions")
            self.family = family
            self.metric = family.metric
        else:
            self.family = make_family(
                metric, dim, K * L, seed=seed, w=w, cp_dim=cp_dim
            )
        self.orders: Optional[np.ndarray] = None  # (L, n) ids in key order
        self._keys: List[list] = []

    # hooks ------------------------------------------------------------

    def _keys_for_table(self, codes_block: np.ndarray, t: int) -> list:
        """Sortable key per row of a ``(n, K)`` code block of table ``t``."""
        raise NotImplementedError

    def _query_key(self, q_block: np.ndarray, t: int):
        """Probe key for the query's code block of table ``t``."""
        raise NotImplementedError

    # ------------------------------------------------------------------

    def _fit(self, data: np.ndarray) -> None:
        codes = self.family.hash(data)
        n = len(data)
        self.orders = np.empty((self.L, n), dtype=np.int64)
        self._keys = []
        for t in range(self.L):
            block = codes[:, t * self.K : (t + 1) * self.K]
            keys = self._keys_for_table(block, t)
            order = sorted(range(n), key=lambda i: keys[i])
            self.orders[t] = np.array(order, dtype=np.int64)
            self._keys.append([keys[i] for i in order])

    def _query(
        self, q: np.ndarray, k: int, probes_per_table: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        if probes_per_table is None:
            probes_per_table = max(4 * k, 16)
        if probes_per_table <= 0:
            raise ValueError("probes_per_table must be positive")
        q_codes = self.family.hash(q)
        candidates: List[int] = []
        for t in range(self.L):
            q_key = self._query_key(q_codes[t * self.K : (t + 1) * self.K], t)
            keys = self._keys[t]
            pos = bisect.bisect_left(keys, q_key)
            lo = max(0, pos - probes_per_table // 2)
            hi = min(self.n, pos + probes_per_table // 2 + 1)
            candidates.extend(self.orders[t][lo:hi].tolist())
        self.last_stats["probed_entries"] = float(len(candidates))
        return self._verify(np.array(candidates, dtype=np.int64), q, k)

    def index_size_bytes(self) -> int:
        extra = 0
        if self.orders is not None:
            # ids plus a conservative 16 bytes per stored key
            extra = self.orders.nbytes + self.L * self.n * 16
        return int(self.family.size_bytes() + extra)

    # ------------------------------------------------------------------
    # Native persistence.  The sorted key lists are *not* serialized
    # (SK-LSH keys are Python tuples, LSB-Forest keys arbitrary-precision
    # ints — neither fits an .npz): like the CSA in LCCS-LSH they are a
    # pure deterministic function of the hash codes, so the loader
    # restores the family (drawn parameters and all) and re-derives them
    # by refitting on the stored data.  Queries stay byte-identical.
    # ------------------------------------------------------------------

    def _native_extra_state(self) -> dict:
        """Subclass knobs to persist alongside K/L (hook)."""
        return {}

    @classmethod
    def _native_init_kwargs(cls, state: dict) -> dict:
        """Constructor kwargs recovered from :meth:`_native_extra_state`."""
        return {}

    def _export_state(self) -> Tuple[dict, dict]:
        family_meta, family_arrays = self.family.export_state()
        state = {
            "K": self.K,
            "L": self.L,
            "family": family_meta,
            **self._native_extra_state(),
        }
        arrays = {f"family.{key}": val for key, val in family_arrays.items()}
        if self._data is not None:
            arrays["data"] = self._data
        return state, arrays

    @classmethod
    def _import_state(cls, manifest: dict, arrays: dict) -> "_SortedKeyIndex":
        from repro.hashes import HashFamily as _HashFamily

        state = manifest["state"]
        family = _HashFamily.from_state(
            state["family"],
            {
                key[len("family."):]: val
                for key, val in arrays.items()
                if key.startswith("family.")
            },
        )
        index = cls(
            dim=int(manifest["dim"]),
            K=int(state["K"]),
            L=int(state["L"]),
            family=family,
            seed=manifest["seed"],
            **cls._native_init_kwargs(state),
        )
        index.metric = manifest["metric"]
        if "data" in arrays:
            index.fit(np.ascontiguousarray(arrays["data"]))
        return index


class SKLSH(_SortedKeyIndex):
    """SK-LSH: compound keys in lexicographic order, bidirectional scan."""

    name = "SK-LSH"

    def _keys_for_table(self, codes_block: np.ndarray, t: int) -> list:
        return [tuple(int(v) for v in row) for row in codes_block]

    def _query_key(self, q_block: np.ndarray, t: int):
        return tuple(int(v) for v in q_block)


class LSBForest(_SortedKeyIndex):
    """Simplified LSB-Forest: Z-order values in sorted order.

    Hash codes are offset to non-negative coordinates per table before
    interleaving (the Z-order curve needs a non-negative grid); queries
    reuse the per-table offsets recorded at build time.
    """

    name = "LSB-Forest"

    def __init__(self, *args, bits_per_dim: int = 12, **kwargs):
        super().__init__(*args, **kwargs)
        if bits_per_dim <= 0:
            raise ValueError("bits_per_dim must be positive")
        self.bits_per_dim = int(bits_per_dim)
        self._offsets: List[np.ndarray] = []

    def _fit(self, data: np.ndarray) -> None:
        self._offsets = []
        super()._fit(data)

    def _shift(self, block: np.ndarray, t: int) -> np.ndarray:
        return np.clip(
            block - self._offsets[t], 0, (1 << self.bits_per_dim) - 1
        )

    def _keys_for_table(self, codes_block: np.ndarray, t: int) -> list:
        self._offsets.append(codes_block.min(axis=0))
        return zorder_interleave(
            self._shift(codes_block, t), self.bits_per_dim
        ).tolist()

    def _query_key(self, q_block: np.ndarray, t: int):
        shifted = self._shift(q_block[None, :], t)
        return int(zorder_interleave(shifted, self.bits_per_dim)[0])

    def _native_extra_state(self) -> dict:
        return {"bits_per_dim": self.bits_per_dim}

    @classmethod
    def _native_init_kwargs(cls, state: dict) -> dict:
        return {"bits_per_dim": int(state["bits_per_dim"])}

"""Every baseline the paper compares against, re-implemented from scratch."""

from repro.baselines.c2lsh import C2LSH
from repro.baselines.forest import LSHForest
from repro.baselines.kdtree import KDTree
from repro.baselines.lazylsh import LazyLSH
from repro.baselines.linear_scan import LinearScan
from repro.baselines.probing import Atom, probing_sequence
from repro.baselines.qalsh import QALSH
from repro.baselines.sorted_keys import LSBForest, SKLSH, zorder_interleave
from repro.baselines.srs import SRS
from repro.baselines.static import E2LSH, FALCONN, MultiProbeLSH, StaticConcatIndex

__all__ = [
    "Atom",
    "C2LSH",
    "E2LSH",
    "FALCONN",
    "KDTree",
    "LSBForest",
    "LazyLSH",
    "LSHForest",
    "LinearScan",
    "MultiProbeLSH",
    "QALSH",
    "SKLSH",
    "SRS",
    "StaticConcatIndex",
    "probing_sequence",
    "zorder_interleave",
]

"""QALSH: query-aware LSH with collision counting (Huang et al., VLDB'15).

The paper's second dynamic-framework baseline.  Differences from C2LSH:
projections are *query-aware* — no random offset, no pre-quantised
buckets.  Each hash function keeps its projections sorted; at query time
a bucket of half-width ``w*R/2`` is centred *on the query's projection*
and widened geometrically (virtual rehashing), while two frontier
pointers per function sweep outward.  An object becomes a candidate when
it has appeared in at least ``l`` of the ``m`` query-centred buckets.

This is the memory version (QALSH+ in the paper's experiments is a
blocked variant of the same algorithm; blocking only matters at the
paper's 1M scale).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.base import ANNIndex

__all__ = ["QALSH"]


class QALSH(ANNIndex):
    """Query-aware collision counting index (Euclidean distance).

    Args:
        dim: vector dimensionality.
        m: number of projections.
        l: collision threshold.
        w: base bucket width.
        c: approximation ratio for virtual rehashing.
        beta: candidate budget fraction (stop after ``beta*n + k``).
        seed: RNG seed.
    """

    name = "QALSH"

    def __init__(
        self,
        dim: int,
        m: int = 64,
        l: int = 4,
        w: float = 1.0,
        c: float = 2.0,
        beta: float = 0.01,
        seed: Optional[int] = None,
    ):
        super().__init__(dim, metric="euclidean", seed=seed)
        if m <= 0:
            raise ValueError("m must be positive")
        if not 1 <= l <= m:
            raise ValueError("collision threshold l must be in [1, m]")
        if w <= 0.0:
            raise ValueError("bucket width w must be positive")
        if c <= 1.0:
            raise ValueError("approximation ratio c must exceed 1")
        self.m = int(m)
        self.l = int(l)
        self.w = float(w)
        self.c = float(c)
        self.beta = float(beta)
        rng = np.random.default_rng(seed)
        self.proj = rng.normal(0.0, 1.0, size=(dim, m))
        self.values: Optional[np.ndarray] = None  # (m, n) sorted projections
        self.order: Optional[np.ndarray] = None  # (m, n) ids sorted by value

    # ------------------------------------------------------------------

    def _fit(self, data: np.ndarray) -> None:
        projections = (data @ self.proj).T  # (m, n)
        self.order = np.argsort(projections, axis=1).astype(np.int64)
        self.values = np.take_along_axis(projections, self.order, axis=1)

    def _query(
        self, q: np.ndarray, k: int, max_rounds: int = 24
    ) -> Tuple[np.ndarray, np.ndarray]:
        q_proj = q @ self.proj  # (m,)
        n, m = self.n, self.m
        # Frontier pointers per function: [left, right) window around q.
        starts = np.array(
            [np.searchsorted(self.values[i], q_proj[i]) for i in range(m)]
        )
        left = starts.copy()
        right = starts.copy()
        counts = np.zeros(n, dtype=np.int64)
        checked = np.zeros(n, dtype=bool)
        candidates: list = []
        budget = int(self.beta * n) + k
        radius = 1.0
        swept = 0
        rounds = 0
        for _ in range(max_rounds):
            rounds += 1
            half = self.w * radius / 2.0
            for i in range(m):
                lo, hi = q_proj[i] - half, q_proj[i] + half
                vi, oi = self.values[i], self.order[i]
                while left[i] > 0 and vi[left[i] - 1] >= lo:
                    left[i] -= 1
                    obj = oi[left[i]]
                    counts[obj] += 1
                    swept += 1
                    if counts[obj] >= self.l and not checked[obj]:
                        checked[obj] = True
                        candidates.append(int(obj))
                while right[i] < n and vi[right[i]] <= hi:
                    obj = oi[right[i]]
                    right[i] += 1
                    counts[obj] += 1
                    swept += 1
                    if counts[obj] >= self.l and not checked[obj]:
                        checked[obj] = True
                        candidates.append(int(obj))
            if len(candidates) >= budget:
                break
            if np.all(left == 0) and np.all(right == n):
                break
            radius *= self.c
        self.last_stats["collision_countings"] = float(swept)
        self.last_stats["rounds"] = float(rounds)
        if not candidates:
            return np.empty(0, dtype=np.int64), np.empty(0)
        return self._verify(np.array(candidates[:budget], dtype=np.int64), q, k)

    # ------------------------------------------------------------------

    def index_size_bytes(self) -> int:
        extra = 0
        if self.values is not None:
            extra = self.values.nbytes + self.order.nbytes
        return int(self.proj.nbytes + extra)

    # ------------------------------------------------------------------
    # Native persistence: scalar knobs plus the drawn projections and
    # the per-function sorted projection tables.  Query time only reads
    # these arrays (the frontier pointers are per-query scratch), so a
    # QALSH loaded from read-only memory maps serves unchanged.
    # ------------------------------------------------------------------

    def _export_state(self) -> Tuple[dict, Dict[str, np.ndarray]]:
        state = {
            "m": self.m, "l": self.l, "w": self.w, "c": self.c,
            "beta": self.beta,
        }
        arrays: Dict[str, np.ndarray] = {"proj": self.proj}
        if self._data is not None:
            arrays["data"] = self._data
        if self.values is not None:
            arrays["values"] = self.values
            arrays["order"] = self.order
        return state, arrays

    @classmethod
    def _import_state(
        cls, manifest: dict, arrays: Dict[str, np.ndarray]
    ) -> "QALSH":
        state = manifest["state"]
        index = cls(
            dim=int(manifest["dim"]),
            m=int(state["m"]),
            l=int(state["l"]),
            w=float(state["w"]),
            c=float(state["c"]),
            beta=float(state["beta"]),
            seed=manifest["seed"],
        )
        # Drawn parameters are restored verbatim, never re-drawn.
        index.proj = arrays["proj"]
        if "data" in arrays:
            index._data = arrays["data"]
        if "values" in arrays:
            index.values = arrays["values"]
            index.order = arrays["order"]
        return index

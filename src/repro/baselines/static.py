"""Static concatenating search framework (paper §1, "Prior Work").

The E2LSH scheme: concatenate ``K`` i.i.d. LSH functions into a compound
hash ``G``, build ``L`` independent hash tables, and look up the query's
``L`` buckets.  :class:`StaticConcatIndex` implements the framework for
*any* hash family, which is how the paper adapts E2LSH to angular
distance (cross-polytope functions) for Figure 5.

Multi-probe variants (Multi-Probe LSH, FALCONN) reuse the same tables
but additionally probe perturbed buckets; probes are generated per table
by :mod:`repro.baselines.probing` and consumed globally in ascending
score, closest-first, as in Lv et al.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.base import ANNIndex
from repro.baselines.probing import Atom, probing_sequence
from repro.hashes import HashFamily, make_family

__all__ = ["StaticConcatIndex", "E2LSH", "MultiProbeLSH", "FALCONN"]


class StaticConcatIndex(ANNIndex):
    """E2LSH-style index: ``L`` tables of ``K``-fold concatenated hashes.

    Args:
        dim: vector dimensionality.
        K: number of concatenated LSH functions per table (compound hash).
        L: number of hash tables.
        metric: distance metric (chooses the default family).
        family: optional pre-built family with ``m = K * L`` functions.
        w / cp_dim / angular_family: forwarded to ``make_family``.
        seed: RNG seed.
    """

    name = "E2LSH"

    def __init__(
        self,
        dim: int,
        K: int = 4,
        L: int = 16,
        metric: str = "euclidean",
        family: Optional[HashFamily] = None,
        w: float = 4.0,
        cp_dim: int = 32,
        angular_family: str = "cross_polytope",
        seed: Optional[int] = None,
    ):
        super().__init__(dim, metric, seed)
        if K <= 0 or L <= 0:
            raise ValueError("K and L must be positive")
        self.K = int(K)
        self.L = int(L)
        if family is not None:
            if family.m != K * L:
                raise ValueError(
                    f"family must provide m=K*L={K * L} functions, got {family.m}"
                )
            self.family = family
            self.metric = family.metric
        else:
            self.family = make_family(
                metric, dim, K * L, seed=seed, w=w, cp_dim=cp_dim,
                angular_family=angular_family,
            )
        self.tables: List[Dict[bytes, List[int]]] = []
        self._n_buckets = 0

    # ------------------------------------------------------------------

    @staticmethod
    def _bucket_key(codes: np.ndarray) -> bytes:
        return codes.astype(np.int64).tobytes()

    def _fit(self, data: np.ndarray) -> None:
        codes = self.family.hash(data)  # (n, K*L)
        self.tables = []
        self._n_buckets = 0
        for t in range(self.L):
            block = codes[:, t * self.K : (t + 1) * self.K]
            table: Dict[bytes, List[int]] = {}
            for i in range(len(block)):
                table.setdefault(self._bucket_key(block[i]), []).append(i)
            self.tables.append(table)
            self._n_buckets += len(table)

    # ------------------------------------------------------------------

    def _probe_stream(
        self, q: np.ndarray, n_probes: int
    ) -> Iterator[Tuple[int, bytes]]:
        """Yield up to ``n_probes`` ``(table, bucket_key)`` pairs.

        The first ``L`` probes are the home buckets; with multi-probing
        enabled (``n_probes > L``) the per-table perturbation streams are
        merged globally in ascending score.
        """
        if n_probes <= self.L or not self.family.supports_probing:
            codes = self.family.hash(q)
            for t in range(min(self.L, n_probes)):
                yield t, self._bucket_key(codes[t * self.K : (t + 1) * self.K])
            return
        codes, alternatives = self.family.query_alternatives(q)
        streams = []
        for t in range(self.L):
            atoms = []
            for i in range(self.K):
                alt_codes, alt_scores = alternatives[t * self.K + i]
                for c, s in zip(alt_codes, alt_scores):
                    atoms.append(Atom(i, int(c), float(s)))
            streams.append(probing_sequence(atoms))
        # Global best-first merge of the per-table streams.
        heap = []
        for t, stream in enumerate(streams):
            try:
                cost, mods = next(stream)
            except StopIteration:
                continue
            heap.append((cost, t, mods))
        heapq.heapify(heap)
        emitted = 0
        while heap and emitted < n_probes:
            cost, t, mods = heapq.heappop(heap)
            block = codes[t * self.K : (t + 1) * self.K].copy()
            for pos, code in mods.items():
                block[pos] = code
            yield t, self._bucket_key(block)
            emitted += 1
            try:
                ncost, nmods = next(streams[t])
            except StopIteration:
                continue
            heapq.heappush(heap, (ncost, t, nmods))

    def _query(
        self, q: np.ndarray, k: int, n_probes: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        if n_probes is None:
            n_probes = self.L
        if n_probes <= 0:
            raise ValueError("n_probes must be positive")
        candidates: List[int] = []
        probes = 0
        for t, key in self._probe_stream(q, n_probes):
            probes += 1
            candidates.extend(self.tables[t].get(key, ()))
        self.last_stats["probes"] = float(probes)
        return self._verify(np.array(candidates, dtype=np.int64), q, k)

    # ------------------------------------------------------------------

    def index_size_bytes(self) -> int:
        # ids (8B each) per table plus per-bucket key storage (K int64).
        table_bytes = self.L * self.n * 8 + self._n_buckets * (self.K * 8 + 48)
        return int(self.family.size_bytes() + table_bytes)


class E2LSH(StaticConcatIndex):
    """Plain E2LSH: home buckets only (paper's E2LSH baseline)."""

    name = "E2LSH"

    def _query(self, q, k, n_probes=None):
        # E2LSH never multi-probes; ignore larger requests.
        return super()._query(q, k, n_probes=self.L)


class MultiProbeLSH(StaticConcatIndex):
    """Multi-Probe LSH (Lv et al.): random projection tables + probing.

    ``n_probes`` counts probed buckets across all tables (the home
    buckets come first).
    """

    name = "Multi-Probe LSH"

    def __init__(self, dim: int, K: int = 4, L: int = 8, n_probes: int = 32, **kw):
        kw.setdefault("metric", "euclidean")
        super().__init__(dim, K=K, L=L, **kw)
        if n_probes <= 0:
            raise ValueError("n_probes must be positive")
        self.n_probes = int(n_probes)

    def _query(self, q, k, n_probes=None):
        return super()._query(q, k, n_probes=n_probes or self.n_probes)


class FALCONN(StaticConcatIndex):
    """FALCONN-style index: cross-polytope tables + vertex multi-probing."""

    name = "FALCONN"

    def __init__(self, dim: int, K: int = 1, L: int = 8, n_probes: int = 32, **kw):
        kw.setdefault("metric", "angular")
        kw.setdefault("angular_family", "cross_polytope")
        super().__init__(dim, K=K, L=L, **kw)
        if n_probes <= 0:
            raise ValueError("n_probes must be positive")
        self.n_probes = int(n_probes)

    def _query(self, q, k, n_probes=None):
        return super()._query(q, k, n_probes=n_probes or self.n_probes)

"""LazyLSH-style index: one l1-based index, multiple lp query metrics.

LazyLSH (Zheng et al., SIGMOD'16, paper ref [39]) extends the dynamic
collision counting framework: a single query-aware index built in l1
space answers approximate NN queries under *multiple* ``l_p`` metrics
(``p in (0, 2]``), because collision counting over 1-stable projections
is a valid filter for any equivalent norm.

Our version follows the same recipe on top of this library's
query-aware machinery (sorted Cauchy projections + window expansion,
as in :class:`repro.baselines.qalsh.QALSH`): the *filter* always runs
in l1 projection space; only the final verification uses the requested
metric.  This is the scheme's headline behaviour — "lazy" sharing of
one index across metrics — without the original's per-metric radius
bookkeeping.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.base import ANNIndex

__all__ = ["LazyLSH"]

_SUPPORTED = ("euclidean", "manhattan")


class LazyLSH(ANNIndex):
    """Query-aware 1-stable index answering l1 and l2 queries.

    Args:
        dim: vector dimensionality.
        m: number of Cauchy projections.
        l: collision threshold.
        w: base window width.
        c: expansion ratio for virtual rehashing.
        beta: candidate budget fraction.
        seed: RNG seed.

    The ``metric`` argument of :meth:`query` (default the constructor's
    metric) selects the verification metric per query — the same fitted
    index serves both.
    """

    name = "LazyLSH"

    def __init__(
        self,
        dim: int,
        m: int = 64,
        l: int = 4,
        w: float = 1.0,
        c: float = 2.0,
        beta: float = 0.01,
        metric: str = "euclidean",
        seed: Optional[int] = None,
    ):
        if metric not in _SUPPORTED:
            raise ValueError(f"LazyLSH serves metrics {_SUPPORTED}, not {metric!r}")
        super().__init__(dim, metric, seed)
        if m <= 0:
            raise ValueError("m must be positive")
        if not 1 <= l <= m:
            raise ValueError("collision threshold l must be in [1, m]")
        if w <= 0.0:
            raise ValueError("window width w must be positive")
        if c <= 1.0:
            raise ValueError("expansion ratio c must exceed 1")
        self.m = int(m)
        self.l = int(l)
        self.w = float(w)
        self.c = float(c)
        self.beta = float(beta)
        rng = np.random.default_rng(seed)
        self.proj = rng.standard_cauchy(size=(dim, m))
        self.values: Optional[np.ndarray] = None  # (m, n) sorted projections
        self.order: Optional[np.ndarray] = None

    # ------------------------------------------------------------------

    def _fit(self, data: np.ndarray) -> None:
        projections = (data @ self.proj).T
        self.order = np.argsort(projections, axis=1).astype(np.int64)
        self.values = np.take_along_axis(projections, self.order, axis=1)

    def _query(
        self,
        q: np.ndarray,
        k: int,
        metric: Optional[str] = None,
        max_rounds: int = 24,
    ) -> Tuple[np.ndarray, np.ndarray]:
        metric = metric or self.metric
        if metric not in _SUPPORTED:
            raise ValueError(f"LazyLSH serves metrics {_SUPPORTED}, not {metric!r}")
        q_proj = q @ self.proj
        n, m = self.n, self.m
        starts = np.array(
            [np.searchsorted(self.values[i], q_proj[i]) for i in range(m)]
        )
        left = starts.copy()
        right = starts.copy()
        counts = np.zeros(n, dtype=np.int64)
        checked = np.zeros(n, dtype=bool)
        candidates: list = []
        budget = int(self.beta * n) + k
        radius = 1.0
        swept = 0
        for _ in range(max_rounds):
            half = self.w * radius / 2.0
            for i in range(m):
                lo, hi = q_proj[i] - half, q_proj[i] + half
                vi, oi = self.values[i], self.order[i]
                while left[i] > 0 and vi[left[i] - 1] >= lo:
                    left[i] -= 1
                    obj = oi[left[i]]
                    counts[obj] += 1
                    swept += 1
                    if counts[obj] >= self.l and not checked[obj]:
                        checked[obj] = True
                        candidates.append(int(obj))
                while right[i] < n and vi[right[i]] <= hi:
                    obj = oi[right[i]]
                    right[i] += 1
                    counts[obj] += 1
                    swept += 1
                    if counts[obj] >= self.l and not checked[obj]:
                        checked[obj] = True
                        candidates.append(int(obj))
            if len(candidates) >= budget:
                break
            if np.all(left == 0) and np.all(right == n):
                break
            radius *= self.c
        self.last_stats["collision_countings"] = float(swept)
        if not candidates:
            return np.empty(0, dtype=np.int64), np.empty(0)
        # Verification in the per-query metric: the "lazy" part.
        saved = self.metric
        try:
            self.metric = metric
            return self._verify(
                np.array(candidates[:budget], dtype=np.int64), q, k
            )
        finally:
            self.metric = saved

    # ------------------------------------------------------------------

    def index_size_bytes(self) -> int:
        extra = 0
        if self.values is not None:
            extra = self.values.nbytes + self.order.nbytes
        return int(self.proj.nbytes + extra)

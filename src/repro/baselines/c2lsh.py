"""C2LSH: dynamic collision counting (Gan et al., SIGMOD'12).

The paper's main dynamic baseline (§1).  ``m`` individual LSH functions
each get their own hash table; an object is an NN candidate once it has
collided with the query in at least ``l`` of them.  *Virtual rehashing*
widens buckets geometrically (``h^R(o) = floor(h(o) / R)``,
``R in {1, c, c^2, ...}``) until enough candidates are found, emulating
the (R, c)-NNS cascade without rebuilding tables.

Our collision counting is evaluated with vectorised numpy over the
stored base codes instead of per-function dict lookups; the *work* the
method does (its collision countings and verifications, reported in
``last_stats``) is identical, which is what the paper's complexity
argument — and its Figure 4/5 slowness — is about.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.base import ANNIndex
from repro.hashes import HashFamily, RandomProjectionFamily, make_family

__all__ = ["C2LSH"]


class C2LSH(ANNIndex):
    """Dynamic collision counting index.

    Args:
        dim: vector dimensionality.
        m: number of individual LSH functions / hash tables (paper sweeps
            {8..512}).
        l: collision threshold (paper sweeps {2..10}).
        c: approximation ratio driving virtual rehashing (default 2).
        beta: candidate budget fraction — stop once ``beta * n + k``
            candidates were verified (paper uses 100/n, i.e. 100 extra).
        metric/family/w/cp_dim/seed: as for the other indexes.
    """

    name = "C2LSH"

    def __init__(
        self,
        dim: int,
        m: int = 64,
        l: int = 4,
        c: float = 2.0,
        beta: float = 0.01,
        metric: str = "euclidean",
        family: Optional[HashFamily] = None,
        w: float = 1.0,
        cp_dim: int = 32,
        seed: Optional[int] = None,
    ):
        super().__init__(dim, metric, seed)
        if m <= 0:
            raise ValueError("m must be positive")
        if not 1 <= l <= m:
            raise ValueError("collision threshold l must be in [1, m]")
        if c <= 1.0:
            raise ValueError("approximation ratio c must exceed 1")
        if beta < 0.0:
            raise ValueError("beta must be non-negative")
        self.m = int(m)
        self.l = int(l)
        self.c = float(c)
        self.beta = float(beta)
        if family is not None:
            if family.m != m:
                raise ValueError(f"family must provide m={m} functions")
            self.family = family
            self.metric = family.metric
        else:
            self.family = make_family(metric, dim, m, seed=seed, w=w, cp_dim=cp_dim)
        self.codes: Optional[np.ndarray] = None

    # ------------------------------------------------------------------

    def _fit(self, data: np.ndarray) -> None:
        self.codes = self.family.hash(data)

    def _query(
        self, q: np.ndarray, k: int, max_rounds: int = 24
    ) -> Tuple[np.ndarray, np.ndarray]:
        q_codes = self.family.hash(q)
        budget = int(self.beta * self.n) + k
        counted = 0
        checked = np.zeros(self.n, dtype=bool)
        candidates: list = []
        radius = 1
        supports_rehash = isinstance(self.family, RandomProjectionFamily)
        for round_no in range(max_rounds):
            if supports_rehash:
                data_r = self.codes // radius
                q_r = q_codes // radius
            else:
                # Discrete families (e.g. cross-polytope codes) have no
                # meaningful bucket widening; only one counting round.
                if round_no > 0:
                    break
                data_r, q_r = self.codes, q_codes
            collisions = np.count_nonzero(data_r == q_r[None, :], axis=1)
            counted += self.n
            hits = np.flatnonzero((collisions >= self.l) & ~checked)
            checked[hits] = True
            candidates.extend(hits.tolist())
            if len(candidates) >= budget:
                break
            radius = max(radius + 1, int(round(radius * self.c)))
            if radius > (1 << 40):
                break
        self.last_stats["collision_countings"] = float(counted)
        self.last_stats["rounds"] = float(round_no + 1)
        if not candidates:
            return np.empty(0, dtype=np.int64), np.empty(0)
        return self._verify(np.array(candidates[: budget], dtype=np.int64), q, k)

    # ------------------------------------------------------------------

    def index_size_bytes(self) -> int:
        codes_bytes = 0 if self.codes is None else self.codes.nbytes
        return int(self.family.size_bytes() + codes_bytes)

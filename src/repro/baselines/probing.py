"""Query-directed probing sequences for static-concatenation tables.

Implements the perturbation-set generator of Multi-Probe LSH (Lv et al.,
VLDB'07), generalised so it also serves FALCONN-style cross-polytope
tables: every (position, alternative) pair becomes an *atom* with an
incremental cost; perturbation sets are subsets of atoms with distinct
positions, enumerated in ascending total cost with the classic
shift/expand min-heap.

The generator is per-table; :class:`repro.baselines.static.StaticConcatIndex`
merges the per-table streams globally by cost.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

__all__ = ["Atom", "probing_sequence"]


@dataclass(frozen=True)
class Atom:
    """One candidate modification of one concatenated hash position."""

    position: int  # which of the K functions in the table
    code: int  # replacement hash value
    cost: float  # incremental score (0 = the unperturbed value)


def probing_sequence(
    atoms: Sequence[Atom],
) -> Iterator[Tuple[float, Dict[int, int]]]:
    """Yield ``(cost, {position: code})`` probes in ascending cost.

    The first probe is always the empty perturbation at cost 0 (the home
    bucket).  Subsequent probes are sets of atoms with pairwise distinct
    positions.  Following Lv et al., sets over the cost-sorted atom list
    are generated with *shift* (replace the last atom by the next one)
    and *expand* (append the next atom); sets whose last atom collides
    with an earlier position are not emitted but still expanded, so the
    enumeration stays exhaustive and sorted.
    """
    # Dedupe identical (position, code) atoms, keeping the cheapest, so the
    # enumeration never emits the same bucket twice.
    cheapest: Dict[Tuple[int, int], Atom] = {}
    for a in atoms:
        key = (a.position, a.code)
        if key not in cheapest or a.cost < cheapest[key].cost:
            cheapest[key] = a
    ordered = sorted(cheapest.values(), key=lambda a: (a.cost, a.position, a.code))
    yield 0.0, {}
    if not ordered:
        return
    prefix = np.array([a.cost for a in ordered], dtype=np.float64)
    heap: List[Tuple[float, Tuple[int, ...]]] = [(prefix[0], (0,))]
    while heap:
        cost, idx_set = heapq.heappop(heap)
        positions = [ordered[i].position for i in idx_set]
        if len(set(positions)) == len(positions):
            yield cost, {ordered[i].position: ordered[i].code for i in idx_set}
        last = idx_set[-1]
        if last + 1 < len(ordered):
            # shift: replace the last atom with its successor
            heapq.heappush(
                heap,
                (cost - prefix[last] + prefix[last + 1], idx_set[:-1] + (last + 1,)),
            )
            # expand: append the successor
            heapq.heappush(
                heap, (cost + prefix[last + 1], idx_set + (last + 1,))
            )

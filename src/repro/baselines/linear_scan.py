"""Exact linear scan — the accuracy oracle and the alpha=0 reference point.

Paper Table 1 notes that LCCS-LSH with ``alpha = 0`` matches the
complexity of a linear scan; this index is also used to compute ground
truth and as the trivially-correct baseline in tests.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.base import ANNIndex

__all__ = ["LinearScan"]


class LinearScan(ANNIndex):
    """Brute-force exact k-NN under any supported metric."""

    name = "LinearScan"

    def _fit(self, data: np.ndarray) -> None:
        # Nothing to build: the raw data kept by the base class suffices.
        return None

    def _query(self, q: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        return self._verify(np.arange(self.n), q, k)

    # ------------------------------------------------------------------
    # Native persistence: the raw data is the whole state.
    # ------------------------------------------------------------------

    def _export_state(self) -> Tuple[dict, Dict[str, np.ndarray]]:
        arrays = {} if self._data is None else {"data": self._data}
        return {}, arrays

    @classmethod
    def _import_state(
        cls, manifest: dict, arrays: Dict[str, np.ndarray]
    ) -> "LinearScan":
        index = cls(
            dim=int(manifest["dim"]),
            metric=manifest["metric"],
            seed=manifest["seed"],
        )
        if "data" in arrays:
            index._data = arrays["data"]
        return index

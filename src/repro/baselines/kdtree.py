"""A from-scratch kd-tree with *incremental* nearest-neighbour traversal.

Substrate for the SRS baseline, which needs to enumerate points of a
low-dimensional projected space in strictly ascending Euclidean distance
from a query (SRS examines projected neighbours one by one and stops
early).  The traversal is the classic best-first search over a shared
min-heap of tree nodes (keyed by the minimum possible distance to their
bounding box) and points (keyed by their exact distance).

The tree is built once (median splits, cycling axes) and is read-only
afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import heapq

import numpy as np

__all__ = ["KDTree"]


@dataclass
class _Node:
    """Internal kd-tree node over ``ids``; leaves keep their point ids."""

    lo: np.ndarray
    hi: np.ndarray
    axis: int = -1
    split: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    ids: Optional[np.ndarray] = None  # set on leaves only

    @property
    def is_leaf(self) -> bool:
        return self.ids is not None


class KDTree:
    """Static kd-tree over ``(n, d)`` points with best-first enumeration.

    Args:
        points: the point matrix (kept by reference).
        leaf_size: maximum points per leaf.
    """

    def __init__(self, points: np.ndarray, leaf_size: int = 16):
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or len(points) == 0:
            raise ValueError("points must be a non-empty (n, d) array")
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        self.points = points
        self.leaf_size = int(leaf_size)
        self.n, self.d = points.shape
        self.root = self._build(np.arange(self.n, dtype=np.int64), depth=0)

    def _build(self, ids: np.ndarray, depth: int) -> _Node:
        pts = self.points[ids]
        lo = pts.min(axis=0)
        hi = pts.max(axis=0)
        if len(ids) <= self.leaf_size:
            return _Node(lo=lo, hi=hi, ids=ids)
        # Split on the widest axis for balanced boxes.
        axis = int(np.argmax(hi - lo))
        vals = pts[:, axis]
        median = float(np.median(vals))
        mask = vals <= median
        # Guard against degenerate splits (many duplicates at the median).
        if mask.all() or not mask.any():
            mask = vals < median
            if mask.all() or not mask.any():
                half = len(ids) // 2
                order = np.argsort(vals, kind="stable")
                mask = np.zeros(len(ids), dtype=bool)
                mask[order[:half]] = True
        node = _Node(lo=lo, hi=hi, axis=axis, split=median)
        node.left = self._build(ids[mask], depth + 1)
        node.right = self._build(ids[~mask], depth + 1)
        return node

    # ------------------------------------------------------------------

    @staticmethod
    def _min_sqdist(node: _Node, q: np.ndarray) -> float:
        """Squared distance from ``q`` to the node's bounding box."""
        clipped = np.clip(q, node.lo, node.hi)
        diff = q - clipped
        return float(diff @ diff)

    def iter_nearest(self, q: np.ndarray) -> Iterator[Tuple[int, float]]:
        """Yield ``(point_id, distance)`` in ascending Euclidean distance."""
        q = np.asarray(q, dtype=np.float64)
        if q.shape != (self.d,):
            raise ValueError(f"query must have shape ({self.d},), got {q.shape}")
        counter = 0
        # Heap of (sq_dist, tiebreak, kind, payload); kind 0 = node, 1 = point.
        heap: List[Tuple[float, int, int, object]] = [
            (self._min_sqdist(self.root, q), counter, 0, self.root)
        ]
        while heap:
            sqdist, _, kind, payload = heapq.heappop(heap)
            if kind == 1:
                yield int(payload), float(np.sqrt(sqdist))
                continue
            node: _Node = payload  # type: ignore[assignment]
            if node.is_leaf:
                diffs = self.points[node.ids] - q
                sq = np.einsum("ij,ij->i", diffs, diffs)
                for pid, s in zip(node.ids, sq):
                    counter += 1
                    heapq.heappush(heap, (float(s), counter, 1, int(pid)))
            else:
                for child in (node.left, node.right):
                    counter += 1
                    heapq.heappush(
                        heap, (self._min_sqdist(child, q), counter, 0, child)
                    )

    def query(self, q: np.ndarray, k: int = 1) -> Tuple[np.ndarray, np.ndarray]:
        """Exact top-``k`` by Euclidean distance (convenience wrapper)."""
        if k <= 0:
            raise ValueError("k must be positive")
        ids: List[int] = []
        dists: List[float] = []
        for pid, dist in self.iter_nearest(q):
            ids.append(pid)
            dists.append(dist)
            if len(ids) >= k:
                break
        return np.array(ids, dtype=np.int64), np.array(dists)

"""SRS: c-ANN via a tiny projected index (Sun et al., VLDB'14).

The paper's tree-flavoured baseline.  SRS projects the data into
``d' in {4..10}`` dimensions with i.i.d. Gaussians — so the *squared
projected distance* of a pair at true distance ``tau`` follows
``tau^2 * chi^2_{d'}`` — indexes the projections with a single
low-dimensional tree, and examines points in ascending projected
distance.  Early termination: once the projected search radius ``r``
satisfies

    ``chi2_{d'}.cdf(r^2 * c^2 / best^2) >= p_tau``

any unseen point closer than ``best / c`` would have had its projection
inside ``r`` with probability ``>= p_tau``, so the current best is a
``c``-approximate answer with that confidence.

Our in-memory tree is the from-scratch incremental kd-tree
(:mod:`repro.baselines.kdtree`); the original uses an R-tree (disk) or
cover tree (memory) — same enumeration contract.
"""

from __future__ import annotations

from typing import Optional, Tuple

import heapq

import numpy as np
from scipy.stats import chi2

from repro.base import ANNIndex
from repro.baselines.kdtree import KDTree
from repro.distances import pairwise

__all__ = ["SRS"]


class SRS(ANNIndex):
    """SRS index for Euclidean c-k-ANNS.

    Args:
        dim: vector dimensionality.
        d_proj: projected dimensionality (paper sweeps 4..10).
        c: approximation ratio of the early-termination test.
        p_tau: confidence threshold of the early-termination test.
        max_fraction: hard cap on examined points, as a fraction of n
            (SRS's ``t`` parameter).
        seed: RNG seed.
    """

    name = "SRS"

    def __init__(
        self,
        dim: int,
        d_proj: int = 6,
        c: float = 4.0,
        p_tau: float = 0.99,
        max_fraction: float = 0.05,
        seed: Optional[int] = None,
    ):
        super().__init__(dim, metric="euclidean", seed=seed)
        if d_proj <= 0:
            raise ValueError("d_proj must be positive")
        if c <= 1.0:
            raise ValueError("approximation ratio c must exceed 1")
        if not 0.0 < p_tau < 1.0:
            raise ValueError("p_tau must be in (0, 1)")
        if not 0.0 < max_fraction <= 1.0:
            raise ValueError("max_fraction must be in (0, 1]")
        self.d_proj = int(d_proj)
        self.c = float(c)
        self.p_tau = float(p_tau)
        self.max_fraction = float(max_fraction)
        rng = np.random.default_rng(seed)
        self.proj = rng.normal(0.0, 1.0, size=(dim, self.d_proj))
        self.tree: Optional[KDTree] = None
        self.projected: Optional[np.ndarray] = None

    # ------------------------------------------------------------------

    def _fit(self, data: np.ndarray) -> None:
        self.projected = data @ self.proj
        self.tree = KDTree(self.projected, leaf_size=32)

    def _query(
        self, q: np.ndarray, k: int, max_candidates: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        if max_candidates is None:
            max_candidates = max(k, int(self.max_fraction * self.n))
        q_proj = q @ self.proj
        # Max-heap (negated) of the best k true distances seen so far.
        best: list = []
        examined = 0
        for pid, proj_dist in self.tree.iter_nearest(q_proj):
            true_dist = float(pairwise(self._data[pid : pid + 1], q, "euclidean")[0])
            examined += 1
            entry = (-true_dist, pid)
            if len(best) < k:
                heapq.heappush(best, entry)
            elif entry > best[0]:
                heapq.heapreplace(best, entry)
            if examined >= max_candidates:
                break
            if len(best) == k:
                kth = -best[0][0]
                if kth == 0.0:
                    break
                stat = (proj_dist * self.c / kth) ** 2
                if chi2.cdf(stat, df=self.d_proj) >= self.p_tau:
                    break
        self.last_stats["candidates"] = float(examined)
        if not best:
            return np.empty(0, dtype=np.int64), np.empty(0)
        order = sorted(((-nd, pid) for nd, pid in best))
        ids = np.array([pid for _, pid in order], dtype=np.int64)
        dists = np.array([d for d, _ in order])
        return ids, dists

    # ------------------------------------------------------------------

    # ------------------------------------------------------------------
    # Native persistence.  The kd-tree is not serialized: it is a pure
    # deterministic function of the projected points (median splits,
    # stable argsort tie-breaks), so the loader stores the projection
    # matrix plus the raw data and rebuilds the tree by refitting — the
    # same rebuild-on-load idiom the CSA uses in LCCS-LSH.  Queries stay
    # byte-identical.
    # ------------------------------------------------------------------

    def _export_state(self) -> Tuple[dict, dict]:
        state = {
            "d_proj": self.d_proj,
            "c": self.c,
            "p_tau": self.p_tau,
            "max_fraction": self.max_fraction,
        }
        arrays = {"proj": self.proj}
        if self._data is not None:
            arrays["data"] = self._data
        return state, arrays

    @classmethod
    def _import_state(cls, manifest: dict, arrays: dict) -> "SRS":
        state = manifest["state"]
        index = cls(
            dim=int(manifest["dim"]),
            d_proj=int(state["d_proj"]),
            c=float(state["c"]),
            p_tau=float(state["p_tau"]),
            max_fraction=float(state["max_fraction"]),
            seed=manifest["seed"],
        )
        # The drawn projection is restored verbatim, not re-drawn (a
        # None seed must still round-trip exactly).
        index.proj = np.ascontiguousarray(arrays["proj"])
        if "data" in arrays:
            index.fit(np.ascontiguousarray(arrays["data"]))
        return index

    def index_size_bytes(self) -> int:
        proj_bytes = 0 if self.projected is None else self.projected.nbytes
        # Tree nodes: roughly 2n/leaf_size boxes of 2*d_proj floats.
        tree_bytes = 0
        if self.tree is not None:
            n_nodes = max(1, 2 * self.n // 32)
            tree_bytes = n_nodes * (2 * self.d_proj * 8 + 64)
        return int(self.proj.nbytes + proj_bytes + tree_bytes)

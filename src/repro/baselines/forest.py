"""LSH-Forest (Bawa et al., WWW'05) — related-work baseline (paper §7).

The paper positions LCCS-LSH as an extension of LSH-Forest: both replace
the fixed concatenation length ``K`` with the *longest matching prefix*
of a hash sequence, but the CSA "can reuse the hash values in every
position [so] it carries more information than sequence[s]" — i.e. one
CSA virtually builds ``m`` forests for the price of one.

Implementation: each of the ``L`` trees assigns every point a length-
``K_max`` label (one LSH function per level).  Instead of an explicit
trie we keep the labels in lexicographic order per tree; descending the
trie is a sequence of in-range binary searches that narrow the block of
points sharing the query's prefix, level by level.  A query collects
candidates from the deepest non-empty blocks across trees, widening
(ascending) until the candidate budget is met — exactly the synchronous
descend/ascend of the original paper.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.base import ANNIndex
from repro.hashes import HashFamily, make_family

__all__ = ["LSHForest"]


class LSHForest(ANNIndex):
    """LSH-Forest with ``L`` trees of depth up to ``K_max``.

    Args:
        dim: vector dimensionality.
        K_max: maximum label length (tree depth).
        L: number of trees.
        candidates: candidate budget per query (the original paper's
            ``M``); defaults to ``8 * k`` at query time if ``None``.
        metric/family/w/cp_dim: as for the other indexes.
        seed: RNG seed.
    """

    name = "LSH-Forest"

    def __init__(
        self,
        dim: int,
        K_max: int = 16,
        L: int = 8,
        candidates: Optional[int] = None,
        metric: str = "euclidean",
        family: Optional[HashFamily] = None,
        w: float = 4.0,
        cp_dim: int = 32,
        seed: Optional[int] = None,
    ):
        super().__init__(dim, metric, seed)
        if K_max <= 0 or L <= 0:
            raise ValueError("K_max and L must be positive")
        if candidates is not None and candidates <= 0:
            raise ValueError("candidates must be positive")
        self.K_max = int(K_max)
        self.L = int(L)
        self.candidates = candidates
        if family is not None:
            if family.m != K_max * L:
                raise ValueError(
                    f"family must provide m=K_max*L={K_max * L} functions"
                )
            self.family = family
            self.metric = family.metric
        else:
            self.family = make_family(
                metric, dim, K_max * L, seed=seed, w=w, cp_dim=cp_dim
            )
        self.labels: Optional[np.ndarray] = None  # (L, n, K_max)
        self.orders: Optional[np.ndarray] = None  # (L, n) lexicographic order
        self._sorted_labels: Optional[np.ndarray] = None  # labels[orders]

    # ------------------------------------------------------------------

    def _fit(self, data: np.ndarray) -> None:
        codes = self.family.hash(data)  # (n, K_max * L)
        n = len(data)
        self.labels = np.empty((self.L, n, self.K_max), dtype=np.int64)
        self.orders = np.empty((self.L, n), dtype=np.int64)
        for t in range(self.L):
            block = codes[:, t * self.K_max : (t + 1) * self.K_max]
            self.labels[t] = block
            # np.lexsort sorts by the LAST key first.
            self.orders[t] = np.lexsort(tuple(block[:, c] for c in range(
                self.K_max - 1, -1, -1)))
        self._sorted_labels = np.stack(
            [self.labels[t][self.orders[t]] for t in range(self.L)]
        )

    def _descend(self, t: int, q_label: np.ndarray) -> List[Tuple[int, int, int]]:
        """Blocks ``(depth, lo, hi)`` of points matching the query prefix.

        Returns one entry per depth from 0 (all points) down to the
        deepest non-empty prefix block, each narrowing the previous.
        """
        n = self.n
        sorted_vals = self._sorted_labels[t]  # (n, K_max) sorted rows
        lo, hi = 0, n
        blocks = [(0, lo, hi)]
        for depth in range(self.K_max):
            col = sorted_vals[lo:hi, depth]
            new_lo = lo + int(np.searchsorted(col, q_label[depth], side="left"))
            new_hi = lo + int(np.searchsorted(col, q_label[depth], side="right"))
            if new_lo >= new_hi:
                break
            lo, hi = new_lo, new_hi
            blocks.append((depth + 1, lo, hi))
        return blocks

    def _query(
        self, q: np.ndarray, k: int, candidates: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        budget = candidates or self.candidates or 8 * k
        q_codes = self.family.hash(q)
        per_tree = []
        max_depth = 0
        for t in range(self.L):
            q_label = q_codes[t * self.K_max : (t + 1) * self.K_max]
            blocks = self._descend(t, q_label)
            per_tree.append(blocks)
            max_depth = max(max_depth, blocks[-1][0])
        # Synchronous ascend: take points from the deepest blocks first,
        # widening depth until the budget is met.  Order is preserved so
        # truncation keeps the best (deepest-matching) candidates.
        chosen: List[int] = []
        seen: set = set()
        for depth in range(max_depth, -1, -1):
            for t, blocks in enumerate(per_tree):
                match = [b for b in blocks if b[0] == depth]
                if not match:
                    continue
                _, lo, hi = match[0]
                for pid in self.orders[t][lo:hi].tolist():
                    if pid not in seen:
                        seen.add(pid)
                        chosen.append(pid)
            if len(chosen) >= budget:
                break
        self.last_stats["depth"] = float(max_depth)
        ids = np.array(chosen[: max(budget, k)], dtype=np.int64)
        return self._verify(ids, q, k)

    # ------------------------------------------------------------------

    def index_size_bytes(self) -> int:
        extra = 0
        if self.labels is not None:
            extra = self.labels.nbytes + self.orders.nbytes
        return int(self.family.size_bytes() + extra)

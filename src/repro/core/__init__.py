"""The paper's contribution: LCCS, the CSA index, LCCS-LSH, MP-LCCS-LSH."""

from repro.core.cascade import E2LSHCascade, LCCSCascade, radius_ladder
from repro.core.csa import CircularShiftArray, ShiftBounds
from repro.core.dynamic import DynamicLCCSLSH
from repro.core.naive_csa import NaiveCSA
from repro.core.lccs import (
    brute_force_k_lccs,
    compare_rotations,
    lccs_length,
    lccs_positions,
    lcp_length,
    shift,
)
from repro.core.lccs_lsh import LCCSLSH
from repro.core.mp_lccs_lsh import MPLCCSLSH
from repro.core.perturbation import (
    PerturbationVector,
    generate_perturbation_vectors,
    score_of,
)

__all__ = [
    "CircularShiftArray",
    "DynamicLCCSLSH",
    "E2LSHCascade",
    "LCCSCascade",
    "NaiveCSA",
    "LCCSLSH",
    "MPLCCSLSH",
    "PerturbationVector",
    "ShiftBounds",
    "brute_force_k_lccs",
    "compare_rotations",
    "generate_perturbation_vectors",
    "lccs_length",
    "lccs_positions",
    "lcp_length",
    "radius_ladder",
    "score_of",
    "shift",
]

"""Multi-probe LCCS-LSH (paper §4.2).

MP-LCCS-LSH reduces indexing overhead by probing *perturbed* versions of
the query hash string against the same CSA.  Per paper:

1. **Perturbation vectors** come from Algorithm 3
   (:mod:`repro.core.perturbation`), in ascending score order, with
   family-specific alternatives/scores
   (:meth:`repro.hashes.HashFamily.query_alternatives`).
2. **Skip unaffected positions**: the initial search stores
   ``(pos, len)`` bounds per shift; for a probe whose modifications are
   at positions ``P``, only shifts ``s`` whose current match window
   ``[s, s + max(len_l, len_u)]`` (circularly) covers some ``p in P`` are
   re-searched — the others cannot change.
3. All probes feed one max-heap on LCP length shared with the unperturbed
   search, so candidates are still verified in best-first order and never
   twice (paper's redundancy concern, Example 4.1).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.lccs_lsh import LCCSLSH
from repro.core.perturbation import generate_perturbation_vectors

__all__ = ["MPLCCSLSH"]


class MPLCCSLSH(LCCSLSH):
    """Multi-probe LCCS-LSH index.

    Args:
        n_probes: number of probes per query (including the unperturbed
            one); the paper sweeps ``{1, m+1, 2m+1, 4m+1, 8m+1}``.  With
            ``n_probes = 1`` the scheme degenerates to LCCS-LSH exactly.
        max_gap: Algorithm 3's ``MAX_GAP`` (paper uses 2).
        max_alternatives: alternatives requested per position from the
            hash family.
        (remaining arguments as for :class:`LCCSLSH`)
    """

    name = "MP-LCCS-LSH"

    def __init__(
        self,
        dim: int,
        m: int = 64,
        metric: str = "euclidean",
        n_probes: Optional[int] = None,
        max_gap: int = 2,
        max_alternatives: int = 8,
        **kwargs,
    ):
        super().__init__(dim, m=m, metric=metric, **kwargs)
        if not self.family.supports_probing:
            raise ValueError(
                f"{type(self.family).__name__} does not expose multi-probe "
                "alternatives; use LCCSLSH instead"
            )
        if n_probes is None:
            n_probes = self.m + 1  # the paper's second setting
        if n_probes < 1:
            raise ValueError("n_probes must be >= 1")
        if max_gap < 1:
            raise ValueError("max_gap must be >= 1")
        if max_alternatives < 1:
            raise ValueError("max_alternatives must be >= 1")
        self.n_probes = int(n_probes)
        self.max_gap = int(max_gap)
        self.max_alternatives = int(max_alternatives)

    # ------------------------------------------------------------------
    # Native persistence: LCCSLSH state plus the probing knobs.
    # ------------------------------------------------------------------

    def _export_state(self) -> Tuple[dict, Dict[str, np.ndarray]]:
        state, arrays = super()._export_state()
        state["n_probes"] = self.n_probes
        state["max_gap"] = self.max_gap
        state["max_alternatives"] = self.max_alternatives
        return state, arrays

    @classmethod
    def _extra_init_kwargs(cls, state: dict) -> dict:
        kwargs = dict(super()._extra_init_kwargs(state))
        kwargs.update(
            n_probes=int(state["n_probes"]),
            max_gap=int(state["max_gap"]),
            max_alternatives=int(state["max_alternatives"]),
        )
        return kwargs

    # ------------------------------------------------------------------

    def _affected_shifts(
        self, positions: Tuple[int, ...], reach: np.ndarray
    ) -> List[int]:
        """Shifts whose match window covers any modified position.

        ``reach[s] = max(len_l, len_u)`` from the unperturbed search; the
        probe can only change the outcome at shift ``s`` if some modified
        position ``p`` satisfies ``(p - s) mod m <= reach[s]``.
        """
        m = self.m
        affected = []
        for s in range(m):
            r = int(reach[s])
            for p in positions:
                if (p - s) % m <= r:
                    affected.append(s)
                    break
        return affected

    def _query(
        self,
        q: np.ndarray,
        k: int,
        num_candidates: Optional[int] = None,
        n_probes: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        if self.csa is None:
            raise RuntimeError("index must be fitted before querying")
        if num_candidates is None:
            num_candidates = self.default_candidates(k)
        if n_probes is None:
            n_probes = self.n_probes
        budget = min(self.n, num_candidates + k - 1)
        codes, alternatives = self.family.query_alternatives(
            q, self.max_alternatives
        )
        alt_codes = [a[0] for a in alternatives]
        alt_scores = [a[1] for a in alternatives]
        # Probe 0: the unperturbed hash string, with stored bounds.
        bounds = self.csa.search_all_shifts(codes)
        qd0 = self.csa.query_rotations(codes)
        reach = np.array(
            [max(b.len_lower, b.len_upper) for b in bounds], dtype=np.int64
        )
        # Collect every (probe, affected shift) search, then run them as
        # one lock-step batched binary search (a single vectorised
        # bisection instead of hundreds of sequential ones).
        search_shifts: list = []
        search_qds: list = []
        for delta in generate_perturbation_vectors(
            alt_scores, n_probes, max_gap=self.max_gap
        ):
            if not delta:  # probe 0 already handled via `bounds`
                continue
            modified = codes.copy()
            for pos, j in delta:
                modified[pos] = alt_codes[pos][j]
            qd = self.csa.query_rotations(modified)
            positions = tuple(pos for pos, _ in delta)
            for s in self._affected_shifts(positions, reach):
                search_shifts.append(s)
                search_qds.append(qd)
        extra_entries: list = []
        n_searches = len(search_shifts)
        if n_searches:
            shifts_arr = np.array(search_shifts, dtype=np.int64)
            q_rots = np.stack(
                [qd[s : s + self.m] for s, qd in zip(search_shifts, search_qds)]
            )
            probe_bounds = self.csa.batch_binary_search(shifts_arr, q_rots)
            for s, qd, b in zip(search_shifts, search_qds, probe_bounds):
                if b.pos_lower >= 0:
                    extra_entries.append((b.len_lower, s, b.pos_lower, -1, qd))
                if b.pos_upper < self.n:
                    extra_entries.append((b.len_upper, s, b.pos_upper, +1, qd))
        cand_ids, lccs_lens = self.csa.merge_candidates(
            qd0, bounds, budget, extra_entries=extra_entries
        )
        self.last_stats["probes"] = float(n_probes)
        self.last_stats["probe_searches"] = float(n_searches)
        self.last_stats["max_lccs"] = int(lccs_lens[0]) if len(lccs_lens) else 0
        return self._verify(cand_ids, q, k)

    def _batch_query(
        self,
        queries: np.ndarray,
        k: int,
        num_candidates: Optional[int] = None,
        n_probes: Optional[int] = None,
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Vectorised batch path with batched probe generation.

        The unperturbed searches of all queries run as one batched
        windowed pass; every (query, probe, affected-shift) search across
        the *whole batch* is flattened into a single lock-step bisection;
        merges run lock-step with fused LCP computation.  Per query the
        results are identical to :meth:`_query`.
        """
        if self.csa is None:
            raise RuntimeError("index must be fitted before querying")
        if num_candidates is None:
            num_candidates = self.default_candidates(k)
        if n_probes is None:
            n_probes = self.n_probes
        budget = min(self.n, num_candidates + k - 1)
        Q = len(queries)
        m, n = self.m, self.n
        t0 = time.perf_counter()
        codes_rows: List[np.ndarray] = []
        alt_codes_rows: list = []
        alt_scores_rows: list = []
        for q in queries:
            codes, alternatives = self.family.query_alternatives(
                q, self.max_alternatives
            )
            codes_rows.append(codes)
            alt_codes_rows.append([a[0] for a in alternatives])
            alt_scores_rows.append([a[1] for a in alternatives])
        codes_mat = (
            np.stack(codes_rows)
            if Q
            else np.empty((0, m), dtype=np.int64)
        )
        t1 = time.perf_counter()
        # Probe 0 of every query: one batched windowed pass.
        bounds = self.csa.batch_search_all_shifts(codes_mat)
        _, _, len_lower, len_upper = bounds
        qds = np.concatenate([codes_mat, codes_mat], axis=1)
        # Collect every (query, probe, affected shift) search across the
        # batch, then run them as one lock-step bisection.  Perturbed
        # query strings go into extra rows of the merge's qd table and
        # are referenced by row index.
        probe_qds: list = []
        search_shifts: list = []
        search_rows: list = []
        search_owner: list = []
        for qi in range(Q):
            reach = np.maximum(len_lower[qi], len_upper[qi])
            codes = codes_rows[qi]
            for delta in generate_perturbation_vectors(
                alt_scores_rows[qi], n_probes, max_gap=self.max_gap
            ):
                if not delta:  # probe 0 already handled via `bounds`
                    continue
                modified = codes.copy()
                for pos, j in delta:
                    modified[pos] = alt_codes_rows[qi][pos][j]
                qd_row = Q + len(probe_qds)
                probe_qds.append(self.csa.query_rotations(modified))
                positions = tuple(pos for pos, _ in delta)
                for s in self._affected_shifts(positions, reach):
                    search_shifts.append(s)
                    search_rows.append(qd_row)
                    search_owner.append(qi)
        qd_table = np.vstack([qds] + probe_qds) if probe_qds else qds
        extra_entries: List[list] = [[] for _ in range(Q)]
        n_searches = len(search_shifts)
        if n_searches:
            shifts_arr = np.array(search_shifts, dtype=np.int64)
            rows_arr = np.array(search_rows, dtype=np.int64)
            q_rots = qd_table[
                rows_arr[:, None], shifts_arr[:, None] + np.arange(m)
            ]
            ppl, ppu, pll, plu = self.csa._batch_search_arrays(shifts_arr, q_rots)
            for i in range(n_searches):
                qi, s, row = search_owner[i], search_shifts[i], search_rows[i]
                if ppl[i] >= 0:
                    extra_entries[qi].append((int(pll[i]), s, int(ppl[i]), -1, row))
                if ppu[i] < n:
                    extra_entries[qi].append((int(plu[i]), s, int(ppu[i]), +1, row))
        t2 = time.perf_counter()
        merged = self.csa.batch_merge_candidates(
            qd_table, bounds, budget, extra_entries=extra_entries
        )
        t3 = time.perf_counter()
        self.last_stats["probes"] = float(n_probes) * Q
        self.last_stats["probe_searches"] = float(n_searches)
        self.last_stats["max_lccs"] = float(
            sum(int(lens[0]) if len(lens) else 0 for _, lens in merged)
        )
        out = self._verify_batch([ids for ids, _ in merged], queries, k)
        t4 = time.perf_counter()
        self._record_stages(t1 - t0, t2 - t1, t3 - t2, t4 - t3)
        return out

"""The paper's "simple method" for k-LCCS search — the ablation baseline.

Section 3.2 first derives a naive index: sort the strings once per shift
and answer a query with ``m`` *independent* full binary searches, at
``O(m (m + log n))`` query time.  The CSA then improves this with next
links and windowed searches (Lemma 3.1) to ``O(log n + (m + k) log m)``.

``NaiveCSA`` implements the simple method with the same results
contract as :class:`repro.core.csa.CircularShiftArray` so the ablation
benchmark (and the tests) can compare them directly.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.csa import CircularShiftArray, ShiftBounds

__all__ = ["NaiveCSA"]


class NaiveCSA(CircularShiftArray):
    """k-LCCS search without next-link chaining (paper's simple method).

    Construction is identical to the CSA (the sorted indices are the
    same); only the query path differs: every shift pays a full binary
    search over all ``n`` strings.
    """

    def search_all_shifts(self, query: np.ndarray) -> List[ShiftBounds]:
        query = np.asarray(query)
        if query.shape != (self.m,):
            raise ValueError(
                f"query must have length m={self.m}, got shape {query.shape}"
            )
        qd = self.query_rotations(query)
        return [
            self.binary_search(s, qd[s : s + self.m]) for s in range(self.m)
        ]
